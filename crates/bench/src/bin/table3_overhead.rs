//! Regenerates Table 3: run-time overhead normalized against the baseline.
fn main() {
    println!("Table 3 — run-time overhead normalized against the baseline");
    print!("{}", mcr_bench::table3_report(200, 3));
}
