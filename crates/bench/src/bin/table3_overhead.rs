//! Regenerates Table 3: run-time overhead normalized against the baseline.
//!
//! Emits the machine-readable JSON document to stdout and the human-readable
//! table to stderr, so the output can be piped into analysis tooling.

fn main() {
    let rows = mcr_bench::table3_rows(200, 3);
    eprintln!("Table 3 — run-time overhead normalized against the baseline");
    eprint!("{}", mcr_bench::table3_render(&rows));
    println!("{}", mcr_bench::table3_json(&rows).render());
}
