//! Regenerates Table 1: programs, updates and engineering effort.
fn main() {
    println!("Table 1 — programs, updates and engineering effort");
    print!("{}", mcr_bench::table1_report(20));
}
