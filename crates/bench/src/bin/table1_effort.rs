//! Regenerates Table 1: programs, updates and engineering effort.
//!
//! Emits the machine-readable JSON document to stdout and the human-readable
//! table to stderr, so the output can be piped into analysis tooling.

fn main() {
    let rows = mcr_bench::table1_rows(20);
    eprintln!("Table 1 — programs, updates and engineering effort");
    eprint!("{}", mcr_bench::table1_render(&rows));
    println!("{}", mcr_bench::table1_json(&rows).render());
}
