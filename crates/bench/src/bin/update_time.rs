//! Regenerates the update-time breakdown of §8 (quiescence, control
//! migration, state transfer), including the per-phase pipeline trace.
//!
//! Emits the machine-readable JSON document to stdout and the human-readable
//! table to stderr, so the output can be piped into analysis tooling.

fn main() {
    let rows = mcr_bench::update_time_rows(20);
    eprintln!("Update time breakdown (quiescence / control migration / state transfer)");
    eprint!("{}", mcr_bench::update_time_render(&rows));
    println!("{}", mcr_bench::update_time_json(&rows).render());
}
