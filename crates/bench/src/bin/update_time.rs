//! Regenerates the update-time breakdown of §8 (quiescence, control
//! migration, state transfer).
fn main() {
    println!("Update time breakdown (quiescence / control migration / state transfer)");
    print!("{}", mcr_bench::update_time_report(20));
}
