//! Regenerates the SPEC CPU2006-style allocator instrumentation experiment.
fn main() {
    println!("Allocator instrumentation overhead (SPEC-style microbenchmarks)");
    print!("{}", mcr_bench::spec_alloc_report(20, 3));
}
