//! Regenerates the SPEC CPU2006-style allocator instrumentation experiment.
//!
//! Emits the machine-readable JSON document to stdout and the human-readable
//! table to stderr, so the output can be piped into analysis tooling.

fn main() {
    let rows = mcr_bench::spec_alloc_rows(20, 3);
    eprintln!("Allocator instrumentation overhead (SPEC-style microbenchmarks)");
    eprint!("{}", mcr_bench::spec_alloc_render(&rows));
    println!("{}", mcr_bench::spec_alloc_json(&rows).render());
}
