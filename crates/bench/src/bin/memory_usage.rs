//! Regenerates the memory-usage evaluation of §8.
fn main() {
    println!("Memory usage: MCR-instrumented resident set vs baseline");
    print!("{}", mcr_bench::memory_report(50));
}
