//! Regenerates the memory-usage evaluation of §8.
//!
//! Emits the machine-readable JSON document to stdout and the human-readable
//! table to stderr, so the output can be piped into analysis tooling.

fn main() {
    let rows = mcr_bench::memory_rows(50);
    eprintln!("Memory usage: MCR-instrumented resident set vs baseline");
    eprint!("{}", mcr_bench::memory_render(&rows));
    println!("{}", mcr_bench::memory_json(&rows).render());
}
