//! Regenerates Table 2: mutable tracing statistics after the benchmarks.
fn main() {
    println!("Table 2 — mutable tracing statistics (precise vs likely pointers)");
    print!("{}", mcr_bench::table2_report(30));
}
