//! Regenerates Table 2: mutable tracing statistics after the benchmarks.
//!
//! Emits the machine-readable JSON document to stdout and the human-readable
//! table to stderr, so the output can be piped into analysis tooling.

fn main() {
    let rows = mcr_bench::table2_rows(30);
    eprintln!("Table 2 — mutable tracing statistics (precise vs likely pointers)");
    eprint!("{}", mcr_bench::table2_render(&rows));
    println!("{}", mcr_bench::table2_json(&rows).render());
}
