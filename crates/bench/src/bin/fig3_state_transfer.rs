//! Regenerates Figure 3: state-transfer time vs. number of open connections.
//!
//! Emits the machine-readable JSON document to stdout and the human-readable
//! table to stderr, so the output can be piped into analysis tooling.

fn main() {
    let connections = [0, 10, 25, 50, 75, 100];
    let rows = mcr_bench::figure3_rows(&connections, 10);
    eprintln!("Figure 3 — state transfer time vs open connections");
    eprint!("{}", mcr_bench::figure3_render(&rows, &connections));
    println!("{}", mcr_bench::figure3_json(&rows).render());
}
