//! Regenerates Figure 3: state-transfer time vs. number of open connections.
fn main() {
    println!("Figure 3 — state transfer time vs open connections");
    print!("{}", mcr_bench::figure3_report(&[0, 10, 25, 50, 75, 100], 10));
}
