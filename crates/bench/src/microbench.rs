//! A tiny wall-clock micro-benchmark harness.
//!
//! The repository builds without network access, so the Criterion crate the
//! benches were originally written against is unavailable; this harness
//! covers what they need — warmup, a fixed sample count, and a median/min
//! summary — and prints one row per benchmark plus a JSON document, so the
//! `cargo bench` targets stay scriptable.

use std::time::Instant;

use crate::json::Json;

/// Timing summary of one benchmarked closure.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id (`group/name`).
    pub name: String,
    /// Every measured sample, in seconds.
    pub samples: Vec<f64>,
}

impl BenchResult {
    /// Median sample, in seconds.
    pub fn median(&self) -> f64 {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        sorted[sorted.len() / 2]
    }

    /// Fastest sample, in seconds.
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// The `p`-th percentile (0–100) over the recorded samples, by the
    /// nearest-rank method: the smallest sample such that at least `p`% of
    /// all samples are ≤ it. Exact for tail percentiles over large sample
    /// sets (a latency harness records one sample per request), and
    /// `percentile(50)` matches a conventional median for odd counts.
    pub fn percentile(&self, p: f64) -> f64 {
        percentile_of(&self.samples, p)
    }

    /// Median (p50) by nearest rank.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 99th percentile by nearest rank.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// 99.9th percentile by nearest rank.
    pub fn p999(&self) -> f64 {
        self.percentile(99.9)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("median_s", Json::Num(self.median())),
            ("min_s", Json::Num(self.min())),
            ("p50_s", Json::Num(self.p50())),
            ("p99_s", Json::Num(self.p99())),
            ("p999_s", Json::Num(self.p999())),
            ("samples", Json::Num(self.samples.len() as f64)),
        ])
    }
}

/// Nearest-rank percentile over an unsorted slice (`p` in 0–100).
///
/// Shared by [`BenchResult`] and benches that compute percentiles over
/// sample sets they never wrap in a result (e.g. per-phase request
/// latencies in `benches/fleet_latency.rs`).
pub fn percentile_of(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile needs at least one sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    // The epsilon absorbs binary-float noise in p/100 * n (e.g. 0.999 * 1000
    // = 999.0000000000001, which would otherwise ceil to the wrong rank).
    let rank = ((p / 100.0) * sorted.len() as f64 - 1e-9).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs a named group of micro-benchmarks and reports the results.
pub struct BenchGroup {
    group: String,
    warmup: usize,
    samples: usize,
    results: Vec<BenchResult>,
}

impl BenchGroup {
    /// Creates a group with the default 2 warmup and 10 measured iterations.
    pub fn new(group: impl Into<String>) -> Self {
        BenchGroup { group: group.into(), warmup: 2, samples: 10, results: Vec::new() }
    }

    /// Overrides the number of measured iterations.
    #[must_use]
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Records externally measured samples under `name` — for experiments
    /// whose metric is not the closure's wall time (simulated makespans,
    /// per-phase host nanoseconds measured inside a pipeline run, ...). The
    /// samples flow into the same median/min reporting and JSON document as
    /// [`BenchGroup::bench`] results, which is what lets CI smoke thresholds
    /// compare medians of repeated iterations instead of single noisy runs.
    pub fn record(&mut self, name: impl Into<String>, samples: Vec<f64>) -> BenchResult {
        let name = format!("{}/{}", self.group, name.into());
        assert!(!samples.is_empty(), "record needs at least one sample");
        let result = BenchResult { name, samples };
        eprintln!(
            "{:<48} median {:>10.3} ms   min {:>10.3} ms   ({} samples)",
            result.name,
            result.median() * 1e3,
            result.min() * 1e3,
            result.samples.len()
        );
        self.results.push(result.clone());
        result
    }

    /// Times `f`, keeping its result alive so the work is not optimized out.
    pub fn bench<T>(&mut self, name: impl Into<String>, mut f: impl FnMut() -> T) {
        let name = format!("{}/{}", self.group, name.into());
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            samples.push(start.elapsed().as_secs_f64());
        }
        let result = BenchResult { name, samples };
        eprintln!(
            "{:<48} median {:>10.3} ms   min {:>10.3} ms   ({} samples)",
            result.name,
            result.median() * 1e3,
            result.min() * 1e3,
            result.samples.len()
        );
        self.results.push(result);
    }

    /// Prints the group's JSON document to stdout and returns the results.
    pub fn finish(self) -> Vec<BenchResult> {
        println!("{}", self.to_json().render());
        self.results
    }

    /// Returns the results without printing — for benches that embed the
    /// group's median/min rows inside a larger JSON document (stdout must
    /// stay a single parseable document for the CI smoke steps).
    pub fn finish_quiet(self) -> Vec<BenchResult> {
        self.results
    }

    /// The group's JSON document (same shape [`BenchGroup::finish`] prints).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("group", Json::str(&self.group)),
            ("results", Json::Arr(self.results.iter().map(BenchResult::to_json).collect())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_measures_and_summarizes() {
        let mut g = BenchGroup::new("unit").samples(3);
        g.bench("noop", || 1 + 1);
        let results = g.finish();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "unit/noop");
        assert_eq!(results[0].samples.len(), 3);
        assert!(results[0].min() <= results[0].median());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let r = BenchResult { name: "unit/p".into(), samples };
        assert_eq!(r.p50(), 500.0);
        assert_eq!(r.p99(), 990.0);
        assert_eq!(r.p999(), 999.0);
        assert_eq!(r.percentile(100.0), 1000.0);
        assert_eq!(r.percentile(0.0), 1.0);
        let single = BenchResult { name: "unit/one".into(), samples: vec![7.0] };
        assert_eq!(single.p50(), 7.0);
        assert_eq!(single.p999(), 7.0);
    }

    #[test]
    fn recorded_samples_report_median_and_min() {
        let mut g = BenchGroup::new("unit");
        let r = g.record("external", vec![3.0, 1.0, 2.0]);
        assert_eq!(r.median(), 2.0);
        assert_eq!(r.min(), 1.0);
        let results = g.finish();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "unit/external");
    }
}
