//! A tiny wall-clock micro-benchmark harness.
//!
//! The repository builds without network access, so the Criterion crate the
//! benches were originally written against is unavailable; this harness
//! covers what they need — warmup, a fixed sample count, and a median/min
//! summary — and prints one row per benchmark plus a JSON document, so the
//! `cargo bench` targets stay scriptable.

use std::time::Instant;

use crate::json::Json;

/// Timing summary of one benchmarked closure.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id (`group/name`).
    pub name: String,
    /// Every measured sample, in seconds.
    pub samples: Vec<f64>,
}

impl BenchResult {
    /// Median sample, in seconds.
    pub fn median(&self) -> f64 {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        sorted[sorted.len() / 2]
    }

    /// Fastest sample, in seconds.
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("median_s", Json::Num(self.median())),
            ("min_s", Json::Num(self.min())),
            ("samples", Json::Num(self.samples.len() as f64)),
        ])
    }
}

/// Runs a named group of micro-benchmarks and reports the results.
pub struct BenchGroup {
    group: String,
    warmup: usize,
    samples: usize,
    results: Vec<BenchResult>,
}

impl BenchGroup {
    /// Creates a group with the default 2 warmup and 10 measured iterations.
    pub fn new(group: impl Into<String>) -> Self {
        BenchGroup { group: group.into(), warmup: 2, samples: 10, results: Vec::new() }
    }

    /// Overrides the number of measured iterations.
    #[must_use]
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Records externally measured samples under `name` — for experiments
    /// whose metric is not the closure's wall time (simulated makespans,
    /// per-phase host nanoseconds measured inside a pipeline run, ...). The
    /// samples flow into the same median/min reporting and JSON document as
    /// [`BenchGroup::bench`] results, which is what lets CI smoke thresholds
    /// compare medians of repeated iterations instead of single noisy runs.
    pub fn record(&mut self, name: impl Into<String>, samples: Vec<f64>) -> BenchResult {
        let name = format!("{}/{}", self.group, name.into());
        assert!(!samples.is_empty(), "record needs at least one sample");
        let result = BenchResult { name, samples };
        eprintln!(
            "{:<48} median {:>10.3} ms   min {:>10.3} ms   ({} samples)",
            result.name,
            result.median() * 1e3,
            result.min() * 1e3,
            result.samples.len()
        );
        self.results.push(result.clone());
        result
    }

    /// Times `f`, keeping its result alive so the work is not optimized out.
    pub fn bench<T>(&mut self, name: impl Into<String>, mut f: impl FnMut() -> T) {
        let name = format!("{}/{}", self.group, name.into());
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            samples.push(start.elapsed().as_secs_f64());
        }
        let result = BenchResult { name, samples };
        eprintln!(
            "{:<48} median {:>10.3} ms   min {:>10.3} ms   ({} samples)",
            result.name,
            result.median() * 1e3,
            result.min() * 1e3,
            result.samples.len()
        );
        self.results.push(result);
    }

    /// Prints the group's JSON document to stdout and returns the results.
    pub fn finish(self) -> Vec<BenchResult> {
        println!("{}", self.to_json().render());
        self.results
    }

    /// Returns the results without printing — for benches that embed the
    /// group's median/min rows inside a larger JSON document (stdout must
    /// stay a single parseable document for the CI smoke steps).
    pub fn finish_quiet(self) -> Vec<BenchResult> {
        self.results
    }

    /// The group's JSON document (same shape [`BenchGroup::finish`] prints).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("group", Json::str(&self.group)),
            ("results", Json::Arr(self.results.iter().map(BenchResult::to_json).collect())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_measures_and_summarizes() {
        let mut g = BenchGroup::new("unit").samples(3);
        g.bench("noop", || 1 + 1);
        let results = g.finish();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "unit/noop");
        assert_eq!(results[0].samples.len(), 3);
        assert!(results[0].min() <= results[0].median());
    }

    #[test]
    fn recorded_samples_report_median_and_min() {
        let mut g = BenchGroup::new("unit");
        let r = g.record("external", vec![3.0, 1.0, 2.0]);
        assert_eq!(r.median(), 2.0);
        assert_eq!(r.min(), 1.0);
        let results = g.finish();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "unit/external");
    }
}
