//! Minimal JSON value model and serializer.
//!
//! The container this repository builds in has no network access, so the
//! benchmark binaries cannot pull in `serde_json`; this hand-rolled emitter
//! covers the subset they need (objects, arrays, strings, numbers, bools)
//! with correct string escaping and stable key order.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep their insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an object from a dynamically assembled pair list (for rows
    /// whose fields depend on what a sweep measured).
    pub fn obj_vec<'a>(pairs: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serializes the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures_compactly() {
        let v = Json::obj([
            ("name", Json::str("fig3")),
            ("ok", Json::Bool(true)),
            ("rows", Json::Arr(vec![Json::Num(1.5), Json::Num(2.0), Json::Null])),
        ]);
        assert_eq!(v.render(), r#"{"name":"fig3","ok":true,"rows":[1.5,2,null]}"#);
    }

    #[test]
    fn escapes_strings() {
        let v = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn integral_floats_render_without_decimal_point() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(42.25).render(), "42.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }
}
