//! Crash-consistency campaign for the durable checkpoint subsystem.
//!
//! Where `chaos.rs` attacks the *update pipeline*, this campaign attacks
//! the *durability layer* underneath it: the versioned, checksummed
//! checkpoint manifests of `mcr_core::transfer::checkpoint` and the restore
//! path that revives a kernel from them. Against one real server model it
//! proves, end to end:
//!
//! 1. **Roundtrip fidelity** — a checkpoint of the live server restores
//!    into a scratch kernel whose [`kernel_fingerprint`] is byte-identical
//!    to the checkpointed one, and the restored instance still serves.
//! 2. **Crash consistency** — for *every* store block a checkpoint writes,
//!    crashing at that block ([`WriteFault::CrashAt`]) or tearing it
//!    ([`WriteFault::TornAt`]) leaves the store in a state from which
//!    restore lands on a byte-identical image of *some* durable version
//!    (the interrupted one if its manifest made it down, else the previous
//!    one) — never a partial or merged state — while the serving instance
//!    keeps answering.
//! 3. **Restore-path robustness** — an injected failure at each of the
//!    [`RESTORE_STEPS`] surfaces as the typed
//!    [`RestoreError::FaultInjected`] and perturbs neither the store nor
//!    the serving side.
//! 4. **Corruption rejection** — torn shards, flipped manifest bytes,
//!    truncation, format skew and total-store corruption are rejected with
//!    typed errors; valid older versions are used when one exists.
//! 5. **Supervised recovery** — [`supervised_update_durable`] revives a
//!    crashed old instance from the latest durable checkpoint and still
//!    commits the update.
//!
//! Every deviation is recorded as a repro string; the campaign is fully
//! deterministic (simulated kernel, seeded by construction), so a repro
//! replays by rerunning the same drill.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use mcr_core::runtime::{
    resume, supervised_update_durable, wait_quiescence, ChaosPlan, McrInstance, SupervisorPolicy,
    UpdateOptions,
};
use mcr_core::transfer::checkpoint::{
    checkpoint_now, list_versions, restore_latest, write_checkpoint, CheckpointOptions, CheckpointSummary,
    RestoreError, RESTORE_STEPS,
};
use mcr_core::{PhaseName, Program};
use mcr_procsim::{Kernel, MemStore, Store, WriteFault};
use mcr_servers::program_by_name;
use mcr_typemeta::InstrumentationConfig;
use mcr_workload::{open_idle_connections, run_workload, workload_for};

use crate::chaos::spread;
use crate::{boot_program, kernel_fingerprint, Json};

/// Quiescence budget (barrier passes) for the campaign's own barriers.
const QUIESCE_ROUNDS: usize = 64;

/// Campaign sizing.
///
/// The program must have a *startup-determined* process topology (httpd,
/// nginx: master/worker, workers forked inside startup) — restore re-boots
/// the program deterministically, so session-per-connection programs
/// (vsftpd, sshd) with live sessions are rejected at `validate-topology`
/// by design.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointSpec {
    /// Server model under test.
    pub program: &'static str,
    /// Standard-workload requests before the first checkpoint.
    pub requests: u64,
    /// Extra requests between checkpoint versions (makes v1 and v2 differ).
    pub extra_requests: u64,
    /// Idle connections open at checkpoint time.
    pub open_connections: usize,
    /// Parallel shard writers per checkpoint.
    pub shard_writers: usize,
    /// Cap on crash/torn points swept per fault kind (0 = every block).
    pub max_crash_points: usize,
}

impl CheckpointSpec {
    /// The release-profile campaign the bench binary and CI smoke run:
    /// every store block is a crash point and a torn point.
    pub fn smoke() -> Self {
        CheckpointSpec {
            program: "nginx",
            requests: 4,
            extra_requests: 3,
            open_connections: 4,
            shard_writers: 4,
            max_crash_points: 0,
        }
    }

    /// A bounded campaign sized for debug-build test runs.
    pub fn quick() -> Self {
        CheckpointSpec {
            program: "nginx",
            requests: 2,
            extra_requests: 1,
            open_connections: 2,
            shard_writers: 2,
            max_crash_points: 3,
        }
    }

    fn options(&self) -> CheckpointOptions {
        CheckpointOptions { shard_writers: self.shard_writers, ..CheckpointOptions::default() }
    }
}

/// Everything the campaign measured.
#[derive(Debug, Clone, Default)]
pub struct CheckpointOutcome {
    /// Program under test.
    pub program: String,
    /// Store blocks one checkpoint writes — the crash-point space.
    pub blocks: u64,
    /// Reference checkpoint summary (second version, post-traffic).
    pub checkpoint: CheckpointSummary,
    /// The baseline roundtrip restored a byte-identical kernel.
    pub fingerprint_identical: bool,
    /// The restored instance answered the standard workload.
    pub restored_serves: bool,
    /// Crash-at-block drills run.
    pub crash_drills: usize,
    /// Torn-block drills run.
    pub torn_drills: usize,
    /// Drills whose recovery landed on the interrupted (newest) version.
    pub recovered_durable: usize,
    /// Drills whose recovery fell back to the previous version.
    pub recovered_fallback: usize,
    /// Any drill that broke the safety property (wrong fingerprint, old
    /// instance stopped serving, fault failed to fire, restore failed).
    pub divergences: usize,
    /// Restore-step fault drills run (== [`RESTORE_STEPS`] length).
    pub restore_step_drills: usize,
    /// Restore-step drills that surfaced the typed `FaultInjected` error.
    pub restore_step_typed: usize,
    /// Direct-corruption drills run (torn shard, flipped byte, truncation,
    /// format skew, every-version-corrupt).
    pub corruption_drills: usize,
    /// Corruption drills that fell back to a valid older version.
    pub corruption_fallbacks: usize,
    /// Corruption drills with no valid version left that were rejected with
    /// the expected typed error (no partial restore).
    pub corruption_typed: usize,
    /// Supervised-recovery drills run (one per crashed pipeline phase).
    pub supervisor_drills: usize,
    /// Drills where the supervisor revived the crashed old instance from
    /// the durable checkpoint.
    pub supervisor_recovered: usize,
    /// Drills where the recovered ladder still committed the update and the
    /// new version serves.
    pub supervisor_committed: usize,
    /// Retention kept exactly the configured number of newest versions.
    pub retention_ok: bool,
    /// Serial-over-parallel speedup of the reference checkpoint's shard
    /// writeback.
    pub writer_speedup: f64,
    /// Capped sweep dimensions (empty when every block was swept).
    pub capped: Vec<String>,
    /// Human-readable reproducers for every deviation.
    pub repros: Vec<String>,
}

impl CheckpointOutcome {
    /// True when every drill upheld its property.
    pub fn clean(&self) -> bool {
        self.divergences == 0 && self.repros.is_empty()
    }
}

/// Boots the server, runs the standard workload and opens idle connections
/// — the deterministic pre-checkpoint state every drill starts from.
fn setup(spec: &CheckpointSpec) -> (Kernel, McrInstance) {
    let (mut kernel, mut v1) = boot_program(spec.program, 1, InstrumentationConfig::full());
    let wl = workload_for(spec.program, spec.requests);
    run_workload(&mut kernel, &mut v1, &wl).expect("standard workload runs");
    open_idle_connections(&mut kernel, &mut v1, wl.port, spec.open_connections)
        .expect("idle connections open");
    (kernel, v1)
}

/// Whether the instance still answers the standard workload.
fn serves(kernel: &mut Kernel, instance: &mut McrInstance, program: &str) -> bool {
    run_workload(kernel, instance, &workload_for(program, 1)).is_ok()
}

/// Program factory for restore (same generation that was checkpointed).
fn gen1(spec: &CheckpointSpec) -> impl FnMut() -> Box<dyn Program> + '_ {
    move || Box::new(program_by_name(spec.program, 1))
}

/// FNV-1a over a byte slice (manifest checksum algorithm; used by the
/// format-skew drill to re-seal a deliberately skewed manifest).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One crash-point drill: checkpoint v1, mutate, then attempt v2 with a
/// write fault armed at the `n`-th block of the new checkpoint. Asserts the
/// old instance keeps serving and recovery lands on a byte-identical image
/// of v1 or (if its manifest became durable before the crash) v2.
fn crash_drill(spec: &CheckpointSpec, n: u64, torn: bool, out: &mut CheckpointOutcome) {
    let what = if torn { "torn" } else { "crash" };
    let opts = spec.options();
    let (mut kernel, mut instance) = setup(spec);
    let mut store = MemStore::new();
    checkpoint_now(&mut kernel, &mut instance, &mut store, &opts).expect("v1 checkpoint");
    let fp1 = kernel_fingerprint(&kernel);
    run_workload(&mut kernel, &mut instance, &workload_for(spec.program, spec.extra_requests))
        .expect("extra traffic");
    // Quiesce by hand so the fingerprint of the interrupted version is
    // captured at its exact snapshot point.
    wait_quiescence(&mut kernel, &mut instance, QUIESCE_ROUNDS).expect("quiesce for v2");
    let fp2 = kernel_fingerprint(&kernel);
    let at = store.blocks_written() + n;
    store.arm_write_fault(if torn { WriteFault::TornAt(at) } else { WriteFault::CrashAt(at) });
    let result = write_checkpoint(&mut kernel, &instance, &mut store, &opts);
    store.disarm_write_fault();
    resume(&mut kernel, &mut instance);
    if torn {
        out.torn_drills += 1;
    } else {
        out.crash_drills += 1;
    }
    if result.is_ok() {
        out.divergences += 1;
        out.repros.push(format!("{what}:{n}: fault never fired (checkpoint succeeded)"));
        return;
    }
    if !serves(&mut kernel, &mut instance, spec.program) {
        out.divergences += 1;
        out.repros.push(format!("{what}:{n}: old instance stopped serving after failed checkpoint"));
        return;
    }
    // Remount the (possibly torn) store and recover.
    store.recover();
    match restore_latest(&store, &mut gen1(spec), None) {
        Ok(restored) => {
            let fp = kernel_fingerprint(&restored.kernel);
            if fp == fp2 {
                out.recovered_durable += 1;
            } else if fp == fp1 {
                out.recovered_fallback += 1;
            } else {
                out.divergences += 1;
                out.repros.push(format!(
                    "{what}:{n}: restored v{} fingerprint {fp:#x} matches neither snapshot",
                    restored.report.version
                ));
            }
        }
        Err(e) => {
            out.divergences += 1;
            out.repros.push(format!("{what}:{n}: recovery failed: {e}"));
        }
    }
}

/// Restore-step fault drills: each enumerated step must fail typed without
/// touching the store or the serving instance.
fn restore_step_drills(spec: &CheckpointSpec, out: &mut CheckpointOutcome) {
    let opts = spec.options();
    let (mut kernel, mut instance) = setup(spec);
    let mut store = MemStore::new();
    checkpoint_now(&mut kernel, &mut instance, &mut store, &opts).expect("v1 checkpoint");
    let fp1 = kernel_fingerprint(&kernel);
    for step in 1..=RESTORE_STEPS.len() as u64 {
        out.restore_step_drills += 1;
        match restore_latest(&store, &mut gen1(spec), Some(step)) {
            Err(RestoreError::FaultInjected { step: s, .. }) if s == step => {
                out.restore_step_typed += 1;
            }
            Err(e) => out.repros.push(format!("restore-step:{step}: wrong error: {e}")),
            Ok(_) => out.repros.push(format!("restore-step:{step}: fault never fired")),
        }
    }
    // The drills were read-only: a clean restore still revives v1 exactly,
    // and the serving side never noticed.
    match restore_latest(&store, &mut gen1(spec), None) {
        Ok(restored) if kernel_fingerprint(&restored.kernel) == fp1 => {}
        Ok(_) => {
            out.divergences += 1;
            out.repros.push("restore-step: post-drill restore diverged from v1".into());
        }
        Err(e) => {
            out.divergences += 1;
            out.repros.push(format!("restore-step: post-drill restore failed: {e}"));
        }
    }
    if !serves(&mut kernel, &mut instance, spec.program) {
        out.divergences += 1;
        out.repros.push("restore-step: serving instance perturbed by restore drills".into());
    }
}

/// Direct-corruption drills against a store holding two valid versions.
fn corruption_drills(spec: &CheckpointSpec, out: &mut CheckpointOutcome) {
    let opts = spec.options();
    let (mut kernel, mut instance) = setup(spec);
    let mut store = MemStore::new();
    checkpoint_now(&mut kernel, &mut instance, &mut store, &opts).expect("v1 checkpoint");
    let fp1 = kernel_fingerprint(&kernel);
    run_workload(&mut kernel, &mut instance, &workload_for(spec.program, spec.extra_requests))
        .expect("extra traffic");
    checkpoint_now(&mut kernel, &mut instance, &mut store, &opts).expect("v2 checkpoint");

    let manifests: Vec<String> = store.list().into_iter().filter(|n| n.ends_with("/MANIFEST")).collect();
    assert_eq!(manifests.len(), 2, "two versions retained");
    let (m1, m2) = (manifests[0].clone(), manifests[1].clone());
    let v2_dir = m2.trim_end_matches("MANIFEST").to_string();
    let s2 = store
        .list()
        .into_iter()
        .find(|n| n.starts_with(&v2_dir) && n.contains("shard-"))
        .expect("v2 shard blob");
    let pristine_m2 = store.read_blob(&m2).expect("v2 manifest readable");

    // Falls back to v1 with a byte-identical image, or the drill diverged.
    let expect_fallback = |store: &MemStore, label: &str, out: &mut CheckpointOutcome| {
        out.corruption_drills += 1;
        match restore_latest(store, &mut gen1(spec), None) {
            Ok(restored)
                if restored.report.version == 1
                    && restored.report.versions_rejected >= 1
                    && kernel_fingerprint(&restored.kernel) == fp1 =>
            {
                out.corruption_fallbacks += 1;
            }
            Ok(restored) => {
                out.divergences += 1;
                out.repros.push(format!(
                    "corruption:{label}: restored v{} instead of falling back to an intact v1",
                    restored.report.version
                ));
            }
            Err(e) => {
                out.divergences += 1;
                out.repros.push(format!("corruption:{label}: no fallback, restore failed: {e}"));
            }
        }
    };

    // 1. Torn shard payload: manifest valid, shard checksum mismatch.
    store.corrupt_byte(&s2, 0).expect("corrupt shard");
    expect_fallback(&store, "shard-byte", out);
    // 2. Flipped manifest body byte.
    store.corrupt_byte(&m2, pristine_m2.len() / 2).expect("corrupt manifest");
    expect_fallback(&store, "manifest-byte", out);
    // 3. Truncated manifest (below the framing minimum).
    store.truncate_blob(&m2, 4).expect("truncate manifest");
    expect_fallback(&store, "manifest-truncated", out);

    // 4. Every version corrupt: v2 stays truncated, v1's checksum trailer
    // is flipped — restore must reject everything with a typed error, not
    // revive a partial image.
    let m1_len = store.read_blob(&m1).expect("v1 manifest readable").len();
    store.corrupt_byte(&m1, m1_len - 1).expect("corrupt v1 trailer");
    out.corruption_drills += 1;
    match restore_latest(&store, &mut gen1(spec), None) {
        Err(RestoreError::ChecksumMismatch { .. } | RestoreError::Truncated { .. }) => {
            out.corruption_typed += 1;
        }
        Err(e) => {
            out.divergences += 1;
            out.repros.push(format!("corruption:all-corrupt: wrong error class: {e}"));
        }
        Ok(restored) => {
            out.divergences += 1;
            out.repros.push(format!(
                "corruption:all-corrupt: restored v{} from a fully corrupt store",
                restored.report.version
            ));
        }
    }

    // 5. Format skew: re-seal v2's manifest with a flipped format field and
    // a *valid* checksum — the restorer must refuse with `VersionSkew`
    // (checksum passes, so this is not mere corruption).
    let mut skewed = pristine_m2;
    skewed[8] ^= 0xFF;
    let body_len = skewed.len() - 8;
    let sum = fnv1a(&skewed[..body_len]);
    skewed[body_len..].copy_from_slice(&sum.to_le_bytes());
    store.write_blob(&m2, &skewed).expect("write skewed manifest");
    out.corruption_drills += 1;
    match restore_latest(&store, &mut gen1(spec), None) {
        Err(RestoreError::VersionSkew { .. }) => out.corruption_typed += 1,
        Err(e) => {
            out.divergences += 1;
            out.repros.push(format!("corruption:format-skew: wrong error class: {e}"));
        }
        Ok(_) => {
            out.divergences += 1;
            out.repros.push("corruption:format-skew: skewed manifest restored".into());
        }
    }

    // None of the above touched the serving side.
    if !serves(&mut kernel, &mut instance, spec.program) {
        out.divergences += 1;
        out.repros.push("corruption: serving instance perturbed by corruption drills".into());
    }
}

/// Supervised-recovery drills: the old instance crashes before a pipeline
/// phase; the durable supervisor must revive it from the latest checkpoint
/// and still commit the update.
fn supervisor_drills(spec: &CheckpointSpec, out: &mut CheckpointOutcome) {
    for phase in [PhaseName::TraceAndTransfer, PhaseName::Commit] {
        let (mut kernel, instance) = setup(spec);
        let store: Rc<RefCell<MemStore>> = Rc::new(RefCell::new(MemStore::new()));
        let (mut survivor, outcome) = supervised_update_durable(
            &mut kernel,
            instance,
            gen1(spec),
            || Box::new(program_by_name(spec.program, 2)),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
            &SupervisorPolicy::default(),
            store.clone() as Rc<RefCell<dyn Store>>,
            spec.options(),
            move |attempt| {
                if attempt == 1 {
                    ChaosPlan::crashing_old_before(phase)
                } else {
                    ChaosPlan::none()
                }
            },
        );
        out.supervisor_drills += 1;
        let label = phase.label();
        if outcome.report().attempts.iter().any(|a| a.recovered) {
            out.supervisor_recovered += 1;
        } else {
            out.divergences += 1;
            out.repros.push(format!("supervisor:{label}: crash was never recovered from"));
        }
        if outcome.is_committed() && serves(&mut kernel, &mut survivor, spec.program) {
            out.supervisor_committed += 1;
        } else {
            out.divergences += 1;
            out.repros.push(format!(
                "supervisor:{label}: recovered ladder did not commit a serving update: {:?}",
                outcome.conflicts()
            ));
        }
    }
}

/// Runs the whole campaign.
pub fn run_checkpoint_campaign(spec: &CheckpointSpec) -> CheckpointOutcome {
    let opts = spec.options();
    let mut out = CheckpointOutcome { program: spec.program.to_string(), ..CheckpointOutcome::default() };

    // Reference run: baseline roundtrip (v1), then a second checkpoint that
    // sizes the crash-point space and measures the parallel writeback.
    let (mut kernel, mut instance) = setup(spec);
    let mut store = MemStore::new();
    checkpoint_now(&mut kernel, &mut instance, &mut store, &opts).expect("v1 checkpoint");
    let fp1 = kernel_fingerprint(&kernel);
    match restore_latest(&store, &mut gen1(spec), None) {
        Ok(restored) => {
            out.fingerprint_identical = kernel_fingerprint(&restored.kernel) == fp1;
            let mut rk = restored.kernel;
            let mut ri = restored.instance;
            resume(&mut rk, &mut ri);
            out.restored_serves = serves(&mut rk, &mut ri, spec.program);
        }
        Err(e) => out.repros.push(format!("baseline: restore failed: {e}")),
    }
    run_workload(&mut kernel, &mut instance, &workload_for(spec.program, spec.extra_requests))
        .expect("extra traffic");
    let reference = checkpoint_now(&mut kernel, &mut instance, &mut store, &opts).expect("v2 checkpoint");
    out.blocks = reference.blocks;
    out.checkpoint = reference;
    out.writer_speedup = reference.speedup();

    // Crash-consistency sweep: every block of a checkpoint write is a crash
    // point and a torn point (evenly spread when capped).
    let (points, capped) =
        spread(out.blocks, if spec.max_crash_points == 0 { usize::MAX } else { spec.max_crash_points });
    if capped {
        out.capped.push(format!("crash-points:{}/{}", points.len(), out.blocks));
    }
    for &n in &points {
        crash_drill(spec, n, false, &mut out);
        crash_drill(spec, n, true, &mut out);
    }

    restore_step_drills(spec, &mut out);
    corruption_drills(spec, &mut out);
    supervisor_drills(spec, &mut out);

    // Retention: four checkpoints with `retain = 2` keep exactly the newest
    // two versions.
    let (mut kernel, mut instance) = setup(spec);
    let mut store = MemStore::new();
    for _ in 0..4 {
        run_workload(&mut kernel, &mut instance, &workload_for(spec.program, 1)).expect("retention traffic");
        checkpoint_now(&mut kernel, &mut instance, &mut store, &opts).expect("retention checkpoint");
    }
    out.retention_ok = list_versions(&store) == vec![3, 4];
    if !out.retention_ok {
        out.repros.push(format!("retention: kept versions {:?}", list_versions(&store)));
    }

    out
}

/// Renders the campaign outcome as the human-readable report.
pub fn checkpoint_render(out: &CheckpointOutcome) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "checkpoint crash campaign — {}", out.program);
    let _ = writeln!(
        s,
        "  checkpoint: {} blocks, {} shards, {} deltas ({} B), writer speedup {:.2}x",
        out.blocks,
        out.checkpoint.shards,
        out.checkpoint.page_deltas,
        out.checkpoint.delta_bytes,
        out.writer_speedup
    );
    let _ = writeln!(
        s,
        "  roundtrip: fingerprint-identical={} restored-serves={}",
        out.fingerprint_identical, out.restored_serves
    );
    let _ = writeln!(
        s,
        "  crash points: {} crash + {} torn drills → {} durable / {} fallback recoveries",
        out.crash_drills, out.torn_drills, out.recovered_durable, out.recovered_fallback
    );
    let _ = writeln!(
        s,
        "  restore steps: {}/{} typed | corruption: {} drills, {} fallbacks, {} typed rejections",
        out.restore_step_typed,
        out.restore_step_drills,
        out.corruption_drills,
        out.corruption_fallbacks,
        out.corruption_typed
    );
    let _ = writeln!(
        s,
        "  supervisor: {}/{} recovered, {}/{} committed | retention ok: {}",
        out.supervisor_recovered,
        out.supervisor_drills,
        out.supervisor_committed,
        out.supervisor_drills,
        out.retention_ok
    );
    if !out.capped.is_empty() {
        let _ = writeln!(s, "  capped sweeps: {}", out.capped.join(", "));
    }
    let _ = writeln!(s, "  divergences: {}", out.divergences);
    for repro in &out.repros {
        let _ = writeln!(s, "    repro: {repro}");
    }
    s
}

/// Renders the campaign outcome as the `BENCH_checkpoint.json` document.
pub fn checkpoint_json(spec: &CheckpointSpec, out: &CheckpointOutcome) -> Json {
    Json::obj([
        ("experiment", Json::str("checkpoint_crash")),
        ("program", Json::str(&out.program)),
        ("requests", spec.requests.into()),
        ("open_connections", spec.open_connections.into()),
        ("shard_writers", spec.shard_writers.into()),
        ("blocks", out.blocks.into()),
        ("page_deltas", out.checkpoint.page_deltas.into()),
        ("delta_bytes", out.checkpoint.delta_bytes.into()),
        ("fingerprint_identical", Json::Bool(out.fingerprint_identical)),
        ("restored_serves", Json::Bool(out.restored_serves)),
        ("crash_drills", out.crash_drills.into()),
        ("torn_drills", out.torn_drills.into()),
        ("recovered_durable", out.recovered_durable.into()),
        ("recovered_fallback", out.recovered_fallback.into()),
        ("divergences", out.divergences.into()),
        ("restore_step_drills", out.restore_step_drills.into()),
        ("restore_step_typed", out.restore_step_typed.into()),
        ("corruption_drills", out.corruption_drills.into()),
        ("corruption_fallbacks", out.corruption_fallbacks.into()),
        ("corruption_typed", out.corruption_typed.into()),
        ("supervisor_drills", out.supervisor_drills.into()),
        ("supervisor_recovered", out.supervisor_recovered.into()),
        ("supervisor_committed", out.supervisor_committed.into()),
        ("retention_ok", Json::Bool(out.retention_ok)),
        ("writer_speedup", Json::Num(out.writer_speedup)),
        ("capped", Json::Arr(out.capped.iter().map(Json::str).collect())),
        ("repros", Json::Arr(out.repros.iter().map(Json::str).collect())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_is_clean() {
        let spec = CheckpointSpec::quick();
        let out = run_checkpoint_campaign(&spec);
        assert!(out.clean(), "campaign diverged:\n{}", checkpoint_render(&out));
        assert!(out.fingerprint_identical, "baseline roundtrip not byte-identical");
        assert!(out.restored_serves, "restored instance does not serve");
        assert_eq!(out.restore_step_typed, out.restore_step_drills);
        assert_eq!(out.corruption_fallbacks, 3);
        assert_eq!(out.corruption_typed, 2);
        assert_eq!(out.supervisor_recovered, out.supervisor_drills);
        assert!(out.retention_ok);
        assert!(out.crash_drills > 0 && out.torn_drills > 0);
        let doc = checkpoint_json(&spec, &out).render();
        assert!(doc.starts_with("{\"experiment\":\"checkpoint_crash\""));
        assert!(doc.contains("\"divergences\":0"));
    }
}
