//! Chaos-campaign harness: enumerate fault sites, inject seeded schedules,
//! verify byte-identical rollback, and drive the self-healing supervisor.
//!
//! The campaign runs one update scenario under every combination of
//! scheduler core × transfer mode (stop-the-world, pre-copy, post-copy).
//! Per configuration it:
//!
//! 1. performs a clean dry run and derives the [`FaultCatalog`] (every phase
//!    boundary, transfer-object write and pipeline syscall is a site);
//! 2. builds a schedule list — every boundary, evenly spread n-th-object and
//!    n-th-syscall sweeps (capped and logged), plus seeded random schedules
//!    from [`random_plan`];
//! 3. for each schedule asserts the *safety* property: the injected fault
//!    rolls the update back to a kernel whose [`kernel_fingerprint`] is
//!    byte-identical to the pre-update one (a subsample is re-run to check
//!    the rollback is also deterministic: same conflicts, same fingerprint);
//! 4. for each schedule asserts the *liveness* property: a supervised update
//!    with the fault injected into the early attempt(s) converges to a
//!    committed update on the [`DegradationTier`] ladder;
//! 5. runs a give-up drill (persistent fault, bounded attempts — the old
//!    version must keep accepting) and a watchdog drill (1 ns phase budgets
//!    — every phase overruns, the pipeline must roll back cleanly).
//!
//! Any divergence is shrunk to a minimal reproducer with
//! [`shrink_schedule`]; the reproducer plus the campaign seed is everything
//! needed to replay the failure.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use mcr_core::runtime::{
    random_plan, shrink_schedule, supervised_update, time_to_recovery, ChaosPlan, ChaosRng, DegradationTier,
    FaultCatalog, FaultSite, PrecopyOptions, SchedulerMode, SupervisorPolicy, TransferMode, UpdateOptions,
    UpdateOutcome, UpdatePipeline,
};
use mcr_core::{Conflict, McrInstance, PhaseName};
use mcr_procsim::{Kernel, SimDuration};
use mcr_servers::program_by_name;
use mcr_typemeta::InstrumentationConfig;
use mcr_workload::{open_idle_connections, workload_for};

use crate::{boot_program, kernel_fingerprint, run_standard_workload, Json};

/// The transfer mode a campaign cell runs the update pipeline in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Classic synchronous pipeline: quiesce, transfer everything, commit.
    StopTheWorld,
    /// Concurrent pre-copy rounds before the barrier, residual inside it.
    Precopy,
    /// Post-copy: commit early, retire the residual behind traps while the
    /// new version serves (exercises fault-in and drain-step sites).
    Postcopy,
}

impl ChaosMode {
    /// Stable label for logs and JSON rows.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosMode::StopTheWorld => "stop-the-world",
            ChaosMode::Precopy => "precopy",
            ChaosMode::Postcopy => "postcopy",
        }
    }
}

/// One campaign configuration: a scheduler core and a transfer mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Scheduling core both instances run on during the update.
    pub scheduler: SchedulerMode,
    /// Transfer mode of the pipeline under chaos.
    pub mode: ChaosMode,
}

impl ChaosConfig {
    /// Stable label for logs and JSON rows.
    pub fn label(&self) -> String {
        format!(
            "{}/{}",
            match self.scheduler {
                SchedulerMode::EventDriven => "event-driven",
                SchedulerMode::FullScan => "full-scan",
            },
            self.mode.label()
        )
    }

    /// Whether this cell runs concurrent pre-copy rounds.
    pub fn precopy(&self) -> bool {
        self.mode == ChaosMode::Precopy
    }
}

/// Every configuration the campaign sweeps: both scheduler cores crossed
/// with all three transfer modes (a 2 × 3 grid).
pub const CONFIGS: [ChaosConfig; 6] = [
    ChaosConfig { scheduler: SchedulerMode::EventDriven, mode: ChaosMode::StopTheWorld },
    ChaosConfig { scheduler: SchedulerMode::EventDriven, mode: ChaosMode::Precopy },
    ChaosConfig { scheduler: SchedulerMode::EventDriven, mode: ChaosMode::Postcopy },
    ChaosConfig { scheduler: SchedulerMode::FullScan, mode: ChaosMode::StopTheWorld },
    ChaosConfig { scheduler: SchedulerMode::FullScan, mode: ChaosMode::Precopy },
    ChaosConfig { scheduler: SchedulerMode::FullScan, mode: ChaosMode::Postcopy },
];

/// Campaign sizing: scenario, schedule counts and determinism-check cadence.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSpec {
    /// Program under chaos (one of the evaluated server models).
    pub program: &'static str,
    /// Standard-workload requests run before the update.
    pub requests: u64,
    /// Idle connections open at update time.
    pub open_connections: usize,
    /// Seeded random schedules per configuration, on top of the directed
    /// boundary/object/syscall sweeps.
    pub random_schedules: usize,
    /// Cap on the directed n-th-object sweep (evenly spread when capped).
    pub max_object_sites: usize,
    /// Cap on the directed n-th-syscall sweep (evenly spread when capped).
    pub max_syscall_sites: usize,
    /// Cap on the directed n-th-fault-in sweep (post-copy cells only).
    pub max_fault_in_sites: usize,
    /// Cap on the directed n-th-drain-step sweep (post-copy cells only).
    pub max_drain_step_sites: usize,
    /// Campaign seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Every n-th schedule is run twice to check rollback determinism.
    pub rerun_every: usize,
    /// Every n-th fired schedule also gets a supervised (self-healing) run;
    /// 1 supervises every schedule (the smoke setting).
    pub supervise_every: usize,
}

impl ChaosSpec {
    /// The release-profile campaign the bench binary and CI smoke run
    /// (>= 200 schedules across the six grid cells).
    pub fn smoke() -> Self {
        ChaosSpec {
            program: "vsftpd",
            requests: 3,
            open_connections: 6,
            random_schedules: 32,
            max_object_sites: 8,
            max_syscall_sites: 8,
            max_fault_in_sites: 4,
            max_drain_step_sites: 4,
            seed: 0xC4A0_5EED,
            rerun_every: 8,
            supervise_every: 1,
        }
    }

    /// A bounded campaign sized for debug-build test runs.
    pub fn quick() -> Self {
        ChaosSpec {
            program: "vsftpd",
            requests: 2,
            open_connections: 3,
            random_schedules: 3,
            max_object_sites: 2,
            max_syscall_sites: 2,
            max_fault_in_sites: 1,
            max_drain_step_sites: 1,
            seed: 0xC4A0_5EED,
            rerun_every: 5,
            supervise_every: 2,
        }
    }
}

/// Everything one configuration's sweep measured.
#[derive(Debug, Clone)]
pub struct ConfigOutcome {
    /// The configuration swept.
    pub config: ChaosConfig,
    /// The enumerated site space of the clean dry run.
    pub catalog: FaultCatalog,
    /// Schedules injected.
    pub schedules: usize,
    /// Schedules whose fault actually fired (rolled the update back).
    pub fired: usize,
    /// Schedules that unexpectedly committed (armed site never reached).
    pub unexpected_commits: usize,
    /// Rollbacks whose post-rollback fingerprint diverged from the
    /// pre-update one. The campaign's safety assertion is that this is 0.
    pub divergences: usize,
    /// Re-run subsample disagreements (conflicts or fingerprint) — rollback
    /// nondeterminism.
    pub rerun_mismatches: usize,
    /// Minimal reproducers (shrunk schedules) for any divergence.
    pub repros: Vec<String>,
    /// Distinct sites armed by schedules that fired.
    pub sites_injected: usize,
    /// Directed sweeps that could not cover their whole dimension.
    pub capped: Vec<String>,
    /// Supervised runs performed / converged to a committed update.
    pub supervisor_runs: usize,
    /// See `supervisor_runs`; the liveness assertion is equality.
    pub supervisor_committed: usize,
    /// Commits per degradation tier: `[full, no-precopy, serial]`.
    pub tier_commits: [usize; 3],
    /// Mean time-to-recovery (virtual ns) over committed supervised runs.
    pub mttr_mean_ns: f64,
    /// The persistent-fault give-up drill ended with the old version still
    /// accepting connections.
    pub give_up_clean: bool,
    /// The 1 ns phase-budget drill rolled back with a watchdog conflict and
    /// an identical fingerprint.
    pub watchdog_clean: bool,
}

impl ConfigOutcome {
    /// Fraction of the enumerated site space some fired schedule armed.
    pub fn coverage_ratio(&self) -> f64 {
        let total = self.catalog.total_sites();
        if total == 0 {
            return 0.0;
        }
        self.sites_injected as f64 / total as f64
    }

    /// True when every safety and liveness assertion of this configuration
    /// held.
    pub fn clean(&self) -> bool {
        self.divergences == 0
            && self.unexpected_commits == 0
            && self.rerun_mismatches == 0
            && self.supervisor_committed == self.supervisor_runs
            && self.give_up_clean
            && self.watchdog_clean
    }
}

fn options_for(config: ChaosConfig) -> UpdateOptions {
    let base = UpdateOptions {
        scheduler: config.scheduler,
        // One worker gives a deterministic object-write order, which is what
        // makes n-th-object sites stable across runs of the same schedule.
        transfer_workers: 1,
        ..Default::default()
    };
    match config.mode {
        ChaosMode::StopTheWorld => UpdateOptions { precopy: PrecopyOptions::disabled(), ..base },
        ChaosMode::Precopy => UpdateOptions {
            precopy: PrecopyOptions { rounds: 2, convergence_bytes: 0, serve_rounds: 1 },
            ..base
        },
        ChaosMode::Postcopy => {
            UpdateOptions { mode: TransferMode::Postcopy, precopy: PrecopyOptions::disabled(), ..base }
        }
    }
}

/// Boots the scenario to the exact pre-update state every campaign run
/// starts from (same seed state — the virtual kernel is deterministic).
fn setup(spec: &ChaosSpec, config: ChaosConfig) -> (Kernel, McrInstance) {
    let (mut kernel, mut v1) = boot_program(spec.program, 1, InstrumentationConfig::full());
    run_standard_workload(&mut kernel, &mut v1, spec.program, spec.requests);
    let port = workload_for(spec.program, 1).port;
    open_idle_connections(&mut kernel, &mut v1, port, spec.open_connections).expect("idle connections");
    v1.sched.mode = config.scheduler;
    (kernel, v1)
}

/// Clean dry run: commits and yields the configuration's [`FaultCatalog`].
pub fn enumerate_sites(spec: &ChaosSpec, config: ChaosConfig) -> FaultCatalog {
    let opts = options_for(config);
    let (mut kernel, v1) = setup(spec, config);
    let (_v2, outcome) = UpdatePipeline::for_options(&opts).run(
        &mut kernel,
        v1,
        Box::new(program_by_name(spec.program, 2)),
        InstrumentationConfig::full(),
        &opts,
    );
    assert!(
        outcome.is_committed(),
        "{}: clean dry run must commit: {:?}",
        config.label(),
        outcome.conflicts()
    );
    FaultCatalog::from_report(outcome.report())
}

/// What one injected schedule did.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyResult {
    /// The armed fault fired and the update rolled back.
    pub fired: bool,
    /// Post-rollback kernel fingerprint differed from the pre-update one.
    pub diverged: bool,
    /// Rollback conflicts (debug-rendered, stable across identical runs).
    pub conflicts: Vec<String>,
}

/// Runs one schedule and checks the byte-identical-rollback property.
pub fn verify_rollback(spec: &ChaosSpec, config: ChaosConfig, plan: &ChaosPlan) -> VerifyResult {
    let opts = options_for(config);
    let (mut kernel, v1) = setup(spec, config);
    let before = kernel_fingerprint(&kernel);
    let (_survivor, outcome) = UpdatePipeline::for_options(&opts).with_fault_plan(plan.clone()).run(
        &mut kernel,
        v1,
        Box::new(program_by_name(spec.program, 2)),
        InstrumentationConfig::full(),
        &opts,
    );
    match outcome {
        UpdateOutcome::Committed(_) => VerifyResult { fired: false, diverged: false, conflicts: Vec::new() },
        UpdateOutcome::RolledBack { conflicts, .. } => VerifyResult {
            fired: true,
            diverged: kernel_fingerprint(&kernel) != before,
            conflicts: conflicts.iter().map(|c| format!("{c:?}")).collect(),
        },
    }
}

/// One supervised (self-healing) run against a schedule.
#[derive(Debug, Clone)]
pub struct SupervisedResult {
    /// The ladder converged to a committed update.
    pub committed: bool,
    /// Attempts taken.
    pub attempts: usize,
    /// Tier the committing attempt ran at (`None` if it gave up).
    pub tier: Option<DegradationTier>,
    /// Virtual time from first attempt to commit.
    pub mttr_ns: Option<u64>,
}

/// Supervised update with `plan` injected into the first `faulty_attempts`
/// attempts and later attempts clean.
pub fn supervised_run(
    spec: &ChaosSpec,
    config: ChaosConfig,
    plan: &ChaosPlan,
    faulty_attempts: usize,
    policy: &SupervisorPolicy,
) -> SupervisedResult {
    let opts = options_for(config);
    let (mut kernel, v1) = setup(spec, config);
    let program = spec.program;
    let plan = plan.clone();
    let (_survivor, outcome) = supervised_update(
        &mut kernel,
        v1,
        || Box::new(program_by_name(program, 2)),
        InstrumentationConfig::full(),
        &opts,
        policy,
        move |attempt| if attempt <= faulty_attempts { plan.clone() } else { ChaosPlan::none() },
    );
    let report = outcome.report();
    SupervisedResult {
        committed: outcome.is_committed(),
        attempts: report.attempts.len(),
        tier: report.attempts.iter().find(|a| a.committed).map(|a| a.tier),
        mttr_ns: time_to_recovery(report).map(|d| d.0),
    }
}

/// Persistent-fault drill: every attempt dies at the commit boundary with a
/// bounded ladder; the supervisor must give up and leave the old version
/// accepting connections. Post-copy pipelines commit at `PostcopyCommit`
/// (there is no `Commit` phase to fault), so the drill targets both.
fn give_up_drill(spec: &ChaosSpec, config: ChaosConfig) -> bool {
    let opts = options_for(config);
    let (mut kernel, v1) = setup(spec, config);
    let program = spec.program;
    let policy = SupervisorPolicy { max_attempts: 2, ..SupervisorPolicy::default() };
    let (mut survivor, outcome) = supervised_update(
        &mut kernel,
        v1,
        || Box::new(program_by_name(program, 2)),
        InstrumentationConfig::full(),
        &opts,
        &policy,
        |_| ChaosPlan::at_boundaries([PhaseName::Commit, PhaseName::PostcopyCommit]),
    );
    if outcome.is_committed() || outcome.report().attempts.len() != 2 {
        return false;
    }
    let port = workload_for(spec.program, 1).port;
    let Ok(conn) = kernel.client_connect(port) else { return false };
    let _ = mcr_core::runtime::run_rounds(&mut kernel, &mut survivor, 3);
    kernel.client_is_accepted(conn)
}

/// Watchdog drill: 1 ns phase budgets make the very first phase overrun;
/// the pipeline must roll back with a watchdog conflict and an identical
/// fingerprint.
fn watchdog_drill(spec: &ChaosSpec, config: ChaosConfig) -> bool {
    let opts = options_for(config);
    let (mut kernel, v1) = setup(spec, config);
    let before = kernel_fingerprint(&kernel);
    let (_survivor, outcome) =
        UpdatePipeline::for_options(&opts).with_uniform_phase_deadline(SimDuration(1)).run(
            &mut kernel,
            v1,
            Box::new(program_by_name(spec.program, 2)),
            InstrumentationConfig::full(),
            &opts,
        );
    !outcome.is_committed()
        && outcome.conflicts().iter().any(|c| matches!(c, Conflict::WatchdogExpired { .. }))
        && kernel_fingerprint(&kernel) == before
}

/// Evenly spread 1-based indices over `[1, total]`, at most `max` of them.
/// The bool is true when the dimension had to be capped.
pub(crate) fn spread(total: u64, max: usize) -> (Vec<u64>, bool) {
    if total == 0 || max == 0 {
        return (Vec::new(), total > 0);
    }
    if total <= max as u64 {
        return ((1..=total).collect(), false);
    }
    if max == 1 {
        // A single pick: take the midpoint — the endpoints are the least
        // representative samples of a long sweep.
        return (vec![1 + (total - 1) / 2], true);
    }
    let max = max as u64;
    let mut picks: Vec<u64> = (0..max).map(|i| 1 + i * (total - 1) / (max - 1)).collect();
    picks.dedup();
    (picks, true)
}

fn plan_sites(plan: &ChaosPlan) -> Vec<FaultSite> {
    let mut sites: Vec<FaultSite> = plan.boundaries().iter().map(|&p| FaultSite::Boundary(p)).collect();
    if let Some(n) = plan.at_transfer_object() {
        sites.push(FaultSite::TransferObject(n));
    }
    if let Some(n) = plan.at_syscall() {
        sites.push(FaultSite::Syscall(n));
    }
    if let Some(n) = plan.at_fault_in() {
        sites.push(FaultSite::FaultIn(n));
    }
    if let Some(n) = plan.at_drain_step() {
        sites.push(FaultSite::DrainStep(n));
    }
    if let Some(n) = plan.at_manifest_write() {
        sites.push(FaultSite::ManifestWrite(n));
    }
    if let Some(n) = plan.at_torn_write() {
        sites.push(FaultSite::TornWrite(n));
    }
    if let Some(n) = plan.at_restore_step() {
        sites.push(FaultSite::RestoreStep(n));
    }
    sites
}

/// Runs the full sweep for one configuration.
pub fn run_config(spec: &ChaosSpec, config: ChaosConfig, config_index: u64) -> ConfigOutcome {
    let catalog = enumerate_sites(spec, config);
    let mut capped = Vec::new();

    // Directed schedules: every boundary, spread object and syscall sweeps.
    let mut schedules: Vec<ChaosPlan> =
        catalog.boundaries.iter().map(|&b| FaultSite::Boundary(b).plan()).collect();
    let (objects, objects_capped) = spread(catalog.transfer_objects, spec.max_object_sites);
    if objects_capped {
        capped.push(format!(
            "transfer-object sweep capped: {} of {} sites",
            objects.len(),
            catalog.transfer_objects
        ));
    }
    schedules.extend(objects.into_iter().map(|n| FaultSite::TransferObject(n).plan()));
    let (syscalls, syscalls_capped) = spread(catalog.syscalls, spec.max_syscall_sites);
    if syscalls_capped {
        capped.push(format!("syscall sweep capped: {} of {} sites", syscalls.len(), catalog.syscalls));
    }
    schedules.extend(syscalls.into_iter().map(|n| FaultSite::Syscall(n).plan()));
    // Post-copy cells also sweep the commit-far-side sites: parked-object
    // fault-ins and background drain batches (both zero for synchronous
    // modes, so these sweeps are empty there).
    let (fault_ins, fault_ins_capped) = spread(catalog.fault_ins, spec.max_fault_in_sites);
    if fault_ins_capped {
        capped.push(format!("fault-in sweep capped: {} of {} sites", fault_ins.len(), catalog.fault_ins));
    }
    schedules.extend(fault_ins.into_iter().map(|n| FaultSite::FaultIn(n).plan()));
    let (drains, drains_capped) = spread(catalog.drain_steps, spec.max_drain_step_sites);
    if drains_capped {
        capped.push(format!("drain-step sweep capped: {} of {} sites", drains.len(), catalog.drain_steps));
    }
    schedules.extend(drains.into_iter().map(|n| FaultSite::DrainStep(n).plan()));

    // Seeded random schedules (possibly multi-trigger).
    let mut rng = ChaosRng::new(spec.seed ^ (config_index.wrapping_mul(0x9E37_79B9)));
    for _ in 0..spec.random_schedules {
        let plan = random_plan(&mut rng, &catalog);
        if !plan.is_empty() {
            schedules.push(plan);
        }
    }

    let mut fired = 0;
    let mut supervisor_runs = 0;
    let mut unexpected_commits = 0;
    let mut divergences = 0;
    let mut rerun_mismatches = 0;
    let mut repros = Vec::new();
    let mut injected: BTreeSet<String> = BTreeSet::new();
    let mut supervisor_committed = 0;
    let mut tier_commits = [0usize; 3];
    let mut mttr_sum = 0u64;
    let policy = SupervisorPolicy::default();

    for (i, plan) in schedules.iter().enumerate() {
        let result = verify_rollback(spec, config, plan);
        if !result.fired {
            unexpected_commits += 1;
            repros.push(format!("never fired: {plan:?}"));
            continue;
        }
        fired += 1;
        for site in plan_sites(plan) {
            injected.insert(site.to_string());
        }
        if result.diverged {
            divergences += 1;
            let minimal =
                shrink_schedule(plan, |candidate| verify_rollback(spec, config, candidate).diverged);
            repros.push(format!("divergence: {minimal:?} (seed {:#x})", spec.seed));
        }
        if spec.rerun_every > 0 && i % spec.rerun_every == 0 {
            let again = verify_rollback(spec, config, plan);
            if again != result {
                rerun_mismatches += 1;
                repros.push(format!("nondeterministic rollback: {plan:?}"));
            }
        }

        // Liveness: the supervisor must converge once the fault clears.
        // Every third schedule keeps faulting through attempt 2, pushing the
        // ladder all the way down to the serial tier.
        if spec.supervise_every > 0 && i % spec.supervise_every == 0 {
            supervisor_runs += 1;
            let faulty_attempts = if i % 3 == 2 { 2 } else { 1 };
            let supervised = supervised_run(spec, config, plan, faulty_attempts, &policy);
            if supervised.committed {
                supervisor_committed += 1;
                if let Some(tier) = supervised.tier {
                    tier_commits[match tier {
                        DegradationTier::Full => 0,
                        DegradationTier::NoPrecopy => 1,
                        DegradationTier::Serial => 2,
                    }] += 1;
                }
                mttr_sum += supervised.mttr_ns.unwrap_or(0);
            } else {
                repros.push(format!("supervisor failed to converge: {plan:?}"));
            }
        }
    }

    ConfigOutcome {
        config,
        catalog,
        schedules: schedules.len(),
        fired,
        unexpected_commits,
        divergences,
        rerun_mismatches,
        repros,
        sites_injected: injected.len(),
        capped,
        supervisor_runs,
        supervisor_committed,
        tier_commits,
        mttr_mean_ns: if supervisor_committed > 0 {
            mttr_sum as f64 / supervisor_committed as f64
        } else {
            0.0
        },
        give_up_clean: give_up_drill(spec, config),
        watchdog_clean: watchdog_drill(spec, config),
    }
}

/// Runs the campaign over every configuration in [`CONFIGS`].
pub fn run_campaign(spec: &ChaosSpec) -> Vec<ConfigOutcome> {
    CONFIGS.iter().enumerate().map(|(i, &config)| run_config(spec, config, i as u64)).collect()
}

/// Renders the campaign as a human-readable table.
pub fn chaos_render(rows: &[ConfigOutcome]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<26} | {:>6} {:>6} {:>5} {:>4} | {:>6} {:>7} | {:>11} {:>12} | {:>5}",
        "config", "sites", "sched", "fired", "div", "sup-ok", "sup-run", "tiers f/n/s", "mttr(ns)", "cover"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<26} | {:>6} {:>6} {:>5} {:>4} | {:>6} {:>7} | {:>3}/{:>3}/{:>3} | {:>12.0} | {:>4.1}%",
            r.config.label(),
            r.catalog.total_sites(),
            r.schedules,
            r.fired,
            r.divergences,
            r.supervisor_committed,
            r.supervisor_runs,
            r.tier_commits[0],
            r.tier_commits[1],
            r.tier_commits[2],
            r.mttr_mean_ns,
            r.coverage_ratio() * 100.0,
        );
        for line in &r.capped {
            let _ = writeln!(out, "    [capped] {line}");
        }
        for line in &r.repros {
            let _ = writeln!(out, "    [repro] {line}");
        }
    }
    out
}

/// Renders the campaign as the `BENCH_chaos.json` document.
pub fn chaos_json(spec: &ChaosSpec, rows: &[ConfigOutcome]) -> Json {
    let totals = Json::obj([
        ("schedules", rows.iter().map(|r| r.schedules).sum::<usize>().into()),
        ("fired", rows.iter().map(|r| r.fired).sum::<usize>().into()),
        ("divergences", rows.iter().map(|r| r.divergences).sum::<usize>().into()),
        ("rerun_mismatches", rows.iter().map(|r| r.rerun_mismatches).sum::<usize>().into()),
        ("unexpected_commits", rows.iter().map(|r| r.unexpected_commits).sum::<usize>().into()),
        ("supervisor_runs", rows.iter().map(|r| r.supervisor_runs).sum::<usize>().into()),
        ("supervisor_committed", rows.iter().map(|r| r.supervisor_committed).sum::<usize>().into()),
        ("all_clean", Json::Bool(rows.iter().all(ConfigOutcome::clean))),
    ]);
    Json::obj([
        ("experiment", Json::str("chaos_campaign")),
        ("program", Json::str(spec.program)),
        ("seed", Json::str(format!("{:#x}", spec.seed))),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("config", Json::str(r.config.label())),
                            ("mode", Json::str(r.config.mode.label())),
                            ("precopy", Json::Bool(r.config.precopy())),
                            ("sites_enumerated", r.catalog.total_sites().into()),
                            ("boundary_sites", (r.catalog.boundaries.len() as u64).into()),
                            ("transfer_object_sites", r.catalog.transfer_objects.into()),
                            ("precopy_copy_sites", r.catalog.precopy_copies.into()),
                            ("syscall_sites", r.catalog.syscalls.into()),
                            ("fault_in_sites", r.catalog.fault_ins.into()),
                            ("drain_step_sites", r.catalog.drain_steps.into()),
                            ("schedules", r.schedules.into()),
                            ("fired", r.fired.into()),
                            ("unexpected_commits", r.unexpected_commits.into()),
                            ("divergences", r.divergences.into()),
                            ("rerun_mismatches", r.rerun_mismatches.into()),
                            ("sites_injected", r.sites_injected.into()),
                            ("site_coverage_ratio", Json::Num(r.coverage_ratio())),
                            ("capped", Json::Arr(r.capped.iter().map(|s| Json::str(s.clone())).collect())),
                            ("supervisor_runs", r.supervisor_runs.into()),
                            ("supervisor_committed", r.supervisor_committed.into()),
                            (
                                "tier_commits",
                                Json::obj([
                                    ("full", r.tier_commits[0].into()),
                                    ("no_precopy", r.tier_commits[1].into()),
                                    ("serial", r.tier_commits[2].into()),
                                ]),
                            ),
                            ("mttr_mean_ns", Json::Num(r.mttr_mean_ns)),
                            ("give_up_clean", Json::Bool(r.give_up_clean)),
                            ("watchdog_clean", Json::Bool(r.watchdog_clean)),
                            ("repros", Json::Arr(r.repros.iter().map(|s| Json::str(s.clone())).collect())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("totals", totals),
    ])
}

#[cfg(test)]
mod tests {
    use super::spread;

    #[test]
    fn spread_honors_a_cap_of_one_and_spans_larger_sweeps() {
        // Regression: a cap of 1 used to be bumped to 2 picks.
        assert_eq!(spread(10, 1), (vec![5], true));
        assert_eq!(spread(2, 1), (vec![1], true));
        assert_eq!(spread(1, 1), (vec![1], false));
        assert_eq!(spread(0, 3), (vec![], false));
        assert_eq!(spread(5, 0), (vec![], true));
        assert_eq!(spread(3, 5), (vec![1, 2, 3], false));
        let (picks, capped) = spread(100, 4);
        assert_eq!((picks, capped), (vec![1, 34, 67, 100], true));
    }
}
