//! A fleet-scale server model: one thread per connection, almost all idle.
//!
//! [`FleetServer`] is the workload behind `benches/fleet_scale.rs` and
//! `benches/fleet_latency.rs`: a single process whose main thread accepts
//! every pending connection and hands connection *i* to dedicated reader
//! thread `conn-i`. Each reader parks on its own connection object, so with
//! an event-driven scheduler a round in which only k connections receive
//! data costs O(k) thread steps — while the full-scan ablation pays one step
//! per thread per round regardless. This is the mostly-idle-sessions regime
//! the DBMS live-patching and CheckSync studies evaluate quiesce/checkpoint
//! cost under.
//!
//! # Sessions survive live updates
//!
//! The slot → descriptor map is mirrored in simulated memory (`fd + 1` per
//! 4-byte slot, 0 = empty): a `conn_fds` pointer global names a
//! heap-allocated session table sized for the fleet. Descriptor numbers are
//! transferred verbatim by the update pipeline, the table is migrated (and
//! its pointer relocated) by state transfer, so the *new* program version
//! looks its sessions up from transferred memory and keeps serving them —
//! which is what lets the latency bench measure request tails *through* an
//! update. The table lives on the heap (16MB, ~4M slots) rather than in the
//! 1MB static region, so large-fleet chaos campaigns don't silently cap at
//! ~262k surviving sessions; accessors re-read the table pointer through
//! the global on every access, because state transfer rewrites it.

use mcr_core::error::{McrError, McrResult};
use mcr_core::program::{Program, ProgramEnv, StepOutcome, WaitInterest};
use mcr_procsim::{Addr, Fd, SimDuration, SimError, Syscall};
use mcr_typemeta::TypeRegistry;

/// TCP port the fleet server listens on.
pub const FLEET_PORT: u16 = 9000;

/// A single-process server with one reader thread per connection.
pub struct FleetServer {
    sessions: usize,
    version: String,
    listen_fd: Option<Fd>,
    /// Connection slot → descriptor, filled by the acceptor in arrival order.
    conns: Vec<Option<Fd>>,
    /// Address of the `conn_fds` pointer global naming the heap-allocated
    /// session table (`None` when the fleet exceeds even the heap's capacity
    /// — such fleets still serve, their sessions just do not survive an
    /// update). The table base is deliberately *not* cached here: state
    /// transfer rewrites the pointer, so accessors dereference the global on
    /// every access.
    conn_fds: Option<Addr>,
    accepted: usize,
    handled: u64,
}

impl FleetServer {
    /// Creates a server that will host `sessions` reader threads.
    pub fn new(sessions: usize) -> Self {
        Self::with_version(sessions, 1)
    }

    /// Creates a specific version of the server (the update target passes a
    /// higher version; the session logic is identical).
    pub fn with_version(sessions: usize, version: u32) -> Self {
        FleetServer {
            sessions,
            version: format!("{version}.0"),
            listen_fd: None,
            conns: vec![None; sessions],
            conn_fds: None,
            accepted: 0,
            handled: 0,
        }
    }

    /// Events handled so far (sanity check for the bench).
    pub fn handled(&self) -> u64 {
        self.handled
    }

    /// Resolves the session-table base by dereferencing the `conn_fds`
    /// pointer global. Re-read on every access: after a live update the
    /// global holds the *relocated* address of the transferred table, and a
    /// Rust-side cache of the startup-time allocation would be stale.
    fn table_base(&self, env: &ProgramEnv<'_>) -> Option<Addr> {
        let global = self.conn_fds?;
        let base = env.read_ptr(global).ok()?;
        (base.0 != 0).then_some(base)
    }

    /// Resolves a slot's descriptor: the in-struct cache first, then the
    /// heap table behind the `conn_fds` global (the path a freshly updated
    /// version takes — its cache is empty but the transferred memory still
    /// names every fd).
    fn slot_fd(&mut self, env: &ProgramEnv<'_>, slot: usize) -> Option<Fd> {
        if let Some(fd) = self.conns.get(slot).copied().flatten() {
            return Some(fd);
        }
        let base = self.table_base(env)?;
        let raw = env.read_u32(base.offset(4 * slot as u64)).ok()?;
        if raw == 0 {
            return None;
        }
        let fd = Fd(raw as i32 - 1);
        if slot >= self.conns.len() {
            self.conns.resize(slot + 1, None);
        }
        self.conns[slot] = Some(fd);
        Some(fd)
    }

    /// Records `fd` for `slot` in the cache and the `conn_fds` global.
    fn set_slot_fd(&mut self, env: &mut ProgramEnv<'_>, slot: usize, fd: Fd) -> McrResult<()> {
        if slot >= self.conns.len() {
            self.conns.resize(slot + 1, None);
        }
        self.conns[slot] = Some(fd);
        if let Some(base) = self.table_base(env) {
            env.write_u32(base.offset(4 * slot as u64), fd.0 as u32 + 1)?;
        }
        Ok(())
    }

    /// Drains the whole backlog, assigning descriptors to slots in arrival
    /// order, then parks on the listener.
    fn accept_all(&mut self, env: &mut ProgramEnv<'_>) -> McrResult<StepOutcome> {
        let fd = self.listen_fd.ok_or_else(|| McrError::InvalidState("server not started".into()))?;
        let mut new_conns = 0usize;
        loop {
            match env.syscall(Syscall::Accept { fd }) {
                Err(McrError::Sim(SimError::WouldBlock)) => break,
                Err(e) => return Err(e),
                Ok(ret) => {
                    let conn_fd =
                        ret.as_fd().ok_or_else(|| McrError::InvalidState("accept returned no fd".into()))?;
                    let slot = self.accepted;
                    self.set_slot_fd(env, slot, conn_fd)?;
                    self.accepted += 1;
                    new_conns += 1;
                }
            }
        }
        if new_conns > 0 {
            Ok(StepOutcome::Progress)
        } else {
            Ok(StepOutcome::WouldBlock {
                call: "accept".to_string(),
                loop_name: "accept_loop".to_string(),
                wait: WaitInterest::Fd(fd),
            })
        }
    }

    fn session_step(&mut self, env: &mut ProgramEnv<'_>, slot: usize) -> McrResult<StepOutcome> {
        let Some(fd) = self.slot_fd(env, slot) else {
            // Connection not accepted yet: retry on a short timer instead of
            // being re-polled every round.
            return Ok(StepOutcome::WouldBlock {
                call: "read".to_string(),
                loop_name: "session_loop".to_string(),
                wait: WaitInterest::Timer(SimDuration(50_000)),
            });
        };
        match env.syscall(Syscall::Read { fd, len: 4096 }) {
            Err(McrError::Sim(SimError::WouldBlock)) => Ok(StepOutcome::WouldBlock {
                call: "read".to_string(),
                loop_name: "session_loop".to_string(),
                wait: WaitInterest::Fd(fd),
            }),
            Err(e) => Err(e),
            Ok(mcr_procsim::SyscallRet::Data(data)) if data.is_empty() => {
                let _ = env.syscall(Syscall::Close { fd });
                Ok(StepOutcome::Exit)
            }
            Ok(mcr_procsim::SyscallRet::Data(data)) => {
                let reply = format!("fleet ack {} bytes", data.len());
                env.syscall(Syscall::Write { fd, data: reply.into_bytes() })?;
                env.charge_work(1_000);
                env.note_event_handled();
                self.handled += 1;
                Ok(StepOutcome::Progress)
            }
            Ok(_) => Ok(StepOutcome::Progress),
        }
    }
}

impl Program for FleetServer {
    fn name(&self) -> &str {
        "fleetd"
    }

    fn version(&self) -> &str {
        &self.version
    }

    fn register_types(&mut self, types: &mut TypeRegistry) {
        let _ = types.int("int", 4);
        // The session table: one u32 per slot, sized for the whole fleet.
        let table = types.opaque("conn_fd_table", 4 * self.sessions.max(1) as u64);
        let _ = types.pointer("conn_fd_table*", table);
    }

    fn startup(&mut self, env: &mut ProgramEnv<'_>) -> McrResult<()> {
        let sessions = self.sessions;
        env.scoped("server_init", |env| {
            let fd = env
                .syscall(Syscall::Socket)?
                .as_fd()
                .ok_or_else(|| McrError::InvalidState("socket returned no fd".into()))?;
            env.syscall(Syscall::Bind { fd, port: FLEET_PORT })?;
            env.syscall(Syscall::Listen { fd })?;
            self.listen_fd = Some(fd);
            // The update-surviving session map: a heap-allocated table of 4
            // bytes per slot, reached through a pointer global so state
            // transfer can relocate it. Fleets beyond the heap's capacity
            // simply skip the mirror (they still serve; only update survival
            // is lost).
            self.conn_fds = (|| {
                let global = env.define_global("conn_fds", "conn_fd_table*")?;
                let table = env.alloc("conn_fd_table", "server_init:conn_fd_table")?;
                env.write_ptr(global, table)?;
                McrResult::Ok(global)
            })()
            .ok();
            env.scoped("spawn_sessions", |env| {
                for i in 0..sessions {
                    env.spawn_thread(&format!("conn-{i}"))?;
                }
                Ok(())
            })
        })
    }

    fn thread_step(&mut self, env: &mut ProgramEnv<'_>) -> McrResult<StepOutcome> {
        let name = env.thread_name().to_string();
        if name == "main" {
            return self.accept_all(env);
        }
        if let Some(slot) = name.strip_prefix("conn-").and_then(|s| s.parse::<usize>().ok()) {
            return self.session_step(env, slot);
        }
        Ok(StepOutcome::WouldBlock {
            call: "poll".to_string(),
            loop_name: "idle_loop".to_string(),
            wait: WaitInterest::External,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_core::runtime::{
        all_quiesced, boot, run_round, run_rounds, wait_quiescence, BootOptions, SchedulerMode,
    };
    use mcr_procsim::Kernel;

    fn fleet(sessions: usize, mode: SchedulerMode) -> (Kernel, mcr_core::McrInstance) {
        let mut kernel = Kernel::new();
        let opts = BootOptions { scheduler: mode, ..Default::default() };
        let mut instance = boot(&mut kernel, Box::new(FleetServer::new(sessions)), &opts).unwrap();
        let conns: Vec<_> = (0..sessions).map(|_| kernel.client_connect(FLEET_PORT).unwrap()).collect();
        run_rounds(&mut kernel, &mut instance, 2).unwrap();
        assert!(conns.iter().all(|&c| kernel.client_is_accepted(c)));
        (kernel, instance)
    }

    #[test]
    fn fleet_setup_parks_one_reader_per_connection() {
        let (kernel, _instance) = fleet(32, SchedulerMode::EventDriven);
        // 32 readers on their connections plus the acceptor on the listener.
        assert_eq!(kernel.waiting_thread_count(), 33);
    }

    #[test]
    fn active_rounds_cost_scales_with_active_sessions() {
        let (mut kernel, mut instance) = fleet(64, SchedulerMode::EventDriven);
        let active = [3usize, 17, 40];
        for &slot in &active {
            let conn = mcr_procsim::ConnId(slot as u64 + 1);
            kernel.client_send(conn, b"ping".to_vec()).unwrap();
        }
        let stats = run_round(&mut kernel, &mut instance).unwrap();
        assert_eq!(stats.woken, active.len());
        assert_eq!(stats.progressed, active.len());
        assert!(stats.steps() <= 2 * active.len(), "cost is O(active), got {}", stats.steps());
    }

    #[test]
    fn timer_parked_reader_recovers_after_late_accept() {
        // Regression: a reader whose slot is not yet assigned parks on a
        // retry timer. Once the acceptor assigns the slot, the idle
        // scheduler must advance the virtual clock to the timer's deadline
        // (firing the retry) instead of sleeping forever and losing the
        // client's data.
        let mut kernel = Kernel::new();
        let mut instance = boot(&mut kernel, Box::new(FleetServer::new(2)), &BootOptions::default()).unwrap();
        // Only one client connects: reader conn-1 parks on its slot-retry
        // timer.
        let first = kernel.client_connect(FLEET_PORT).unwrap();
        run_rounds(&mut kernel, &mut instance, 2).unwrap();
        assert!(kernel.client_is_accepted(first));
        // A second client connects (the acceptor assigns slot 1), then
        // sends data on it.
        let second = kernel.client_connect(FLEET_PORT).unwrap();
        run_round(&mut kernel, &mut instance).unwrap();
        assert!(kernel.client_is_accepted(second));
        kernel.client_send(second, b"late ping".to_vec()).unwrap();
        run_rounds(&mut kernel, &mut instance, 2).unwrap();
        assert_eq!(instance.state.counters.events_handled, 1, "timer retry discovered the slot");
        assert!(kernel.client_recv(second).is_some(), "the late session was served");
    }

    #[test]
    fn fleet_quiesces_in_both_modes() {
        for mode in [SchedulerMode::EventDriven, SchedulerMode::FullScan] {
            let (mut kernel, mut instance) = fleet(16, mode);
            wait_quiescence(&mut kernel, &mut instance, 10).unwrap();
            assert!(all_quiesced(&kernel, &instance), "{mode:?}");
        }
    }

    #[test]
    fn conn_fds_table_is_heap_allocated_and_outgrows_the_static_region() {
        // 300k sessions need a ~1.2MB table — more than the whole 1MB
        // static region the map used to live in. Boot only (the table is
        // allocated during startup); no clients, no rounds.
        let sessions = 300_000;
        let mut kernel = Kernel::new();
        let _instance =
            boot(&mut kernel, Box::new(FleetServer::new(sessions)), &BootOptions::default()).unwrap();
        let pid = kernel.pids()[0];
        let proc = kernel.process(pid).unwrap();
        let layout = proc.layout();
        // `conn_fds` is the first global the server defines, so the pointer
        // global sits at the base of the static region; the table it names
        // must be a heap address.
        let table = proc.space().read_u64(layout.static_base).unwrap();
        assert!(
            table >= layout.heap_base.0,
            "session table at {table:#x} should be on the heap (>= {:#x})",
            layout.heap_base.0
        );
        let end = proc.space().read_u32(mcr_procsim::Addr(table).offset(4 * (sessions as u64 - 1)));
        assert!(end.is_ok(), "the full {sessions}-slot table is mapped");
    }

    #[test]
    fn sessions_survive_a_live_update_via_the_conn_fds_global() {
        use mcr_core::runtime::{live_update, UpdateOptions};
        use mcr_typemeta::InstrumentationConfig;

        let (mut kernel, mut v1) = fleet(8, SchedulerMode::EventDriven);
        let conn = mcr_procsim::ConnId(4);
        kernel.client_send(conn, b"before".to_vec()).unwrap();
        run_rounds(&mut kernel, &mut v1, 2).unwrap();
        assert!(kernel.client_recv(conn).is_some(), "served before the update");

        let (mut v2, outcome) = live_update(
            &mut kernel,
            v1,
            Box::new(FleetServer::with_version(8, 2)),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
        );
        assert!(outcome.is_committed(), "update commits: {:?}", outcome.conflicts());

        // The new version's reader recovers the descriptor from transferred
        // memory and keeps serving the same connection.
        kernel.client_send(conn, b"after".to_vec()).unwrap();
        run_rounds(&mut kernel, &mut v2, 3).unwrap();
        let reply = kernel.client_recv(conn).expect("served across the update");
        assert!(String::from_utf8_lossy(&reply).contains("fleet ack"));
        assert_eq!(v2.state.counters.events_handled, 1);
    }
}
