//! A fleet-scale server model: one thread per connection, almost all idle.
//!
//! [`FleetServer`] is the workload behind `benches/fleet_scale.rs`: a single
//! process whose main thread accepts every pending connection and hands
//! connection *i* to dedicated reader thread `conn-i`. Each reader parks on
//! its own connection object, so with an event-driven scheduler a round in
//! which only k connections receive data costs O(k) thread steps — while the
//! full-scan ablation pays one step per thread per round regardless. This is
//! the mostly-idle-sessions regime the DBMS live-patching and CheckSync
//! studies evaluate quiesce/checkpoint cost under.

use std::collections::BTreeMap;

use mcr_core::error::{McrError, McrResult};
use mcr_core::program::{Program, ProgramEnv, StepOutcome, WaitInterest};
use mcr_procsim::{Fd, SimDuration, SimError, Syscall};
use mcr_typemeta::TypeRegistry;

/// TCP port the fleet server listens on.
pub const FLEET_PORT: u16 = 9000;

/// A single-process server with one reader thread per connection.
pub struct FleetServer {
    sessions: usize,
    listen_fd: Option<Fd>,
    /// Connection slot → descriptor, filled by the acceptor in arrival order.
    conns: BTreeMap<usize, Fd>,
    accepted: usize,
    handled: u64,
}

impl FleetServer {
    /// Creates a server that will host `sessions` reader threads.
    pub fn new(sessions: usize) -> Self {
        FleetServer { sessions, listen_fd: None, conns: BTreeMap::new(), accepted: 0, handled: 0 }
    }

    /// Events handled so far (sanity check for the bench).
    pub fn handled(&self) -> u64 {
        self.handled
    }

    /// Drains the whole backlog, assigning descriptors to slots in arrival
    /// order, then parks on the listener.
    fn accept_all(&mut self, env: &mut ProgramEnv<'_>) -> McrResult<StepOutcome> {
        let fd = self.listen_fd.ok_or_else(|| McrError::InvalidState("server not started".into()))?;
        let mut new_conns = 0usize;
        loop {
            match env.syscall(Syscall::Accept { fd }) {
                Err(McrError::Sim(SimError::WouldBlock)) => break,
                Err(e) => return Err(e),
                Ok(ret) => {
                    let conn_fd =
                        ret.as_fd().ok_or_else(|| McrError::InvalidState("accept returned no fd".into()))?;
                    self.conns.insert(self.accepted, conn_fd);
                    self.accepted += 1;
                    new_conns += 1;
                }
            }
        }
        if new_conns > 0 {
            Ok(StepOutcome::Progress)
        } else {
            Ok(StepOutcome::WouldBlock {
                call: "accept".to_string(),
                loop_name: "accept_loop".to_string(),
                wait: WaitInterest::Fd(fd),
            })
        }
    }

    fn session_step(&mut self, env: &mut ProgramEnv<'_>, slot: usize) -> McrResult<StepOutcome> {
        let Some(&fd) = self.conns.get(&slot) else {
            // Connection not accepted yet: retry on a short timer instead of
            // being re-polled every round.
            return Ok(StepOutcome::WouldBlock {
                call: "read".to_string(),
                loop_name: "session_loop".to_string(),
                wait: WaitInterest::Timer(SimDuration(50_000)),
            });
        };
        match env.syscall(Syscall::Read { fd, len: 4096 }) {
            Err(McrError::Sim(SimError::WouldBlock)) => Ok(StepOutcome::WouldBlock {
                call: "read".to_string(),
                loop_name: "session_loop".to_string(),
                wait: WaitInterest::Fd(fd),
            }),
            Err(e) => Err(e),
            Ok(mcr_procsim::SyscallRet::Data(data)) if data.is_empty() => {
                let _ = env.syscall(Syscall::Close { fd });
                Ok(StepOutcome::Exit)
            }
            Ok(mcr_procsim::SyscallRet::Data(data)) => {
                let reply = format!("fleet ack {} bytes", data.len());
                env.syscall(Syscall::Write { fd, data: reply.into_bytes() })?;
                env.charge_work(1_000);
                env.note_event_handled();
                self.handled += 1;
                Ok(StepOutcome::Progress)
            }
            Ok(_) => Ok(StepOutcome::Progress),
        }
    }
}

impl Program for FleetServer {
    fn name(&self) -> &str {
        "fleetd"
    }

    fn version(&self) -> &str {
        "1.0"
    }

    fn register_types(&mut self, types: &mut TypeRegistry) {
        let _ = types.int("int", 4);
    }

    fn startup(&mut self, env: &mut ProgramEnv<'_>) -> McrResult<()> {
        let sessions = self.sessions;
        env.scoped("server_init", |env| {
            let fd = env
                .syscall(Syscall::Socket)?
                .as_fd()
                .ok_or_else(|| McrError::InvalidState("socket returned no fd".into()))?;
            env.syscall(Syscall::Bind { fd, port: FLEET_PORT })?;
            env.syscall(Syscall::Listen { fd })?;
            self.listen_fd = Some(fd);
            env.scoped("spawn_sessions", |env| {
                for i in 0..sessions {
                    env.spawn_thread(&format!("conn-{i}"))?;
                }
                Ok(())
            })
        })
    }

    fn thread_step(&mut self, env: &mut ProgramEnv<'_>) -> McrResult<StepOutcome> {
        let name = env.thread_name().to_string();
        if name == "main" {
            return self.accept_all(env);
        }
        if let Some(slot) = name.strip_prefix("conn-").and_then(|s| s.parse::<usize>().ok()) {
            return self.session_step(env, slot);
        }
        Ok(StepOutcome::WouldBlock {
            call: "poll".to_string(),
            loop_name: "idle_loop".to_string(),
            wait: WaitInterest::External,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_core::runtime::{
        all_quiesced, boot, run_round, run_rounds, wait_quiescence, BootOptions, SchedulerMode,
    };
    use mcr_procsim::Kernel;

    fn fleet(sessions: usize, mode: SchedulerMode) -> (Kernel, mcr_core::McrInstance) {
        let mut kernel = Kernel::new();
        let opts = BootOptions { scheduler: mode, ..Default::default() };
        let mut instance = boot(&mut kernel, Box::new(FleetServer::new(sessions)), &opts).unwrap();
        let conns: Vec<_> = (0..sessions).map(|_| kernel.client_connect(FLEET_PORT).unwrap()).collect();
        run_rounds(&mut kernel, &mut instance, 2).unwrap();
        assert!(conns.iter().all(|&c| kernel.client_is_accepted(c)));
        (kernel, instance)
    }

    #[test]
    fn fleet_setup_parks_one_reader_per_connection() {
        let (kernel, _instance) = fleet(32, SchedulerMode::EventDriven);
        // 32 readers on their connections plus the acceptor on the listener.
        assert_eq!(kernel.waiting_thread_count(), 33);
    }

    #[test]
    fn active_rounds_cost_scales_with_active_sessions() {
        let (mut kernel, mut instance) = fleet(64, SchedulerMode::EventDriven);
        let active = [3usize, 17, 40];
        for &slot in &active {
            let conn = mcr_procsim::ConnId(slot as u64 + 1);
            kernel.client_send(conn, b"ping".to_vec()).unwrap();
        }
        let stats = run_round(&mut kernel, &mut instance).unwrap();
        assert_eq!(stats.woken, active.len());
        assert_eq!(stats.progressed, active.len());
        assert!(stats.steps() <= 2 * active.len(), "cost is O(active), got {}", stats.steps());
    }

    #[test]
    fn timer_parked_reader_recovers_after_late_accept() {
        // Regression: a reader whose slot is not yet assigned parks on a
        // retry timer. Once the acceptor assigns the slot, the idle
        // scheduler must advance the virtual clock to the timer's deadline
        // (firing the retry) instead of sleeping forever and losing the
        // client's data.
        let mut kernel = Kernel::new();
        let mut instance = boot(&mut kernel, Box::new(FleetServer::new(2)), &BootOptions::default()).unwrap();
        // Only one client connects: reader conn-1 parks on its slot-retry
        // timer.
        let first = kernel.client_connect(FLEET_PORT).unwrap();
        run_rounds(&mut kernel, &mut instance, 2).unwrap();
        assert!(kernel.client_is_accepted(first));
        // A second client connects (the acceptor assigns slot 1), then
        // sends data on it.
        let second = kernel.client_connect(FLEET_PORT).unwrap();
        run_round(&mut kernel, &mut instance).unwrap();
        assert!(kernel.client_is_accepted(second));
        kernel.client_send(second, b"late ping".to_vec()).unwrap();
        run_rounds(&mut kernel, &mut instance, 2).unwrap();
        assert_eq!(instance.state.counters.events_handled, 1, "timer retry discovered the slot");
        assert!(kernel.client_recv(second).is_some(), "the late session was served");
    }

    #[test]
    fn fleet_quiesces_in_both_modes() {
        for mode in [SchedulerMode::EventDriven, SchedulerMode::FullScan] {
            let (mut kernel, mut instance) = fleet(16, mode);
            wait_quiescence(&mut kernel, &mut instance, 10).unwrap();
            assert!(all_quiesced(&kernel, &instance), "{mode:?}");
        }
    }
}
