//! # mcr-bench — harnesses regenerating every table and figure of the paper
//!
//! Each experiment of the evaluation section (§8) is split into three layers
//! so the binaries under `src/bin/` and the `benches/` targets can share one
//! implementation:
//!
//! * a `*_rows` function that runs the experiment against the simulated
//!   servers and returns structured rows;
//! * a `*_report` function that renders those rows as the human-readable
//!   table (what the smoke tests assert on);
//! * a `*_json` function that renders the same rows as a machine-readable
//!   [`Json`] document (what the binaries emit to stdout).
//!
//! | Experiment | Rows | Binary |
//! |---|---|---|
//! | Table 1 (programs, updates, engineering effort) | [`table1_rows`] | `table1_effort` |
//! | Table 2 (mutable tracing statistics) | [`table2_rows`] | `table2_tracing` |
//! | Table 3 (run-time overhead) | [`table3_rows`] | `table3_overhead` |
//! | SPEC-style allocator microbenchmark | [`spec_alloc_rows`] | `spec_alloc` |
//! | Update time (per pipeline phase) | [`update_time_rows`] | `update_time` |
//! | Figure 3 (state-transfer time vs. open connections) | [`figure3_series`] | `fig3_state_transfer` |
//! | Memory usage | [`memory_rows`] | `memory_usage` |

#![forbid(unsafe_code)]

use std::fmt::Write as _;

use mcr_core::runtime::{
    boot, live_update, BootOptions, McrInstance, MemoryReport, PrecopyOptions, SchedulerMode, TransferMode,
    UpdateOptions, UpdateOutcome, UpdatePipeline,
};
use mcr_core::{QuiescenceProfiler, TraceOptions, TracingStats};
use mcr_procsim::Kernel;
use mcr_servers::{
    apply_scenario_writes, install_standard_files, paper_catalog, program_by_name, stamp_request_scratch,
    PrecopyScenario,
};
use mcr_typemeta::{InstrumentationConfig, InstrumentationLevel};
use mcr_workload::{open_idle_connections, run_alloc_bench, run_workload, workload_for, AllocBenchSpec};

pub mod chaos;
pub mod checkpoint;
pub mod fleet;
pub mod json;
pub mod microbench;

pub use chaos::{
    chaos_json, chaos_render, enumerate_sites, run_campaign, run_config, supervised_run, verify_rollback,
    ChaosConfig, ChaosMode, ChaosSpec, ConfigOutcome, SupervisedResult, VerifyResult, CONFIGS,
};
pub use checkpoint::{
    checkpoint_json, checkpoint_render, run_checkpoint_campaign, CheckpointOutcome, CheckpointSpec,
};
pub use fleet::{FleetServer, FLEET_PORT};
pub use json::Json;
pub use microbench::{percentile_of, BenchGroup, BenchResult};

/// The four evaluated program names, in the paper's order.
pub const PROGRAMS: [&str; 4] = ["httpd", "nginx", "vsftpd", "sshd"];

/// Boots generation `generation` of `program` on a fresh kernel with the
/// given instrumentation configuration.
///
/// # Panics
///
/// Panics if the simulated server fails to boot (a bug in the harness).
pub fn boot_program(program: &str, generation: u32, config: InstrumentationConfig) -> (Kernel, McrInstance) {
    let mut kernel = Kernel::new();
    install_standard_files(&mut kernel);
    let opts = BootOptions { config, layout_slide: 0, start_quiesced: false, ..Default::default() };
    let instance = boot(&mut kernel, Box::new(program_by_name(program, generation)), &opts)
        .unwrap_or_else(|e| panic!("{program} failed to boot: {e}"));
    (kernel, instance)
}

/// Runs the program's standard workload and returns the wall-clock seconds it
/// took (the quantity normalized in Table 3).
///
/// # Panics
///
/// Panics if the workload cannot run.
pub fn run_standard_workload(
    kernel: &mut Kernel,
    instance: &mut McrInstance,
    program: &str,
    requests: u64,
) -> f64 {
    let spec = workload_for(program, requests);
    let result = run_workload(kernel, instance, &spec).expect("workload runs");
    result.wall_time.as_secs_f64().max(1e-9)
}

/// Performs a live update from `generation` to `generation + 1` with `open`
/// extra idle connections established first, returning the outcome.
///
/// # Panics
///
/// Panics if the server fails to boot or the workload cannot run.
pub fn update_with_connections(
    program: &str,
    generation: u32,
    requests: u64,
    open: usize,
    config: InstrumentationConfig,
) -> UpdateOutcome {
    update_with_options(program, generation, requests, open, config, &UpdateOptions::default())
}

/// Like [`update_with_connections`] but with explicit [`UpdateOptions`]
/// (used by the parallel-transfer bench to sweep `transfer_workers`).
///
/// # Panics
///
/// Panics if the server fails to boot or the workload cannot run.
pub fn update_with_options(
    program: &str,
    generation: u32,
    requests: u64,
    open: usize,
    config: InstrumentationConfig,
    opts: &UpdateOptions,
) -> UpdateOutcome {
    let (mut kernel, mut v1) = boot_program(program, generation, config);
    run_standard_workload(&mut kernel, &mut v1, program, requests);
    let port = workload_for(program, 1).port;
    open_idle_connections(&mut kernel, &mut v1, port, open).expect("idle connections");
    let (_v2, outcome) =
        live_update(&mut kernel, v1, Box::new(program_by_name(program, generation + 1)), config, opts);
    outcome
}

/// FNV-1a fold of one kernel-visible fact (helper of
/// [`kernel_fingerprint`]).
fn fold(hash: &mut u64, value: u64) {
    *hash = (*hash ^ value).wrapping_mul(0x100_0000_01b3);
}

/// Deterministic digest of everything live-update-visible in the kernel:
/// every process's identity, descriptor table, thread roster and the full
/// contents of every mapped region. The property tests and the pre-copy
/// downtime bench both use it to prove that two update configurations
/// converged to byte-identical kernel state. Contents only — dirty-page
/// epochs and write counters are instrumentation, not program state.
pub fn kernel_fingerprint(kernel: &Kernel) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for pid in kernel.pids() {
        let proc = kernel.process(pid).unwrap();
        fold(&mut hash, pid.0.into());
        fold(&mut hash, proc.fds().len() as u64);
        for (fd, entry) in proc.fds().iter() {
            fold(&mut hash, fd.0 as u64);
            fold(&mut hash, entry.object.0);
        }
        fold(&mut hash, proc.thread_count() as u64);
        for region in proc.space().regions() {
            fold(&mut hash, region.base().0);
            fold(&mut hash, region.size());
            let bytes = proc.space().read_bytes(region.base(), region.size() as usize).unwrap();
            for word in bytes.chunks_exact(8) {
                fold(&mut hash, u64::from_le_bytes(word.try_into().unwrap()));
            }
        }
    }
    hash
}

/// Runs one configuration of a [`PrecopyScenario`] and returns the
/// post-update kernel fingerprint plus the outcome.
///
/// Both configurations apply the *same* deterministic write batches (one
/// per round, stamped `0xC0DE_0000 + round`): the pre-copy run applies them
/// between its concurrent rounds via the pipeline hook, the stop-the-world
/// baseline (`precopy_rounds == 0`) applies all of them before the update —
/// so both runs update the exact same final memory image and must converge
/// to byte-identical kernel state, reports and conflicts, while only the
/// downtime split may differ. `size_factor` scales the pre-update workload
/// (the live-heap axis of the sweep).
///
/// # Panics
///
/// Panics if the server fails to boot or the workload cannot run.
pub fn precopy_update(
    scenario: &PrecopyScenario,
    size_factor: u64,
    precopy_rounds: usize,
    mutate_rounds: usize,
    scheduler: SchedulerMode,
) -> (u64, UpdateOutcome) {
    let mut kernel = Kernel::new();
    install_standard_files(&mut kernel);
    let mut v1 = boot(&mut kernel, Box::new(program_by_name(scenario.program, 1)), &BootOptions::default())
        .expect("scenario server boots");
    run_workload(&mut kernel, &mut v1, &workload_for(scenario.program, scenario.requests * size_factor))
        .expect("workload runs");
    let port = workload_for(scenario.program, 1).port;
    open_idle_connections(&mut kernel, &mut v1, port, scenario.open_connections * size_factor as usize)
        .expect("idle connections");
    // Flip the scheduling core only now, so every configuration enters the
    // pipeline with byte-identical pre-update state.
    v1.sched.mode = scheduler;
    let opts = UpdateOptions {
        scheduler,
        precopy: if precopy_rounds > 0 {
            PrecopyOptions { rounds: precopy_rounds, convergence_bytes: 0, serve_rounds: 1 }
        } else {
            PrecopyOptions::disabled()
        },
        ..Default::default()
    };
    let stamp = |round: usize| 0xC0DE_0000u32 + round as u32;
    let pipeline = if precopy_rounds > 0 {
        let scenario = *scenario;
        UpdatePipeline::for_options(&opts).with_precopy_hook(Box::new(
            move |kernel: &mut Kernel, old: &mut McrInstance, round: usize| {
                apply_scenario_writes(kernel, old, &scenario, stamp(round));
            },
        ))
    } else {
        for round in 1..=mutate_rounds {
            apply_scenario_writes(&mut kernel, &v1, scenario, stamp(round));
        }
        UpdatePipeline::for_options(&opts)
    };
    let (_survivor, outcome) = pipeline.run(
        &mut kernel,
        v1,
        Box::new(program_by_name(scenario.program, 2)),
        InstrumentationConfig::full(),
        &opts,
    );
    (kernel_fingerprint(&kernel), outcome)
}

/// `request_buf` u32 slots stamped per process by the adaptive-transfer
/// sweep's write workloads (pre-quiesce rounds make the scratch page part
/// of the stale residual; post-resume rounds then trap on it under
/// post-copy).
pub const SCRATCH_WORDS: usize = 8;

/// One pre-quiesce write batch of the adaptive-transfer sweep: the
/// scenario's connection/cache writes plus a scratch-page stamp, so every
/// mode enters the commit with the same stale residual, scratch page
/// included.
fn adaptive_mutate_batch(
    kernel: &mut Kernel,
    instance: &McrInstance,
    scenario: &PrecopyScenario,
    round: usize,
) {
    let stamp = 0xC0DE_0000u32 + round as u32;
    apply_scenario_writes(kernel, instance, scenario, stamp);
    stamp_request_scratch(kernel, instance, SCRATCH_WORDS, stamp);
}

/// Runs one sweep point of the adaptive-transfer bench under the given
/// [`TransferMode`] and returns the post-update kernel fingerprint plus the
/// outcome.
///
/// Every mode applies the *same* deterministic write schedule, so all four
/// must converge to byte-identical kernel state and only the downtime split
/// may differ:
///
/// * three pre-quiesce batches ([`adaptive_mutate_batch`]) — between the
///   concurrent rounds for the pre-copy-enabled modes (`Precopy`,
///   `Adaptive`), all up front for the windowed ones (`StopTheWorld`,
///   `Postcopy`), exactly like [`precopy_update`];
/// * three post-resume scratch stamps ([`stamp_request_scratch`]) — during
///   the drain (via the post-copy hook, where they trap on parked pages and
///   are replayed by the fault handler) for the post-copy pipelines, after
///   the pipeline returns for the synchronous ones. Each batch overwrites
///   the same slots, so the final bytes depend only on the last stamp, not
///   on when a batch landed.
///
/// # Panics
///
/// Panics if the server fails to boot or the workload cannot run.
pub fn adaptive_update(
    scenario: &PrecopyScenario,
    size_factor: u64,
    mode: TransferMode,
    scheduler: SchedulerMode,
) -> (u64, UpdateOutcome) {
    const MUTATE_ROUNDS: usize = 3;
    const POST_ROUNDS: usize = 3;
    let precopy_rounds = match mode {
        TransferMode::Precopy | TransferMode::Adaptive => 3,
        TransferMode::StopTheWorld | TransferMode::Postcopy => 0,
    };
    let mut kernel = Kernel::new();
    install_standard_files(&mut kernel);
    let mut v1 = boot(&mut kernel, Box::new(program_by_name(scenario.program, 1)), &BootOptions::default())
        .expect("scenario server boots");
    run_workload(&mut kernel, &mut v1, &workload_for(scenario.program, scenario.requests * size_factor))
        .expect("workload runs");
    let port = workload_for(scenario.program, 1).port;
    open_idle_connections(&mut kernel, &mut v1, port, scenario.open_connections * size_factor as usize)
        .expect("idle connections");
    v1.sched.mode = scheduler;
    let opts = UpdateOptions {
        scheduler,
        mode,
        precopy: if precopy_rounds > 0 {
            PrecopyOptions { rounds: precopy_rounds, convergence_bytes: 0, serve_rounds: 1 }
        } else {
            PrecopyOptions::disabled()
        },
        ..Default::default()
    };
    let mut pipeline = UpdatePipeline::for_options(&opts);
    if precopy_rounds > 0 {
        let scenario = *scenario;
        pipeline = pipeline.with_precopy_hook(Box::new(
            move |kernel: &mut Kernel, old: &mut McrInstance, round: usize| {
                adaptive_mutate_batch(kernel, old, &scenario, round);
            },
        ));
    } else {
        for round in 1..=MUTATE_ROUNDS {
            adaptive_mutate_batch(&mut kernel, &v1, scenario, round);
        }
    }
    let post_stamp = |round: usize| 0xD0D0_0000u32 + round as u32;
    let delivered = std::rc::Rc::new(std::cell::Cell::new(0usize));
    if matches!(mode, TransferMode::Postcopy | TransferMode::Adaptive) {
        let delivered = std::rc::Rc::clone(&delivered);
        pipeline = pipeline.with_postcopy_hook(Box::new(
            move |kernel: &mut Kernel, new_instance: &mut McrInstance, _round: usize| {
                let done = delivered.get();
                if done < POST_ROUNDS {
                    stamp_request_scratch(kernel, new_instance, SCRATCH_WORDS, post_stamp(done + 1));
                    delivered.set(done + 1);
                }
            },
        ));
    }
    let (survivor, outcome) = pipeline.run(
        &mut kernel,
        v1,
        Box::new(program_by_name(scenario.program, 2)),
        InstrumentationConfig::full(),
        &opts,
    );
    // Post-resume batches the drain did not consume (all of them, for the
    // synchronous modes) land on the committed new instance now.
    if outcome.is_committed() {
        for round in delivered.get() + 1..=POST_ROUNDS {
            stamp_request_scratch(&mut kernel, &survivor, SCRATCH_WORDS, post_stamp(round));
        }
    }
    (kernel_fingerprint(&kernel), outcome)
}

/// Boots the single-process [`CacheServer`](mcr_servers::CacheServer), bulk
/// fills it with `entries` cache entries of `value_bytes`-byte values (plus
/// a few gets and evictions so the LRU stamps and garbage sweep are
/// exercised), then live-updates generation 1 → 2 with the given intra-pair
/// shard count. Returns the post-update kernel fingerprint and the outcome.
///
/// This is the single-process big-heap scenario of `benches/intra_pair.rs`:
/// one matched pair, so the pair-parallel phase alone cannot speed it up —
/// any makespan improvement comes from the within-pair sharding.
///
/// # Panics
///
/// Panics if the cache fails to boot or a request goes unanswered.
pub fn cache_update(
    entries: u64,
    value_bytes: u64,
    shards: usize,
    precopy_rounds: usize,
    scheduler: SchedulerMode,
) -> (u64, UpdateOutcome) {
    let mut kernel = Kernel::new();
    let mut v1 = boot(&mut kernel, Box::new(mcr_servers::CacheServer::new(1)), &BootOptions::default())
        .expect("cache boots");
    let request = |kernel: &mut Kernel, v1: &mut McrInstance, req: String| {
        let c = kernel.client_connect(mcr_servers::CACHE_PORT).expect("cache listening");
        kernel.client_send(c, req.into_bytes()).expect("send");
        let _ = mcr_core::runtime::run_rounds(kernel, v1, 2).expect("serve");
        assert!(kernel.client_recv(c).is_some(), "cache answered {entries}/{value_bytes}");
        kernel.client_close(c).expect("close");
    };
    request(&mut kernel, &mut v1, format!("fill {entries} {value_bytes}"));
    for _ in 0..4 {
        request(&mut kernel, &mut v1, "get".to_string());
    }
    request(&mut kernel, &mut v1, "evict".to_string());
    v1.sched.mode = scheduler;
    let opts = UpdateOptions {
        scheduler,
        intra_pair_shards: shards,
        precopy: if precopy_rounds > 0 {
            PrecopyOptions { rounds: precopy_rounds, convergence_bytes: 0, serve_rounds: 1 }
        } else {
            PrecopyOptions::disabled()
        },
        ..Default::default()
    };
    let (_v2, outcome) = live_update(
        &mut kernel,
        v1,
        Box::new(mcr_servers::CacheServer::new(2)),
        InstrumentationConfig::full(),
        &opts,
    );
    (kernel_fingerprint(&kernel), outcome)
}

/// Traces every process of an instance and merges the per-process statistics.
pub fn trace_instance(kernel: &Kernel, instance: &McrInstance) -> TracingStats {
    let mut stats = TracingStats::default();
    for &pid in &instance.state.processes {
        if let Ok(result) =
            mcr_core::tracing::trace_process(kernel, &instance.state, pid, TraceOptions::default())
        {
            stats.merge(&result.stats);
        }
    }
    stats
}

// ---------------------------------------------------------------------------
// Table 1 — programs, updates and engineering effort
// ---------------------------------------------------------------------------

/// One row of Table 1: measured quiescence profile next to the catalogued
/// update and engineering-effort figures.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Program (or `"Total"` for the footer row).
    pub program: String,
    /// Short-lived process classes.
    pub short_lived: usize,
    /// Long-lived process/thread classes.
    pub long_lived: usize,
    /// Quiescent points found by the profiler.
    pub quiescent_points: usize,
    /// Persistent quiescent points.
    pub persistent_points: usize,
    /// Volatile quiescent points.
    pub volatile_points: usize,
    /// Number of catalogued updates.
    pub updates: u64,
    /// Changed LOC across the updates.
    pub changed_loc: u64,
    /// Changed functions.
    pub changed_functions: u64,
    /// Changed variables.
    pub changed_variables: u64,
    /// Changed types.
    pub changed_types: u64,
    /// Annotation LOC needed to MCR-enable the program.
    pub annotation_loc: u64,
    /// State-transfer callback LOC.
    pub state_transfer_loc: u64,
}

/// Runs the Table 1 experiment: quiescence-profiles every program under the
/// standard workload and joins the result with the paper's update catalogue.
/// The last row is the `Total` footer.
pub fn table1_rows(profile_requests: u64) -> Vec<Table1Row> {
    let catalog = paper_catalog();
    let mut rows = Vec::new();
    for program in PROGRAMS {
        let (mut kernel, mut instance) = boot_program(program, 1, InstrumentationConfig::full());
        run_standard_workload(&mut kernel, &mut instance, program, profile_requests);
        let report = QuiescenceProfiler::analyze(&kernel, &instance.state);
        let entry = catalog.iter().find(|e| e.program == program).expect("catalogued program");
        rows.push(Table1Row {
            program: program.to_string(),
            short_lived: report.short_lived_classes(),
            long_lived: report.long_lived_classes(),
            quiescent_points: report.quiescent_points(),
            persistent_points: report.persistent_points(),
            volatile_points: report.volatile_points(),
            updates: u64::from(entry.updates),
            changed_loc: u64::from(entry.changed_loc),
            changed_functions: u64::from(entry.changed_functions),
            changed_variables: u64::from(entry.changed_variables),
            changed_types: u64::from(entry.changed_types),
            annotation_loc: instance.state.annotations.annotation_loc().max(u64::from(entry.annotation_loc)),
            state_transfer_loc: u64::from(entry.state_transfer_loc),
        });
    }
    let total = Table1Row {
        program: "Total".to_string(),
        short_lived: rows.iter().map(|r| r.short_lived).sum(),
        long_lived: rows.iter().map(|r| r.long_lived).sum(),
        quiescent_points: rows.iter().map(|r| r.quiescent_points).sum(),
        persistent_points: rows.iter().map(|r| r.persistent_points).sum(),
        volatile_points: rows.iter().map(|r| r.volatile_points).sum(),
        updates: rows.iter().map(|r| r.updates).sum(),
        changed_loc: rows.iter().map(|r| r.changed_loc).sum(),
        changed_functions: rows.iter().map(|r| r.changed_functions).sum(),
        changed_variables: rows.iter().map(|r| r.changed_variables).sum(),
        changed_types: rows.iter().map(|r| r.changed_types).sum(),
        annotation_loc: {
            let t = mcr_servers::totals(&catalog);
            u64::from(t.annotation_loc)
        },
        state_transfer_loc: rows.iter().map(|r| r.state_transfer_loc).sum(),
    };
    rows.push(total);
    rows
}

/// Renders Table 1 rows as the human-readable table.
pub fn table1_render(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} | {:>3} {:>3} {:>3} {:>4} {:>4} | {:>4} {:>7} | {:>5} {:>4} {:>5} | {:>8} {:>7}",
        "program", "SL", "LL", "QP", "Per", "Vol", "Num", "LOC", "Fun", "Var", "Type", "Ann LOC", "ST LOC"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} | {:>3} {:>3} {:>3} {:>4} {:>4} | {:>4} {:>7} | {:>5} {:>4} {:>5} | {:>8} {:>7}",
            r.program,
            r.short_lived,
            r.long_lived,
            r.quiescent_points,
            r.persistent_points,
            r.volatile_points,
            r.updates,
            r.changed_loc,
            r.changed_functions,
            r.changed_variables,
            r.changed_types,
            r.annotation_loc,
            r.state_transfer_loc,
        );
    }
    let _ = writeln!(
        out,
        "(paper totals: SL 6, LL 18, QP 18, Per 9, Vol 9, 40 updates, 40725 LOC, Ann 334, ST 793)"
    );
    out
}

/// Regenerates Table 1 as a human-readable table.
pub fn table1_report(profile_requests: u64) -> String {
    table1_render(&table1_rows(profile_requests))
}

/// Renders Table 1 rows as JSON.
pub fn table1_json(rows: &[Table1Row]) -> Json {
    Json::obj([
        ("experiment", Json::str("table1_effort")),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("program", Json::str(&r.program)),
                            ("short_lived", r.short_lived.into()),
                            ("long_lived", r.long_lived.into()),
                            ("quiescent_points", r.quiescent_points.into()),
                            ("persistent_points", r.persistent_points.into()),
                            ("volatile_points", r.volatile_points.into()),
                            ("updates", r.updates.into()),
                            ("changed_loc", r.changed_loc.into()),
                            ("changed_functions", r.changed_functions.into()),
                            ("changed_variables", r.changed_variables.into()),
                            ("changed_types", r.changed_types.into()),
                            ("annotation_loc", r.annotation_loc.into()),
                            ("state_transfer_loc", r.state_transfer_loc.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Table 2 — mutable tracing statistics
// ---------------------------------------------------------------------------

/// One row of Table 2: tracing statistics for one program configuration.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Row label (`nginxreg` is nginx with its region allocator instrumented).
    pub label: String,
    /// Aggregated tracing statistics after the standard workload.
    pub stats: TracingStats,
}

/// Runs the Table 2 experiment for every program (plus `nginxreg`).
pub fn table2_rows(requests: u64) -> Vec<Table2Row> {
    let mut configs: Vec<(String, &str, InstrumentationConfig)> =
        PROGRAMS.iter().map(|&p| (p.to_string(), p, InstrumentationConfig::full())).collect();
    configs.insert(
        2,
        ("nginxreg".to_string(), "nginx", InstrumentationConfig::full_with_region_instrumentation()),
    );
    configs
        .into_iter()
        .map(|(label, program, config)| {
            let (mut kernel, mut instance) = boot_program(program, 1, config);
            run_standard_workload(&mut kernel, &mut instance, program, requests);
            let stats = trace_instance(&kernel, &instance);
            Table2Row { label, stats }
        })
        .collect()
}

/// Renders Table 2 rows as the human-readable table.
pub fn table2_render(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} | {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8} | {:>6} {:>7}",
        "program",
        "prec",
        "p.srcSt",
        "p.srcDy",
        "p.tgLib",
        "likely",
        "l.srcSt",
        "l.srcDy",
        "l.tgLib",
        "immut",
        "immut%"
    );
    for r in rows {
        let s = &r.stats;
        let _ = writeln!(
            out,
            "{:<10} | {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8} | {:>6} {:>6.1}%",
            r.label,
            s.precise.total,
            s.precise.src_static,
            s.precise.src_dynamic,
            s.precise.targ_lib,
            s.likely.total,
            s.likely.src_static,
            s.likely.src_dynamic,
            s.likely.targ_lib,
            s.immutable_objects,
            s.immutable_fraction() * 100.0,
        );
    }
    let _ = writeln!(out, "(paper: httpd 2373 precise / 16252 likely; nginx 1242/4049; nginxreg 2049/3522; vsftpd 149/6; sshd 237/56)");
    out
}

/// Regenerates Table 2 as a human-readable table.
pub fn table2_report(requests: u64) -> String {
    table2_render(&table2_rows(requests))
}

/// Renders Table 2 rows as JSON.
pub fn table2_json(rows: &[Table2Row]) -> Json {
    Json::obj([
        ("experiment", Json::str("table2_tracing")),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        let s = &r.stats;
                        Json::obj([
                            ("program", Json::str(&r.label)),
                            (
                                "precise",
                                Json::obj([
                                    ("total", s.precise.total.into()),
                                    ("src_static", s.precise.src_static.into()),
                                    ("src_dynamic", s.precise.src_dynamic.into()),
                                    ("targ_lib", s.precise.targ_lib.into()),
                                ]),
                            ),
                            (
                                "likely",
                                Json::obj([
                                    ("total", s.likely.total.into()),
                                    ("src_static", s.likely.src_static.into()),
                                    ("src_dynamic", s.likely.src_dynamic.into()),
                                    ("targ_lib", s.likely.targ_lib.into()),
                                ]),
                            ),
                            ("immutable_objects", s.immutable_objects.into()),
                            ("immutable_fraction", Json::Num(s.immutable_fraction())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Table 3 — run-time overhead
// ---------------------------------------------------------------------------

/// One row of Table 3: normalized run time per cumulative instrumentation
/// level.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Row label (`nginxreg` is nginx with region-allocator instrumentation).
    pub label: String,
    /// Run time at each level beyond baseline, normalized against baseline:
    /// `[Unblock, +SInstr, +DInstr, +QDet]`.
    pub normalized: [f64; 4],
}

/// Runs the Table 3 experiment: the standard workload at every cumulative
/// instrumentation level, `repeats` times each, keeping the median.
pub fn table3_rows(requests: u64, repeats: u32) -> Vec<Table3Row> {
    let mut rows: Vec<(String, &str, bool)> = PROGRAMS.iter().map(|&p| (p.to_string(), p, false)).collect();
    rows.insert(2, ("nginxreg".to_string(), "nginx", true));
    rows.into_iter()
        .map(|(label, program, region_instr)| {
            let mut medians = Vec::new();
            for level in InstrumentationLevel::ALL {
                let mut samples = Vec::new();
                for _ in 0..repeats.max(1) {
                    let config = InstrumentationConfig {
                        level,
                        instrument_region_allocator: region_instr
                            && level >= InstrumentationLevel::StaticInstr,
                    };
                    let (mut kernel, mut instance) = boot_program(program, 1, config);
                    samples.push(run_standard_workload(&mut kernel, &mut instance, program, requests));
                }
                samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                medians.push(samples[samples.len() / 2]);
            }
            let baseline = medians[0];
            Table3Row {
                label,
                normalized: [
                    medians[1] / baseline,
                    medians[2] / baseline,
                    medians[3] / baseline,
                    medians[4] / baseline,
                ],
            }
        })
        .collect()
}

/// Renders Table 3 rows as the human-readable table.
pub fn table3_render(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} | {:>8} {:>8} {:>8} {:>8}",
        "program", "Unblock", "+SInstr", "+DInstr", "+QDet"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} | {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            r.label, r.normalized[0], r.normalized[1], r.normalized[2], r.normalized[3],
        );
    }
    let _ = writeln!(out, "(paper: httpd 0.977/1.040/1.043/1.047, nginx 1.000 across, nginxreg 1.000/1.175/1.192/1.186, vsftpd ~1.03, sshd ~1.00)");
    out
}

/// Regenerates Table 3 as a human-readable table.
pub fn table3_report(requests: u64, repeats: u32) -> String {
    table3_render(&table3_rows(requests, repeats))
}

/// Renders Table 3 rows as JSON.
pub fn table3_json(rows: &[Table3Row]) -> Json {
    Json::obj([
        ("experiment", Json::str("table3_overhead")),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("program", Json::str(&r.label)),
                            ("unblockified", Json::Num(r.normalized[0])),
                            ("static_instr", Json::Num(r.normalized[1])),
                            ("dynamic_instr", Json::Num(r.normalized[2])),
                            ("quiescence_detection", Json::Num(r.normalized[3])),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

// ---------------------------------------------------------------------------
// SPEC-style allocator microbenchmark (§8, in-text)
// ---------------------------------------------------------------------------

/// One row of the SPEC-style allocator experiment.
#[derive(Debug, Clone)]
pub struct SpecAllocRow {
    /// Benchmark name.
    pub name: String,
    /// Median instrumented-over-baseline overhead ratio.
    pub overhead: f64,
    /// Allocations performed by the instrumented run.
    pub allocations: u64,
}

/// Runs the SPEC CPU2006-style allocator-instrumentation experiment.
pub fn spec_alloc_rows(scale: u64, repeats: u32) -> Vec<SpecAllocRow> {
    AllocBenchSpec::spec_suite(scale)
        .into_iter()
        .map(|spec| {
            let mut ratios = Vec::new();
            let mut allocs = 0;
            for _ in 0..repeats.max(1) {
                let base = run_alloc_bench(&spec, false);
                let instr = run_alloc_bench(&spec, true);
                allocs = instr.allocations;
                ratios.push(mcr_workload::overhead_ratio(&base, &instr));
            }
            ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            SpecAllocRow { name: spec.name.clone(), overhead: ratios[ratios.len() / 2], allocations: allocs }
        })
        .collect()
}

/// Renders the allocator-experiment rows as the human-readable table.
pub fn spec_alloc_render(rows: &[SpecAllocRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<16} | {:>10} | {:>10}", "benchmark", "overhead", "allocs");
    for r in rows {
        let _ = writeln!(out, "{:<16} | {:>9.2}x | {:>10}", r.name, r.overhead, r.allocations);
    }
    let _ = writeln!(out, "(paper: 5% worst case across SPEC, except perlbench at 36%)");
    out
}

/// Regenerates the allocator experiment as a human-readable table.
pub fn spec_alloc_report(scale: u64, repeats: u32) -> String {
    spec_alloc_render(&spec_alloc_rows(scale, repeats))
}

/// Renders the allocator-experiment rows as JSON.
pub fn spec_alloc_json(rows: &[SpecAllocRow]) -> Json {
    Json::obj([
        ("experiment", Json::str("spec_alloc")),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("benchmark", Json::str(&r.name)),
                            ("overhead", Json::Num(r.overhead)),
                            ("allocations", r.allocations.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Update time (§8) and Figure 3
// ---------------------------------------------------------------------------

/// One row of the update-time breakdown, including the per-phase trace the
/// staged pipeline records.
#[derive(Debug, Clone)]
pub struct UpdateTimeRow {
    /// Program name.
    pub program: String,
    /// Quiescence time, ms.
    pub quiescence_ms: f64,
    /// Control-migration (reinit/replay) time, ms.
    pub control_migration_ms: f64,
    /// Replay overhead relative to the original startup (fraction).
    pub replay_overhead: f64,
    /// State-transfer time (parallel per-process strategy), ms.
    pub state_transfer_ms: f64,
    /// Total unavailability, ms.
    pub total_ms: f64,
    /// Fraction of traced state skipped thanks to dirty-object tracking.
    pub dirty_reduction: f64,
    /// `(phase label, duration ms)` for every executed pipeline phase.
    pub phases: Vec<(String, f64)>,
}

/// Runs the update-time experiment for every program.
///
/// # Panics
///
/// Panics if an update unexpectedly rolls back (a harness bug).
pub fn update_time_rows(requests: u64) -> Vec<UpdateTimeRow> {
    PROGRAMS
        .iter()
        .map(|&program| {
            let outcome = update_with_connections(program, 1, requests, 10, InstrumentationConfig::full());
            assert!(outcome.is_committed(), "{program}: {:?}", outcome.conflicts());
            let report = outcome.report();
            UpdateTimeRow {
                program: program.to_string(),
                quiescence_ms: report.timings.quiescence.as_millis_f64(),
                control_migration_ms: report.timings.control_migration.as_millis_f64(),
                replay_overhead: report.replay_overhead_fraction(),
                state_transfer_ms: report.timings.state_transfer.as_millis_f64(),
                total_ms: report.timings.total.as_millis_f64(),
                dirty_reduction: report.dirty_reduction(),
                phases: report
                    .phases
                    .records()
                    .iter()
                    .map(|r| (r.name.label().to_string(), r.duration.as_millis_f64()))
                    .collect(),
            }
        })
        .collect()
}

/// Renders the update-time rows as the human-readable table.
pub fn update_time_render(rows: &[UpdateTimeRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} | {:>12} {:>16} {:>12} {:>12} | {:>10} {:>9}",
        "program", "quiesce(ms)", "ctl-migrate(ms)", "replay-ovh", "st(ms)", "total(ms)", "dirty-red"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} | {:>12.3} {:>16.3} {:>11.1}% {:>12.3} | {:>10.3} {:>8.1}%",
            r.program,
            r.quiescence_ms,
            r.control_migration_ms,
            r.replay_overhead * 100.0,
            r.state_transfer_ms,
            r.total_ms,
            r.dirty_reduction * 100.0,
        );
    }
    let _ = writeln!(out, "(paper: quiescence < 100 ms, control migration < 50 ms with 1-45% replay overhead, state transfer 28-187 ms at 0 connections)");
    out
}

/// Regenerates the update-time breakdown as a human-readable table.
pub fn update_time_report(requests: u64) -> String {
    update_time_render(&update_time_rows(requests))
}

/// Renders the update-time rows as JSON (per-phase durations included).
pub fn update_time_json(rows: &[UpdateTimeRow]) -> Json {
    Json::obj([
        ("experiment", Json::str("update_time")),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("program", Json::str(&r.program)),
                            ("quiescence_ms", Json::Num(r.quiescence_ms)),
                            ("control_migration_ms", Json::Num(r.control_migration_ms)),
                            ("replay_overhead", Json::Num(r.replay_overhead)),
                            ("state_transfer_ms", Json::Num(r.state_transfer_ms)),
                            ("total_ms", Json::Num(r.total_ms)),
                            ("dirty_reduction", Json::Num(r.dirty_reduction)),
                            (
                                "phases",
                                Json::Arr(
                                    r.phases
                                        .iter()
                                        .map(|(name, ms)| {
                                            Json::obj([
                                                ("phase", Json::str(name)),
                                                ("duration_ms", Json::Num(*ms)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// One point of the Figure 3 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Point {
    /// Open connections at update time.
    pub connections: usize,
    /// State-transfer time in milliseconds (parallel per-process strategy).
    pub state_transfer_ms: f64,
    /// Fraction of state skipped thanks to dirty-object tracking.
    pub dirty_reduction: f64,
}

/// Computes the Figure 3 series for one program.
pub fn figure3_series(program: &str, connections: &[usize], requests: u64) -> Vec<Fig3Point> {
    connections
        .iter()
        .map(|&n| {
            let outcome = update_with_connections(program, 1, requests, n, InstrumentationConfig::full());
            let report = outcome.report();
            Fig3Point {
                connections: n,
                state_transfer_ms: report.timings.state_transfer.as_millis_f64(),
                dirty_reduction: report.dirty_reduction(),
            }
        })
        .collect()
}

/// Computes the Figure 3 series for all four programs.
pub fn figure3_rows(connections: &[usize], requests: u64) -> Vec<(String, Vec<Fig3Point>)> {
    PROGRAMS
        .iter()
        .map(|&program| (program.to_string(), figure3_series(program, connections, requests)))
        .collect()
}

/// Renders the Figure 3 series as the human-readable table.
pub fn figure3_render(rows: &[(String, Vec<Fig3Point>)], connections: &[usize]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<12}", "conns");
    for &c in connections {
        let _ = write!(out, " | {c:>10}");
    }
    let _ = writeln!(out);
    for (program, series) in rows {
        let _ = write!(out, "{program:<12}");
        for point in series {
            let _ = write!(out, " | {:>7.3} ms", point.state_transfer_ms);
        }
        let _ = writeln!(out);
        let _ = write!(out, "{:<12}", "  dirty-red");
        for point in series {
            let _ = write!(out, " | {:>9.0}%", point.dirty_reduction * 100.0);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "(paper: 28-187 ms at 0 connections, ~+371 ms on average at 100 connections; 68-86% dirty-tracking reduction)");
    out
}

/// Regenerates Figure 3 as a human-readable table.
pub fn figure3_report(connections: &[usize], requests: u64) -> String {
    figure3_render(&figure3_rows(connections, requests), connections)
}

/// Renders the Figure 3 series as JSON.
pub fn figure3_json(rows: &[(String, Vec<Fig3Point>)]) -> Json {
    Json::obj([
        ("experiment", Json::str("fig3_state_transfer")),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|(program, series)| {
                        Json::obj([
                            ("program", Json::str(program)),
                            (
                                "points",
                                Json::Arr(
                                    series
                                        .iter()
                                        .map(|p| {
                                            Json::obj([
                                                ("connections", p.connections.into()),
                                                ("state_transfer_ms", Json::Num(p.state_transfer_ms)),
                                                ("dirty_reduction", Json::Num(p.dirty_reduction)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Memory usage (§8)
// ---------------------------------------------------------------------------

/// One row of the memory-usage evaluation.
#[derive(Debug, Clone)]
pub struct MemoryRow {
    /// Program name.
    pub program: String,
    /// Resident bytes of the uninstrumented baseline build.
    pub baseline: MemoryReport,
    /// Resident bytes of the fully instrumented build.
    pub instrumented: MemoryReport,
}

impl MemoryRow {
    /// Instrumented-over-baseline resident-set ratio.
    pub fn overhead(&self) -> f64 {
        self.instrumented.overhead_over(&self.baseline)
    }
}

/// Runs the memory-usage experiment for every program.
pub fn memory_rows(requests: u64) -> Vec<MemoryRow> {
    PROGRAMS
        .iter()
        .map(|&program| {
            let (mut bk, mut bi) = boot_program(program, 1, InstrumentationConfig::baseline());
            run_standard_workload(&mut bk, &mut bi, program, requests);
            let baseline = MemoryReport::measure(&bk, &bi);
            let (mut mk, mut mi) = boot_program(program, 1, InstrumentationConfig::full());
            run_standard_workload(&mut mk, &mut mi, program, requests);
            let instrumented = MemoryReport::measure(&mk, &mi);
            MemoryRow { program: program.to_string(), baseline, instrumented }
        })
        .collect()
}

/// Renders the memory rows as the human-readable table.
pub fn memory_render(rows: &[MemoryRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} | {:>14} {:>14} {:>9} | {:>14}",
        "program", "baseline(B)", "mcr(B)", "overhead", "metadata(B)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} | {:>14} {:>14} {:>8.2}x | {:>14}",
            r.program,
            r.baseline.resident_bytes,
            r.instrumented.resident_bytes,
            r.overhead(),
            r.instrumented.metadata_bytes
        );
    }
    let avg = rows.iter().map(MemoryRow::overhead).sum::<f64>() / rows.len().max(1) as f64;
    let _ = writeln!(out, "average overhead: {avg:.2}x (paper: 1.10x-4.84x RSS, 2.89x-3.9x average)");
    out
}

/// Regenerates the memory-usage evaluation as a human-readable table.
pub fn memory_report(requests: u64) -> String {
    memory_render(&memory_rows(requests))
}

/// Renders the memory rows as JSON.
pub fn memory_json(rows: &[MemoryRow]) -> Json {
    let avg = rows.iter().map(MemoryRow::overhead).sum::<f64>() / rows.len().max(1) as f64;
    Json::obj([
        ("experiment", Json::str("memory_usage")),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("program", Json::str(&r.program)),
                            ("baseline_bytes", r.baseline.resident_bytes.into()),
                            ("instrumented_bytes", r.instrumented.resident_bytes.into()),
                            ("metadata_bytes", r.instrumented.metadata_bytes.into()),
                            ("overhead", Json::Num(r.overhead())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("average_overhead", Json::Num(avg)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_reports_are_nonempty_and_cover_all_programs() {
        let t1 = table1_report(3);
        for p in PROGRAMS {
            assert!(t1.contains(p), "table1 misses {p}");
        }
        let t2 = table2_report(3);
        assert!(t2.contains("nginxreg"));
        let mem = memory_report(3);
        assert!(mem.contains("average overhead"));
    }

    #[test]
    fn figure3_series_scales_with_connections() {
        let series = figure3_series("vsftpd", &[0, 10], 2);
        assert_eq!(series.len(), 2);
        assert!(series[1].state_transfer_ms >= series[0].state_transfer_ms);
    }

    #[test]
    fn update_time_report_commits_every_program() {
        let report = update_time_report(2);
        assert!(report.contains("httpd") && report.contains("sshd"));
    }

    #[test]
    fn update_time_rows_carry_the_phase_trace() {
        let rows = update_time_rows(2);
        for row in &rows {
            let labels: Vec<&str> = row.phases.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(
                labels,
                ["quiesce", "reinit-replay", "match-processes", "trace-and-transfer", "commit"],
                "{} executed the standard pipeline",
                row.program
            );
        }
        let doc = update_time_json(&rows).render();
        assert!(doc.contains("\"phases\""));
        assert!(doc.contains("trace-and-transfer"));
    }

    #[test]
    fn json_documents_parse_shaped_rows() {
        let rows = spec_alloc_rows(5, 1);
        let doc = spec_alloc_json(&rows).render();
        assert!(doc.starts_with("{\"experiment\":\"spec_alloc\""));
        assert!(doc.contains("\"rows\":["));
    }
}
