//! # mcr-bench — harnesses regenerating every table and figure of the paper
//!
//! Each public function reproduces one experiment of the evaluation section
//! (§8) against the simulated servers and returns the formatted rows it
//! prints, so the binaries under `src/bin/` stay thin and the Criterion
//! benches can reuse the same building blocks.
//!
//! | Experiment | Function | Binary |
//! |---|---|---|
//! | Table 1 (programs, updates, engineering effort) | [`table1_report`] | `table1_effort` |
//! | Table 2 (mutable tracing statistics) | [`table2_report`] | `table2_tracing` |
//! | Table 3 (run-time overhead) | [`table3_report`] | `table3_overhead` |
//! | SPEC-style allocator microbenchmark | [`spec_alloc_report`] | `spec_alloc` |
//! | Update time (quiescence / control migration / state transfer) | [`update_time_report`] | `update_time` |
//! | Figure 3 (state-transfer time vs. open connections) | [`figure3_report`] | `fig3_state_transfer` |
//! | Memory usage | [`memory_report`] | `memory_usage` |

#![forbid(unsafe_code)]

use std::fmt::Write as _;

use mcr_core::runtime::{boot, live_update, BootOptions, McrInstance, MemoryReport, UpdateOptions, UpdateOutcome};
use mcr_core::{QuiescenceProfiler, TraceOptions, TracingStats};
use mcr_procsim::Kernel;
use mcr_servers::{install_standard_files, paper_catalog, program_by_name};
use mcr_typemeta::{InstrumentationConfig, InstrumentationLevel};
use mcr_workload::{open_idle_connections, run_alloc_bench, run_workload, workload_for, AllocBenchSpec};

/// The four evaluated program names, in the paper's order.
pub const PROGRAMS: [&str; 4] = ["httpd", "nginx", "vsftpd", "sshd"];

/// Boots generation `generation` of `program` on a fresh kernel with the
/// given instrumentation configuration.
///
/// # Panics
///
/// Panics if the simulated server fails to boot (a bug in the harness).
pub fn boot_program(program: &str, generation: u32, config: InstrumentationConfig) -> (Kernel, McrInstance) {
    let mut kernel = Kernel::new();
    install_standard_files(&mut kernel);
    let opts = BootOptions { config, layout_slide: 0, start_quiesced: false };
    let instance = boot(&mut kernel, Box::new(program_by_name(program, generation)), &opts)
        .unwrap_or_else(|e| panic!("{program} failed to boot: {e}"));
    (kernel, instance)
}

/// Runs the program's standard workload and returns the wall-clock seconds it
/// took (the quantity normalized in Table 3).
///
/// # Panics
///
/// Panics if the workload cannot run.
pub fn run_standard_workload(kernel: &mut Kernel, instance: &mut McrInstance, program: &str, requests: u64) -> f64 {
    let spec = workload_for(program, requests);
    let result = run_workload(kernel, instance, &spec).expect("workload runs");
    result.wall_time.as_secs_f64().max(1e-9)
}

/// Performs a live update from `generation` to `generation + 1` with `open`
/// extra idle connections established first, returning the outcome.
///
/// # Panics
///
/// Panics if the server fails to boot or the workload cannot run.
pub fn update_with_connections(
    program: &str,
    generation: u32,
    requests: u64,
    open: usize,
    config: InstrumentationConfig,
) -> UpdateOutcome {
    let (mut kernel, mut v1) = boot_program(program, generation, config);
    run_standard_workload(&mut kernel, &mut v1, program, requests);
    let port = workload_for(program, 1).port;
    open_idle_connections(&mut kernel, &mut v1, port, open).expect("idle connections");
    let (_v2, outcome) = live_update(
        &mut kernel,
        v1,
        Box::new(program_by_name(program, generation + 1)),
        config,
        &UpdateOptions::default(),
    );
    outcome
}

/// Traces every process of an instance and merges the per-process statistics.
pub fn trace_instance(kernel: &Kernel, instance: &McrInstance) -> TracingStats {
    let mut stats = TracingStats::default();
    for &pid in &instance.state.processes {
        if let Ok(result) =
            mcr_core::tracing::trace_process(kernel, &instance.state, pid, TraceOptions::default())
        {
            stats.merge(&result.stats);
        }
    }
    stats
}

// ---------------------------------------------------------------------------
// Table 1 — programs, updates and engineering effort
// ---------------------------------------------------------------------------

/// Regenerates Table 1: quiescence-profiling results measured on the
/// simulated programs next to the update-catalogue and engineering-effort
/// figures the paper reports.
pub fn table1_report(profile_requests: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} | {:>3} {:>3} {:>3} {:>4} {:>4} | {:>4} {:>7} | {:>5} {:>4} {:>5} | {:>8} {:>7}",
        "program", "SL", "LL", "QP", "Per", "Vol", "Num", "LOC", "Fun", "Var", "Type", "Ann LOC", "ST LOC"
    );
    let catalog = paper_catalog();
    let mut totals = (0usize, 0usize, 0usize, 0usize, 0usize);
    for program in PROGRAMS {
        let (mut kernel, mut instance) = boot_program(program, 1, InstrumentationConfig::full());
        run_standard_workload(&mut kernel, &mut instance, program, profile_requests);
        let report = QuiescenceProfiler::analyze(&kernel, &instance.state);
        let entry = catalog.iter().find(|e| e.program == program).expect("catalogued program");
        let (sl, ll, qp, per, vol) = (
            report.short_lived_classes(),
            report.long_lived_classes(),
            report.quiescent_points(),
            report.persistent_points(),
            report.volatile_points(),
        );
        totals.0 += sl;
        totals.1 += ll;
        totals.2 += qp;
        totals.3 += per;
        totals.4 += vol;
        let _ = writeln!(
            out,
            "{:<10} | {:>3} {:>3} {:>3} {:>4} {:>4} | {:>4} {:>7} | {:>5} {:>4} {:>5} | {:>8} {:>7}",
            program,
            sl,
            ll,
            qp,
            per,
            vol,
            entry.updates,
            entry.changed_loc,
            entry.changed_functions,
            entry.changed_variables,
            entry.changed_types,
            instance.state.annotations.annotation_loc().max(u64::from(entry.annotation_loc)),
            entry.state_transfer_loc,
        );
    }
    let t = mcr_servers::totals(&catalog);
    let _ = writeln!(
        out,
        "{:<10} | {:>3} {:>3} {:>3} {:>4} {:>4} | {:>4} {:>7} | {:>5} {:>4} {:>5} | {:>8} {:>7}",
        "Total", totals.0, totals.1, totals.2, totals.3, totals.4,
        t.updates, t.changed_loc, t.changed_functions, t.changed_variables, t.changed_types,
        t.annotation_loc, t.state_transfer_loc
    );
    let _ = writeln!(out, "(paper totals: SL 6, LL 18, QP 18, Per 9, Vol 9, 40 updates, 40725 LOC, Ann 334, ST 793)");
    out
}

// ---------------------------------------------------------------------------
// Table 2 — mutable tracing statistics
// ---------------------------------------------------------------------------

/// Regenerates Table 2: precise and likely pointers by source/target region,
/// aggregated after the execution of the standard workload. `nginxreg` is
/// nginx with its region allocator instrumented.
pub fn table2_report(requests: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} | {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8} | {:>6} {:>7}",
        "program", "prec", "p.srcSt", "p.srcDy", "p.tgLib", "likely", "l.srcSt", "l.srcDy", "l.tgLib", "immut", "immut%"
    );
    let mut configs: Vec<(String, &str, InstrumentationConfig)> = PROGRAMS
        .iter()
        .map(|&p| (p.to_string(), p, InstrumentationConfig::full()))
        .collect();
    configs.insert(2, ("nginxreg".to_string(), "nginx", InstrumentationConfig::full_with_region_instrumentation()));
    for (label, program, config) in configs {
        let (mut kernel, mut instance) = boot_program(program, 1, config);
        run_standard_workload(&mut kernel, &mut instance, program, requests);
        let stats = trace_instance(&kernel, &instance);
        let _ = writeln!(
            out,
            "{:<10} | {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8} | {:>6} {:>6.1}%",
            label,
            stats.precise.total,
            stats.precise.src_static,
            stats.precise.src_dynamic,
            stats.precise.targ_lib,
            stats.likely.total,
            stats.likely.src_static,
            stats.likely.src_dynamic,
            stats.likely.targ_lib,
            stats.immutable_objects,
            stats.immutable_fraction() * 100.0,
        );
    }
    let _ = writeln!(out, "(paper: httpd 2373 precise / 16252 likely; nginx 1242/4049; nginxreg 2049/3522; vsftpd 149/6; sshd 237/56)");
    out
}

// ---------------------------------------------------------------------------
// Table 3 — run-time overhead
// ---------------------------------------------------------------------------

/// Regenerates Table 3: run time of the standard benchmark normalized
/// against the uninstrumented baseline, for each cumulative instrumentation
/// level (plus the `nginxreg` configuration).
pub fn table3_report(requests: u64, repeats: u32) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} | {:>8} {:>8} {:>8} {:>8}",
        "program", "Unblock", "+SInstr", "+DInstr", "+QDet"
    );
    let mut rows: Vec<(String, &str, bool)> = PROGRAMS.iter().map(|&p| (p.to_string(), p, false)).collect();
    rows.insert(2, ("nginxreg".to_string(), "nginx", true));
    for (label, program, region_instr) in rows {
        let mut medians = Vec::new();
        for level in InstrumentationLevel::ALL {
            let mut samples = Vec::new();
            for _ in 0..repeats.max(1) {
                let config = InstrumentationConfig {
                    level,
                    instrument_region_allocator: region_instr && level >= InstrumentationLevel::StaticInstr,
                };
                let (mut kernel, mut instance) = boot_program(program, 1, config);
                samples.push(run_standard_workload(&mut kernel, &mut instance, program, requests));
            }
            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            medians.push(samples[samples.len() / 2]);
        }
        let baseline = medians[0];
        let _ = writeln!(
            out,
            "{:<10} | {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            label,
            medians[1] / baseline,
            medians[2] / baseline,
            medians[3] / baseline,
            medians[4] / baseline,
        );
    }
    let _ = writeln!(out, "(paper: httpd 0.977/1.040/1.043/1.047, nginx 1.000 across, nginxreg 1.000/1.175/1.192/1.186, vsftpd ~1.03, sshd ~1.00)");
    out
}

// ---------------------------------------------------------------------------
// SPEC-style allocator microbenchmark (§8, in-text)
// ---------------------------------------------------------------------------

/// Regenerates the SPEC CPU2006-style allocator-instrumentation experiment.
pub fn spec_alloc_report(scale: u64, repeats: u32) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<16} | {:>10} | {:>10}", "benchmark", "overhead", "allocs");
    for spec in AllocBenchSpec::spec_suite(scale) {
        let mut ratios = Vec::new();
        let mut allocs = 0;
        for _ in 0..repeats.max(1) {
            let base = run_alloc_bench(&spec, false);
            let instr = run_alloc_bench(&spec, true);
            allocs = instr.allocations;
            ratios.push(mcr_workload::overhead_ratio(&base, &instr));
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let _ = writeln!(out, "{:<16} | {:>9.2}x | {:>10}", spec.name, ratios[ratios.len() / 2], allocs);
    }
    let _ = writeln!(out, "(paper: 5% worst case across SPEC, except perlbench at 36%)");
    out
}

// ---------------------------------------------------------------------------
// Update time (§8) and Figure 3
// ---------------------------------------------------------------------------

/// Regenerates the update-time breakdown: quiescence time, control-migration
/// time (and its overhead over the original startup), and state-transfer
/// time, per program.
pub fn update_time_report(requests: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} | {:>12} {:>16} {:>12} {:>12} | {:>10} {:>9}",
        "program", "quiesce(ms)", "ctl-migrate(ms)", "replay-ovh", "st(ms)", "total(ms)", "dirty-red"
    );
    for program in PROGRAMS {
        let outcome = update_with_connections(program, 1, requests, 10, InstrumentationConfig::full());
        assert!(outcome.is_committed(), "{program}: {:?}", outcome.conflicts());
        let report = outcome.report();
        let _ = writeln!(
            out,
            "{:<10} | {:>12.3} {:>16.3} {:>11.1}% {:>12.3} | {:>10.3} {:>8.1}%",
            program,
            report.timings.quiescence.as_millis_f64(),
            report.timings.control_migration.as_millis_f64(),
            report.replay_overhead_fraction() * 100.0,
            report.timings.state_transfer.as_millis_f64(),
            report.timings.total.as_millis_f64(),
            report.dirty_reduction() * 100.0,
        );
    }
    let _ = writeln!(out, "(paper: quiescence < 100 ms, control migration < 50 ms with 1-45% replay overhead, state transfer 28-187 ms at 0 connections)");
    out
}

/// One point of the Figure 3 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Point {
    /// Open connections at update time.
    pub connections: usize,
    /// State-transfer time in milliseconds (parallel per-process strategy).
    pub state_transfer_ms: f64,
    /// Fraction of state skipped thanks to dirty-object tracking.
    pub dirty_reduction: f64,
}

/// Computes the Figure 3 series for one program.
pub fn figure3_series(program: &str, connections: &[usize], requests: u64) -> Vec<Fig3Point> {
    connections
        .iter()
        .map(|&n| {
            let outcome = update_with_connections(program, 1, requests, n, InstrumentationConfig::full());
            let report = outcome.report();
            Fig3Point {
                connections: n,
                state_transfer_ms: report.timings.state_transfer.as_millis_f64(),
                dirty_reduction: report.dirty_reduction(),
            }
        })
        .collect()
}

/// Regenerates Figure 3: state-transfer time as a function of the number of
/// open connections, for all four programs (plus the dirty-tracking
/// reduction quoted in the text).
pub fn figure3_report(connections: &[usize], requests: u64) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<12}", "conns");
    for &c in connections {
        let _ = write!(out, " | {c:>10}");
    }
    let _ = writeln!(out);
    for program in PROGRAMS {
        let series = figure3_series(program, connections, requests);
        let _ = write!(out, "{program:<12}");
        for point in &series {
            let _ = write!(out, " | {:>7.3} ms", point.state_transfer_ms);
        }
        let _ = writeln!(out);
        let _ = write!(out, "{:<12}", "  dirty-red");
        for point in &series {
            let _ = write!(out, " | {:>9.0}%", point.dirty_reduction * 100.0);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "(paper: 28-187 ms at 0 connections, ~+371 ms on average at 100 connections; 68-86% dirty-tracking reduction)");
    out
}

// ---------------------------------------------------------------------------
// Memory usage (§8)
// ---------------------------------------------------------------------------

/// Regenerates the memory-usage evaluation: resident set of the fully
/// instrumented build relative to the baseline build after the standard
/// workload.
pub fn memory_report(requests: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} | {:>14} {:>14} {:>9} | {:>14}",
        "program", "baseline(B)", "mcr(B)", "overhead", "metadata(B)"
    );
    let mut ratios = Vec::new();
    for program in PROGRAMS {
        let (mut bk, mut bi) = boot_program(program, 1, InstrumentationConfig::baseline());
        run_standard_workload(&mut bk, &mut bi, program, requests);
        let baseline = MemoryReport::measure(&bk, &bi);
        let (mut mk, mut mi) = boot_program(program, 1, InstrumentationConfig::full());
        run_standard_workload(&mut mk, &mut mi, program, requests);
        let full = MemoryReport::measure(&mk, &mi);
        let ratio = full.overhead_over(&baseline);
        ratios.push(ratio);
        let _ = writeln!(
            out,
            "{:<10} | {:>14} {:>14} {:>8.2}x | {:>14}",
            program, baseline.resident_bytes, full.resident_bytes, ratio, full.metadata_bytes
        );
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let _ = writeln!(out, "average overhead: {avg:.2}x (paper: 1.10x-4.84x RSS, 2.89x-3.9x average)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_reports_are_nonempty_and_cover_all_programs() {
        let t1 = table1_report(3);
        for p in PROGRAMS {
            assert!(t1.contains(p), "table1 misses {p}");
        }
        let t2 = table2_report(3);
        assert!(t2.contains("nginxreg"));
        let mem = memory_report(3);
        assert!(mem.contains("average overhead"));
    }

    #[test]
    fn figure3_series_scales_with_connections() {
        let series = figure3_series("vsftpd", &[0, 10], 2);
        assert_eq!(series.len(), 2);
        assert!(series[1].state_transfer_ms >= series[0].state_transfer_ms);
    }

    #[test]
    fn update_time_report_commits_every_program() {
        let report = update_time_report(2);
        assert!(report.contains("httpd") && report.contains("sshd"));
    }
}
