//! Chaos campaign: seeded fault schedules over the enumerated site space.
//!
//! Runs [`ChaosSpec::smoke`] — >= 200 schedules spanning phase-boundary,
//! n-th-transfer-object, n-th-syscall, n-th-fault-in and n-th-drain-step
//! sites, across both scheduler cores and all three transfer modes
//! (stop-the-world, pre-copy, post-copy: a 2 × 3 grid) — and asserts, per
//! configuration:
//!
//! * every fired schedule rolled back to a byte-identical kernel
//!   fingerprint (zero divergences, zero re-run mismatches);
//! * the supervisor converged to a committed update on every recoverable
//!   schedule, with commits recorded per degradation tier;
//! * the give-up and watchdog drills ended cleanly.
//!
//! Emits the `BENCH_chaos.json` document (rows + totals) on stdout; the CI
//! smoke step re-asserts the same properties from the JSON.

use mcr_bench::{chaos_json, chaos_render, run_campaign, ChaosMode, ChaosSpec};

fn main() {
    let spec = ChaosSpec::smoke();
    let rows = run_campaign(&spec);
    eprint!("{}", chaos_render(&rows));

    assert_eq!(rows.len(), 6, "campaign grid is scheduler (2) x transfer mode (3)");
    let total_schedules: usize = rows.iter().map(|r| r.schedules).sum();
    assert!(total_schedules >= 200, "campaign too small: {total_schedules} schedules");
    for r in &rows {
        let label = r.config.label();
        assert!(r.catalog.total_sites() > 0, "{label}: empty site catalog");
        assert!(r.catalog.syscalls > 0, "{label}: no syscall sites enumerated");
        assert!(r.catalog.transfer_objects > 0, "{label}: no object sites enumerated");
        assert_eq!(r.divergences, 0, "{label}: rollback divergence — repros: {:?}", r.repros);
        assert_eq!(r.unexpected_commits, 0, "{label}: schedules never fired: {:?}", r.repros);
        assert_eq!(r.rerun_mismatches, 0, "{label}: nondeterministic rollback: {:?}", r.repros);
        assert_eq!(
            r.supervisor_committed, r.supervisor_runs,
            "{label}: supervisor failed to converge — repros: {:?}",
            r.repros
        );
        assert!(
            r.tier_commits[1] > 0 && r.tier_commits[2] > 0,
            "{label}: degradation ladder not exercised: {:?}",
            r.tier_commits
        );
        assert!(r.give_up_clean, "{label}: give-up drill left the old version unserving");
        assert!(r.watchdog_clean, "{label}: watchdog drill did not roll back cleanly");
        assert!(r.sites_injected > 0 && r.coverage_ratio() > 0.0, "{label}: nothing injected");
    }
    // Pre-copy configurations must enumerate pre-copy round copies as a
    // sub-range of the object-write space.
    for r in rows.iter().filter(|r| r.config.precopy()) {
        assert!(r.catalog.precopy_copies > 0, "{}: no precopy copy sites", r.config.label());
    }
    // Post-copy configurations must enumerate the commit-far-side site
    // classes: parked-object fault-ins and background drain batches.
    for r in rows.iter().filter(|r| r.config.mode == ChaosMode::Postcopy) {
        assert!(r.catalog.fault_ins > 0, "{}: no fault-in sites", r.config.label());
        assert!(r.catalog.drain_steps > 0, "{}: no drain-step sites", r.config.label());
    }

    println!("{}", chaos_json(&spec, &rows).render());
}
