//! Chaos campaign: seeded fault schedules over the enumerated site space.
//!
//! Runs [`ChaosSpec::smoke`] — >= 200 schedules spanning phase-boundary,
//! n-th-transfer-object and n-th-syscall sites, across both scheduler cores
//! and pre-copy on/off — and asserts, per configuration:
//!
//! * every fired schedule rolled back to a byte-identical kernel
//!   fingerprint (zero divergences, zero re-run mismatches);
//! * the supervisor converged to a committed update on every recoverable
//!   schedule, with commits recorded per degradation tier;
//! * the give-up and watchdog drills ended cleanly.
//!
//! Emits the `BENCH_chaos.json` document (rows + totals) on stdout; the CI
//! smoke step re-asserts the same properties from the JSON.

use mcr_bench::{chaos_json, chaos_render, run_campaign, ChaosSpec};

fn main() {
    let spec = ChaosSpec::smoke();
    let rows = run_campaign(&spec);
    eprint!("{}", chaos_render(&rows));

    let total_schedules: usize = rows.iter().map(|r| r.schedules).sum();
    assert!(total_schedules >= 200, "campaign too small: {total_schedules} schedules");
    for r in &rows {
        let label = r.config.label();
        assert!(r.catalog.total_sites() > 0, "{label}: empty site catalog");
        assert!(r.catalog.syscalls > 0, "{label}: no syscall sites enumerated");
        assert!(r.catalog.transfer_objects > 0, "{label}: no object sites enumerated");
        assert_eq!(r.divergences, 0, "{label}: rollback divergence — repros: {:?}", r.repros);
        assert_eq!(r.unexpected_commits, 0, "{label}: schedules never fired: {:?}", r.repros);
        assert_eq!(r.rerun_mismatches, 0, "{label}: nondeterministic rollback: {:?}", r.repros);
        assert_eq!(
            r.supervisor_committed, r.supervisor_runs,
            "{label}: supervisor failed to converge — repros: {:?}",
            r.repros
        );
        assert!(
            r.tier_commits[1] > 0 && r.tier_commits[2] > 0,
            "{label}: degradation ladder not exercised: {:?}",
            r.tier_commits
        );
        assert!(r.give_up_clean, "{label}: give-up drill left the old version unserving");
        assert!(r.watchdog_clean, "{label}: watchdog drill did not roll back cleanly");
        assert!(r.sites_injected > 0 && r.coverage_ratio() > 0.0, "{label}: nothing injected");
    }
    // Pre-copy configurations must enumerate pre-copy round copies as a
    // sub-range of the object-write space.
    for r in rows.iter().filter(|r| r.config.precopy) {
        assert!(r.catalog.precopy_copies > 0, "{}: no precopy copy sites", r.config.label());
    }

    println!("{}", chaos_json(&spec, &rows).render());
}
