//! Criterion benchmark behind Table 3: the standard workload at each
//! cumulative instrumentation level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcr_bench::{boot_program, run_standard_workload};
use mcr_typemeta::{InstrumentationConfig, InstrumentationLevel};
use std::time::Duration;

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_overhead");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    for program in ["httpd", "nginx", "vsftpd", "sshd"] {
        for level in [InstrumentationLevel::Baseline, InstrumentationLevel::QuiescenceDetection] {
            group.bench_with_input(
                BenchmarkId::new(program, level.label()),
                &(program, level),
                |b, &(program, level)| {
                    b.iter(|| {
                        let (mut kernel, mut instance) =
                            boot_program(program, 1, InstrumentationConfig::at_level(level));
                        run_standard_workload(&mut kernel, &mut instance, program, 50)
                    });
                },
            );
        }
    }
    // The nginxreg configuration (instrumented region allocator).
    group.bench_function("nginxreg/+QDet", |b| {
        b.iter(|| {
            let (mut kernel, mut instance) =
                boot_program("nginx", 1, InstrumentationConfig::full_with_region_instrumentation());
            run_standard_workload(&mut kernel, &mut instance, "nginx", 50)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
