//! Benchmark behind Table 3: the standard workload at each cumulative
//! instrumentation level. Runs on the in-tree harness (`mcr_bench::BenchGroup`)
//! because the build environment has no network access for Criterion.

use mcr_bench::{boot_program, run_standard_workload, BenchGroup};
use mcr_typemeta::{InstrumentationConfig, InstrumentationLevel};

fn main() {
    let mut group = BenchGroup::new("table3_overhead");
    for program in ["httpd", "nginx", "vsftpd", "sshd"] {
        for level in [InstrumentationLevel::Baseline, InstrumentationLevel::QuiescenceDetection] {
            group.bench(format!("{program}/{}", level.label()), || {
                let (mut kernel, mut instance) =
                    boot_program(program, 1, InstrumentationConfig::at_level(level));
                run_standard_workload(&mut kernel, &mut instance, program, 50)
            });
        }
    }
    // The nginxreg configuration (instrumented region allocator).
    group.bench("nginxreg/+QDet", || {
        let (mut kernel, mut instance) =
            boot_program("nginx", 1, InstrumentationConfig::full_with_region_instrumentation());
        run_standard_workload(&mut kernel, &mut instance, "nginx", 50)
    });
    group.finish();
}
