//! Fleet-scale scheduler sweep: per-round cost vs. thread count at 1% active.
//!
//! For each fleet size this bench boots a [`FleetServer`] (one reader thread
//! per connection) twice — once on the event-driven scheduler and once on
//! the legacy full-scan ablation — runs the same deterministic workload
//! (every round sends data on the same 1% of connections), and emits one
//! JSON row per size. The cost metric is thread *steps per round* (exact
//! and host-independent); wall-clock time is reported alongside.
//!
//! The scaling guard is `step_ratio` — full-scan steps over event-driven
//! steps: the event-driven core must be at least 10x cheaper per round at
//! 10k threads / 1% active (the acceptance bar, mirrored by the CI smoke
//! step), because its cost tracks *active* threads while the scan pays for
//! every thread every round. Both runs must also handle exactly the same
//! number of events, and the event-driven fleet must still reach quiescence.

use std::time::Instant;

use mcr_bench::{FleetServer, Json, FLEET_PORT};
use mcr_core::runtime::{
    all_quiesced, boot, run_round, run_rounds, wait_quiescence, BootOptions, McrInstance, RoundStats,
    SchedulerMode,
};
use mcr_procsim::{ConnId, Kernel};

/// Fleet sizes swept (threads = connections); 1% of each fleet is active.
const FLEET_SIZES: [usize; 4] = [10, 100, 1_000, 10_000];
/// Measured rounds per run.
const ROUNDS: usize = 10;

struct RunOutcome {
    stats: RoundStats,
    wall_ns: u64,
    events_handled: u64,
    quiesce_ns: u64,
}

fn active_slots(threads: usize) -> Vec<usize> {
    let active = (threads / 100).max(1);
    let stride = threads / active;
    (0..active).map(|i| i * stride).collect()
}

fn run_fleet(threads: usize, mode: SchedulerMode) -> RunOutcome {
    let mut kernel = Kernel::new();
    let opts = BootOptions { scheduler: mode, ..Default::default() };
    let mut instance: McrInstance =
        boot(&mut kernel, Box::new(FleetServer::new(threads)), &opts).expect("fleet boots");
    let conns: Vec<ConnId> = (0..threads).map(|_| kernel.client_connect(FLEET_PORT).unwrap()).collect();
    // Setup rounds: the acceptor drains the backlog, every reader parks.
    run_rounds(&mut kernel, &mut instance, 2).expect("fleet setup");
    assert!(conns.iter().all(|&c| kernel.client_is_accepted(c)), "all sessions accepted");

    let slots = active_slots(threads);
    let mut stats = RoundStats::default();
    let wall = Instant::now();
    for _ in 0..ROUNDS {
        for &slot in &slots {
            kernel.client_send(conns[slot], b"ping".to_vec()).expect("send");
        }
        stats.absorb(&run_round(&mut kernel, &mut instance).expect("round"));
    }
    let wall_ns = u64::try_from(wall.elapsed().as_nanos()).unwrap_or(u64::MAX);

    // The barrier must still converge over a mostly-parked fleet.
    let q_start = kernel.now();
    wait_quiescence(&mut kernel, &mut instance, 10).expect("quiescence converges");
    assert!(all_quiesced(&kernel, &instance));
    let quiesce_ns = kernel.now().duration_since(q_start).0;

    RunOutcome { stats, wall_ns, events_handled: instance.state.counters.events_handled, quiesce_ns }
}

fn main() {
    let mut rows = Vec::new();
    for threads in FLEET_SIZES {
        let active = active_slots(threads).len();
        let event = run_fleet(threads, SchedulerMode::EventDriven);
        let scan = run_fleet(threads, SchedulerMode::FullScan);

        assert_eq!(
            event.events_handled, scan.events_handled,
            "{threads}: both schedulers must serve the same events"
        );
        assert_eq!(
            event.events_handled,
            (ROUNDS * active) as u64,
            "{threads}: every active send was handled"
        );

        let event_steps_per_round = event.stats.steps() as f64 / ROUNDS as f64;
        let scan_steps_per_round = scan.stats.steps() as f64 / ROUNDS as f64;
        let step_ratio = scan_steps_per_round / event_steps_per_round.max(1e-9);
        let wall_ratio = scan.wall_ns as f64 / event.wall_ns.max(1) as f64;

        // Event-driven cost tracks active threads, not fleet size.
        assert!(
            event_steps_per_round <= (4 * active + 4) as f64,
            "{threads}: event-driven round cost {event_steps_per_round} not O(active={active})"
        );
        // The acceptance bar: >= 10x cheaper per round at 10k threads / 1%.
        if threads >= 10_000 {
            assert!(
                step_ratio >= 10.0,
                "{threads}: event-driven scheduler only {step_ratio:.1}x cheaper than full scan"
            );
        }

        eprintln!(
            "threads {threads:>6} active {active:>4}: event {event_steps_per_round:>9.1} steps/round \
             (woken {}) vs scan {scan_steps_per_round:>9.1} -> {step_ratio:>7.1}x steps, \
             {wall_ratio:>6.1}x wall; quiesce {} us",
            event.stats.woken,
            event.quiesce_ns / 1_000,
        );
        rows.push(Json::obj([
            ("threads", threads.into()),
            ("active", active.into()),
            ("rounds", ROUNDS.into()),
            ("event_steps_per_round", Json::Num(event_steps_per_round)),
            ("scan_steps_per_round", Json::Num(scan_steps_per_round)),
            ("step_ratio", Json::Num(step_ratio)),
            ("event_woken", event.stats.woken.into()),
            ("event_wall_ns", event.wall_ns.into()),
            ("scan_wall_ns", scan.wall_ns.into()),
            ("wall_ratio", Json::Num(wall_ratio)),
            ("event_quiesce_ns", event.quiesce_ns.into()),
            ("scan_quiesce_ns", scan.quiesce_ns.into()),
            ("events_handled", event.events_handled.into()),
        ]));
    }
    let doc = Json::obj([("experiment", Json::str("fleet_scale")), ("rows", Json::Arr(rows))]);
    println!("{}", doc.render());
}
