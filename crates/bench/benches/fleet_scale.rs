//! Fleet-scale scheduler sweep: per-round cost vs. thread count at 1% active.
//!
//! For each fleet size this bench boots a [`FleetServer`] (one reader thread
//! per connection) twice — once on the event-driven scheduler and once on
//! the legacy full-scan ablation — runs the same deterministic workload
//! (every round sends data on the same 1% of connections), and emits one
//! JSON row per size. The cost metric is thread *steps per round* (exact
//! and host-independent); wall-clock time is reported alongside.
//!
//! The scaling guards:
//!
//! * `step_ratio` — full-scan steps over event-driven steps: the
//!   event-driven core must be at least 10x cheaper per round at 10k
//!   threads / 1% active (the acceptance bar, mirrored by the CI smoke
//!   step), because its cost tracks *active* threads while the scan pays
//!   for every thread every round.
//! * `steps_per_event` — event-driven thread steps per handled event must
//!   stay flat (within 2x) from 10k connections to the largest fleet: the
//!   slab-indexed kernel substrate resolves objects, descriptors, waiters
//!   and timers by index, so per-event cost must not grow with fleet size.
//!
//! Both runs must also handle exactly the same number of events, and the
//! event-driven fleet must still reach quiescence. `FLEET_SCALE_SIZES`
//! (comma-separated) overrides the sweep — CI smoke uses a reduced one.

use std::time::Instant;

use mcr_bench::{FleetServer, Json, FLEET_PORT};
use mcr_core::runtime::{
    all_quiesced, boot, run_round, run_rounds, wait_quiescence, BootOptions, McrInstance, RoundStats,
    SchedulerMode,
};
use mcr_procsim::{ConnId, Kernel};

/// Fleet sizes swept by default (threads = connections); 1% of each fleet
/// is active. Overridable via `FLEET_SCALE_SIZES`.
const FLEET_SIZES: [usize; 5] = [10, 100, 1_000, 10_000, 100_000];
/// Measured rounds per run.
const ROUNDS: usize = 10;
/// The full-scan ablation is skipped above this fleet size: its cost is
/// O(threads x rounds) by construction, which the 10k point already proves,
/// and paying a million-step scan per round adds minutes without adding
/// information.
const SCAN_CEILING: usize = 10_000;

fn fleet_sizes() -> Vec<usize> {
    match std::env::var("FLEET_SCALE_SIZES") {
        Ok(list) => {
            let sizes: Vec<usize> = list.split(',').filter_map(|t| t.trim().parse().ok()).collect();
            assert!(!sizes.is_empty(), "FLEET_SCALE_SIZES must name at least one fleet size");
            sizes
        }
        Err(_) => FLEET_SIZES.to_vec(),
    }
}

struct RunOutcome {
    stats: RoundStats,
    wall_ns: u64,
    events_handled: u64,
    quiesce_ns: u64,
}

fn active_slots(threads: usize) -> Vec<usize> {
    let active = (threads / 100).max(1);
    let stride = threads / active;
    (0..active).map(|i| i * stride).collect()
}

fn run_fleet(threads: usize, mode: SchedulerMode) -> RunOutcome {
    let mut kernel = Kernel::new();
    let opts = BootOptions { scheduler: mode, ..Default::default() };
    let mut instance: McrInstance =
        boot(&mut kernel, Box::new(FleetServer::new(threads)), &opts).expect("fleet boots");
    let conns: Vec<ConnId> = (0..threads).map(|_| kernel.client_connect(FLEET_PORT).unwrap()).collect();
    // Setup rounds: the acceptor drains the backlog, every reader parks.
    run_rounds(&mut kernel, &mut instance, 2).expect("fleet setup");
    assert!(conns.iter().all(|&c| kernel.client_is_accepted(c)), "all sessions accepted");

    let slots = active_slots(threads);
    let mut stats = RoundStats::default();
    let wall = Instant::now();
    for _ in 0..ROUNDS {
        for &slot in &slots {
            kernel.client_send(conns[slot], b"ping".to_vec()).expect("send");
        }
        stats.absorb(&run_round(&mut kernel, &mut instance).expect("round"));
    }
    let wall_ns = u64::try_from(wall.elapsed().as_nanos()).unwrap_or(u64::MAX);

    // The barrier must still converge over a mostly-parked fleet.
    let q_start = kernel.now();
    wait_quiescence(&mut kernel, &mut instance, 10).expect("quiescence converges");
    assert!(all_quiesced(&kernel, &instance));
    let quiesce_ns = kernel.now().duration_since(q_start).0;

    RunOutcome { stats, wall_ns, events_handled: instance.state.counters.events_handled, quiesce_ns }
}

fn main() {
    let mut rows = Vec::new();
    let mut per_event: Vec<(usize, f64)> = Vec::new();
    for threads in fleet_sizes() {
        let active = active_slots(threads).len();
        let event = run_fleet(threads, SchedulerMode::EventDriven);
        let scan = (threads <= SCAN_CEILING).then(|| run_fleet(threads, SchedulerMode::FullScan));

        assert_eq!(
            event.events_handled,
            (ROUNDS * active) as u64,
            "{threads}: every active send was handled"
        );

        let event_steps_per_round = event.stats.steps() as f64 / ROUNDS as f64;
        let steps_per_event = event.stats.steps() as f64 / event.events_handled.max(1) as f64;
        let wall_per_event_ns = event.wall_ns as f64 / event.events_handled.max(1) as f64;
        per_event.push((threads, steps_per_event));

        // Event-driven cost tracks active threads, not fleet size.
        assert!(
            event_steps_per_round <= (4 * active + 4) as f64,
            "{threads}: event-driven round cost {event_steps_per_round} not O(active={active})"
        );

        let mut row = vec![
            ("threads", threads.into()),
            ("active", active.into()),
            ("rounds", ROUNDS.into()),
            ("event_steps_per_round", Json::Num(event_steps_per_round)),
            ("steps_per_event", Json::Num(steps_per_event)),
            ("wall_per_event_ns", Json::Num(wall_per_event_ns)),
            ("event_woken", event.stats.woken.into()),
            ("event_wall_ns", event.wall_ns.into()),
            ("event_quiesce_ns", event.quiesce_ns.into()),
            ("events_handled", event.events_handled.into()),
        ];
        if let Some(scan) = scan {
            assert_eq!(
                event.events_handled, scan.events_handled,
                "{threads}: both schedulers must serve the same events"
            );
            let scan_steps_per_round = scan.stats.steps() as f64 / ROUNDS as f64;
            let step_ratio = scan_steps_per_round / event_steps_per_round.max(1e-9);
            let wall_ratio = scan.wall_ns as f64 / event.wall_ns.max(1) as f64;
            // The acceptance bar: >= 10x cheaper per round at 10k / 1%.
            if threads >= 10_000 {
                assert!(
                    step_ratio >= 10.0,
                    "{threads}: event-driven scheduler only {step_ratio:.1}x cheaper than full scan"
                );
            }
            eprintln!(
                "threads {threads:>7} active {active:>5}: event {event_steps_per_round:>9.1} steps/round \
                 (woken {}) vs scan {scan_steps_per_round:>9.1} -> {step_ratio:>7.1}x steps, \
                 {wall_ratio:>6.1}x wall; quiesce {} us",
                event.stats.woken,
                event.quiesce_ns / 1_000,
            );
            row.extend([
                ("scan_steps_per_round", Json::Num(scan_steps_per_round)),
                ("step_ratio", Json::Num(step_ratio)),
                ("scan_wall_ns", scan.wall_ns.into()),
                ("wall_ratio", Json::Num(wall_ratio)),
                ("scan_quiesce_ns", scan.quiesce_ns.into()),
            ]);
        } else {
            eprintln!(
                "threads {threads:>7} active {active:>5}: event {event_steps_per_round:>9.1} steps/round \
                 (woken {}), {steps_per_event:.2} steps/event, {wall_per_event_ns:>8.0} ns/event; \
                 quiesce {} us (scan skipped)",
                event.stats.woken,
                event.quiesce_ns / 1_000,
            );
        }
        rows.push(Json::obj_vec(row));
    }

    // Flatness guard: per-event cost must not grow with fleet size. Thread
    // steps per handled event are exact and host-independent, so this is the
    // substrate's O(1)-per-event claim stated as an assertion.
    let at_scale: Vec<&(usize, f64)> = per_event.iter().filter(|(t, _)| *t >= 10_000).collect();
    if at_scale.len() >= 2 {
        let (min_t, min_c) =
            at_scale.iter().fold(
                (0usize, f64::INFINITY),
                |acc, (t, c)| {
                    if *c < acc.1 {
                        (*t, *c)
                    } else {
                        acc
                    }
                },
            );
        for (threads, cost) in &at_scale {
            assert!(
                *cost <= 2.0 * min_c,
                "{threads}: {cost:.2} steps/event, more than 2x the {min_c:.2} at {min_t} threads"
            );
        }
    }

    let doc = Json::obj([("experiment", Json::str("fleet_scale")), ("rows", Json::Arr(rows))]);
    println!("{}", doc.render());
}
