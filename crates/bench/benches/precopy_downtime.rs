//! Pre-copy downtime sweep: write rates × heap sizes.
//!
//! For every [`PrecopyScenario`] (the read-mostly vs. write-heavy pair) and
//! every heap-size factor, this bench performs one stop-the-world baseline
//! update (`precopy_rounds = 0`, write batches applied up front) and one
//! pre-copy update (3 concurrent rounds, the same write batches applied
//! between rounds), then emits one JSON row per run.
//!
//! Asserted here (and re-checked by the CI smoke step from the JSON):
//!
//! * **Downtime**: on the read-mostly scenario the measured stop-the-world
//!   `downtime` with pre-copy is at most 50% of the baseline's.
//! * **Equivalence**: within a sweep point, baseline and pre-copy converge
//!   to byte-identical kernel fingerprints, per-process transfer reports
//!   and (empty) conflict sets — and so do both scheduler cores on the
//!   smallest read-mostly point.
//! * **Scale**: the scenario yields >= 4 matched pairs (the multiprocess
//!   regime the pre-copy acceptance criterion targets).

use mcr_bench::{precopy_update, Json};
use mcr_core::runtime::{SchedulerMode, UpdateOutcome};
use mcr_servers::precopy_scenarios;

const PRECOPY_ROUNDS: usize = 3;
const SIZE_FACTORS: [u64; 3] = [1, 2, 4];

struct Run {
    fingerprint: u64,
    outcome: UpdateOutcome,
}

fn run(scenario: &mcr_servers::PrecopyScenario, size: u64, rounds: usize, mode: SchedulerMode) -> Run {
    let (fingerprint, outcome) = precopy_update(scenario, size, rounds, PRECOPY_ROUNDS, mode);
    assert!(
        outcome.is_committed(),
        "{} size {size} rounds {rounds}: {:?}",
        scenario.name,
        outcome.conflicts()
    );
    Run { fingerprint, outcome }
}

fn row(scenario: &str, size: u64, mode: &str, run: &Run) -> Json {
    let report = run.outcome.report();
    let pairs = report.processes_matched + report.processes_recreated;
    Json::obj([
        ("scenario", Json::str(scenario)),
        ("size_factor", size.into()),
        ("mode", Json::str(mode)),
        ("pairs", (pairs as u64).into()),
        ("precopy_enabled", Json::Bool(report.precopy.enabled)),
        ("precopy_rounds", (report.precopy.rounds.len() as u64).into()),
        ("precopied_objects", report.precopy.precopied_objects().into()),
        ("residual_objects", report.precopy.residual.objects.into()),
        ("residual_bytes", report.precopy.residual.bytes.into()),
        ("downtime_ns", report.timings.downtime.0.into()),
        ("precopy_ns", report.timings.precopy.0.into()),
        ("total_ns", report.timings.total.0.into()),
        ("state_transfer_ns", report.timings.state_transfer.0.into()),
        ("objects_transferred", report.transfer.objects_transferred().into()),
        ("fingerprint", Json::str(format!("{:016x}", run.fingerprint))),
    ])
}

fn main() {
    let mut rows = Vec::new();
    for scenario in precopy_scenarios() {
        for size in SIZE_FACTORS {
            let baseline = run(&scenario, size, 0, SchedulerMode::EventDriven);
            let precopied = run(&scenario, size, PRECOPY_ROUNDS, SchedulerMode::EventDriven);

            let base_report = baseline.outcome.report();
            let pre_report = precopied.outcome.report();
            let pairs = base_report.processes_matched + base_report.processes_recreated;
            assert!(pairs >= 4, "{}: expected >= 4 matched pairs, got {pairs}", scenario.name);

            // Equivalence: same final kernel state, same logical transfer.
            assert_eq!(
                baseline.fingerprint, precopied.fingerprint,
                "{} size {size}: pre-copy diverged from the stop-the-world baseline",
                scenario.name
            );
            assert_eq!(
                base_report.transfer.per_process, pre_report.transfer.per_process,
                "{} size {size}: per-process transfer reports diverged",
                scenario.name
            );
            assert_eq!(base_report.tracing, pre_report.tracing, "{} size {size}", scenario.name);

            // The headline: pre-copy moves the bulk out of the window.
            let base_down = base_report.timings.downtime.0;
            let pre_down = pre_report.timings.downtime.0;
            assert!(pre_down <= base_down, "{} size {size}: pre-copy increased downtime", scenario.name);
            if scenario.name == "read-mostly" {
                assert!(
                    pre_down * 2 <= base_down,
                    "{} size {size}: downtime {pre_down} ns not <= 50% of baseline {base_down} ns",
                    scenario.name
                );
            }
            assert!(pre_report.precopy.enabled && !pre_report.precopy.rounds.is_empty());
            assert!(
                pre_report.precopy.residual.objects <= base_report.precopy.residual.objects,
                "pre-copy cannot leave more residual work than the baseline window does"
            );

            eprintln!(
                "{:<12} size {size}: downtime {:>9} -> {:>9} ns ({:>5.1}%), precopy {:>9} ns, \
                 residual {:>4}/{:<4} objs, pairs {pairs}",
                scenario.name,
                base_down,
                pre_down,
                pre_down as f64 / base_down.max(1) as f64 * 100.0,
                pre_report.timings.precopy.0,
                pre_report.precopy.residual.objects,
                pre_report.transfer.objects_transferred(),
            );
            rows.push(row(scenario.name, size, "baseline", &baseline));
            rows.push(row(scenario.name, size, "precopy", &precopied));
        }
    }

    // Scheduler-core equivalence on the smallest read-mostly point.
    let read_mostly = precopy_scenarios()[0];
    let scan_base = run(&read_mostly, 1, 0, SchedulerMode::FullScan);
    let scan_pre = run(&read_mostly, 1, PRECOPY_ROUNDS, SchedulerMode::FullScan);
    let event_pre = run(&read_mostly, 1, PRECOPY_ROUNDS, SchedulerMode::EventDriven);
    assert_eq!(scan_base.fingerprint, scan_pre.fingerprint, "full-scan: pre-copy diverged");
    assert_eq!(scan_pre.fingerprint, event_pre.fingerprint, "scheduler cores diverged under pre-copy");
    assert_eq!(
        scan_pre.outcome.report().transfer.per_process,
        event_pre.outcome.report().transfer.per_process,
        "scheduler cores: per-process reports diverged under pre-copy"
    );

    let doc = Json::obj([("experiment", Json::str("precopy_downtime")), ("rows", Json::Arr(rows))]);
    println!("{}", doc.render());
}
