//! Checkpoint crash-consistency campaign: durable manifests under injected
//! torn writes, block-granular crashes, restore-step faults, direct
//! corruption and supervised recovery.
//!
//! Runs [`CheckpointSpec::smoke`] — every store block a checkpoint writes
//! is attacked twice (crash-at-block and torn-block), every enumerated
//! restore step is failed once, and the durable supervisor is driven
//! through old-instance crashes — then asserts:
//!
//! * the baseline checkpoint/restore roundtrip is byte-identical (kernel
//!   fingerprint) and the restored instance serves;
//! * every crash point recovered to a byte-identical durable version or
//!   was rejected with a typed checksum error while the old version kept
//!   serving (zero divergences);
//! * the parallel shard writeback beats the serial one;
//! * retention keeps exactly the newest versions.
//!
//! Emits the `BENCH_checkpoint.json` document on stdout; the CI smoke step
//! re-asserts the same properties from the JSON.

use mcr_bench::{checkpoint_json, checkpoint_render, run_checkpoint_campaign, CheckpointSpec};

fn main() {
    let spec = CheckpointSpec::smoke();
    let out = run_checkpoint_campaign(&spec);
    eprint!("{}", checkpoint_render(&out));

    assert!(out.clean(), "campaign diverged — repros: {:?}", out.repros);
    assert!(out.fingerprint_identical, "restore is not byte-identical");
    assert!(out.restored_serves, "restored instance does not serve");
    assert!(out.blocks > 0, "no store blocks enumerated");
    assert!(out.capped.is_empty(), "smoke campaign must sweep every crash point: {:?}", out.capped);
    assert_eq!(out.crash_drills + out.torn_drills, 2 * out.blocks as usize);
    assert_eq!(
        out.recovered_durable + out.recovered_fallback,
        out.crash_drills + out.torn_drills,
        "every crash point must recover to a durable version"
    );
    assert_eq!(out.restore_step_typed, out.restore_step_drills, "untyped restore-step failure");
    assert_eq!(out.corruption_fallbacks, 3, "corruption drills must fall back to the intact version");
    assert_eq!(out.corruption_typed, 2, "skew/all-corrupt drills must fail typed");
    assert_eq!(out.supervisor_recovered, out.supervisor_drills, "supervisor failed to recover");
    assert_eq!(out.supervisor_committed, out.supervisor_drills, "recovered ladder failed to commit");
    assert!(out.retention_ok, "retention kept the wrong versions");
    assert!(out.writer_speedup > 1.0, "parallel shard writeback gained nothing: {}", out.writer_speedup);

    println!("{}", checkpoint_json(&spec, &out).render());
}
