//! Criterion benchmark behind Figure 3: full live updates with a growing
//! number of open connections.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcr_bench::update_with_connections;
use mcr_typemeta::InstrumentationConfig;
use std::time::Duration;

fn bench_state_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_state_transfer");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    for program in ["nginx", "vsftpd"] {
        for connections in [0usize, 10, 25] {
            group.bench_with_input(
                BenchmarkId::new(program, connections),
                &(program, connections),
                |b, &(program, connections)| {
                    b.iter(|| {
                        let outcome =
                            update_with_connections(program, 1, 5, connections, InstrumentationConfig::full());
                        assert!(outcome.is_committed());
                        outcome.report().timings.state_transfer
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_state_transfer);
criterion_main!(benches);
