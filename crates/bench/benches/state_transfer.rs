//! Benchmark behind Figure 3: full live updates with a growing number of
//! open connections. Runs on the in-tree harness (`mcr_bench::BenchGroup`)
//! because the build environment has no network access for Criterion.

use mcr_bench::{update_with_connections, BenchGroup};
use mcr_typemeta::InstrumentationConfig;

fn main() {
    let mut group = BenchGroup::new("fig3_state_transfer");
    for program in ["nginx", "vsftpd"] {
        for connections in [0usize, 10, 25] {
            group.bench(format!("{program}/{connections}"), || {
                let outcome =
                    update_with_connections(program, 1, 5, connections, InstrumentationConfig::full());
                assert!(outcome.is_committed());
                outcome.report().timings.state_transfer
            });
        }
    }
    group.finish();
}
