//! Worker-count sweep of the pair-parallel trace/transfer phase.
//!
//! For each multiprocess server spec this bench performs one live update per
//! worker count (1 = the serial ablation, 2, 4, and 0 = one worker per pair)
//! and emits a JSON row per run. `state_transfer_ns` is the reported
//! makespan of the executed schedule and `state_transfer_serial_ns` the
//! phase-level sequential ablation (which also includes process matching, so
//! it exceeds the pair-cost sum even with one worker).
//!
//! The re-serialization guard is `speedup`: the sum of per-pair transfer
//! costs (`pair_sum_ns`, exactly what one worker needs) divided by the
//! reported makespan. One worker must report exactly 1.0; any multi-worker
//! run over >= 4 pairs must report strictly more — if the phase ever falls
//! back to sequential execution, the strict assertion (mirrored by the CI
//! smoke step) fires.

use mcr_bench::{update_with_options, Json};
use mcr_core::runtime::UpdateOptions;
use mcr_typemeta::InstrumentationConfig;

/// `(label, program, requests, open connections)` scenarios. The
/// per-connection servers fork one session process per served request and
/// open connection, so every scenario yields at least four matched pairs
/// (asserted below); `vsftpd/small` is the smallest sweep point, the other
/// rows scale further up.
const SCENARIOS: [(&str, &str, u64, usize); 4] = [
    ("vsftpd/small", "vsftpd", 2, 3),
    ("vsftpd", "vsftpd", 4, 8),
    ("sshd", "sshd", 4, 6),
    ("nginx", "nginx", 4, 6),
];

fn main() {
    let mut rows = Vec::new();
    for (label, program, requests, open) in SCENARIOS {
        for requested in [1usize, 2, 4, 0] {
            let opts = UpdateOptions { transfer_workers: requested, ..Default::default() };
            let outcome =
                update_with_options(program, 1, requests, open, InstrumentationConfig::full(), &opts);
            assert!(outcome.is_committed(), "{label}: {:?}", outcome.conflicts());
            let report = outcome.report();
            let pairs = report.processes_matched + report.processes_recreated;
            let workers = report.transfer.workers;
            let parallel_ns = report.timings.state_transfer.0;
            let serial_ns = report.timings.state_transfer_serial.0;
            let pair_sum_ns = report.transfer.serial_duration.0;
            let speedup = pair_sum_ns as f64 / (parallel_ns.max(1)) as f64;
            if program != "nginx" {
                assert!(pairs >= 4, "{label}: expected a multiprocess spec, got {pairs} pairs");
            }
            if workers == 1 {
                assert!(
                    (speedup - 1.0).abs() < 1e-9,
                    "{label}: the serial ablation must report exactly the pair-cost sum"
                );
            } else {
                assert!(speedup >= 1.0, "{label} workers={workers}: parallel slower than serial");
                if pairs >= 4 {
                    assert!(speedup > 1.0, "{label} workers={workers} pairs={pairs}: phase re-serialized");
                }
            }
            eprintln!(
                "{label:<13} workers {workers:>2} (req {requested}) pairs {pairs:>2}: \
                 st {parallel_ns:>9} ns  pair-sum {pair_sum_ns:>9} ns  serial {serial_ns:>9} ns  \
                 speedup {speedup:.2}x  host {:>9} ns",
                report.transfer.host_wall_ns
            );
            rows.push(Json::obj([
                ("program", Json::str(label)),
                ("requested_workers", requested.into()),
                ("workers", workers.into()),
                ("pairs", pairs.into()),
                ("state_transfer_ns", parallel_ns.into()),
                ("state_transfer_serial_ns", serial_ns.into()),
                ("pair_sum_ns", pair_sum_ns.into()),
                ("speedup", Json::Num(speedup)),
                ("host_wall_ns", report.transfer.host_wall_ns.into()),
            ]));
        }
    }
    let doc = Json::obj([("experiment", Json::str("parallel_transfer")), ("rows", Json::Arr(rows))]);
    println!("{}", doc.render());
}
