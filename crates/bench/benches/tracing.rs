//! Criterion benchmark behind Table 2: mutable tracing of a loaded server.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcr_bench::{boot_program, run_standard_workload, trace_instance};
use mcr_typemeta::InstrumentationConfig;
use std::time::Duration;

fn bench_tracing(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_tracing");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    for program in ["httpd", "nginx", "vsftpd", "sshd"] {
        let (mut kernel, mut instance) = boot_program(program, 1, InstrumentationConfig::full());
        run_standard_workload(&mut kernel, &mut instance, program, 50);
        group.bench_with_input(BenchmarkId::from_parameter(program), &(), |b, ()| {
            b.iter(|| trace_instance(&kernel, &instance));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tracing);
criterion_main!(benches);
