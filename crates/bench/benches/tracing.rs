//! Benchmark behind Table 2: mutable tracing of a loaded server. Runs on the
//! in-tree harness (`mcr_bench::BenchGroup`) because the build environment
//! has no network access for Criterion.

use mcr_bench::{boot_program, run_standard_workload, trace_instance, BenchGroup};
use mcr_typemeta::InstrumentationConfig;

fn main() {
    let mut group = BenchGroup::new("table2_tracing");
    for program in ["httpd", "nginx", "vsftpd", "sshd"] {
        let (mut kernel, mut instance) = boot_program(program, 1, InstrumentationConfig::full());
        run_standard_workload(&mut kernel, &mut instance, program, 50);
        group.bench(program, || trace_instance(&kernel, &instance));
    }
    group.finish();
}
