//! Intra-pair sharding sweep: heap size × shard count over the
//! single-process big-heap cache server.
//!
//! Pair-level parallelism cannot speed up a single matched pair, so this is
//! the scenario where `UpdateOptions::intra_pair_shards` must carry the
//! whole speedup. For every heap size the bench runs the gen-1 → gen-2 cache
//! update at each shard count, `ITERS` iterations per point, and emits one
//! JSON row per point with **median-of-iterations** figures (the simulated
//! makespan is deterministic — re-measured only to prove it — while the host
//! wall time is noisy, which is why the CI smoke step thresholds medians).
//!
//! Asserted here (and re-checked by CI from the JSON):
//!
//! * **Speedup**: the charged trace+transfer makespan
//!   (`timings.state_transfer`, the deterministic list-schedule over the
//!   per-shard costs) improves strictly over the 1-shard baseline for every
//!   shard count >= 2, on every heap size.
//! * **Determinism**: kernel fingerprint, tracing statistics, per-process
//!   transfer reports and (empty) conflict sets are byte-identical across
//!   all shard counts — and, on the smallest heap, across both scheduler
//!   cores and pre-copy on/off.

use mcr_bench::{cache_update, BenchGroup, Json};
use mcr_core::runtime::{SchedulerMode, UpdateOutcome};

/// (entries, value bytes) per sweep point.
const HEAPS: [(u64, u64); 2] = [(512, 128), (2048, 256)];
const SHARDS: [usize; 3] = [1, 2, 4];
const ITERS: usize = 3;

struct Run {
    fingerprint: u64,
    outcome: UpdateOutcome,
}

fn run(entries: u64, vsize: u64, shards: usize, precopy: usize, mode: SchedulerMode) -> Run {
    let (fingerprint, outcome) = cache_update(entries, vsize, shards, precopy, mode);
    assert!(outcome.is_committed(), "cache {entries}x{vsize} shards {shards}: {:?}", outcome.conflicts());
    Run { fingerprint, outcome }
}

fn median_u64(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let mut group = BenchGroup::new("intra_pair");
    let mut rows = Vec::new();
    for (entries, vsize) in HEAPS {
        let mut baseline_makespan = 0u64;
        let mut baseline: Option<Run> = None;
        for shards in SHARDS {
            let mut makespans = Vec::with_capacity(ITERS);
            let mut host_wall = Vec::with_capacity(ITERS);
            let mut last = None;
            for _ in 0..ITERS {
                let run = run(entries, vsize, shards, 0, SchedulerMode::EventDriven);
                let report = run.outcome.report();
                makespans.push(report.timings.state_transfer.0);
                host_wall.push(report.transfer.host_wall_ns);
                last = Some(run);
            }
            let run = last.expect("at least one iteration");
            assert!(
                makespans.iter().all(|&m| m == makespans[0]),
                "cache {entries}x{vsize} shards {shards}: simulated makespan is not deterministic"
            );
            group.record(
                format!("host_wall/{entries}x{vsize}/shards{shards}"),
                host_wall.iter().map(|&ns| ns as f64 / 1e9).collect(),
            );
            let makespan = median_u64(&mut makespans);
            let host_median = median_u64(&mut host_wall);

            // Determinism across shard counts: everything but the charged
            // makespan is byte-identical to the 1-shard baseline.
            let report = run.outcome.report();
            let speedup = match &baseline {
                None => {
                    baseline_makespan = makespan;
                    1.0
                }
                Some(base) => {
                    let base_report = base.outcome.report();
                    assert_eq!(
                        base.fingerprint, run.fingerprint,
                        "cache {entries}x{vsize} shards {shards}: kernel state diverged"
                    );
                    assert_eq!(
                        base_report.tracing, report.tracing,
                        "cache {entries}x{vsize} shards {shards}: tracing stats diverged"
                    );
                    assert_eq!(
                        base_report.transfer.per_process, report.transfer.per_process,
                        "cache {entries}x{vsize} shards {shards}: per-process reports diverged"
                    );
                    assert!(report.transfer.conflicts().next().is_none(), "unexpected conflicts");
                    let speedup = baseline_makespan as f64 / makespan.max(1) as f64;
                    assert!(
                        speedup > 1.0,
                        "cache {entries}x{vsize}: {shards} shards did not beat the serial \
                         makespan ({makespan} ns vs {baseline_makespan} ns)"
                    );
                    speedup
                }
            };
            eprintln!(
                "cache {entries:>5} x {vsize:>4}B  shards {shards}: makespan {makespan:>10} ns \
                 (speedup {speedup:>5.2}x), host wall {host_median:>10} ns median of {ITERS}"
            );
            rows.push(Json::obj([
                ("entries", entries.into()),
                ("value_bytes", vsize.into()),
                ("shards", shards.into()),
                ("iterations", ITERS.into()),
                ("makespan_ns", makespan.into()),
                ("host_wall_ns_median", host_median.into()),
                ("speedup", Json::Num(speedup)),
                ("objects_transferred", report.transfer.objects_transferred().into()),
                ("fingerprint", Json::str(format!("{:016x}", run.fingerprint))),
            ]));
            if shards == SHARDS[0] {
                baseline = Some(run);
            }
        }
    }

    // Scheduler-core and pre-copy equivalence on the smallest point: the
    // sharded update converges to the same kernel state no matter which
    // core schedules it and whether the bulk copy ran concurrently.
    let (entries, vsize) = HEAPS[0];
    let event_stw = run(entries, vsize, 2, 0, SchedulerMode::EventDriven);
    let scan_stw = run(entries, vsize, 2, 0, SchedulerMode::FullScan);
    let event_pre = run(entries, vsize, 2, 2, SchedulerMode::EventDriven);
    let scan_pre = run(entries, vsize, 2, 2, SchedulerMode::FullScan);
    assert_eq!(event_stw.fingerprint, scan_stw.fingerprint, "scheduler cores diverged");
    assert_eq!(event_stw.fingerprint, event_pre.fingerprint, "pre-copy diverged from stop-the-world");
    assert_eq!(event_pre.fingerprint, scan_pre.fingerprint, "cores diverged under pre-copy");
    assert!(event_pre.outcome.report().precopy.enabled);
    assert_eq!(
        event_stw.outcome.report().transfer.per_process,
        event_pre.outcome.report().transfer.per_process,
        "per-process reports diverged under pre-copy"
    );

    // One JSON document on stdout: the sweep rows plus the BenchGroup's
    // median/min host-time summary.
    let doc = Json::obj([
        ("experiment", Json::str("intra_pair")),
        ("rows", Json::Arr(rows)),
        ("host_time", group.to_json()),
    ]);
    println!("{}", doc.render());
}
