//! Fleet-scale request-latency percentiles measured *through* a live update.
//!
//! For each fleet size this bench boots a [`FleetServer`] (one reader thread
//! per connection, event-driven scheduling), establishes the whole fleet,
//! then drives paced open-loop requests (fixed interarrival, the
//! `WorkloadSpec::interarrival_ns` pacing model) against strided sessions
//! while recording per-request latency in *simulated* time. Mid-run it fires
//! a full pre-copy live update to version 2 and keeps measuring:
//!
//! * `steady`   — requests served by v1 before the update;
//! * `update`   — requests served by v1 *while* pre-copy rounds run (the
//!   paper's service-during-update claim), injected via the pipeline's
//!   pre-copy hook;
//! * `blackout` — probe requests sent after the last pre-copy round and
//!   answered only by v2 after commit: their latency is the full quiesce +
//!   trace-and-transfer + commit window, the tail operators actually fear;
//! * `post`     — requests served by v2 after the update (session descriptors
//!   recovered from the transferred `conn_fds` global).
//!
//! A second update (v2 → v3) is then forced through the *post-copy*
//! pipeline: the commit parks the session table's residual, and the drain
//! hook stores precomputed slot values into the parked table — every store
//! traps and blocks until the touched objects fault in. The per-trap
//! service latencies (`PostcopySummary::trap_service_ns`) feed a
//! `trap_service` percentile row: the tail post-copy trades the blackout
//! window for.
//!
//! Every phase reports p50/p99/p99.9 (nearest rank, exact over the recorded
//! samples), plus host wall nanoseconds per steady request — the per-event
//! cost the CI smoke step asserts stays flat (within 2x) across fleet sizes.
//! Simulated-time latencies are host-independent, so the percentile rows are
//! reproducible; only `wall_per_event_ns` varies with the machine.
//!
//! `FLEET_LATENCY_SIZES` (comma-separated) overrides the default sweep —
//! the CI smoke step runs a reduced one and uploads
//! `BENCH_fleet_latency.json`.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use mcr_bench::{percentile_of, FleetServer, Json, FLEET_PORT};
use mcr_core::runtime::{
    boot, run_round, run_rounds, BootOptions, McrInstance, PrecopyOptions, SchedulerMode, TransferMode,
    UpdateOptions, UpdatePipeline,
};
use mcr_procsim::{ConnId, Kernel, SimDuration};
use mcr_typemeta::InstrumentationConfig;

/// Fleet sizes swept by default. Overridable via `FLEET_LATENCY_SIZES`.
const FLEET_SIZES: [usize; 2] = [10_000, 100_000];
/// Open-loop pacing: simulated nanoseconds between request arrivals.
const INTERARRIVAL_NS: u64 = 10_000;
/// Requests measured before the update.
const STEADY_REQUESTS: usize = 1_500;
/// Requests served by the old version per pre-copy round.
const UPDATE_REQUESTS: usize = 200;
/// Probe requests parked through the quiescence window.
const BLACKOUT_REQUESTS: usize = 50;
/// Requests measured after the update.
const POST_REQUESTS: usize = 500;
/// Stride walking the fleet so consecutive requests hit distant sessions.
const SLOT_STRIDE: usize = 9973;
/// Strided session-table slots the post-copy drain hook rewrites: each
/// store targets the parked table, trapping on a not-yet-transferred page
/// (the trap-service latency source).
const TRAP_REWRITES: usize = 64;

fn fleet_sizes() -> Vec<usize> {
    match std::env::var("FLEET_LATENCY_SIZES") {
        Ok(list) => {
            let sizes: Vec<usize> = list.split(',').filter_map(|t| t.trim().parse().ok()).collect();
            assert!(!sizes.is_empty(), "FLEET_LATENCY_SIZES must name at least one fleet size");
            sizes
        }
        Err(_) => FLEET_SIZES.to_vec(),
    }
}

/// One paced request: advance the open-loop clock, send on `conn`, run the
/// instance until the reply arrives, and return the simulated latency in
/// milliseconds.
fn timed_request(kernel: &mut Kernel, instance: &mut McrInstance, conn: ConnId) -> f64 {
    kernel.advance_clock(SimDuration(INTERARRIVAL_NS));
    let t0 = kernel.now();
    kernel.client_send(conn, b"ping".to_vec()).expect("send");
    for _ in 0..8 {
        run_round(kernel, instance).expect("round");
        if kernel.client_recv(conn).is_some() {
            return kernel.now().duration_since(t0).0 as f64 / 1e6;
        }
    }
    panic!("request on {conn:?} went unanswered");
}

fn phase_json(name: &str, samples: &[f64]) -> (&'static str, Json) {
    let json = Json::obj([
        ("requests", samples.len().into()),
        ("p50_ms", Json::Num(percentile_of(samples, 50.0))),
        ("p99_ms", Json::Num(percentile_of(samples, 99.0))),
        ("p999_ms", Json::Num(percentile_of(samples, 99.9))),
        ("max_ms", Json::Num(samples.iter().copied().fold(0.0, f64::max))),
    ]);
    // Leak-free static-str mapping keeps Json::obj's simple key type.
    match name {
        "steady" => ("steady", json),
        "update" => ("update", json),
        "blackout" => ("blackout", json),
        "trap_service" => ("trap_service", json),
        _ => ("post", json),
    }
}

fn run_size(threads: usize) -> Json {
    let mut kernel = Kernel::new();
    let opts = BootOptions { scheduler: SchedulerMode::EventDriven, ..Default::default() };
    let mut v1 = boot(&mut kernel, Box::new(FleetServer::new(threads)), &opts).expect("fleet boots");
    let conns: Vec<ConnId> = (0..threads).map(|_| kernel.client_connect(FLEET_PORT).unwrap()).collect();
    run_rounds(&mut kernel, &mut v1, 2).expect("fleet setup");
    assert!(conns.iter().all(|&c| kernel.client_is_accepted(c)), "all sessions accepted");

    // Steady phase: paced requests against strided sessions, timed on the
    // host to get the per-event wall cost.
    let mut steady = Vec::with_capacity(STEADY_REQUESTS);
    let wall = Instant::now();
    for i in 0..STEADY_REQUESTS {
        let conn = conns[(i * SLOT_STRIDE) % threads];
        steady.push(timed_request(&mut kernel, &mut v1, conn));
    }
    let wall_per_event_ns = wall.elapsed().as_nanos() as f64 / STEADY_REQUESTS as f64;

    // The update: pre-copy rounds keep v1 serving (the hook's requests are
    // the `update` phase); after its batch the hook launches the blackout
    // probes, which stall through quiesce/transfer/commit and are answered
    // by v2 only.
    let update_samples: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
    let probes: Rc<RefCell<Vec<(ConnId, u64)>>> = Rc::new(RefCell::new(Vec::new()));
    let hook_update = Rc::clone(&update_samples);
    let hook_probes = Rc::clone(&probes);
    let hook_conns = conns.clone();
    let hook = Box::new(move |kernel: &mut Kernel, old: &mut McrInstance, _round: usize| {
        // Served-during-update batch (only the first pre-copy round issues
        // it; convergence usually ends the iteration right after).
        if hook_update.borrow().is_empty() {
            for i in 0..UPDATE_REQUESTS {
                let conn = hook_conns[(1 + i * SLOT_STRIDE) % hook_conns.len()];
                hook_update.borrow_mut().push(timed_request(kernel, old, conn));
            }
            for i in 0..BLACKOUT_REQUESTS {
                kernel.advance_clock(SimDuration(INTERARRIVAL_NS));
                let conn = hook_conns[(2 + i * SLOT_STRIDE) % hook_conns.len()];
                kernel.client_send(conn, b"ping".to_vec()).expect("probe send");
                hook_probes.borrow_mut().push((conn, kernel.now().0));
            }
        }
    });
    let update_opts = UpdateOptions {
        scheduler: SchedulerMode::EventDriven,
        precopy: PrecopyOptions { rounds: 2, convergence_bytes: 0, serve_rounds: 1 },
        ..Default::default()
    };
    let pipeline = UpdatePipeline::for_options(&update_opts).with_precopy_hook(hook);
    let (mut v2, outcome) = pipeline.run(
        &mut kernel,
        v1,
        Box::new(FleetServer::with_version(threads, 2)),
        InstrumentationConfig::full(),
        &update_opts,
    );
    assert!(outcome.is_committed(), "{threads}: update commits: {:?}", outcome.conflicts());
    let report = outcome.report();
    let update_total_ms = report.timings.total.as_millis_f64();

    // Collect the blackout probes: v2 answers them from its transferred
    // session table; their latency spans the whole update window.
    let mut blackout = Vec::new();
    run_rounds(&mut kernel, &mut v2, 3).expect("post-update rounds");
    for &(conn, t0) in probes.borrow().iter() {
        let reply = kernel.client_recv(conn).expect("blackout probe answered after commit");
        assert!(!reply.is_empty());
        blackout.push((kernel.now().0 - t0) as f64 / 1e6);
    }
    assert_eq!(blackout.len(), BLACKOUT_REQUESTS, "{threads}: all probes crossed the update");

    // Post phase: v2 serves the same fleet.
    let mut post = Vec::with_capacity(POST_REQUESTS);
    for i in 0..POST_REQUESTS {
        let conn = conns[(3 + i * SLOT_STRIDE) % threads];
        post.push(timed_request(&mut kernel, &mut v2, conn));
    }

    // Trap-service phase: a second update (v2 → v3) forced through the
    // post-copy pipeline. The commit parks the session table's residual
    // behind access traps; during the drain, the hook stores into the
    // parked table — each store blocks until the parked objects on the
    // touched pages are faulted in, and the per-trap service latency (fixed
    // trap entry cost + fault-in apply cost) is the tail post-copy trades
    // the blackout window for. The stored values are precomputed from the
    // still-serving v2 table (reads of parked pages return unapplied bytes,
    // so the hook must not read-modify-write): rewriting the exact slot
    // values the transfer applies anyway leaves every session intact while
    // the stores still trap.
    let conn_fds_addr = v2.state.statics.lookup("conn_fds").expect("fleet server defines conn_fds").addr;
    let trap_writes: Vec<(u64, u32)> = {
        let pid = v2.state.processes[0];
        let space = kernel.process(pid).expect("v2 process").space();
        let base = space.read_ptr(conn_fds_addr).expect("conn_fds points at the table");
        (0..TRAP_REWRITES.min(threads))
            .map(|i| {
                let slot = (i * SLOT_STRIDE) % threads;
                let off = 4 * slot as u64;
                (off, space.read_u32(base.offset(off)).expect("slot read"))
            })
            .collect()
    };
    let fired = Rc::new(RefCell::new(false));
    let hook_fired = Rc::clone(&fired);
    let drain_hook = Box::new(move |kernel: &mut Kernel, new: &mut McrInstance, _round: usize| {
        if std::mem::replace(&mut *hook_fired.borrow_mut(), true) {
            return;
        }
        for &pid in &new.state.processes {
            let Ok(proc) = kernel.process_mut(pid) else { continue };
            let Ok(base) = proc.space().read_ptr(conn_fds_addr) else { continue };
            for &(off, val) in &trap_writes {
                proc.space_mut().write_u32(base.offset(off), val).expect("trap rewrite");
            }
        }
    });
    let postcopy_opts = UpdateOptions {
        scheduler: SchedulerMode::EventDriven,
        mode: TransferMode::Postcopy,
        precopy: PrecopyOptions::disabled(),
        ..Default::default()
    };
    let pipeline = UpdatePipeline::for_options(&postcopy_opts).with_postcopy_hook(drain_hook);
    let (mut v3, outcome2) = pipeline.run(
        &mut kernel,
        v2,
        Box::new(FleetServer::with_version(threads, 3)),
        InstrumentationConfig::full(),
        &postcopy_opts,
    );
    assert!(outcome2.is_committed(), "{threads}: post-copy update commits: {:?}", outcome2.conflicts());
    let pc = &outcome2.report().postcopy;
    assert!(pc.enabled && pc.deferred_objects > 0, "{threads}: nothing was parked at commit");
    assert!(
        !pc.trap_service_ns.is_empty(),
        "{threads}: drain rewrites never trapped on the parked session table"
    );
    let trap_service: Vec<f64> = pc.trap_service_ns.iter().map(|&ns| ns as f64 / 1e6).collect();

    // The original fleet still answers on v3 after the drain.
    let mut post2 = Vec::with_capacity(50);
    for i in 0..50 {
        let conn = conns[(4 + i * SLOT_STRIDE) % threads];
        post2.push(timed_request(&mut kernel, &mut v3, conn));
    }
    assert!(post2.iter().all(|&ms| ms > 0.0));

    let update = update_samples.borrow();
    assert_eq!(update.len(), UPDATE_REQUESTS, "{threads}: pre-copy rounds served the update batch");
    eprintln!(
        "threads {threads:>7}: steady p50 {:.4} ms p99 {:.4} ms | update p99 {:.4} ms | \
         blackout p99 {:.3} ms | post p99 {:.4} ms | trap p50 {:.4} ms p99 {:.4} ms ({} traps) | \
         update total {update_total_ms:.3} ms | {wall_per_event_ns:.0} ns/event",
        percentile_of(&steady, 50.0),
        percentile_of(&steady, 99.0),
        percentile_of(&update, 99.0),
        percentile_of(&blackout, 99.0),
        percentile_of(&post, 99.0),
        percentile_of(&trap_service, 50.0),
        percentile_of(&trap_service, 99.0),
        trap_service.len(),
    );

    Json::obj([
        ("threads", threads.into()),
        ("interarrival_ns", INTERARRIVAL_NS.into()),
        phase_json("steady", &steady),
        phase_json("update", &update),
        phase_json("blackout", &blackout),
        phase_json("post", &post),
        phase_json("trap_service", &trap_service),
        ("traps", pc.traps.into()),
        ("trap_objects", pc.trap_objects.into()),
        ("drained_objects", pc.drained_objects.into()),
        ("update_total_ms", Json::Num(update_total_ms)),
        ("update_committed", true.into()),
        ("wall_per_event_ns", Json::Num(wall_per_event_ns)),
    ])
}

fn main() {
    let rows: Vec<Json> = fleet_sizes().into_iter().map(run_size).collect();
    let doc = Json::obj([("experiment", Json::str("fleet_latency")), ("rows", Json::Arr(rows))]);
    println!("{}", doc.render());
}
