//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! dirty-object tracking on/off and parallel vs sequential state transfer.
//! Runs on the in-tree harness (`mcr_bench::BenchGroup`) because the build
//! environment has no network access for Criterion.

use mcr_bench::{boot_program, run_standard_workload, BenchGroup};
use mcr_core::runtime::{live_update, UpdateOptions};
use mcr_core::TraceOptions;
use mcr_servers::program_by_name;
use mcr_typemeta::InstrumentationConfig;
use mcr_workload::open_idle_connections;

fn update_duration(dirty_tracking: bool) -> (f64, f64) {
    let (mut kernel, mut v1) = boot_program("httpd", 1, InstrumentationConfig::full());
    run_standard_workload(&mut kernel, &mut v1, "httpd", 20);
    open_idle_connections(&mut kernel, &mut v1, 80, 25).unwrap();
    let opts = UpdateOptions {
        trace: TraceOptions { use_dirty_tracking: dirty_tracking, ..Default::default() },
        ..Default::default()
    };
    let (_v2, outcome) = live_update(
        &mut kernel,
        v1,
        Box::new(program_by_name("httpd", 2)),
        InstrumentationConfig::full(),
        &opts,
    );
    assert!(outcome.is_committed());
    let r = outcome.report();
    (r.timings.state_transfer.as_millis_f64(), r.timings.state_transfer_serial.as_millis_f64())
}

fn main() {
    let mut group = BenchGroup::new("ablation");
    for dirty in [true, false] {
        let label = if dirty { "dirty-tracking-on" } else { "dirty-tracking-off" };
        group.bench(format!("httpd_update/{label}"), move || update_duration(dirty));
    }
    group.finish();
}
