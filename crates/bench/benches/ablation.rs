//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! dirty-object tracking on/off and parallel vs sequential state transfer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcr_bench::{boot_program, run_standard_workload};
use mcr_core::runtime::{live_update, UpdateOptions};
use mcr_core::TraceOptions;
use mcr_servers::program_by_name;
use mcr_typemeta::InstrumentationConfig;
use mcr_workload::open_idle_connections;
use std::time::Duration;

fn update_duration(dirty_tracking: bool) -> (f64, f64) {
    let (mut kernel, mut v1) = boot_program("httpd", 1, InstrumentationConfig::full());
    run_standard_workload(&mut kernel, &mut v1, "httpd", 20);
    open_idle_connections(&mut kernel, &mut v1, 80, 25).unwrap();
    let opts = UpdateOptions {
        trace: TraceOptions { use_dirty_tracking: dirty_tracking, ..Default::default() },
        ..Default::default()
    };
    let (_v2, outcome) =
        live_update(&mut kernel, v1, Box::new(program_by_name("httpd", 2)), InstrumentationConfig::full(), &opts);
    assert!(outcome.is_committed());
    let r = outcome.report();
    (r.timings.state_transfer.as_millis_f64(), r.timings.state_transfer_serial.as_millis_f64())
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    for dirty in [true, false] {
        let label = if dirty { "dirty-tracking-on" } else { "dirty-tracking-off" };
        group.bench_with_input(BenchmarkId::new("httpd_update", label), &dirty, |b, &dirty| {
            b.iter(|| update_duration(dirty));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
