//! Criterion benchmark behind the SPEC-style allocator experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcr_workload::{run_alloc_bench, AllocBenchSpec};
use std::time::Duration;

fn bench_alloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_instrumentation");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    for spec in AllocBenchSpec::spec_suite(5) {
        for instrumented in [false, true] {
            let label = if instrumented { "instr" } else { "base" };
            group.bench_with_input(
                BenchmarkId::new(&spec.name, label),
                &(spec.clone(), instrumented),
                |b, (spec, instrumented)| {
                    b.iter(|| run_alloc_bench(spec, *instrumented));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_alloc);
criterion_main!(benches);
