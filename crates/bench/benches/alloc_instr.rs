//! Benchmark behind the SPEC-style allocator experiment. Runs on the in-tree
//! harness (`mcr_bench::BenchGroup`) because the build environment has no
//! network access for Criterion.

use mcr_bench::BenchGroup;
use mcr_workload::{run_alloc_bench, AllocBenchSpec};

fn main() {
    let mut group = BenchGroup::new("alloc_instrumentation");
    for spec in AllocBenchSpec::spec_suite(5) {
        for instrumented in [false, true] {
            let label = if instrumented { "instr" } else { "base" };
            let spec = spec.clone();
            group.bench(format!("{}/{label}", spec.name), move || run_alloc_bench(&spec, instrumented));
        }
    }
    group.finish();
}
