//! Adaptive state-transfer sweep: write rates × heap sizes × transfer
//! modes × scheduler cores.
//!
//! For every [`PrecopyScenario`] (read-mostly vs. write-heavy), every
//! heap-size factor and both scheduler cores, this bench runs the same
//! update under all four [`TransferMode`]s — stop-the-world, pre-copy,
//! post-copy and adaptive — with an identical deterministic write schedule
//! (three pre-quiesce batches, three post-resume scratch stamps; see
//! [`mcr_bench::adaptive_update`]) and emits one JSON row per run.
//!
//! Asserted here (and re-checked by the CI smoke step from the JSON):
//!
//! * **Equivalence**: within a sweep point, all four modes and both
//!   scheduler cores converge to byte-identical kernel fingerprints and
//!   per-process transfer reports, with empty conflict sets.
//! * **Adaptive dominance**: the adaptive mode's downtime is at most every
//!   static mode's downtime on every sweep point.
//! * **Post-copy headline**: on the write-heavy scenario, post-copy
//!   downtime is at most 50% of the stop-the-world window.
//! * **Post-copy mechanics**: the forced post-copy run defers work on every
//!   point and services at least one access trap (the machinery is
//!   exercised, not bypassed).

use mcr_bench::{adaptive_update, Json};
use mcr_core::runtime::{SchedulerMode, TransferMode, UpdateOutcome};
use mcr_servers::precopy_scenarios;

const SIZE_FACTORS: [u64; 3] = [1, 2, 4];
const MODES: [(TransferMode, &str); 4] = [
    (TransferMode::StopTheWorld, "stop-the-world"),
    (TransferMode::Precopy, "precopy"),
    (TransferMode::Postcopy, "postcopy"),
    (TransferMode::Adaptive, "adaptive"),
];

struct Run {
    fingerprint: u64,
    outcome: UpdateOutcome,
}

fn run(scenario: &mcr_servers::PrecopyScenario, size: u64, mode: TransferMode, core: SchedulerMode) -> Run {
    let (fingerprint, outcome) = adaptive_update(scenario, size, mode, core);
    assert!(
        outcome.is_committed(),
        "{} size {size} {mode:?} {core:?}: {:?}",
        scenario.name,
        outcome.conflicts()
    );
    Run { fingerprint, outcome }
}

fn row(scenario: &str, size: u64, mode: &str, core: SchedulerMode, r: &Run) -> Json {
    let report = r.outcome.report();
    let pairs = report.processes_matched + report.processes_recreated;
    Json::obj([
        ("scenario", Json::str(scenario)),
        ("size_factor", size.into()),
        ("mode", Json::str(mode)),
        ("scheduler", Json::str(format!("{core:?}"))),
        ("pairs", (pairs as u64).into()),
        ("downtime_ns", report.timings.downtime.0.into()),
        ("trap_service_ns", report.timings.trap_service.0.into()),
        ("postcopy_drain_ns", report.timings.postcopy_drain.0.into()),
        ("total_ns", report.timings.total.0.into()),
        ("state_transfer_ns", report.timings.state_transfer.0.into()),
        ("synced_pairs", (report.postcopy.synced_pairs as u64).into()),
        ("deferred_pairs", (report.postcopy.deferred_pairs as u64).into()),
        ("deferred_objects", report.postcopy.deferred_objects.into()),
        ("deferred_bytes", report.postcopy.deferred_bytes.into()),
        ("traps", report.postcopy.traps.into()),
        ("trap_objects", report.postcopy.trap_objects.into()),
        ("drained_objects", report.postcopy.drained_objects.into()),
        ("drain_rounds", report.postcopy.drain_rounds.into()),
        ("objects_transferred", report.transfer.objects_transferred().into()),
        ("fingerprint", Json::str(format!("{:016x}", r.fingerprint))),
    ])
}

fn main() {
    let mut rows = Vec::new();
    for scenario in precopy_scenarios() {
        for size in SIZE_FACTORS {
            let mut per_core_fingerprints = Vec::new();
            for core in [SchedulerMode::EventDriven, SchedulerMode::FullScan] {
                let runs: Vec<Run> =
                    MODES.iter().map(|&(mode, _)| run(&scenario, size, mode, core)).collect();
                let [stw, precopy, postcopy, adaptive] = &runs[..] else { unreachable!() };

                let stw_report = stw.outcome.report();
                let pairs = stw_report.processes_matched + stw_report.processes_recreated;
                assert!(pairs >= 4, "{}: expected >= 4 matched pairs, got {pairs}", scenario.name);

                // Equivalence: every mode converges to the same final
                // kernel state and the same logical transfer.
                for (r, &(_, label)) in runs.iter().zip(MODES.iter()) {
                    assert_eq!(
                        r.fingerprint, stw.fingerprint,
                        "{} size {size} {core:?}: {label} diverged from stop-the-world",
                        scenario.name
                    );
                    assert_eq!(
                        r.outcome.report().transfer.per_process,
                        stw_report.transfer.per_process,
                        "{} size {size} {core:?}: {label} per-process reports diverged",
                        scenario.name
                    );
                }

                // Post-copy exercises the trap machinery on every point.
                let post_report = postcopy.outcome.report();
                assert!(post_report.postcopy.deferred_pairs >= 1, "{} size {size}", scenario.name);
                assert!(
                    post_report.postcopy.traps >= 1,
                    "{} size {size}: no access trap fired",
                    scenario.name
                );
                assert!(post_report.timings.trap_service.0 > 0);

                // The headline inequalities.
                let down = |r: &Run| r.outcome.report().timings.downtime.0;
                for (r, &(_, label)) in runs.iter().zip(MODES.iter()).take(3) {
                    assert!(
                        down(adaptive) <= down(r),
                        "{} size {size} {core:?}: adaptive downtime {} ns exceeds {label}'s {} ns",
                        scenario.name,
                        down(adaptive),
                        down(r)
                    );
                }
                if scenario.name == "write-heavy" {
                    assert!(
                        down(postcopy) * 2 <= down(stw),
                        "{} size {size} {core:?}: post-copy downtime {} ns not <= 50% of {} ns",
                        scenario.name,
                        down(postcopy),
                        down(stw)
                    );
                }

                eprintln!(
                    "{:<12} size {size} {core:?}: stw {:>9} pre {:>9} post {:>9} (traps {:>3}) adaptive {:>9} ns \
                     [{} synced / {} deferred]",
                    scenario.name,
                    down(stw),
                    down(precopy),
                    down(postcopy),
                    post_report.postcopy.traps,
                    down(adaptive),
                    adaptive.outcome.report().postcopy.synced_pairs,
                    adaptive.outcome.report().postcopy.deferred_pairs,
                );
                per_core_fingerprints.push(stw.fingerprint);
                for (r, &(_, label)) in runs.iter().zip(MODES.iter()) {
                    rows.push(row(scenario.name, size, label, core, r));
                }
            }
            // Both scheduler cores agree byte-for-byte on every mode (the
            // per-core loop already proved all modes agree within a core).
            assert_eq!(
                per_core_fingerprints[0], per_core_fingerprints[1],
                "{} size {size}: scheduler cores diverged",
                scenario.name
            );
        }
    }

    let doc = Json::obj([("experiment", Json::str("adaptive_transfer")), ("rows", Json::Arr(rows))]);
    println!("{}", doc.render());
}
