//! Version-agnostic call-stack identifiers.
//!
//! Mutable reinitialization matches every system call observed at replay time
//! against the corresponding call recorded in the old version's startup log.
//! The match key is a *call stack ID*: a hash of all the active function
//! names on the calling thread's stack (paper §5). The same identifiers are
//! also used to pair threads and processes across versions (creation-time
//! call stacks) and to match dynamic objects reallocated at startup.

/// A call-stack identifier: a stable hash over the active function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallStackId(pub u64);

impl CallStackId {
    /// Computes the identifier of a call stack given the active function
    /// names, outermost first.
    ///
    /// The hash is FNV-1a over the names separated by a sentinel byte, which
    /// keeps it stable across program versions as long as the function names
    /// on the path are unchanged (function *renaming* between versions changes
    /// the identifier — the conservative behaviour the paper accepts).
    pub fn from_frames<S: AsRef<str>>(frames: &[S]) -> Self {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for frame in frames {
            for b in frame.as_ref().as_bytes() {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
            hash ^= 0x1f;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        CallStackId(hash)
    }

    /// The identifier of an empty call stack.
    pub fn empty() -> Self {
        Self::from_frames::<&str>(&[])
    }
}

impl std::fmt::Display for CallStackId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cs:{:#018x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_stacks_hash_equal() {
        let a = CallStackId::from_frames(&["main", "server_init", "socket_setup"]);
        let b = CallStackId::from_frames(&["main", "server_init", "socket_setup"]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_stacks_hash_differently() {
        let a = CallStackId::from_frames(&["main", "server_init"]);
        let b = CallStackId::from_frames(&["main", "worker_init"]);
        let c = CallStackId::from_frames(&["main"]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn frame_order_matters() {
        let a = CallStackId::from_frames(&["main", "init"]);
        let b = CallStackId::from_frames(&["init", "main"]);
        assert_ne!(a, b);
    }

    #[test]
    fn concatenation_is_not_ambiguous() {
        // ["ab", "c"] must differ from ["a", "bc"].
        let a = CallStackId::from_frames(&["ab", "c"]);
        let b = CallStackId::from_frames(&["a", "bc"]);
        assert_ne!(a, b);
    }

    #[test]
    fn version_agnostic_across_string_types() {
        let owned: Vec<String> = vec!["main".into(), "server_init".into()];
        let a = CallStackId::from_frames(&owned);
        let b = CallStackId::from_frames(&["main", "server_init"]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_stack_is_stable() {
        assert_eq!(CallStackId::empty(), CallStackId::from_frames::<&str>(&[]));
        assert!(CallStackId::empty().to_string().starts_with("cs:"));
    }
}
