//! Durable checkpoints: versioned, checksummed manifests plus crash-consistent
//! restore.
//!
//! A checkpoint captures a quiesced instance as two kinds of blobs in a
//! [`Store`]:
//!
//! * **shards** — the page *deltas* (every page whose soft-dirty stamp is
//!   nonzero, i.e. written after startup), partitioned into contiguous,
//!   cost-balanced ranges by the same partitioner the intra-pair transfer
//!   engine uses, and assembled by parallel writer threads;
//! * **a manifest** — program identity, instrumentation config, memory
//!   layout, file system, client endpoints, per-process topology (threads,
//!   regions, live heap chunks, descriptor tables), the kernel object table,
//!   the shard table (per-shard length + checksum), a whole-state digest and
//!   a trailing self-checksum.
//!
//! The commit protocol is shards → fsync → manifest → fsync: a manifest is
//! only durable once everything it names is, so any crash mid-checkpoint
//! leaves either a fully valid new version or a truncated/torn one that
//! validation rejects, falling back to the previous retained version.
//!
//! Restore does **not** deserialize a kernel wholesale. It re-boots the same
//! program deterministically in a *scratch* kernel (reproducing pids, tids,
//! object ids and all startup-time memory exactly), then overlays the
//! recorded post-startup state: page deltas, heap-chunk reconcile, descriptor
//! and kernel-object reconcile, client endpoints and the virtual clock — and
//! finally proves fidelity by re-collecting the state and comparing digests.
//! The serving kernel is never touched: a restore either returns a complete
//! new kernel or a typed [`RestoreError`], so no partial restore can ever be
//! observed (the "no partial restore" guarantee is structural).
//!
//! Known residue (documented, checked where possible): instances that have
//! already been live-updated (generation ≥ 2) do not re-boot into their
//! checkpointed memory image and are rejected by the digest check; Rust-side
//! program-struct fields and instance counters reset to their post-startup
//! values; post-checkpoint client connections are lost (honest crash
//! semantics).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use mcr_procsim::{
    Addr, AllocSite, ChunkInfo, ClientSnapshot, Fd, Kernel, KernelObject, ObjId, Pid, RegionKind,
    SimDuration, Store, StoreError, TypeTag, UnixMessage, PAGE_SIZE,
};
use mcr_typemeta::{InstrumentationConfig, InstrumentationLevel};

use crate::error::{McrError, McrResult};
use crate::program::Program;
use crate::runtime::scheduler::{
    all_quiesced, boot, resume, run_rounds, wait_quiescence, BootOptions, McrInstance, SchedulerMode,
};
use crate::transfer::engine::partition_contiguous;

/// Magic bytes opening every manifest blob.
const MAGIC: &[u8; 8] = b"MCRCKPT1";

/// On-disk format version; bumping it makes old manifests version-skewed.
pub const FORMAT_VERSION: u32 = 1;

/// Simulated cost charged per page-delta record written to a shard, plus one
/// nanosecond per payload byte (models serialization + device bandwidth).
const RECORD_COST_NS: u64 = 2_000;

/// Quiescence budget (barrier passes) for `checkpoint_now` / restore.
const QUIESCE_ROUNDS: usize = 64;

/// Labels of the enumerable restore steps, in execution order. The
/// crash-consistency campaign injects a failure at each index (1-based) via
/// the `fault_at_step` argument of [`restore_latest`].
pub const RESTORE_STEPS: [&str; 15] = [
    "read-manifest",
    "read-shards",
    "preinstall-files",
    "boot",
    "quiesce",
    "validate-topology",
    "files-reconcile",
    "heap-reconcile",
    "memory-overlay",
    "fd-prune",
    "objects-restore",
    "fd-install",
    "clients-restore",
    "clock-advance",
    "digest-check",
];

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Failure while writing a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The backing store failed (possibly an injected crash).
    Store(StoreError),
    /// The instance could not be quiesced for an app-consistent snapshot.
    Quiescence(String),
    /// The instance cannot be checkpointed (e.g. it has no processes).
    Unsupported(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Store(e) => write!(f, "checkpoint store failure: {e}"),
            CheckpointError::Quiescence(e) => write!(f, "checkpoint quiescence failure: {e}"),
            CheckpointError::Unsupported(e) => write!(f, "checkpoint unsupported: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<StoreError> for CheckpointError {
    fn from(e: StoreError) -> Self {
        CheckpointError::Store(e)
    }
}

/// Typed rejection reasons of the restore path. Every reason leaves the
/// serving side untouched — restore builds into a scratch kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The store holds no (valid or invalid) checkpoint at all.
    NoCheckpoint,
    /// The backing store failed while reading.
    Store(StoreError),
    /// A blob is shorter than its framing requires (torn or truncated).
    Truncated {
        /// Offending blob name.
        blob: String,
    },
    /// A blob's checksum does not match its contents (torn write, bit rot).
    ChecksumMismatch {
        /// Offending blob name.
        blob: String,
    },
    /// The manifest's format version or the program's identity/version does
    /// not match what the restorer can revive.
    VersionSkew {
        /// What the restorer expected.
        expected: String,
        /// What the manifest / booted program actually carries.
        found: String,
    },
    /// The deterministic re-boot produced a different process/thread
    /// topology than the manifest records.
    TopologyMismatch(String),
    /// The scratch kernel's clock passed the manifest's checkpoint time.
    ClockSkew {
        /// Checkpoint-time clock (ns).
        manifest_ns: u64,
        /// Scratch clock after boot (ns).
        boot_ns: u64,
    },
    /// A reconcile step could not converge the scratch kernel.
    Reconcile(String),
    /// The re-collected state digest differs from the manifest digest — the
    /// restored kernel is *not* byte-identical, so it is discarded.
    DigestMismatch {
        /// Digest recorded in the manifest.
        expected: u64,
        /// Digest of the restored scratch kernel.
        found: u64,
    },
    /// The program re-boot failed in the scratch kernel.
    Boot(String),
    /// An injected [`crate::runtime::chaos::FaultSite::RestoreStep`] fault.
    FaultInjected {
        /// 1-based step index (see [`RESTORE_STEPS`]).
        step: u64,
        /// Step label.
        label: &'static str,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::NoCheckpoint => write!(f, "no checkpoint in store"),
            RestoreError::Store(e) => write!(f, "restore store failure: {e}"),
            RestoreError::Truncated { blob } => write!(f, "blob {blob:?} truncated"),
            RestoreError::ChecksumMismatch { blob } => write!(f, "blob {blob:?} checksum mismatch"),
            RestoreError::VersionSkew { expected, found } => {
                write!(f, "version skew: expected {expected}, found {found}")
            }
            RestoreError::TopologyMismatch(e) => write!(f, "topology mismatch: {e}"),
            RestoreError::ClockSkew { manifest_ns, boot_ns } => {
                write!(f, "clock skew: manifest at {manifest_ns}ns, boot already at {boot_ns}ns")
            }
            RestoreError::Reconcile(e) => write!(f, "reconcile failure: {e}"),
            RestoreError::DigestMismatch { expected, found } => {
                write!(f, "state digest mismatch: manifest {expected:#x}, restored {found:#x}")
            }
            RestoreError::Boot(e) => write!(f, "scratch re-boot failure: {e}"),
            RestoreError::FaultInjected { step, label } => {
                write!(f, "injected restore fault at step {step} ({label})")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

impl RestoreError {
    /// Whether the error condemns *one manifest version* (corrupt or
    /// unreadable blobs) rather than the restore attempt as a whole —
    /// [`restore_latest`] falls back to the next older version for these.
    fn is_version_local(&self) -> bool {
        matches!(
            self,
            RestoreError::Store(_) | RestoreError::Truncated { .. } | RestoreError::ChecksumMismatch { .. }
        )
    }
}

// ---------------------------------------------------------------------------
// Options / summaries
// ---------------------------------------------------------------------------

/// Tuning knobs for checkpoint writing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointOptions {
    /// Parallel shard writers (and shard count) for the page-delta blobs.
    pub shard_writers: usize,
    /// How many checkpoint versions to retain; older ones are deleted after
    /// a successful write.
    pub retain: usize,
}

impl Default for CheckpointOptions {
    fn default() -> Self {
        CheckpointOptions { shard_writers: 4, retain: 2 }
    }
}

/// What one checkpoint write produced.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CheckpointSummary {
    /// Version number of the new checkpoint.
    pub version: u64,
    /// Page-delta records written across all shards.
    pub page_deltas: usize,
    /// Total delta payload bytes.
    pub delta_bytes: u64,
    /// Shard blobs written.
    pub shards: usize,
    /// Manifest blob size in bytes.
    pub manifest_bytes: u64,
    /// Store blocks this checkpoint wrote (shards + manifest) — the size of
    /// the torn-write/crash fault-site space a chaos campaign can inject
    /// into.
    pub blocks: u64,
    /// Simulated cost of writing the shards serially.
    pub serial_cost: SimDuration,
    /// Simulated cost actually charged: the slowest parallel shard writer.
    pub parallel_cost: SimDuration,
}

impl CheckpointSummary {
    /// Serial-over-parallel speedup of the shard writeback.
    pub fn speedup(&self) -> f64 {
        if self.parallel_cost.0 == 0 {
            1.0
        } else {
            self.serial_cost.0 as f64 / self.parallel_cost.0 as f64
        }
    }
}

/// What one restore produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Manifest version that was revived.
    pub version: u64,
    /// Restore steps completed (== [`RESTORE_STEPS`] length on success).
    pub steps_completed: u64,
    /// Page-delta records applied.
    pub deltas_applied: usize,
    /// Scratch heap chunks freed (allocated at startup, freed before the
    /// checkpoint).
    pub freed_chunks: usize,
    /// Heap chunks re-placed from the manifest (allocated after startup).
    pub reallocated_chunks: usize,
    /// Scratch descriptors pruned.
    pub fds_pruned: usize,
    /// Manifest descriptors installed.
    pub fds_installed: usize,
    /// Kernel objects re-created at forced ids.
    pub objects_inserted: usize,
    /// Manifest versions that failed validation before this one succeeded.
    pub versions_rejected: usize,
}

/// A fully revived kernel + instance pair, still quiesced; the caller swaps
/// it in and [`resume`]s.
pub struct RestoredInstance {
    /// The scratch kernel, now byte-identical to the checkpointed one.
    pub kernel: Kernel,
    /// The revived instance (freshly re-booted program, reconciled state).
    pub instance: McrInstance,
    /// Restore statistics.
    pub report: RestoreReport,
}

impl fmt::Debug for RestoredInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RestoredInstance").field("report", &self.report).finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Binary encoding primitives
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], ()> {
        let end = self.pos.checked_add(n).ok_or(())?;
        if end > self.buf.len() {
            return Err(());
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, ()> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ()> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, ()> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ()> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, ()> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn str(&mut self) -> Result<String, ()> {
        String::from_utf8(self.bytes()?).map_err(|_| ())
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn level_to_u8(level: InstrumentationLevel) -> u8 {
    match level {
        InstrumentationLevel::Baseline => 0,
        InstrumentationLevel::Unblock => 1,
        InstrumentationLevel::StaticInstr => 2,
        InstrumentationLevel::DynamicInstr => 3,
        InstrumentationLevel::QuiescenceDetection => 4,
    }
}

fn level_from_u8(v: u8) -> Result<InstrumentationLevel, ()> {
    Ok(match v {
        0 => InstrumentationLevel::Baseline,
        1 => InstrumentationLevel::Unblock,
        2 => InstrumentationLevel::StaticInstr,
        3 => InstrumentationLevel::DynamicInstr,
        4 => InstrumentationLevel::QuiescenceDetection,
        _ => return Err(()),
    })
}

fn kind_to_u8(kind: RegionKind) -> u8 {
    match kind {
        RegionKind::Static => 0,
        RegionKind::Heap => 1,
        RegionKind::Stack => 2,
        RegionKind::Mmap => 3,
        RegionKind::Lib => 4,
    }
}

fn kind_from_u8(v: u8) -> Result<RegionKind, ()> {
    Ok(match v {
        0 => RegionKind::Static,
        1 => RegionKind::Heap,
        2 => RegionKind::Stack,
        3 => RegionKind::Mmap,
        4 => RegionKind::Lib,
        _ => return Err(()),
    })
}

fn encode_object(e: &mut Enc, obj: &KernelObject) {
    match obj {
        KernelObject::Listener { port, listening, backlog } => {
            e.u8(0);
            e.u16(*port);
            e.u8(u8::from(*listening));
            e.u32(backlog.len() as u32);
            for conn in backlog {
                e.u64(conn.0);
            }
        }
        KernelObject::Connection { conn, inbox, outbox, peer_closed } => {
            e.u8(1);
            e.u64(conn.0);
            e.u8(u8::from(*peer_closed));
            e.u32(inbox.len() as u32);
            for m in inbox {
                e.bytes(m);
            }
            e.u32(outbox.len() as u32);
            for m in outbox {
                e.bytes(m);
            }
        }
        KernelObject::File { path, offset } => {
            e.u8(2);
            e.str(path);
            e.u64(*offset);
        }
        KernelObject::UnixChannel { name, inbox } => {
            e.u8(3);
            e.str(name);
            e.u32(inbox.len() as u32);
            for m in inbox {
                e.bytes(&m.data);
                e.u32(m.objects.len() as u32);
                for o in &m.objects {
                    e.u64(o.0);
                }
            }
        }
        KernelObject::Pipe { buffer } => {
            e.u8(4);
            e.u32(buffer.len() as u32);
            for &b in buffer {
                e.u8(b);
            }
        }
    }
}

fn decode_object(d: &mut Dec<'_>) -> Result<KernelObject, ()> {
    Ok(match d.u8()? {
        0 => {
            let port = d.u16()?;
            let listening = d.u8()? != 0;
            let n = d.u32()? as usize;
            let mut backlog = std::collections::VecDeque::with_capacity(n.min(4096));
            for _ in 0..n {
                backlog.push_back(mcr_procsim::ConnId(d.u64()?));
            }
            KernelObject::Listener { port, listening, backlog }
        }
        1 => {
            let conn = mcr_procsim::ConnId(d.u64()?);
            let peer_closed = d.u8()? != 0;
            let n = d.u32()? as usize;
            let mut inbox = std::collections::VecDeque::with_capacity(n.min(4096));
            for _ in 0..n {
                inbox.push_back(d.bytes()?);
            }
            let n = d.u32()? as usize;
            let mut outbox = std::collections::VecDeque::with_capacity(n.min(4096));
            for _ in 0..n {
                outbox.push_back(d.bytes()?);
            }
            KernelObject::Connection { conn, inbox, outbox, peer_closed }
        }
        2 => KernelObject::File { path: d.str()?, offset: d.u64()? },
        3 => {
            let name = d.str()?;
            let n = d.u32()? as usize;
            let mut inbox = std::collections::VecDeque::with_capacity(n.min(4096));
            for _ in 0..n {
                let data = d.bytes()?;
                let k = d.u32()? as usize;
                let mut objects = Vec::with_capacity(k.min(4096));
                for _ in 0..k {
                    objects.push(ObjId(d.u64()?));
                }
                inbox.push_back(UnixMessage { data, objects });
            }
            KernelObject::UnixChannel { name, inbox }
        }
        4 => {
            let n = d.u32()? as usize;
            let mut buffer = std::collections::VecDeque::with_capacity(n.min(65536));
            for _ in 0..n {
                buffer.push_back(d.u8()?);
            }
            KernelObject::Pipe { buffer }
        }
        _ => return Err(()),
    })
}

// ---------------------------------------------------------------------------
// State image
// ---------------------------------------------------------------------------

/// One page whose contents live in a shard: `(pid, page address, dirty
/// epoch, payload bytes)`.
struct DeltaRecord {
    pid: u32,
    addr: u64,
    epoch: u64,
    bytes: Vec<u8>,
}

impl DeltaRecord {
    fn encode(&self, e: &mut Enc) {
        e.u32(self.pid);
        e.u64(self.addr);
        e.u64(self.epoch);
        e.bytes(&self.bytes);
    }

    fn decode(d: &mut Dec<'_>) -> Result<DeltaRecord, ()> {
        Ok(DeltaRecord { pid: d.u32()?, addr: d.u64()?, epoch: d.u64()?, bytes: d.bytes()? })
    }

    fn cost(&self) -> u64 {
        RECORD_COST_NS + self.bytes.len() as u64
    }
}

struct RegionImage {
    base: u64,
    size: u64,
    kind: RegionKind,
    name: String,
    writable: bool,
}

struct ChunkImage {
    payload: u64,
    size: u64,
    site: u64,
    tag: u64,
    startup: bool,
}

struct FdImage {
    fd: i32,
    obj: u64,
    cloexec: bool,
    inherited: bool,
}

struct ProcImage {
    pid: u32,
    name: String,
    /// `(tid, name, exited)` per thread, in tid order.
    threads: Vec<(u32, String, bool)>,
    write_epoch: u64,
    regions: Vec<RegionImage>,
    chunks: Vec<ChunkImage>,
    fds: Vec<FdImage>,
}

struct ObjImage {
    id: u64,
    rc: u32,
    obj: KernelObject,
}

/// Everything the manifest's state section captures, in memory.
struct StateImage {
    program_name: String,
    program_version: String,
    config: InstrumentationConfig,
    layout_slide: u64,
    scheduler: SchedulerMode,
    clock_ns: u64,
    next_conn: u64,
    files: Vec<(String, Vec<u8>)>,
    clients: Vec<ClientSnapshot>,
    processes: Vec<ProcImage>,
    objects: Vec<ObjImage>,
}

impl StateImage {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.str(&self.program_name);
        e.str(&self.program_version);
        e.u8(level_to_u8(self.config.level));
        e.u8(u8::from(self.config.instrument_region_allocator));
        e.u64(self.layout_slide);
        e.u8(match self.scheduler {
            SchedulerMode::EventDriven => 0,
            SchedulerMode::FullScan => 1,
        });
        e.u64(self.clock_ns);
        e.u64(self.next_conn);
        e.u32(self.files.len() as u32);
        for (path, contents) in &self.files {
            e.str(path);
            e.bytes(contents);
        }
        e.u32(self.clients.len() as u32);
        for c in &self.clients {
            e.u64(c.conn);
            e.u16(c.port);
            e.u8(u8::from(c.accepted));
            e.u8(u8::from(c.closed));
            e.u32(c.from_server.len() as u32);
            for m in &c.from_server {
                e.bytes(m);
            }
            e.u32(c.pending_to_server.len() as u32);
            for m in &c.pending_to_server {
                e.bytes(m);
            }
        }
        e.u32(self.processes.len() as u32);
        for p in &self.processes {
            e.u32(p.pid);
            e.str(&p.name);
            e.u32(p.threads.len() as u32);
            for (tid, name, exited) in &p.threads {
                e.u32(*tid);
                e.str(name);
                e.u8(u8::from(*exited));
            }
            e.u64(p.write_epoch);
            e.u32(p.regions.len() as u32);
            for r in &p.regions {
                e.u64(r.base);
                e.u64(r.size);
                e.u8(kind_to_u8(r.kind));
                e.str(&r.name);
                e.u8(u8::from(r.writable));
            }
            e.u32(p.chunks.len() as u32);
            for c in &p.chunks {
                e.u64(c.payload);
                e.u64(c.size);
                e.u64(c.site);
                e.u64(c.tag);
                e.u8(u8::from(c.startup));
            }
            e.u32(p.fds.len() as u32);
            for f in &p.fds {
                e.u32(f.fd as u32);
                e.u64(f.obj);
                e.u8(u8::from(f.cloexec));
                e.u8(u8::from(f.inherited));
            }
        }
        e.u32(self.objects.len() as u32);
        for o in &self.objects {
            e.u64(o.id);
            e.u32(o.rc);
            encode_object(&mut e, &o.obj);
        }
        e.buf
    }

    fn decode(buf: &[u8]) -> Result<StateImage, ()> {
        let mut d = Dec::new(buf);
        let program_name = d.str()?;
        let program_version = d.str()?;
        let level = level_from_u8(d.u8()?)?;
        let instrument_region_allocator = d.u8()? != 0;
        let layout_slide = d.u64()?;
        let scheduler = match d.u8()? {
            0 => SchedulerMode::EventDriven,
            1 => SchedulerMode::FullScan,
            _ => return Err(()),
        };
        let clock_ns = d.u64()?;
        let next_conn = d.u64()?;
        let n = d.u32()? as usize;
        let mut files = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            files.push((d.str()?, d.bytes()?));
        }
        let n = d.u32()? as usize;
        let mut clients = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            let conn = d.u64()?;
            let port = d.u16()?;
            let accepted = d.u8()? != 0;
            let closed = d.u8()? != 0;
            let k = d.u32()? as usize;
            let mut from_server = Vec::with_capacity(k.min(4096));
            for _ in 0..k {
                from_server.push(d.bytes()?);
            }
            let k = d.u32()? as usize;
            let mut pending_to_server = Vec::with_capacity(k.min(4096));
            for _ in 0..k {
                pending_to_server.push(d.bytes()?);
            }
            clients.push(ClientSnapshot { conn, port, accepted, closed, from_server, pending_to_server });
        }
        let n = d.u32()? as usize;
        let mut processes = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let pid = d.u32()?;
            let name = d.str()?;
            let k = d.u32()? as usize;
            let mut threads = Vec::with_capacity(k.min(4096));
            for _ in 0..k {
                threads.push((d.u32()?, d.str()?, d.u8()? != 0));
            }
            let write_epoch = d.u64()?;
            let k = d.u32()? as usize;
            let mut regions = Vec::with_capacity(k.min(4096));
            for _ in 0..k {
                regions.push(RegionImage {
                    base: d.u64()?,
                    size: d.u64()?,
                    kind: kind_from_u8(d.u8()?)?,
                    name: d.str()?,
                    writable: d.u8()? != 0,
                });
            }
            let k = d.u32()? as usize;
            let mut chunks = Vec::with_capacity(k.min(1 << 20));
            for _ in 0..k {
                chunks.push(ChunkImage {
                    payload: d.u64()?,
                    size: d.u64()?,
                    site: d.u64()?,
                    tag: d.u64()?,
                    startup: d.u8()? != 0,
                });
            }
            let k = d.u32()? as usize;
            let mut fds = Vec::with_capacity(k.min(65536));
            for _ in 0..k {
                fds.push(FdImage {
                    fd: d.u32()? as i32,
                    obj: d.u64()?,
                    cloexec: d.u8()? != 0,
                    inherited: d.u8()? != 0,
                });
            }
            processes.push(ProcImage { pid, name, threads, write_epoch, regions, chunks, fds });
        }
        let n = d.u32()? as usize;
        let mut objects = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            objects.push(ObjImage { id: d.u64()?, rc: d.u32()?, obj: decode_object(&mut d)? });
        }
        if !d.done() {
            return Err(());
        }
        Ok(StateImage {
            program_name,
            program_version,
            config: InstrumentationConfig { level, instrument_region_allocator },
            layout_slide,
            scheduler,
            clock_ns,
            next_conn,
            files,
            clients,
            processes,
            objects,
        })
    }
}

/// Collects the manifest state + page-delta records from a live (quiesced)
/// kernel/instance pair. Fully deterministic: every collection is sorted.
fn collect_state(
    kernel: &Kernel,
    instance: &McrInstance,
) -> Result<(StateImage, Vec<DeltaRecord>), CheckpointError> {
    let mut pids: Vec<Pid> = instance.state.processes.clone();
    pids.sort();
    pids.dedup();
    if pids.is_empty() {
        return Err(CheckpointError::Unsupported("instance has no processes".into()));
    }
    let first =
        kernel.process(pids[0]).map_err(|e| CheckpointError::Unsupported(format!("missing process: {e}")))?;
    let layout_slide = first.layout().static_base.0.wrapping_sub(0x0040_0000);

    let mut processes = Vec::with_capacity(pids.len());
    let mut deltas = Vec::new();
    for &pid in &pids {
        let proc = kernel
            .process(pid)
            .map_err(|e| CheckpointError::Unsupported(format!("missing process {pid}: {e}")))?;
        let mut threads: Vec<(u32, String, bool)> = proc
            .threads()
            .map(|t| (t.tid().0, t.name().to_string(), matches!(t.state(), mcr_procsim::ThreadState::Exited)))
            .collect();
        threads.sort();
        let space = proc.space();
        let mut regions = Vec::new();
        for region in space.regions() {
            regions.push(RegionImage {
                base: region.base().0,
                size: region.size(),
                kind: region.kind(),
                name: region.name().to_string(),
                writable: region.is_writable(),
            });
            // Every post-startup-written page (nonzero soft-dirty stamp) is a
            // delta; startup-written pages reproduce via deterministic
            // re-boot and carry stamp 0 after `clear_soft_dirty`.
            let mut addr = region.base();
            let end = region.end();
            while addr.0 < end.0 {
                let epoch = region.page_dirty_epoch(addr);
                if epoch != 0 {
                    let len = (end.0 - addr.0).min(PAGE_SIZE) as usize;
                    let bytes = space
                        .read_bytes(addr, len)
                        .map_err(|e| CheckpointError::Unsupported(format!("unreadable page: {e}")))?;
                    deltas.push(DeltaRecord { pid: pid.0, addr: addr.0, epoch, bytes });
                }
                addr = Addr(addr.0 + PAGE_SIZE);
            }
        }
        let chunks: Vec<ChunkImage> = match proc.heap() {
            Some(heap) => {
                let mut v: Vec<ChunkInfo> = heap.live_chunks(space).collect();
                v.sort_by_key(|c| c.payload.0);
                v.into_iter()
                    .map(|c| ChunkImage {
                        payload: c.payload.0,
                        size: c.size,
                        site: c.site.0,
                        tag: c.type_tag.0,
                        startup: c.startup,
                    })
                    .collect()
            }
            None => Vec::new(),
        };
        let mut fds: Vec<FdImage> = proc
            .fds()
            .iter()
            .map(|(fd, entry)| FdImage {
                fd: fd.0,
                obj: entry.object.0,
                cloexec: entry.cloexec,
                inherited: entry.inherited,
            })
            .collect();
        fds.sort_by_key(|f| f.fd);
        processes.push(ProcImage {
            pid: pid.0,
            name: proc.name().to_string(),
            threads,
            write_epoch: space.write_epoch(),
            regions,
            chunks,
            fds,
        });
    }

    let mut objects: Vec<ObjImage> = kernel
        .objects()
        .iter()
        .map(|(id, obj)| ObjImage { id: id.0, rc: kernel.objects().refcount(id), obj: obj.clone() })
        .collect();
    objects.sort_by_key(|o| o.id);

    let image = StateImage {
        program_name: instance.state.program_name.clone(),
        program_version: instance.state.version.clone(),
        config: instance.state.config,
        layout_slide,
        scheduler: instance.sched.mode,
        clock_ns: kernel.now().0,
        next_conn: kernel.next_conn_id(),
        files: kernel
            .file_names()
            .into_iter()
            .map(|name| {
                let contents = kernel.file_contents(&name).unwrap_or_default().to_vec();
                (name, contents)
            })
            .collect(),
        clients: kernel.export_clients(),
        processes,
        objects,
    };
    Ok((image, deltas))
}

/// Digest over the state image plus the delta stream, independent of the
/// shard split.
fn state_digest(state_bytes: &[u8], deltas: &[DeltaRecord]) -> u64 {
    let mut h = fnv1a(state_bytes, FNV_OFFSET);
    for rec in deltas {
        let mut e = Enc::default();
        rec.encode(&mut e);
        h = fnv1a(&e.buf, h);
    }
    h
}

// ---------------------------------------------------------------------------
// Blob naming / versions
// ---------------------------------------------------------------------------

fn version_dir(version: u64) -> String {
    format!("ckpt/v{version:08}")
}

fn manifest_blob(version: u64) -> String {
    format!("{}/MANIFEST", version_dir(version))
}

fn shard_blob(version: u64, shard: usize) -> String {
    format!("{}/shard-{shard:04}", version_dir(version))
}

/// All version numbers present in the store (any blob under the version's
/// directory counts — a torn checkpoint with shards but no manifest still
/// claims its number), ascending.
pub fn list_versions<S: Store + ?Sized>(store: &S) -> Vec<u64> {
    let mut versions = BTreeSet::new();
    for name in store.list() {
        if let Some(rest) = name.strip_prefix("ckpt/v") {
            if let Some((num, _)) = rest.split_once('/') {
                if let Ok(v) = num.parse::<u64>() {
                    versions.insert(v);
                }
            }
        }
    }
    versions.into_iter().collect()
}

// ---------------------------------------------------------------------------
// Checkpoint write
// ---------------------------------------------------------------------------

/// Writes a durable checkpoint of the (quiesced) instance. Shards first,
/// fsync, then the manifest, fsync — so the manifest never names data that
/// could be lost. Returns the new version's summary; on success, versions
/// older than `opts.retain` are deleted.
///
/// # Errors
///
/// [`CheckpointError::Quiescence`] if the instance is not fully quiesced
/// (use [`checkpoint_now`] to drive the barrier first) and
/// [`CheckpointError::Store`] if the backing store fails — including an
/// injected crash, after which the store keeps whatever blocks made it down.
pub fn write_checkpoint<S: Store + ?Sized>(
    kernel: &mut Kernel,
    instance: &McrInstance,
    store: &mut S,
    opts: &CheckpointOptions,
) -> Result<CheckpointSummary, CheckpointError> {
    if !all_quiesced(kernel, instance) {
        return Err(CheckpointError::Quiescence("instance not quiesced".into()));
    }
    let (image, deltas) = collect_state(kernel, instance)?;
    let state_bytes = image.encode();
    let digest = state_digest(&state_bytes, &deltas);

    // Contiguous, cost-balanced shard split — the same partitioner the
    // intra-pair transfer path uses, so the parallel writeback cost model
    // matches the rest of the pipeline.
    let shard_count = opts.shard_writers.clamp(1, deltas.len().max(1));
    let costs: Vec<u64> = deltas.iter().map(DeltaRecord::cost).collect();
    let assignment = partition_contiguous(&costs, shard_count);
    let mut shard_ranges: Vec<(usize, usize)> = vec![(usize::MAX, 0); shard_count];
    for (i, &shard) in assignment.iter().enumerate() {
        let range = &mut shard_ranges[shard];
        range.0 = range.0.min(i);
        range.1 = i + 1;
    }

    // Parallel shard assembly: each writer serializes and checksums its
    // contiguous record range independently.
    let mut shard_bufs: Vec<(Vec<u8>, u64, u64)> = Vec::with_capacity(shard_count);
    std::thread::scope(|scope| {
        let deltas = &deltas;
        let handles: Vec<_> = shard_ranges
            .iter()
            .map(|&(start, end)| {
                scope.spawn(move || {
                    if start == usize::MAX {
                        return (Vec::new(), FNV_OFFSET, 0u64);
                    }
                    let mut e = Enc::default();
                    let mut cost = 0u64;
                    for rec in &deltas[start..end] {
                        rec.encode(&mut e);
                        cost += rec.cost();
                    }
                    let checksum = fnv1a(&e.buf, FNV_OFFSET);
                    (e.buf, checksum, cost)
                })
            })
            .collect();
        for h in handles {
            shard_bufs.push(h.join().expect("shard writer panicked"));
        }
    });

    let serial_cost = SimDuration(shard_bufs.iter().map(|(_, _, c)| c).sum());
    let parallel_cost = SimDuration(shard_bufs.iter().map(|(_, _, c)| *c).max().unwrap_or(0));

    let version = list_versions(store).last().copied().unwrap_or(0) + 1;
    let blocks_before = store.blocks_written();
    for (i, (buf, _, _)) in shard_bufs.iter().enumerate() {
        store.write_blob(&shard_blob(version, i), buf)?;
    }
    // Barrier: every shard is durable before the manifest names it.
    store.sync()?;

    let mut m = Enc::default();
    m.buf.extend_from_slice(MAGIC);
    m.u32(FORMAT_VERSION);
    m.u64(version);
    m.u64(digest);
    m.u32(shard_bufs.len() as u32);
    for (buf, checksum, _) in &shard_bufs {
        m.u64(buf.len() as u64);
        m.u64(*checksum);
    }
    m.u64(state_bytes.len() as u64);
    m.buf.extend_from_slice(&state_bytes);
    let trailer = fnv1a(&m.buf, FNV_OFFSET);
    m.u64(trailer);

    let manifest_bytes = m.buf.len() as u64;
    store.write_blob(&manifest_blob(version), &m.buf)?;
    store.sync()?;
    let blocks = store.blocks_written() - blocks_before;

    // Retention: drop everything older than the last `retain` versions.
    let versions = list_versions(store);
    if versions.len() > opts.retain.max(1) {
        for &old in &versions[..versions.len() - opts.retain.max(1)] {
            let prefix = format!("{}/", version_dir(old));
            for blob in store.list() {
                if blob.starts_with(&prefix) {
                    let _ = store.delete_blob(&blob);
                }
            }
        }
    }

    // The writeback is charged at the parallel makespan, matching the
    // paper's argument for parallel checkpoint writers.
    kernel.advance_clock(parallel_cost);

    Ok(CheckpointSummary {
        version,
        page_deltas: deltas.len(),
        delta_bytes: deltas.iter().map(|d| d.bytes.len() as u64).sum(),
        shards: shard_bufs.len(),
        manifest_bytes,
        blocks,
        serial_cost,
        parallel_cost,
    })
}

/// Quiesce → checkpoint → resume: the standalone entry point (the pipeline's
/// `Checkpoint` phase checkpoints at the update's own quiescence point
/// instead).
pub fn checkpoint_now<S: Store + ?Sized>(
    kernel: &mut Kernel,
    instance: &mut McrInstance,
    store: &mut S,
    opts: &CheckpointOptions,
) -> Result<CheckpointSummary, CheckpointError> {
    wait_quiescence(kernel, instance, QUIESCE_ROUNDS)
        .map_err(|e| CheckpointError::Quiescence(e.to_string()))?;
    let result = write_checkpoint(kernel, instance, store, opts);
    resume(kernel, instance);
    result
}

// ---------------------------------------------------------------------------
// Restore
// ---------------------------------------------------------------------------

struct StepCtx {
    counter: u64,
    fault: Option<u64>,
}

impl StepCtx {
    /// Enters the next restore step; fails it if the armed fault site
    /// matches. Step indices are 1-based and follow [`RESTORE_STEPS`].
    fn step(&mut self, label: &'static str) -> Result<(), RestoreError> {
        self.counter += 1;
        debug_assert_eq!(RESTORE_STEPS[(self.counter - 1) as usize % RESTORE_STEPS.len()], label);
        if self.fault == Some(self.counter) {
            return Err(RestoreError::FaultInjected { step: self.counter, label });
        }
        Ok(())
    }
}

/// Decoded manifest payload: the state image, its digest, and the
/// per-shard (length, checksum) pairs the shard reads are validated with.
type ManifestContents = (StateImage, u64, Vec<(u64, u64)>);

fn read_manifest<S: Store + ?Sized>(store: &S, version: u64) -> Result<ManifestContents, RestoreError> {
    let name = manifest_blob(version);
    let blob = match store.read_blob(&name) {
        Ok(b) => b,
        Err(StoreError::NotFound(_)) => return Err(RestoreError::Truncated { blob: name }),
        Err(e) => return Err(RestoreError::Store(e)),
    };
    if blob.len() < MAGIC.len() + 8 {
        return Err(RestoreError::Truncated { blob: name });
    }
    let (body, trailer) = blob.split_at(blob.len() - 8);
    let recorded = u64::from_le_bytes(trailer.try_into().unwrap());
    if fnv1a(body, FNV_OFFSET) != recorded {
        return Err(RestoreError::ChecksumMismatch { blob: name });
    }
    let mut d = Dec::new(body);
    let mut parse = || -> Result<ManifestContents, ()> {
        if d.take(MAGIC.len())? != MAGIC {
            return Err(());
        }
        let format = d.u32()?;
        if format != FORMAT_VERSION {
            // Surfaced as VersionSkew below via the sentinel.
            return Err(());
        }
        let v = d.u64()?;
        if v != version {
            return Err(());
        }
        let digest = d.u64()?;
        let n = d.u32()? as usize;
        let mut shards = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            shards.push((d.u64()?, d.u64()?));
        }
        let state_len = d.u64()? as usize;
        let state_bytes = d.take(state_len)?;
        if !d.done() {
            return Err(());
        }
        let image = StateImage::decode(state_bytes)?;
        Ok((image, digest, shards))
    };
    // Distinguish format skew (checksum valid, format field different) from
    // plain corruption: the checksum already passed, so a bad format field
    // is a genuine version skew, everything else is framing damage.
    let format_probe = {
        let start = MAGIC.len();
        blob.get(start..start + 4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    };
    match parse() {
        Ok(out) => Ok(out),
        Err(()) => match format_probe {
            Some(fv) if fv != FORMAT_VERSION => Err(RestoreError::VersionSkew {
                expected: format!("format {FORMAT_VERSION}"),
                found: format!("format {fv}"),
            }),
            _ => Err(RestoreError::Truncated { blob: name }),
        },
    }
}

/// Restores the newest fully valid checkpoint from `store` into a fresh
/// scratch kernel. Corrupt versions (truncated or checksum-mismatched blobs)
/// are rejected and the next older version is tried; deeper failures
/// (topology, digest, clock) abort, because an older version of the *same*
/// program would fail the same way.
///
/// `make_program` must construct the same program generation that was
/// checkpointed; `fault_at_step` arms a
/// [`crate::runtime::chaos::FaultSite::RestoreStep`]-style injected failure
/// at the given 1-based step (see [`RESTORE_STEPS`]).
pub fn restore_latest<S: Store + ?Sized>(
    store: &S,
    make_program: &mut dyn FnMut() -> Box<dyn Program>,
    fault_at_step: Option<u64>,
) -> Result<RestoredInstance, RestoreError> {
    let versions = list_versions(store);
    if versions.is_empty() {
        return Err(RestoreError::NoCheckpoint);
    }
    let mut ctx = StepCtx { counter: 0, fault: fault_at_step };
    let mut rejected = 0usize;
    let mut last_err = RestoreError::NoCheckpoint;
    for &version in versions.iter().rev() {
        // The step counter restarts per candidate version: a fault site
        // names "the n-th step of a restore attempt", which replays
        // identically however many corrupt versions were skipped first.
        ctx.counter = 0;
        match restore_version(store, version, make_program(), &mut ctx) {
            Ok(mut restored) => {
                restored.report.versions_rejected = rejected;
                return Ok(restored);
            }
            Err(e) if e.is_version_local() => {
                rejected += 1;
                last_err = e;
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_err)
}

fn restore_version<S: Store + ?Sized>(
    store: &S,
    version: u64,
    program: Box<dyn Program>,
    ctx: &mut StepCtx,
) -> Result<RestoredInstance, RestoreError> {
    let mut report = RestoreReport { version, ..Default::default() };

    ctx.step("read-manifest")?;
    let (image, digest, shard_meta) = read_manifest(store, version)?;

    ctx.step("read-shards")?;
    let mut deltas: Vec<DeltaRecord> = Vec::new();
    for (i, &(len, checksum)) in shard_meta.iter().enumerate() {
        let name = shard_blob(version, i);
        let blob = match store.read_blob(&name) {
            Ok(b) => b,
            Err(StoreError::NotFound(_)) => return Err(RestoreError::Truncated { blob: name }),
            Err(e) => return Err(RestoreError::Store(e)),
        };
        if blob.len() as u64 != len {
            return Err(RestoreError::Truncated { blob: name });
        }
        if fnv1a(&blob, FNV_OFFSET) != checksum {
            return Err(RestoreError::ChecksumMismatch { blob: name });
        }
        let mut d = Dec::new(&blob);
        while !d.done() {
            deltas.push(
                DeltaRecord::decode(&mut d).map_err(|()| RestoreError::Truncated { blob: name.clone() })?,
            );
        }
    }

    // ---- From here on everything happens in a scratch kernel; the serving
    // kernel is not involved at all.
    ctx.step("preinstall-files")?;
    let mut kernel = Kernel::new();
    for (path, contents) in &image.files {
        kernel.add_file(path.clone(), contents.clone());
    }

    ctx.step("boot")?;
    if program.name() != image.program_name || program.version() != image.program_version {
        return Err(RestoreError::VersionSkew {
            expected: format!("{} {}", image.program_name, image.program_version),
            found: format!("{} {}", program.name(), program.version()),
        });
    }
    let boot_opts = BootOptions {
        config: image.config,
        layout_slide: image.layout_slide,
        start_quiesced: false,
        scheduler: image.scheduler,
    };
    let mut instance =
        boot(&mut kernel, program, &boot_opts).map_err(|e| RestoreError::Boot(e.to_string()))?;

    // Run-then-quiesce *before* validating topology: short-lived startup
    // threads (e.g. a daemonize helper) reach their recorded `Exited` state
    // only by being stepped in normal running — quiescence alone parks them
    // at their hooks instead. Normal rounds are run until the roster matches
    // the manifest (zero rounds when the checkpoint predates those exits),
    // then the scratch instance is parked for the reconcile steps.
    ctx.step("quiesce")?;
    for _ in 0..QUIESCE_ROUNDS {
        if validate_topology(&kernel, &instance, &image).is_ok() {
            break;
        }
        run_rounds(&mut kernel, &mut instance, 1)
            .map_err(|e| RestoreError::Reconcile(format!("scratch settle round: {e}")))?;
    }
    wait_quiescence(&mut kernel, &mut instance, QUIESCE_ROUNDS)
        .map_err(|e| RestoreError::Reconcile(format!("scratch quiescence: {e}")))?;

    ctx.step("validate-topology")?;
    validate_topology(&kernel, &instance, &image)?;

    ctx.step("files-reconcile")?;
    let wanted: BTreeSet<&str> = image.files.iter().map(|(p, _)| p.as_str()).collect();
    for path in kernel.file_names() {
        if !wanted.contains(path.as_str()) {
            kernel.remove_file(&path);
        }
    }
    for (path, contents) in &image.files {
        kernel.add_file(path.clone(), contents.clone());
    }

    ctx.step("heap-reconcile")?;
    reconcile_heaps(&mut kernel, &image, &mut report)?;

    ctx.step("memory-overlay")?;
    overlay_memory(&mut kernel, &image, &deltas, &mut report)?;

    ctx.step("fd-prune")?;
    prune_fds(&mut kernel, &image, &mut report)?;

    ctx.step("objects-restore")?;
    restore_objects(&mut kernel, &image, &mut report)?;

    ctx.step("fd-install")?;
    install_fds(&mut kernel, &image, &mut report)?;

    ctx.step("clients-restore")?;
    kernel.restore_clients(image.clients.clone());
    kernel.set_next_conn_id(image.next_conn);

    ctx.step("clock-advance")?;
    let boot_ns = kernel.now().0;
    if boot_ns > image.clock_ns {
        return Err(RestoreError::ClockSkew { manifest_ns: image.clock_ns, boot_ns });
    }
    kernel.advance_clock(SimDuration(image.clock_ns - boot_ns));

    ctx.step("digest-check")?;
    let (reimage, redeltas) = collect_state(&kernel, &instance)
        .map_err(|e| RestoreError::Reconcile(format!("state re-collection: {e}")))?;
    let found = state_digest(&reimage.encode(), &redeltas);
    if found != digest {
        return Err(RestoreError::DigestMismatch { expected: digest, found });
    }

    report.steps_completed = ctx.counter;
    report.deltas_applied = deltas.len();
    Ok(RestoredInstance { kernel, instance, report })
}

fn validate_topology(
    kernel: &Kernel,
    instance: &McrInstance,
    image: &StateImage,
) -> Result<(), RestoreError> {
    let mut booted: Vec<u32> = instance.state.processes.iter().map(|p| p.0).collect();
    booted.sort();
    booted.dedup();
    let wanted: Vec<u32> = image.processes.iter().map(|p| p.pid).collect();
    if booted != wanted {
        return Err(RestoreError::TopologyMismatch(format!(
            "pids: re-boot produced {booted:?}, manifest records {wanted:?}"
        )));
    }
    for img in &image.processes {
        let proc = kernel
            .process(Pid(img.pid))
            .map_err(|e| RestoreError::TopologyMismatch(format!("pid {}: {e}", img.pid)))?;
        if proc.name() != img.name {
            return Err(RestoreError::TopologyMismatch(format!(
                "pid {} name: {:?} vs manifest {:?}",
                img.pid,
                proc.name(),
                img.name
            )));
        }
        let mut threads: Vec<(u32, String, bool)> = proc
            .threads()
            .map(|t| (t.tid().0, t.name().to_string(), matches!(t.state(), mcr_procsim::ThreadState::Exited)))
            .collect();
        threads.sort();
        if threads != img.threads {
            return Err(RestoreError::TopologyMismatch(format!(
                "pid {} threads: re-boot {threads:?}, manifest {:?}",
                img.pid, img.threads
            )));
        }
    }
    Ok(())
}

fn reconcile_heaps(
    kernel: &mut Kernel,
    image: &StateImage,
    report: &mut RestoreReport,
) -> Result<(), RestoreError> {
    for img in &image.processes {
        let pid = Pid(img.pid);
        let have: BTreeMap<u64, (u64, u64, u64, bool)> = {
            let proc = kernel.process(pid).map_err(|e| RestoreError::Reconcile(e.to_string()))?;
            match proc.heap() {
                Some(heap) => heap
                    .live_chunks(proc.space())
                    .map(|c| (c.payload.0, (c.size, c.site.0, c.type_tag.0, c.startup)))
                    .collect(),
                None => BTreeMap::new(),
            }
        };
        let want: BTreeMap<u64, &ChunkImage> = img.chunks.iter().map(|c| (c.payload, c)).collect();
        let mut to_free = Vec::new();
        let mut to_alloc = Vec::new();
        for (&payload, &(size, site, tag, _)) in &have {
            match want.get(&payload) {
                Some(c) if c.size == size && c.site == site && c.tag == tag => {}
                _ => to_free.push(payload),
            }
        }
        for (&payload, c) in &want {
            let matches = have
                .get(&payload)
                .is_some_and(|&(size, site, tag, _)| c.size == size && c.site == site && c.tag == tag);
            if !matches {
                if c.startup {
                    // A startup-time chunk the deterministic re-boot failed
                    // to reproduce: the determinism premise is broken.
                    return Err(RestoreError::Reconcile(format!(
                        "pid {} startup chunk at {:#x} missing after re-boot",
                        img.pid, payload
                    )));
                }
                to_alloc.push(*c);
            }
        }
        if to_free.is_empty() && to_alloc.is_empty() {
            continue;
        }
        let proc = kernel.process_mut(pid).map_err(|e| RestoreError::Reconcile(e.to_string()))?;
        let (space, heap) = proc.space_and_heap_mut().map_err(|e| RestoreError::Reconcile(e.to_string()))?;
        for payload in to_free {
            heap.free(space, Addr(payload))
                .map_err(|e| RestoreError::Reconcile(format!("pid {} free {payload:#x}: {e}", img.pid)))?;
            report.freed_chunks += 1;
        }
        for c in to_alloc {
            heap.malloc_at(space, Addr(c.payload), c.size, AllocSite(c.site), TypeTag(c.tag)).map_err(
                |e| RestoreError::Reconcile(format!("pid {} malloc_at {:#x}: {e}", img.pid, c.payload)),
            )?;
            report.reallocated_chunks += 1;
        }
    }
    Ok(())
}

fn overlay_memory(
    kernel: &mut Kernel,
    image: &StateImage,
    deltas: &[DeltaRecord],
    report: &mut RestoreReport,
) -> Result<(), RestoreError> {
    for img in &image.processes {
        let pid = Pid(img.pid);
        let want: BTreeMap<u64, &RegionImage> = img.regions.iter().map(|r| (r.base, r)).collect();
        let have: Vec<(u64, u64, RegionKind, String, bool)> = kernel
            .process(pid)
            .map_err(|e| RestoreError::Reconcile(e.to_string()))?
            .space()
            .regions()
            .map(|r| (r.base().0, r.size(), r.kind(), r.name().to_string(), r.is_writable()))
            .collect();
        let proc = kernel.process_mut(pid).map_err(|e| RestoreError::Reconcile(e.to_string()))?;
        let space = proc.space_mut();
        let mut present = BTreeSet::new();
        for (base, size, kind, name, writable) in have {
            match want.get(&base) {
                Some(r) if r.size == size && r.kind == kind && r.name == name && r.writable == writable => {
                    present.insert(base);
                }
                _ => {
                    // Region unmapped (or remapped differently) before the
                    // checkpoint: drop the re-booted one.
                    space.unmap_region(Addr(base)).map_err(|e| {
                        RestoreError::Reconcile(format!("pid {} unmap {base:#x}: {e}", img.pid))
                    })?;
                }
            }
        }
        for (base, r) in &want {
            if !present.contains(base) {
                space
                    .map_region_with_perms(Addr(r.base), r.size, r.kind, r.name.clone(), r.writable)
                    .map_err(|e| RestoreError::Reconcile(format!("pid {} map {base:#x}: {e}", img.pid)))?;
            }
        }
        // Page-delta overlay, then exact soft-dirty stamps: the reconcile
        // writes above (heap headers, fresh mappings) transiently dirtied
        // pages the checkpointed instance never did, so stamps are rebuilt
        // from the recorded (page, epoch) pairs alone.
        let mut stamps: BTreeMap<u64, Vec<(u32, u64)>> = BTreeMap::new();
        for rec in deltas.iter().filter(|r| r.pid == img.pid) {
            space.write_bytes_through(Addr(rec.addr), &rec.bytes).map_err(|e| {
                RestoreError::Reconcile(format!("pid {} delta {:#x}: {e}", img.pid, rec.addr))
            })?;
            let Some((&base, region)) = want.range(..=rec.addr).next_back() else {
                return Err(RestoreError::Reconcile(format!(
                    "pid {} delta {:#x} outside any manifest region",
                    img.pid, rec.addr
                )));
            };
            if rec.addr >= base + region.size {
                return Err(RestoreError::Reconcile(format!(
                    "pid {} delta {:#x} outside any manifest region",
                    img.pid, rec.addr
                )));
            }
            stamps.entry(base).or_default().push((((rec.addr - base) / PAGE_SIZE) as u32, rec.epoch));
            report.deltas_applied += 1;
        }
        for base in want.keys() {
            let empty = Vec::new();
            let pairs = stamps.get(base).unwrap_or(&empty);
            space
                .restore_page_epochs(Addr(*base), pairs)
                .map_err(|e| RestoreError::Reconcile(format!("pid {} epochs {base:#x}: {e}", img.pid)))?;
        }
        space.set_write_epoch(img.write_epoch);
    }
    Ok(())
}

fn prune_fds(
    kernel: &mut Kernel,
    image: &StateImage,
    report: &mut RestoreReport,
) -> Result<(), RestoreError> {
    for img in &image.processes {
        let pid = Pid(img.pid);
        let want: BTreeMap<i32, &FdImage> = img.fds.iter().map(|f| (f.fd, f)).collect();
        let to_remove: Vec<(Fd, ObjId)> = {
            let proc = kernel.process(pid).map_err(|e| RestoreError::Reconcile(e.to_string()))?;
            proc.fds()
                .iter()
                .filter(|(fd, entry)| {
                    !want.get(&fd.0).is_some_and(|f| {
                        f.obj == entry.object.0
                            && f.cloexec == entry.cloexec
                            && f.inherited == entry.inherited
                    })
                })
                .map(|(fd, entry)| (fd, entry.object))
                .collect()
        };
        for (fd, obj) in to_remove {
            kernel
                .process_mut(pid)
                .map_err(|e| RestoreError::Reconcile(e.to_string()))?
                .fds_mut()
                .remove(fd)
                .map_err(|e| RestoreError::Reconcile(format!("pid {} remove fd {fd}: {e}", img.pid)))?;
            kernel.objects_mut().decref(obj);
            report.fds_pruned += 1;
        }
    }
    Ok(())
}

fn restore_objects(
    kernel: &mut Kernel,
    image: &StateImage,
    report: &mut RestoreReport,
) -> Result<(), RestoreError> {
    let objects = kernel.objects_mut();
    for img in &image.objects {
        let id = ObjId(img.id);
        if objects.get(id).is_some() {
            objects.restore_payload(id, img.obj.clone()).map_err(RestoreError::Reconcile)?;
            objects.set_refcount(id, img.rc).map_err(RestoreError::Reconcile)?;
        } else {
            objects.restore_insert(id, img.obj.clone(), img.rc).map_err(RestoreError::Reconcile)?;
            report.objects_inserted += 1;
        }
    }
    // After pruning every descriptor the manifest disowns, any survivor
    // outside the manifest means the reconcile did not converge.
    let wanted: BTreeSet<u64> = image.objects.iter().map(|o| o.id).collect();
    let extra: Vec<u64> = objects.iter().map(|(id, _)| id.0).filter(|id| !wanted.contains(id)).collect();
    if !extra.is_empty() {
        return Err(RestoreError::Reconcile(format!("unreconciled kernel objects {extra:?}")));
    }
    Ok(())
}

fn install_fds(
    kernel: &mut Kernel,
    image: &StateImage,
    report: &mut RestoreReport,
) -> Result<(), RestoreError> {
    for img in &image.processes {
        let pid = Pid(img.pid);
        let existing: BTreeSet<i32> = {
            let proc = kernel.process(pid).map_err(|e| RestoreError::Reconcile(e.to_string()))?;
            proc.fds().iter().map(|(fd, _)| fd.0).collect()
        };
        for f in &img.fds {
            if existing.contains(&f.fd) {
                continue;
            }
            let proc = kernel.process_mut(pid).map_err(|e| RestoreError::Reconcile(e.to_string()))?;
            let fds = proc.fds_mut();
            // No incref: every manifest refcount was forced during
            // objects-restore, and it already accounts for this descriptor.
            fds.install_at(Fd(f.fd), ObjId(f.obj), f.inherited)
                .map_err(|e| RestoreError::Reconcile(format!("pid {} install fd {}: {e}", img.pid, f.fd)))?;
            if f.cloexec {
                fds.set_cloexec(Fd(f.fd), true).map_err(|e| {
                    RestoreError::Reconcile(format!("pid {} cloexec fd {}: {e}", img.pid, f.fd))
                })?;
            }
            report.fds_installed += 1;
        }
    }
    Ok(())
}

/// Convenience for callers that hold a `McrResult` context: wraps
/// [`restore_latest`] into [`McrError::InvalidState`] on failure.
pub fn restore_latest_mcr<S: Store + ?Sized>(
    store: &S,
    make_program: &mut dyn FnMut() -> Box<dyn Program>,
) -> McrResult<RestoredInstance> {
    restore_latest(store, make_program, None).map_err(|e| McrError::InvalidState(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::scheduler::run_rounds;
    use crate::runtime::testprog::TinyServer;
    use mcr_procsim::MemStore;

    fn booted() -> (Kernel, McrInstance) {
        let mut kernel = Kernel::new();
        kernel.add_file("/etc/tiny.conf", b"workers=2\n".to_vec());
        let instance = boot(&mut kernel, Box::new(TinyServer::new(1)), &BootOptions::default()).unwrap();
        (kernel, instance)
    }

    fn drive_traffic(kernel: &mut Kernel, instance: &mut McrInstance, requests: usize) {
        for _ in 0..requests {
            let conn = kernel.client_connect(8080).unwrap();
            kernel.client_send(conn, b"GET /\n".to_vec()).unwrap();
            run_rounds(kernel, instance, 6).unwrap();
            let _ = kernel.client_recv(conn);
        }
    }

    fn fingerprint(kernel: &Kernel) -> u64 {
        // Same FNV fold as the bench harness's kernel_fingerprint.
        let mut h = FNV_OFFSET;
        let mut fold = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(FNV_PRIME);
        };
        for pid in kernel.pids() {
            let proc = kernel.process(pid).unwrap();
            fold(u64::from(pid.0));
            fold(proc.fds().len() as u64);
            for (fd, entry) in proc.fds().iter() {
                fold(fd.0 as u64);
                fold(entry.object.0);
            }
            fold(proc.thread_count() as u64);
            for region in proc.space().regions() {
                fold(region.base().0);
                fold(region.size());
                let bytes = proc.space().read_bytes(region.base(), region.size() as usize).unwrap();
                for chunk in bytes.chunks(8) {
                    let mut word = [0u8; 8];
                    word[..chunk.len()].copy_from_slice(chunk);
                    fold(u64::from_le_bytes(word));
                }
            }
        }
        h
    }

    fn factory() -> impl FnMut() -> Box<dyn Program> {
        || Box::new(TinyServer::new(1)) as Box<dyn Program>
    }

    #[test]
    fn roundtrip_restores_fingerprint_identical_kernel() {
        let (mut kernel, mut instance) = booted();
        drive_traffic(&mut kernel, &mut instance, 5);
        let mut store = MemStore::new();
        wait_quiescence(&mut kernel, &mut instance, QUIESCE_ROUNDS).unwrap();
        let fp = fingerprint(&kernel);
        let summary =
            write_checkpoint(&mut kernel, &instance, &mut store, &CheckpointOptions::default()).unwrap();
        assert_eq!(summary.version, 1);
        assert!(summary.page_deltas > 0);
        resume(&mut kernel, &mut instance);

        let mut make = factory();
        let restored = restore_latest(&store, &mut make, None).unwrap();
        assert_eq!(restored.report.version, 1);
        assert_eq!(restored.report.steps_completed, RESTORE_STEPS.len() as u64);
        assert_eq!(fingerprint(&restored.kernel), fp, "restore must be byte-identical");
        assert_eq!(restored.kernel.now().0 + summary.parallel_cost.0, kernel.now().0);

        // The revived instance still serves.
        let mut k = restored.kernel;
        let mut inst = restored.instance;
        resume(&mut k, &mut inst);
        let conn = k.client_connect(8080).unwrap();
        k.client_send(conn, b"GET /\n".to_vec()).unwrap();
        run_rounds(&mut k, &mut inst, 6).unwrap();
        assert_eq!(k.client_recv(conn).unwrap(), b"hello from v1".to_vec());
    }

    #[test]
    fn checkpoint_requires_quiescence() {
        let (mut kernel, instance) = booted();
        let mut store = MemStore::new();
        // Freshly booted threads are running, not quiesced.
        let err =
            write_checkpoint(&mut kernel, &instance, &mut store, &CheckpointOptions::default()).unwrap_err();
        assert!(matches!(err, CheckpointError::Quiescence(_)));
    }

    #[test]
    fn retention_keeps_last_n_versions() {
        let (mut kernel, mut instance) = booted();
        let mut store = MemStore::new();
        let opts = CheckpointOptions { retain: 2, ..Default::default() };
        for i in 0..4 {
            drive_traffic(&mut kernel, &mut instance, 1);
            let s = checkpoint_now(&mut kernel, &mut instance, &mut store, &opts).unwrap();
            assert_eq!(s.version, i + 1);
        }
        assert_eq!(list_versions(&store), vec![3, 4]);
    }

    #[test]
    fn truncated_manifest_falls_back_to_older_version() {
        let (mut kernel, mut instance) = booted();
        let mut store = MemStore::new();
        let opts = CheckpointOptions::default();
        drive_traffic(&mut kernel, &mut instance, 2);
        checkpoint_now(&mut kernel, &mut instance, &mut store, &opts).unwrap();
        drive_traffic(&mut kernel, &mut instance, 2);
        checkpoint_now(&mut kernel, &mut instance, &mut store, &opts).unwrap();
        store.truncate_blob(&manifest_blob(2), 40).unwrap();
        let restored = restore_latest(&store, &mut factory(), None).unwrap();
        assert_eq!(restored.report.version, 1);
        assert_eq!(restored.report.versions_rejected, 1);
    }

    #[test]
    fn flipped_manifest_byte_is_rejected_with_checksum_mismatch() {
        let (mut kernel, mut instance) = booted();
        let mut store = MemStore::new();
        drive_traffic(&mut kernel, &mut instance, 2);
        checkpoint_now(&mut kernel, &mut instance, &mut store, &CheckpointOptions::default()).unwrap();
        let blob = store.read_blob(&manifest_blob(1)).unwrap();
        store.corrupt_byte(&manifest_blob(1), blob.len() / 2).unwrap();
        let err = restore_latest(&store, &mut factory(), None).unwrap_err();
        assert!(matches!(err, RestoreError::ChecksumMismatch { .. }), "got {err:?}");
    }

    #[test]
    fn flipped_shard_byte_is_rejected_with_checksum_mismatch() {
        let (mut kernel, mut instance) = booted();
        let mut store = MemStore::new();
        drive_traffic(&mut kernel, &mut instance, 2);
        checkpoint_now(&mut kernel, &mut instance, &mut store, &CheckpointOptions::default()).unwrap();
        store.corrupt_byte(&shard_blob(1, 0), 12).unwrap();
        let err = restore_latest(&store, &mut factory(), None).unwrap_err();
        assert!(matches!(err, RestoreError::ChecksumMismatch { .. }), "got {err:?}");
    }

    #[test]
    fn format_version_skew_is_typed() {
        let (mut kernel, mut instance) = booted();
        let mut store = MemStore::new();
        drive_traffic(&mut kernel, &mut instance, 1);
        checkpoint_now(&mut kernel, &mut instance, &mut store, &CheckpointOptions::default()).unwrap();
        // Patch the format field and re-seal the trailing checksum, so only
        // the version number is wrong.
        let mut blob = store.read_blob(&manifest_blob(1)).unwrap();
        let body_len = blob.len() - 8;
        blob[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let trailer = fnv1a(&blob[..body_len], FNV_OFFSET);
        blob[body_len..].copy_from_slice(&trailer.to_le_bytes());
        store.write_blob(&manifest_blob(1), &blob).unwrap();
        store.sync().unwrap();
        let err = restore_latest(&store, &mut factory(), None).unwrap_err();
        assert!(matches!(err, RestoreError::VersionSkew { .. }), "got {err:?}");
    }

    #[test]
    fn program_version_skew_is_typed() {
        let (mut kernel, mut instance) = booted();
        let mut store = MemStore::new();
        drive_traffic(&mut kernel, &mut instance, 1);
        checkpoint_now(&mut kernel, &mut instance, &mut store, &CheckpointOptions::default()).unwrap();
        let mut make = || Box::new(TinyServer::new(2)) as Box<dyn Program>;
        let err = restore_latest(&store, &mut make, None).unwrap_err();
        assert!(matches!(err, RestoreError::VersionSkew { .. }), "got {err:?}");
    }

    #[test]
    fn every_restore_step_fault_is_typed_and_total() {
        let (mut kernel, mut instance) = booted();
        let mut store = MemStore::new();
        drive_traffic(&mut kernel, &mut instance, 3);
        checkpoint_now(&mut kernel, &mut instance, &mut store, &CheckpointOptions::default()).unwrap();
        for step in 1..=RESTORE_STEPS.len() as u64 {
            let err = restore_latest(&store, &mut factory(), Some(step)).unwrap_err();
            match err {
                RestoreError::FaultInjected { step: s, label } => {
                    assert_eq!(s, step);
                    assert_eq!(label, RESTORE_STEPS[(step - 1) as usize]);
                }
                other => panic!("step {step}: expected FaultInjected, got {other:?}"),
            }
        }
        // One past the last step: no fault fires, restore succeeds.
        let restored = restore_latest(&store, &mut factory(), Some(RESTORE_STEPS.len() as u64 + 1)).unwrap();
        assert_eq!(restored.report.version, 1);
    }

    #[test]
    fn crash_during_checkpoint_falls_back_cleanly() {
        use mcr_procsim::WriteFault;
        let (mut kernel, mut instance) = booted();
        let mut store = MemStore::new();
        let opts = CheckpointOptions::default();
        drive_traffic(&mut kernel, &mut instance, 2);
        checkpoint_now(&mut kernel, &mut instance, &mut store, &opts).unwrap();
        let baseline_blocks = store.blocks_written();
        drive_traffic(&mut kernel, &mut instance, 2);
        store.arm_write_fault(WriteFault::TornAt(baseline_blocks + 2));
        let err = checkpoint_now(&mut kernel, &mut instance, &mut store, &opts).unwrap_err();
        assert!(matches!(err, CheckpointError::Store(StoreError::Crashed { .. })), "got {err:?}");
        store.recover();
        // The torn v2 is rejected; v1 still restores.
        let restored = restore_latest(&store, &mut factory(), None).unwrap();
        assert_eq!(restored.report.version, 1);
        // And the serving instance kept running the whole time.
        drive_traffic(&mut kernel, &mut instance, 1);
    }
}
