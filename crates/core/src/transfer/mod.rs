//! State transfer: remapping the traced object graph into the new version
//! (paper §6), including on-the-fly type transformations, pointer rewriting
//! and pinning of conservatively-traced immutable objects.

pub mod checkpoint;
pub mod engine;
pub mod transform;

pub use checkpoint::{
    checkpoint_now, list_versions, restore_latest, write_checkpoint, CheckpointError, CheckpointOptions,
    CheckpointSummary, RestoreError, RestoreReport, RestoredInstance, FORMAT_VERSION, RESTORE_STEPS,
};
pub use engine::{
    drain_step, fault_in_at, postcopy_commit, precopy_transfer_round, transfer_between, transfer_process,
    transfer_residual, DeltaPlan, PostcopyResidual, PrecopyRoundReport, ProcessTransferReport, ResidualStats,
    TransferContext, TransferSummary, TypeBridge,
};
pub use transform::{apply_field_map, compute_field_map, FieldMap};
