//! The state-transfer engine: remaps the traced object graph of one old
//! process into its counterpart process of the new version.
//!
//! For every traced object the engine determines a *placement* in the new
//! version (an existing startup-time object matched by symbol or allocation
//! site, a freshly allocated chunk, or the very same address for pinned
//! immutable objects), then copies and type-transforms the contents of dirty
//! objects, rewriting precise pointers through the old→new address map.
//! Conservatively-traced objects are copied verbatim at their original
//! address, which keeps their (unrewritable) likely pointers valid.
//!
//! Cross-version name resolution (type pairing, layout compatibility,
//! allocation-site matching, transform-handler keys) is hoisted out of the
//! per-object loops into a [`TransferContext`] built once per update: names
//! are interned into a [`SymbolTable`] and every old type id is bridged to
//! its new-version counterpart ahead of time, so the hot paths below work on
//! `u32` ids and `Arc<str>` refcount bumps instead of `String` clones. The
//! context is shared read-only across the worker threads of the
//! pair-parallel transfer phase; [`transfer_between`] itself only touches
//! the two processes of one matched pair, which is what makes the phase
//! safely parallel.
//!
//! # Pre-copy delta transfer
//!
//! The engine is *resumable*: a [`DeltaPlan`] records, per matched pair, the
//! placement of every old object in the new version (which startup chunk it
//! matched, which fresh allocation it received, whether it is pinned) plus
//! the dirty-epoch stamp of the contents last copied. The iterative pre-copy
//! phase calls [`precopy_transfer_round`] once per round while the old
//! version keeps serving: only objects whose dirty epoch exceeds their
//! copied-at stamp are (re-)copied, and placements are made at most once.
//! After quiescence [`transfer_residual`] runs the same passes a plain
//! stop-the-world [`transfer_between`] would run — it re-emits every write
//! and the full logical report, so reports, conflicts and resulting memory
//! are byte-identical to the no-pre-copy baseline — but it *charges* only
//! the residual set that was still stale when the world stopped, which is
//! what shrinks downtime from O(heap) to O(working set).
//!
//! # Post-copy fault-in transfer
//!
//! When the write rate outruns the copy rate the residual never converges
//! and pre-copy degenerates to stop-the-world. The complementary mode
//! commits *first* and moves the residual afterwards:
//! [`postcopy_commit`] runs the same passes as [`transfer_residual`] —
//! identical placements, conflicts and logical report — but instead of
//! applying the stale writes inside the stop-the-world window it snapshots
//! and transforms them (the sharded prepare pass runs as usual, against the
//! now-frozen old space) and parks them in a [`PostcopyResidual`]. The new
//! version resumes immediately with access traps armed over the parked
//! ranges ([`PostcopyResidual::arm`]); a store into a not-yet-transferred
//! page parks in the kernel's trap queue, [`fault_in_at`] services it by
//! applying every parked object on the touched pages (and only then do the
//! parked program stores replay), and [`drain_step`] retires the remainder
//! in deterministic address order between scheduler rounds. Because the
//! prepared bytes were computed at quiesce time and program stores replay
//! after fault-in, the final memory is byte-identical to a stop-the-world
//! transfer of the same graph.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mcr_procsim::{Addr, AllocSite, Kernel, Pid, Process, SimDuration, TypeTag};
use mcr_typemeta::TypeId;

use crate::annotations::ObjTreatment;
use crate::error::{Conflict, McrError, McrResult};
use crate::intern::{Sym, SymbolTable};
use crate::program::InstanceState;
use crate::tracing::graph::ObjectOrigin;
use crate::tracing::tracer::TraceResult;
use crate::transfer::transform::{apply_field_map, compute_field_map};

/// How one old-version type relates to the new version, resolved once per
/// update instead of once per traced object.
#[derive(Debug, Clone)]
pub struct TypeBridge {
    /// The (shared) old type name.
    pub old_name: Arc<str>,
    /// The same-named type in the new version, if it exists.
    pub new_ty: Option<TypeId>,
    /// Whether old and new layouts are compatible (false when the type
    /// vanished from the new version).
    pub layout_compatible: bool,
    /// Whether the new version registered a semantic transform handler under
    /// the type name.
    pub has_type_transform: bool,
}

/// Read-only cross-version metadata shared by every process pair of one live
/// update: interned names plus the old→new type bridge.
#[derive(Debug, Default)]
pub struct TransferContext {
    syms: SymbolTable,
    /// New-version allocation-site id → interned site name.
    new_sites: BTreeMap<u64, Sym>,
    /// Old-version type id → bridge to the new version.
    types: BTreeMap<u64, TypeBridge>,
    /// Mid-phase fault injection: abort instead of performing the n-th
    /// object write (1-based, counted across every pair and every pre-copy
    /// round of the update).
    object_fault: Option<u64>,
    /// Object writes performed so far (shared across transfer workers).
    writes: AtomicU64,
    /// Worker threads used *inside* one pair's transfer: the snapshot +
    /// transform pass runs over contiguous address-range shards of the
    /// object list, and the charged cost becomes the deterministic
    /// list-schedule makespan over the per-shard costs. `0`/`1` = serial.
    intra_pair_shards: usize,
}

impl TransferContext {
    /// Builds the context for one update: interns every allocation-site and
    /// type name of both versions and pairs old types with new ones.
    pub fn new(old_state: &InstanceState, new_state: &InstanceState) -> Self {
        let mut syms = SymbolTable::new();
        let mut new_sites = BTreeMap::new();
        for (_, info) in old_state.sites.iter() {
            syms.intern(Arc::clone(&info.name));
        }
        for (site, info) in new_state.sites.iter() {
            new_sites.insert(site.0, syms.intern(Arc::clone(&info.name)));
        }
        let mut types = BTreeMap::new();
        for desc in old_state.types.iter() {
            syms.intern(Arc::clone(&desc.name));
            let new_ty = new_state.types.lookup(&desc.name);
            let layout_compatible = new_ty
                .map(|n| old_state.types.is_layout_compatible(desc.id, &new_state.types, n))
                .unwrap_or(false);
            let has_type_transform = new_state.annotations.transform(&desc.name).is_some();
            types.insert(
                desc.id.0,
                TypeBridge {
                    old_name: Arc::clone(&desc.name),
                    new_ty,
                    layout_compatible,
                    has_type_transform,
                },
            );
        }
        TransferContext {
            syms,
            new_sites,
            types,
            object_fault: None,
            writes: AtomicU64::new(0),
            intra_pair_shards: 1,
        }
    }

    /// Arms the mid-phase fault trigger: the update aborts right before the
    /// `nth` (1-based) object write it would otherwise perform — whether
    /// that write happens during a pre-copy round or in the stop-the-world
    /// window. `None` disarms the trigger.
    #[must_use]
    pub fn with_object_fault(mut self, nth: Option<u64>) -> Self {
        self.object_fault = nth;
        self
    }

    /// Sets the intra-pair shard count: the snapshot/transform pass of every
    /// transfer through this context runs on up to `shards` worker threads
    /// over contiguous address-range shards of the object list, and the
    /// charged (simulated) cost becomes the deterministic list-schedule
    /// makespan over the per-shard costs. Writes, conflicts, reports and the
    /// object-fault counter stay byte-identical to the serial run for every
    /// shard count. `0`/`1` selects the serial path.
    #[must_use]
    pub fn with_intra_pair_shards(mut self, shards: usize) -> Self {
        self.intra_pair_shards = shards.max(1);
        self
    }

    /// The configured intra-pair shard count (always >= 1).
    pub fn intra_pair_shards(&self) -> usize {
        self.intra_pair_shards.max(1)
    }

    /// Counts one object write; true when the armed fault must fire now.
    /// The counter runs whether or not a fault is armed, so a clean run's
    /// total doubles as the chaos engine's n-th-object-write site count
    /// (see [`writes_performed`](Self::writes_performed)).
    fn object_write_fires_fault(&self) -> bool {
        let nth = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        self.object_fault == Some(nth)
    }

    /// Total object writes counted through this context so far — across
    /// every pair, shard and pre-copy round. After a clean (fault-free)
    /// update this is the number of injectable n-th-object-write fault
    /// sites; the pipeline copies it into
    /// [`UpdateReport::object_writes`](crate::runtime::report::UpdateReport).
    pub fn writes_performed(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// The bridge for an old-version type id, if the type is registered.
    pub fn bridge(&self, old_ty: TypeId) -> Option<&TypeBridge> {
        self.types.get(&old_ty.0)
    }

    /// The interned id of an allocation-site name (old or new version).
    pub fn site_sym(&self, name: &str) -> Option<Sym> {
        self.syms.lookup(name)
    }

    /// The interned id behind a *new-version* allocation-site id.
    pub fn new_site_sym(&self, site: AllocSite) -> Option<Sym> {
        self.new_sites.get(&site.0).copied()
    }

    /// The interner itself (shared, read-only).
    pub fn symbols(&self) -> &SymbolTable {
        &self.syms
    }
}

/// Where an old object lands in the new version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Placement {
    /// An object the new version already created (matched static or
    /// startup-time heap object); contents are transferred only if dirty.
    Existing(Addr),
    /// A fresh allocation performed by the engine.
    Fresh(Addr),
    /// Pinned at the old address (immutable object).
    Pinned(Addr),
}

/// One pre-copy round's work, per process pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrecopyRoundReport {
    /// Objects copied (or re-copied) this round.
    pub objects_copied: u64,
    /// Bytes written into the new version this round.
    pub bytes_copied: u64,
    /// Simulated cost of this round's copies (charged concurrently, while
    /// the old version keeps serving).
    pub cost: SimDuration,
}

/// Residual work left for the stop-the-world window after pre-copy: the
/// objects that were still stale (dirtied after their last copy, or never
/// copied) when the world stopped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidualStats {
    /// Stale objects the window had to copy.
    pub objects: u64,
    /// Stale bytes the window had to copy.
    pub bytes: u64,
    /// Simulated cost of the residual copies — the part of state transfer
    /// that counts toward downtime. Without pre-copy this equals the full
    /// per-pair transfer duration.
    pub cost: SimDuration,
}

/// The resumable per-pair state of an iterative pre-copy transfer.
///
/// The plan makes the engine idempotent across rounds: placements (matched
/// startup chunks, fresh allocations, pinned addresses) are decided at most
/// once per object and reused verbatim afterwards, and `copied_at` remembers
/// the dirty-epoch stamp of the contents last written, so a round copies
/// exactly the objects dirtied since their previous copy. A fresh plan run
/// straight through [`transfer_residual`] reproduces the classic
/// stop-the-world transfer bit for bit.
#[derive(Debug, Default)]
pub struct DeltaPlan {
    /// Epoch through which the pair's object graph has been retraced (the
    /// `since` argument of the next delta retrace).
    pub traced_upto: u64,
    /// Old base address → recorded placement.
    placed: BTreeMap<u64, Placement>,
    /// Old base address → dirty stamp of the contents last copied.
    copied_at: BTreeMap<u64, u64>,
    /// Unconsumed startup-time chunks of the new version, by interned
    /// allocation site (consumed exactly once across all rounds).
    site_index: Option<BTreeMap<Sym, VecDeque<Addr>>>,
}

impl DeltaPlan {
    /// A fresh plan (nothing placed, nothing copied).
    pub fn new() -> Self {
        DeltaPlan::default()
    }
}

/// One stale object whose contents were prepared at post-copy commit time
/// (snapshot + transform + pointer rewrite against the frozen old space) but
/// not yet applied to the new version.
#[derive(Debug)]
struct PendingObject {
    old_base: Addr,
    new_base: Addr,
    /// Clamped apply length (what the stop-the-world pass would have
    /// written).
    len: usize,
    /// Transformed contents, or `None` for the verbatim space-to-space copy
    /// fast path.
    bytes: Option<Vec<u8>>,
    applied: bool,
}

/// The parked residual of one pair's post-copy transfer: every stale object,
/// in deterministic address order, plus the page bookkeeping that decides
/// when a page's access trap can be disarmed.
#[derive(Debug, Default)]
pub struct PostcopyResidual {
    pending: Vec<PendingObject>,
    /// Drain cursor into `pending`.
    next: usize,
    /// Unapplied objects still alive.
    live: usize,
    /// New-space page base → number of unapplied objects touching the page;
    /// the trap is disarmed when the count reaches zero.
    page_refs: BTreeMap<u64, u32>,
    /// New-space page base → indices of the pending objects touching it.
    page_index: BTreeMap<u64, Vec<usize>>,
    /// Objects faulted in / drained so far (the chaos engine's
    /// n-th-fault-in site counter).
    faulted_in: u64,
}

fn pages_of(base: Addr, len: usize) -> impl Iterator<Item = u64> {
    let first = base.page_base().0;
    let last = Addr(base.0 + len.max(1) as u64 - 1).page_base().0;
    (first..=last).step_by(mcr_procsim::PAGE_SIZE as usize)
}

impl PostcopyResidual {
    fn build(pending: Vec<PendingObject>) -> Self {
        let mut page_refs: BTreeMap<u64, u32> = BTreeMap::new();
        let mut page_index: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (idx, p) in pending.iter().enumerate() {
            for page in pages_of(p.new_base, p.len) {
                *page_refs.entry(page).or_insert(0) += 1;
                page_index.entry(page).or_default().push(idx);
            }
        }
        let live = pending.len();
        PostcopyResidual { pending, next: 0, live, page_refs, page_index, faulted_in: 0 }
    }

    /// Arms access traps in the new process over every parked range. Called
    /// once, right before the new version resumes.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors (a parked range must be mapped — it was
    /// placed by the commit pass).
    pub fn arm(&self, new_proc: &mut Process) -> McrResult<()> {
        for p in self.pending.iter().filter(|p| !p.applied) {
            new_proc.space_mut().protect_range(p.new_base, p.len.max(1) as u64).map_err(McrError::Sim)?;
        }
        Ok(())
    }

    /// Unapplied objects still parked.
    pub fn remaining(&self) -> u64 {
        self.live as u64
    }

    /// Bytes still parked.
    pub fn remaining_bytes(&self) -> u64 {
        self.pending.iter().filter(|p| !p.applied).map(|p| p.len as u64).sum()
    }

    /// True once every parked object has been applied.
    pub fn is_drained(&self) -> bool {
        self.live == 0
    }

    /// Objects faulted in / drained so far.
    pub fn faulted_in(&self) -> u64 {
        self.faulted_in
    }
}

/// Applies one parked object (if still unapplied), releasing the access
/// traps of every page whose parked set drained. Never double-applies.
fn apply_pending(
    plan: &TransferContext,
    residual: &mut PostcopyResidual,
    idx: usize,
    old_proc: &Process,
    new_proc: &mut Process,
    fault_at: Option<u64>,
    stats: &mut ResidualStats,
) -> McrResult<()> {
    if residual.pending[idx].applied {
        return Ok(());
    }
    if plan.object_write_fires_fault() {
        return Err(Conflict::FaultInjected { phase: "fault-in-object".into() }.into());
    }
    if fault_at == Some(residual.faulted_in + 1) {
        return Err(Conflict::FaultInjected { phase: "fault-in".into() }.into());
    }
    let bytes = residual.pending[idx].bytes.take();
    let (old_base, new_base, len) = {
        let p = &residual.pending[idx];
        (p.old_base, p.new_base, p.len)
    };
    match bytes {
        None => new_proc
            .space_mut()
            .copy_range(new_base, old_proc.space(), old_base, len)
            .map_err(McrError::Sim)?,
        Some(b) => new_proc.space_mut().write_bytes_through(new_base, &b[..len]).map_err(McrError::Sim)?,
    }
    residual.pending[idx].applied = true;
    residual.live -= 1;
    residual.faulted_in += 1;
    stats.objects += 1;
    stats.bytes += len as u64;
    stats.cost = stats.cost.saturating_add(SimDuration(2_000 + 2 * len as u64));
    for page in pages_of(new_base, len) {
        if let Some(refs) = residual.page_refs.get_mut(&page) {
            *refs -= 1;
            if *refs == 0 {
                new_proc
                    .space_mut()
                    .unprotect_range(Addr(page), mcr_procsim::PAGE_SIZE)
                    .map_err(McrError::Sim)?;
            }
        }
    }
    Ok(())
}

/// Services an access trap: applies every parked object on the pages covered
/// by `[addr, addr+len)` so the trapped store can replay on transferred
/// content. A page with no parked objects left is a no-op — a second trap on
/// the same range never double-applies. The returned stats are the
/// trap-service latency the caller charges as downtime.
///
/// # Errors
///
/// Returns simulator errors for unexpected memory failures and the armed
/// fault triggers ([`TransferContext::with_object_fault`] or `fault_at`, the
/// 1-based n-th fault-in counter shared with [`drain_step`]).
pub fn fault_in_at(
    plan: &TransferContext,
    residual: &mut PostcopyResidual,
    old_proc: &Process,
    new_proc: &mut Process,
    addr: Addr,
    len: usize,
    fault_at: Option<u64>,
) -> McrResult<ResidualStats> {
    let mut stats = ResidualStats::default();
    for page in pages_of(addr, len) {
        let Some(idxs) = residual.page_index.get(&page).cloned() else { continue };
        for idx in idxs {
            apply_pending(plan, residual, idx, old_proc, new_proc, fault_at, &mut stats)?;
        }
    }
    Ok(stats)
}

/// One background drainer step: applies up to `batch` parked objects in
/// deterministic address order (skipping anything a trap already serviced).
/// The returned cost is charged concurrently — the new version is serving.
///
/// # Errors
///
/// Returns simulator errors for unexpected memory failures and the armed
/// fault triggers (see [`fault_in_at`]).
pub fn drain_step(
    plan: &TransferContext,
    residual: &mut PostcopyResidual,
    old_proc: &Process,
    new_proc: &mut Process,
    batch: usize,
    fault_at: Option<u64>,
) -> McrResult<ResidualStats> {
    let mut stats = ResidualStats::default();
    let mut applied = 0usize;
    while applied < batch.max(1) && residual.next < residual.pending.len() {
        let idx = residual.next;
        if residual.pending[idx].applied {
            residual.next += 1;
            continue;
        }
        apply_pending(plan, residual, idx, old_proc, new_proc, fault_at, &mut stats)?;
        residual.next += 1;
        applied += 1;
    }
    Ok(stats)
}

/// Whether a core run copies only the stale delta (a concurrent pre-copy
/// round) or re-emits everything for the stop-the-world window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopyMode {
    /// Concurrent round: copy stale objects only; conflicts are *not*
    /// recorded (the final pass re-detects and reports them), failed
    /// placements are simply left for the window.
    Round,
    /// Stop-the-world: write every transferable object (byte-identical
    /// memory and reports to a no-pre-copy run) but charge only the residual.
    Final,
    /// Post-copy commit: identical placements, conflicts and logical report
    /// to `Final`, but the stale writes are prepared and *parked* in a
    /// [`PostcopyResidual`] instead of applied — the new version resumes and
    /// the drainer/fault handler lands them afterwards.
    Deferred,
}

/// Per-process state-transfer report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcessTransferReport {
    /// Objects whose contents were written into the new version.
    pub objects_transferred: u64,
    /// Bytes written into the new version.
    pub bytes_transferred: u64,
    /// Objects skipped because they were clean (reinitialized by the new
    /// version's own startup code).
    pub objects_skipped_clean: u64,
    /// Objects pinned at their old address.
    pub objects_pinned: u64,
    /// Fresh allocations performed in the new version.
    pub objects_allocated: u64,
    /// Conflicts encountered (non-empty means the update must roll back).
    pub conflicts: Vec<Conflict>,
    /// Simulated time spent transferring this process.
    pub duration: SimDuration,
}

/// Aggregate over all processes of one live update.
///
/// Equality compares only the deterministic transfer work (`per_process`,
/// `serial_duration`, `parallel_duration`) — the `workers` and
/// `host_wall_ns` observability fields vary run to run by design, so a
/// serial and a parallel execution of the same update compare equal.
#[derive(Debug, Clone, Default)]
pub struct TransferSummary {
    /// Per-process reports in pair order (deterministic regardless of how
    /// many transfer workers ran).
    pub per_process: Vec<ProcessTransferReport>,
    /// Sum of per-process durations (sequential execution).
    pub serial_duration: SimDuration,
    /// Maximum per-process duration (the lower bound with one worker per
    /// pair — MCR's parallel multi-process transfer).
    pub parallel_duration: SimDuration,
    /// Worker threads the trace/transfer phase actually used (0 before the
    /// phase runs).
    pub workers: usize,
    /// Host wall-clock nanoseconds of the scoped-thread trace/transfer run.
    /// Observability only — nondeterministic, excluded from determinism
    /// comparisons.
    pub host_wall_ns: u64,
}

impl PartialEq for TransferSummary {
    fn eq(&self, other: &Self) -> bool {
        self.per_process == other.per_process
            && self.serial_duration == other.serial_duration
            && self.parallel_duration == other.parallel_duration
    }
}

impl Eq for TransferSummary {}

impl TransferSummary {
    /// Adds a process report to the aggregate.
    pub fn push(&mut self, report: ProcessTransferReport) {
        self.serial_duration = self.serial_duration.saturating_add(report.duration);
        if report.duration > self.parallel_duration {
            self.parallel_duration = report.duration;
        }
        self.per_process.push(report);
    }

    /// Total objects transferred across processes.
    pub fn objects_transferred(&self) -> u64 {
        self.per_process.iter().map(|r| r.objects_transferred).sum()
    }

    /// Total bytes transferred across processes.
    pub fn bytes_transferred(&self) -> u64 {
        self.per_process.iter().map(|r| r.bytes_transferred).sum()
    }

    /// All conflicts across processes, without copying them.
    pub fn conflicts(&self) -> impl Iterator<Item = &Conflict> {
        self.per_process.iter().flat_map(|r| r.conflicts.iter())
    }
}

/// What one core run produced (the relevant part depends on the mode).
struct TransferOutcome {
    report: ProcessTransferReport,
    residual: ResidualStats,
    round: PrecopyRoundReport,
    pending: PostcopyResidual,
}

/// The deterministic makespan of the shared-work-queue execution model: each
/// job cost, in submission order, goes to the least-loaded worker (lowest
/// index on ties). One worker yields the serial sum; one worker per job
/// yields the per-job maximum. Both the cross-pair trace/transfer phase and
/// the intra-pair shard accounting charge this schedule, so the simulated
/// clock is independent of host scheduling.
pub fn list_schedule_makespan(costs: &[SimDuration], workers: usize) -> SimDuration {
    let mut load = vec![0u64; workers.max(1)];
    for cost in costs {
        let min = load.iter().enumerate().min_by_key(|(_, l)| **l).map(|(i, _)| i).unwrap_or(0);
        load[min] += cost.0;
    }
    SimDuration(load.into_iter().max().unwrap_or(0))
}

/// Splits `costs` (one estimated cost per object, in address order) into up
/// to `shards` contiguous ranges of roughly equal cumulative cost. Returns
/// the shard id per object; deterministic, so the shard assignment — and
/// with it the charged makespan — never depends on host scheduling.
pub(crate) fn partition_contiguous(costs: &[u64], shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    let total: u64 = costs.iter().sum();
    let mut out = Vec::with_capacity(costs.len());
    let mut cum = 0u64;
    for &cost in costs {
        // The shard whose cumulative-cost window the item's midpoint lands
        // in; monotone in `cum`, so the ranges are contiguous.
        let mid = cum + cost / 2;
        let shard =
            if total == 0 { 0 } else { (((mid as u128) * shards as u128) / total.max(1) as u128) as usize };
        out.push(shard.min(shards - 1));
        cum += cost;
    }
    out
}

/// How one object's contents reach the new version, decided by the parallel
/// prepare pass and consumed by the serial apply pass.
enum Prepared {
    /// The old bytes could not be read — the object is skipped, exactly like
    /// the historical snapshot pass skipped it.
    Skip,
    /// Verbatim copy (untyped or non-updatable object, no transform): the
    /// apply pass uses the [`AddressSpace::copy_range`] fast path straight
    /// from the old space, with no intermediate buffer at all.
    Direct,
    /// Transformed contents (semantic handler or structural field map with
    /// pointer rewriting), computed on the shard worker.
    Bytes(Vec<u8>),
}

impl Prepared {
    /// Whether the verbatim fast path applies: nothing rewrites the bytes,
    /// so they can be copied space-to-space without materializing.
    fn is_verbatim(
        transform_key: &Option<Arc<str>>,
        raw_copy: bool,
        old_ty: Option<TypeId>,
        new_ty: Option<TypeId>,
    ) -> bool {
        transform_key.is_none() && (raw_copy || old_ty.is_none() || new_ty.is_none())
    }
}

/// Transfers the traced state of `old_pid` into `new_pid`.
///
/// Convenience wrapper over [`transfer_between`] for callers that hold the
/// whole kernel: it builds a one-off [`TransferContext`], split-borrows the
/// pair out of the kernel, and charges the simulated transfer cost to the
/// kernel clock.
///
/// # Errors
///
/// Returns simulator errors for unexpected memory failures; *conflicts* are
/// reported in the returned [`ProcessTransferReport`] rather than as errors,
/// so the controller can roll back cleanly.
pub fn transfer_process(
    kernel: &mut Kernel,
    old_state: &InstanceState,
    old_pid: Pid,
    new_state: &InstanceState,
    new_pid: Pid,
    trace: &TraceResult,
) -> McrResult<ProcessTransferReport> {
    let plan = TransferContext::new(old_state, new_state);
    let report = {
        let mut split = kernel.split_pairs(&[(old_pid, new_pid)]).map_err(McrError::Sim)?;
        let (old_proc, new_proc) = split.pop().expect("one pair requested");
        transfer_between(&plan, old_proc, old_state, new_proc, new_state, trace)?
    };
    kernel.advance_clock(report.duration);
    Ok(report)
}

/// Transfers the traced state of one matched pair, given direct borrows of
/// the two processes.
///
/// This is the per-pair work unit of the parallel trace/transfer phase: it
/// reads the old process, writes the new one, and consults only shared
/// read-only state (`plan`, the two instance states), so disjoint pairs can
/// run concurrently. It does **not** advance the kernel clock; the caller
/// charges the returned [`ProcessTransferReport::duration`] deterministically
/// after every pair has finished.
///
/// # Errors
///
/// Returns simulator errors for unexpected memory failures; conflicts land
/// in the report.
pub fn transfer_between(
    plan: &TransferContext,
    old_proc: &Process,
    old_state: &InstanceState,
    new_proc: &mut Process,
    new_state: &InstanceState,
    trace: &TraceResult,
) -> McrResult<ProcessTransferReport> {
    let mut delta = DeltaPlan::new();
    let (report, _residual) =
        transfer_residual(plan, &mut delta, old_proc, old_state, new_proc, new_state, trace)?;
    Ok(report)
}

/// One concurrent pre-copy round over a matched pair: places and copies only
/// the objects that are stale with respect to `delta` (never copied, or
/// dirtied since their last copy). Conflicts are not reported here — the
/// stop-the-world pass re-detects them so a pre-copied update aborts with
/// exactly the conflicts a stop-the-world update would report.
///
/// # Errors
///
/// Returns simulator errors for unexpected memory failures and the armed
/// [`TransferContext::with_object_fault`] fault.
pub fn precopy_transfer_round(
    plan: &TransferContext,
    delta: &mut DeltaPlan,
    old_proc: &Process,
    old_state: &InstanceState,
    new_proc: &mut Process,
    new_state: &InstanceState,
    trace: &TraceResult,
) -> McrResult<PrecopyRoundReport> {
    let outcome =
        run_transfer(plan, delta, CopyMode::Round, old_proc, old_state, new_proc, new_state, trace)?;
    Ok(outcome.round)
}

/// The stop-the-world pass of a pre-copied transfer: runs the full transfer
/// over the final (quiescent) object graph, reusing every placement `delta`
/// recorded, and re-emits every write — so the resulting memory, the
/// [`ProcessTransferReport`] and its conflicts are byte-identical to a plain
/// [`transfer_between`] of the same graph. The returned [`ResidualStats`]
/// cover only the objects that were still stale when the world stopped;
/// their cost is what the caller charges as downtime.
///
/// # Errors
///
/// Returns simulator errors for unexpected memory failures; conflicts land
/// in the report.
pub fn transfer_residual(
    plan: &TransferContext,
    delta: &mut DeltaPlan,
    old_proc: &Process,
    old_state: &InstanceState,
    new_proc: &mut Process,
    new_state: &InstanceState,
    trace: &TraceResult,
) -> McrResult<(ProcessTransferReport, ResidualStats)> {
    let outcome =
        run_transfer(plan, delta, CopyMode::Final, old_proc, old_state, new_proc, new_state, trace)?;
    Ok((outcome.report, outcome.residual))
}

/// The commit pass of a post-copy transfer: runs the same passes over the
/// final (quiescent) object graph as [`transfer_residual`] — identical
/// placements, conflicts and logical [`ProcessTransferReport`] — but parks
/// the stale writes in the returned [`PostcopyResidual`] instead of applying
/// them, so the new version can resume immediately. The [`ResidualStats`]
/// describe the parked set; its cost is retired later by [`drain_step`] /
/// [`fault_in_at`] while the new version serves.
///
/// # Errors
///
/// Returns simulator errors for unexpected memory failures; conflicts land
/// in the report (and, non-empty, mean the caller must roll back *before*
/// resuming the new version).
pub fn postcopy_commit(
    plan: &TransferContext,
    delta: &mut DeltaPlan,
    old_proc: &Process,
    old_state: &InstanceState,
    new_proc: &mut Process,
    new_state: &InstanceState,
    trace: &TraceResult,
) -> McrResult<(ProcessTransferReport, ResidualStats, PostcopyResidual)> {
    let outcome =
        run_transfer(plan, delta, CopyMode::Deferred, old_proc, old_state, new_proc, new_state, trace)?;
    Ok((outcome.report, outcome.residual, outcome.pending))
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn run_transfer(
    plan: &TransferContext,
    delta: &mut DeltaPlan,
    mode: CopyMode,
    old_proc: &Process,
    old_state: &InstanceState,
    new_proc: &mut Process,
    new_state: &InstanceState,
    trace: &TraceResult,
) -> McrResult<TransferOutcome> {
    let mut report = ProcessTransferReport::default();
    let mut residual = ResidualStats::default();
    let mut round = PrecopyRoundReport::default();
    let mut pending: Vec<PendingObject> = Vec::new();
    // The deferred (post-copy commit) pass behaves like the stop-the-world
    // pass everywhere except pass 5, where stale writes park instead of
    // landing.
    let final_mode = mode != CopyMode::Round;
    let deferred = mode == CopyMode::Deferred;
    let graph = &trace.graph;

    // ------------------------------------------------------------------
    // Pass 1 (read-only, once per plan): index the new version's
    // startup-time heap chunks by interned allocation-site id so old startup
    // objects can be matched. The index lives in the delta plan so the
    // queues are consumed exactly once across all pre-copy rounds.
    // ------------------------------------------------------------------
    if delta.site_index.is_none() {
        let mut site_index: BTreeMap<Sym, VecDeque<Addr>> = BTreeMap::new();
        if let Some(heap) = new_proc.heap() {
            for chunk in heap.live_chunks(new_proc.space()) {
                if !chunk.startup {
                    continue;
                }
                if let Some(sym) = plan.new_site_sym(chunk.site) {
                    site_index.entry(sym).or_default().push_back(chunk.payload);
                }
            }
        }
        delta.site_index = Some(site_index);
    }

    // ------------------------------------------------------------------
    // Pass 2: placement decisions and conflict detection. Placements are
    // looked up in the delta plan first — an object placed by an earlier
    // round keeps its slot, so pre-copied contents stay valid and pointer
    // rewriting is stable across rounds.
    // ------------------------------------------------------------------
    struct Planned {
        old_base: Addr,
        placement: Placement,
        write_contents: bool,
        stale: bool,
        old_ty: Option<TypeId>,
        new_ty: Option<TypeId>,
        transform_key: Option<Arc<str>>,
        mask_bits: u32,
        raw_copy: bool,
        size: u64,
        dirty_epoch: u64,
    }
    let mut planned: Vec<Planned> = Vec::new();
    // Regions that must exist in the new process to host pinned objects.
    let mut needed_regions: Vec<(Addr, u64, String)> = Vec::new();
    {
        let DeltaPlan { placed, copied_at, site_index, .. } = &mut *delta;
        let site_index = site_index.as_mut().expect("built above");
        for obj in graph.iter() {
            // Library state is not transferred by default.
            if matches!(obj.origin, ObjectOrigin::Lib { .. }) {
                continue;
            }
            // Symbol-level annotations can exclude objects entirely.
            let symbol = match &obj.origin {
                ObjectOrigin::Static { symbol } => Some(Arc::clone(symbol)),
                _ => None,
            };
            if let Some(sym) = &symbol {
                if matches!(old_state.annotations.obj_treatment(sym), Some(ObjTreatment::SkipTransfer)) {
                    continue;
                }
                if sym.starts_with("static@") {
                    // Anonymous static data (string constants): never
                    // transferred, only pinned by virtue of being static.
                    continue;
                }
            }

            // Resolve old/new types through the precomputed bridge.
            let old_ty = obj.type_id;
            let bridge = old_ty.and_then(|t| plan.bridge(t));
            let new_ty = bridge.and_then(|b| b.new_ty);
            let type_changed = old_ty.is_some() && !bridge.map(|b| b.layout_compatible).unwrap_or(false);
            if type_changed && obj.non_updatable && obj.is_dirty() {
                if final_mode {
                    report.conflicts.push(Conflict::NonUpdatableObjectChanged {
                        object: obj.origin.describe(),
                        old_type: bridge
                            .map(|b| b.old_name.to_string())
                            .unwrap_or_else(|| "<untyped>".into()),
                        new_type: new_ty
                            .and_then(|t| new_state.types.get(t))
                            .map(|d| d.name.to_string())
                            .unwrap_or_else(|| "<missing>".into()),
                    });
                }
                continue;
            }

            let site_name = match &obj.origin {
                ObjectOrigin::Heap { site } | ObjectOrigin::Pool { site } => site.clone(),
                _ => None,
            };
            let mask_bits = symbol
                .as_ref()
                .and_then(|s| old_state.annotations.obj_treatment(s))
                .and_then(|t| match t {
                    ObjTreatment::EncodedPointers { mask_bits } => Some(*mask_bits),
                    _ => None,
                })
                .unwrap_or(0);
            let transform_key = symbol
                .as_ref()
                .filter(|s| new_state.annotations.transform(s).is_some())
                .map(Arc::clone)
                .or_else(|| bridge.filter(|b| b.has_type_transform).map(|b| Arc::clone(&b.old_name)));

            let placement = match placed.get(&obj.addr.0) {
                Some(recorded) => *recorded,
                None => {
                    let decided = match &obj.origin {
                        ObjectOrigin::Static { symbol } => match new_state.statics.lookup(symbol) {
                            Some(new_obj) => Placement::Existing(new_obj.addr),
                            None => {
                                if final_mode && obj.is_dirty() {
                                    report
                                        .conflicts
                                        .push(Conflict::MissingCounterpart { object: obj.origin.describe() });
                                }
                                continue;
                            }
                        },
                        ObjectOrigin::Mmap => Placement::Pinned(obj.addr),
                        ObjectOrigin::Heap { .. } | ObjectOrigin::Pool { .. } => {
                            if obj.immutable {
                                Placement::Pinned(obj.addr)
                            } else if obj.startup {
                                match site_name
                                    .as_ref()
                                    .and_then(|n| plan.site_sym(n))
                                    .and_then(|sym| site_index.get_mut(&sym))
                                    .and_then(|q| q.pop_front())
                                {
                                    Some(addr) => Placement::Existing(addr),
                                    None => Placement::Fresh(Addr::NULL),
                                }
                            } else {
                                Placement::Fresh(Addr::NULL)
                            }
                        }
                        ObjectOrigin::Lib { .. } => continue,
                    };
                    // Fresh placements are recorded after allocation below;
                    // resolved slots are recorded right away.
                    if !matches!(decided, Placement::Fresh(_)) {
                        placed.insert(obj.addr.0, decided);
                    }
                    decided
                }
            };

            if let Placement::Pinned(addr) = placement {
                if !new_proc.space().is_valid_range(addr, obj.size.max(1) as usize) {
                    if let Some(region) = old_proc.space().region_containing(addr) {
                        needed_regions.push((
                            region.base(),
                            region.size(),
                            format!("inherited:{}", region.name()),
                        ));
                    }
                }
            }

            let write_contents = obj.is_dirty() || obj.immutable || matches!(placement, Placement::Fresh(_));
            if final_mode && !write_contents {
                report.objects_skipped_clean += 1;
            }
            let raw_copy = obj.non_updatable || old_ty.is_none();
            let stale = match copied_at.get(&obj.addr.0) {
                None => true,
                // Dirty tracking disabled: everything is always stale.
                Some(_) if obj.dirty_epoch == u64::MAX => true,
                Some(&copied) => obj.dirty_epoch > copied,
            };
            planned.push(Planned {
                old_base: obj.addr,
                placement,
                write_contents,
                stale,
                old_ty,
                new_ty,
                transform_key,
                mask_bits,
                raw_copy,
                size: obj.size,
                dirty_epoch: obj.dirty_epoch,
            });
        }
    }

    // ------------------------------------------------------------------
    // Pass 3 (mutating the new process): map inherited regions for pinned
    // objects and perform fresh allocations; build the address map.
    // ------------------------------------------------------------------
    let mut addr_map: BTreeMap<u64, u64> = BTreeMap::new();
    {
        let mut mapped: BTreeSet<u64> = BTreeSet::new();
        for (base, size, name) in needed_regions {
            if mapped.contains(&base.0) || new_proc.space().is_mapped(base) {
                continue;
            }
            let kind = mcr_procsim::RegionKind::Heap;
            if let Err(e) = new_proc.space_mut().map_region(base, size, kind, name) {
                if final_mode {
                    report.conflicts.push(Conflict::ImmutablePlacementFailed {
                        object: format!("region {base}"),
                        detail: e.to_string(),
                    });
                }
            }
            mapped.insert(base.0);
        }
    }
    for p in &mut planned {
        let new_base = match p.placement {
            Placement::Existing(addr) => addr,
            Placement::Pinned(addr) => {
                if final_mode {
                    report.objects_pinned += 1;
                }
                addr
            }
            Placement::Fresh(addr) if !addr.is_null() => {
                // Allocated by an earlier pre-copy round.
                if final_mode {
                    report.objects_allocated += 1;
                }
                addr
            }
            Placement::Fresh(_) => {
                // Allocate in the new version's heap with the new type tag.
                let size = p.new_ty.map(|t| new_state.types.size_of(t)).filter(|s| *s > 0).unwrap_or(p.size);
                let tag = p.new_ty.map(|t| TypeTag(t.0)).unwrap_or(TypeTag(0));
                let site = AllocSite(0);
                let (space, heap) = new_proc.space_and_heap_mut().map_err(McrError::Sim)?;
                match heap.malloc(space, size.max(1), site, tag) {
                    Ok(addr) => {
                        if final_mode {
                            report.objects_allocated += 1;
                        }
                        p.placement = Placement::Fresh(addr);
                        delta.placed.insert(p.old_base.0, Placement::Fresh(addr));
                        addr
                    }
                    Err(e) => {
                        if final_mode {
                            report.conflicts.push(Conflict::ImmutablePlacementFailed {
                                object: format!("heap object at {}", p.old_base),
                                detail: e.to_string(),
                            });
                        }
                        continue;
                    }
                }
            }
        };
        addr_map.insert(p.old_base.0, new_base.0);
    }

    // ------------------------------------------------------------------
    // Pass 4 (read-only, shard-parallel): snapshot and transform the bytes
    // of every object whose contents must be written in this mode —
    // everything transferable for the stop-the-world pass, only the stale
    // delta for a concurrent pre-copy round. The object list (already in
    // address order) is split into contiguous address-range shards of
    // roughly equal cost; each shard worker reuses one scratch buffer
    // (`AddressSpace::read_into`) instead of allocating a `Vec` per object,
    // and verbatim objects skip the snapshot entirely (the apply pass
    // copies them space-to-space).
    // ------------------------------------------------------------------
    let writes: Vec<(usize, Addr)> = planned
        .iter()
        .enumerate()
        .filter(|(_, p)| p.write_contents && (final_mode || p.stale))
        .filter_map(|(i, p)| addr_map.get(&p.old_base.0).map(|&nb| (i, Addr(nb))))
        .collect();
    let shards = plan.intra_pair_shards();
    let est_costs: Vec<u64> = writes.iter().map(|&(i, _)| 2_000 + 2 * planned[i].size.max(1)).collect();
    let shard_of = partition_contiguous(&est_costs, shards);
    let prepare = |p: &Planned, scratch: &mut Vec<u8>| -> Prepared {
        if Prepared::is_verbatim(&p.transform_key, p.raw_copy, p.old_ty, p.new_ty) {
            // Reproduce the historical skip: unreadable old bytes drop the
            // object from the write set without touching any counter.
            if old_proc.space().is_valid_range(p.old_base, p.size.max(1) as usize) {
                return Prepared::Direct;
            }
            return Prepared::Skip;
        }
        let len = p.size.max(1) as usize;
        if scratch.len() < len {
            scratch.resize(len, 0);
        }
        if old_proc.space().read_into(p.old_base, &mut scratch[..len]).is_err() {
            return Prepared::Skip;
        }
        let old_bytes = &scratch[..len];
        if let Some(key) = &p.transform_key {
            let handler = new_state.annotations.transform(key).expect("transform key resolved earlier");
            return Prepared::Bytes(handler(old_bytes));
        }
        let (old_ty, new_ty) = (p.old_ty.expect("typed path"), p.new_ty.expect("typed path"));
        let map = compute_field_map(&old_state.types, old_ty, &new_state.types, new_ty);
        // Objects larger than one element (arrays of the element type) are
        // transformed element-wise.
        let old_stride = map.old_size.max(1);
        let count = (old_bytes.len() as u64 / old_stride).max(1);
        let mut out = Vec::with_capacity((map.new_size.max(1) * count) as usize);
        for k in 0..count {
            let start = (k * old_stride) as usize;
            let end = ((k + 1) * old_stride).min(old_bytes.len() as u64) as usize;
            let mut elem = apply_field_map(&map, &old_bytes[start..end]);
            rewrite_pointers(&mut elem, &map.pointers, &old_bytes[start..end], trace, &addr_map, p.mask_bits);
            out.extend_from_slice(&elem);
        }
        Prepared::Bytes(out)
    };
    let mut prepared: Vec<Prepared> = Vec::with_capacity(writes.len());
    if shards <= 1 || writes.len() < 2 * shards {
        let mut scratch = Vec::new();
        prepared.extend(writes.iter().map(|&(i, _)| prepare(&planned[i], &mut scratch)));
    } else {
        prepared.resize_with(writes.len(), || Prepared::Skip);
        // Hand each shard its contiguous slice of the result vector; the
        // shard ranges are contiguous by construction.
        let mut slices: Vec<(&mut [Prepared], usize)> = Vec::new();
        let mut rest: &mut [Prepared] = &mut prepared;
        let mut start = 0usize;
        for shard in 0..shards {
            let len = shard_of.iter().filter(|&&s| s == shard).count();
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(len);
            slices.push((head, start));
            rest = tail;
            start += len;
        }
        std::thread::scope(|scope| {
            let prepare = &prepare;
            let writes = &writes;
            let planned = &planned;
            for (slice, offset) in slices {
                scope.spawn(move || {
                    let mut scratch = Vec::new();
                    for (k, slot) in slice.iter_mut().enumerate() {
                        let (pidx, _) = writes[offset + k];
                        *slot = prepare(&planned[pidx], &mut scratch);
                    }
                });
            }
        });
    }

    // ------------------------------------------------------------------
    // Pass 5 (serial, deterministic): apply the prepared contents in
    // address order — fault counting, conflict detection, `copied_at`
    // stamping and the report are byte-identical to the serial engine for
    // every shard count. The per-shard charge of each applied write feeds
    // the list-schedule makespan below.
    // ------------------------------------------------------------------
    let mut shard_residual = vec![SimDuration(0); shards];
    let mut shard_round = vec![SimDuration(0); shards];
    for (k, (&(pidx, new_base), outcome)) in writes.iter().zip(prepared.iter()).enumerate() {
        let p = &planned[pidx];
        if matches!(outcome, Prepared::Skip) {
            continue;
        }
        if deferred && p.stale {
            // Post-copy commit: park the stale write — count it exactly as
            // the stop-the-world pass would (the logical report stays
            // byte-identical), but do not land the bytes and do not tick the
            // fault counter: both happen when the drainer/fault handler
            // applies the object.
            let writable = new_proc
                .space()
                .region_containing(new_base)
                .map(|r| (r.end().0 - new_base.0) as usize)
                .unwrap_or(0);
            if writable == 0 {
                report.conflicts.push(Conflict::ImmutablePlacementFailed {
                    object: format!("object at {}", p.old_base),
                    detail: format!("target address {new_base} not mapped in the new version"),
                });
                continue;
            }
            let (len, bytes) = match outcome {
                Prepared::Skip => unreachable!("skipped above"),
                Prepared::Direct => ((p.size.max(1) as usize).min(writable), None),
                Prepared::Bytes(out) => {
                    let len = out.len().min(writable);
                    (len, Some(out[..len].to_vec()))
                }
            };
            report.objects_transferred += 1;
            report.bytes_transferred += len as u64;
            residual.objects += 1;
            residual.bytes += len as u64;
            // No cost lands in `shard_residual`: the apply cost is charged
            // when the object is faulted in or drained, after the new
            // version has resumed — moving that work off the downtime
            // window is the point of post-copy.
            pending.push(PendingObject { old_base: p.old_base, new_base, len, bytes, applied: false });
            continue;
        }
        if plan.object_write_fires_fault() {
            return Err(Conflict::FaultInjected { phase: "transfer-object".into() }.into());
        }
        let writable = new_proc
            .space()
            .region_containing(new_base)
            .map(|r| (r.end().0 - new_base.0) as usize)
            .unwrap_or(0);
        if writable == 0 {
            if final_mode {
                report.conflicts.push(Conflict::ImmutablePlacementFailed {
                    object: format!("object at {}", p.old_base),
                    detail: format!("target address {new_base} not mapped in the new version"),
                });
            }
            continue;
        }
        let len = match outcome {
            Prepared::Skip => unreachable!("skipped above"),
            Prepared::Direct => {
                let len = (p.size.max(1) as usize).min(writable);
                new_proc
                    .space_mut()
                    .copy_range(new_base, old_proc.space(), p.old_base, len)
                    .map_err(McrError::Sim)?;
                len
            }
            Prepared::Bytes(out_bytes) => {
                let len = out_bytes.len().min(writable);
                new_proc.space_mut().write_bytes(new_base, &out_bytes[..len]).map_err(McrError::Sim)?;
                len
            }
        };
        delta.copied_at.insert(p.old_base.0, p.dirty_epoch);
        let cost = SimDuration(2_000 + 2 * len as u64);
        if final_mode {
            report.objects_transferred += 1;
            report.bytes_transferred += len as u64;
            if p.stale {
                residual.objects += 1;
                residual.bytes += len as u64;
                shard_residual[shard_of[k]] = shard_residual[shard_of[k]].saturating_add(cost);
            }
        } else {
            round.objects_copied += 1;
            round.bytes_copied += len as u64;
            shard_round[shard_of[k]] = shard_round[shard_of[k]].saturating_add(cost);
        }
    }

    // Account the simulated cost of the transfer: per-object bookkeeping
    // plus a per-byte copy cost. The caller charges the residual cost to the
    // kernel clock inside the stop-the-world window and the round cost while
    // the old version is still serving; `report.duration` stays the logical
    // full-transfer cost so reports are identical with and without pre-copy
    // and across shard counts. The *charged* cost is the deterministic
    // list-schedule makespan over the per-shard costs — with one shard the
    // serial sum (exactly the historical formula), with `n` shards the
    // parallel schedule the shard workers executed.
    report.duration = SimDuration(report.objects_transferred * 2_000 + report.bytes_transferred * 2);
    residual.cost = list_schedule_makespan(&shard_residual, shards);
    round.cost = list_schedule_makespan(&shard_round, shards);
    Ok(TransferOutcome { report, residual, round, pending: PostcopyResidual::build(pending) })
}

/// Rewrites the pointer slots of a transformed element: each old pointer
/// value is translated through the address map (preserving interior offsets
/// and encoded low bits).
fn rewrite_pointers(
    out: &mut [u8],
    pointer_pairs: &[(u64, u64)],
    old_elem: &[u8],
    trace: &TraceResult,
    addr_map: &BTreeMap<u64, u64>,
    mask_bits: u32,
) {
    let mask = if mask_bits == 0 { 0 } else { (1u64 << mask_bits) - 1 };
    for &(old_off, new_off) in pointer_pairs {
        let old_off = old_off as usize;
        let new_off = new_off as usize;
        if old_off + 8 > old_elem.len() || new_off + 8 > out.len() {
            continue;
        }
        let raw = u64::from_le_bytes(old_elem[old_off..old_off + 8].try_into().expect("8 bytes"));
        if raw == 0 {
            continue;
        }
        let bits = raw & mask;
        let target = raw & !mask;
        let new_raw = match trace.graph.object_containing(Addr(target)) {
            Some(obj) => match addr_map.get(&obj.addr.0) {
                Some(&new_base) => {
                    let delta = target - obj.addr.0;
                    (new_base + delta) | bits
                }
                // Target not transferred (e.g. library state pinned at the
                // same address): keep the old value.
                None => raw,
            },
            None => raw,
        };
        out[new_off..new_off + 8].copy_from_slice(&new_raw.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpose::Interposer;
    use crate::program::{InstanceState, ProgramEnv, ThreadRosterEntry};
    use crate::tracing::tracer::{trace_process, TraceOptions, Tracer};
    use mcr_procsim::MemoryLayout;
    use mcr_typemeta::{Field, InstrumentationConfig};

    fn make_instance(kernel: &mut Kernel, name: &str, slide: u64) -> (InstanceState, Pid) {
        let pid = kernel.create_process(name).unwrap();
        kernel.process_mut(pid).unwrap().setup_memory(MemoryLayout::with_slide(slide), true).unwrap();
        let mut state =
            InstanceState::new(name, "1.0", InstrumentationConfig::full(), Interposer::recorder());
        let tid = kernel.process(pid).unwrap().main_tid();
        state.processes.push(pid);
        state.threads.push(ThreadRosterEntry {
            pid,
            tid,
            name: "main".into(),
            created_during_startup: true,
            exited: false,
        });
        (state, pid)
    }

    fn register_v1_types(state: &mut InstanceState) {
        let int = state.types.int("int", 4);
        let conf =
            state.types.struct_type("conf_s", vec![Field::new("workers", int), Field::new("port", int)]);
        let _ = state.types.pointer("conf_s*", conf);
        let fwd = state.types.opaque("l_t_fwd", 16);
        let node_ptr = state.types.pointer("l_t*", fwd);
        let _ = state.types.struct_type("l_t", vec![Field::new("value", int), Field::new("next", node_ptr)]);
    }

    fn register_v2_types(state: &mut InstanceState) {
        let int = state.types.int("int", 4);
        let conf =
            state.types.struct_type("conf_s", vec![Field::new("workers", int), Field::new("port", int)]);
        let _ = state.types.pointer("conf_s*", conf);
        let fwd = state.types.opaque("l_t_fwd", 24);
        let node_ptr = state.types.pointer("l_t*", fwd);
        // Figure 2: the update adds a `new` field to l_t.
        let _ = state.types.struct_type(
            "l_t",
            vec![Field::new("value", int), Field::new("new", int), Field::new("next", node_ptr)],
        );
    }

    /// Builds an old version with a 2-node dirty linked list plus a clean
    /// config, and a new version whose startup re-created the config and the
    /// list head; then transfers and checks the Figure 2 outcome.
    #[test]
    fn figure2_list_is_relocated_and_type_transformed() {
        let mut kernel = Kernel::new();
        let (mut old_state, old_pid) = make_instance(&mut kernel, "v1", 0);
        register_v1_types(&mut old_state);
        let old_tid = kernel.process(old_pid).unwrap().main_tid();
        let (list_global, node_a, node_b, conf_global, conf_obj);
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut old_state, old_pid, old_tid, "main");
            conf_global = env.define_global("conf", "conf_s*").unwrap();
            conf_obj = env.alloc("conf_s", "server_init:conf").unwrap();
            env.write_u32(conf_obj, 4).unwrap();
            env.write_u32(conf_obj.offset(4), 80).unwrap();
            env.write_ptr(conf_global, conf_obj).unwrap();
            list_global = env.define_global("list", "l_t").unwrap();
            // Startup list value.
            env.write_u32(list_global, 10).unwrap();
            // Page-sized padding so post-startup heap allocations do not
            // share a page with the startup-time config (dirtiness is
            // tracked at page granularity).
            let _pad = env.alloc_bytes(2 * mcr_procsim::PAGE_SIZE, "pad").unwrap();
        }
        // Startup complete.
        {
            let p = kernel.process_mut(old_pid).unwrap();
            p.heap_mut().unwrap().end_startup();
            p.space_mut().clear_soft_dirty();
        }
        // Post-startup: two heap nodes appended to the list.
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut old_state, old_pid, old_tid, "main");
            node_a = env.alloc("l_t", "handle_event:node").unwrap();
            node_b = env.alloc("l_t", "handle_event:node").unwrap();
            env.write_u32(node_a, 20).unwrap();
            env.write_ptr(node_a.offset(8), node_b).unwrap();
            env.write_u32(node_b, 30).unwrap();
            env.write_ptr(list_global.offset(8), node_a).unwrap();
        }

        // New version: different layout slide, re-created config and list
        // head via its own startup (simulated directly here).
        let (mut new_state, new_pid) = make_instance(&mut kernel, "v2", 0x1_0000_0000);
        register_v2_types(&mut new_state);
        let new_tid = kernel.process(new_pid).unwrap().main_tid();
        let (new_conf_global, new_list_global);
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut new_state, new_pid, new_tid, "main");
            new_conf_global = env.define_global("conf", "conf_s*").unwrap();
            let new_conf = env.alloc("conf_s", "server_init:conf").unwrap();
            env.write_u32(new_conf, 8).unwrap();
            env.write_ptr(new_conf_global, new_conf).unwrap();
            new_list_global = env.define_global("list", "l_t").unwrap();
        }
        {
            let p = kernel.process_mut(new_pid).unwrap();
            p.heap_mut().unwrap().end_startup();
            p.space_mut().clear_soft_dirty();
        }

        // Trace the old version and transfer.
        let trace = trace_process(&kernel, &old_state, old_pid, TraceOptions::default()).unwrap();
        let report = transfer_process(&mut kernel, &old_state, old_pid, &new_state, new_pid, &trace).unwrap();
        assert!(report.conflicts.is_empty(), "unexpected conflicts: {:?}", report.conflicts);
        assert!(report.objects_transferred >= 3, "list head and both nodes move");
        assert!(report.objects_allocated >= 2, "post-startup nodes get fresh chunks");
        assert!(report.objects_skipped_clean >= 1, "clean config is not transferred");

        // Follow the transferred list in the new version and check the
        // Figure 2 shape: value preserved, `new` field zeroed, next pointers
        // relocated, layout is the v2 layout (value at 0, new at 4, next 8).
        let new_space = kernel.process(new_pid).unwrap().space();
        assert_eq!(new_space.read_u32(new_list_global).unwrap(), 10);
        let new_node_a = Addr(new_space.read_u64(new_list_global.offset(8)).unwrap());
        assert_ne!(new_node_a, node_a, "node relocated into the new heap");
        assert_eq!(new_space.read_u32(new_node_a).unwrap(), 20);
        assert_eq!(new_space.read_u32(new_node_a.offset(4)).unwrap(), 0, "new field zero");
        let new_node_b = Addr(new_space.read_u64(new_node_a.offset(8)).unwrap());
        assert_ne!(new_node_b, node_b);
        assert_eq!(new_space.read_u32(new_node_b).unwrap(), 30);
        assert_eq!(new_space.read_u64(new_node_b.offset(8)).unwrap(), 0);

        // The clean config kept whatever the new version initialized.
        let new_conf_ptr = Addr(new_space.read_u64(new_conf_global).unwrap());
        assert_eq!(new_space.read_u32(new_conf_ptr).unwrap(), 8, "conf reinitialized, not overwritten");
    }

    /// A dirty buffer containing a hidden pointer forces its target to be
    /// pinned at the same address in the new version.
    #[test]
    fn conservative_targets_are_pinned_at_the_same_address() {
        let mut kernel = Kernel::new();
        let (mut old_state, old_pid) = make_instance(&mut kernel, "v1", 0);
        register_v1_types(&mut old_state);
        let old_tid = kernel.process(old_pid).unwrap().main_tid();
        let (b_global, hidden);
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut old_state, old_pid, old_tid, "main");
            b_global = env.define_global_opaque("b", 16).unwrap();
            hidden = env.alloc_bytes(64, "mystery").unwrap();
            env.write_u64(hidden, 0x1122_3344).unwrap();
            env.write_ptr(b_global, hidden).unwrap();
        }
        let (mut new_state, new_pid) = make_instance(&mut kernel, "v2", 0x1_0000_0000);
        register_v2_types(&mut new_state);
        let new_tid = kernel.process(new_pid).unwrap().main_tid();
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut new_state, new_pid, new_tid, "main");
            env.define_global_opaque("b", 16).unwrap();
        }

        let trace = trace_process(&kernel, &old_state, old_pid, TraceOptions::default()).unwrap();
        let report = transfer_process(&mut kernel, &old_state, old_pid, &new_state, new_pid, &trace).unwrap();
        assert!(report.conflicts.is_empty(), "{:?}", report.conflicts);
        assert!(report.objects_pinned >= 1);
        // The hidden object is available at its *old* address in the new
        // process, so the verbatim-copied pointer in `b` stays valid.
        let new_space = kernel.process(new_pid).unwrap().space();
        let new_b = new_state.statics.lookup("b").unwrap().addr;
        assert_eq!(Addr(new_space.read_u64(new_b).unwrap()), hidden);
        assert_eq!(new_space.read_u64(hidden).unwrap(), 0x1122_3344);
    }

    /// Changing the type of an object that mutable tracing marked
    /// non-updatable must produce a conflict.
    #[test]
    fn type_change_on_non_updatable_object_conflicts() {
        let mut kernel = Kernel::new();
        let (mut old_state, old_pid) = make_instance(&mut kernel, "v1", 0);
        register_v1_types(&mut old_state);
        // The old buffer type is a char array that hides a pointer.
        let old_tid = kernel.process(old_pid).unwrap().main_tid();
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut old_state, old_pid, old_tid, "main");
            let c8 = env.types().lookup("int").unwrap();
            let _ = c8;
            let b = env.define_global_opaque("hidden_buf", 8).unwrap();
            let target = env.alloc("conf_s", "init:target").unwrap();
            env.write_ptr(b, target).unwrap();
        }
        let (mut new_state, new_pid) = make_instance(&mut kernel, "v2", 0x1_0000_0000);
        register_v2_types(&mut new_state);
        let new_tid = kernel.process(new_pid).unwrap().main_tid();
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut new_state, new_pid, new_tid, "main");
            // The new version declares the buffer with a *different* size —
            // a type change on an opaque object.
            env.define_global_opaque("hidden_buf", 32).unwrap();
        }
        let trace = trace_process(&kernel, &old_state, old_pid, TraceOptions::default()).unwrap();
        let report = transfer_process(&mut kernel, &old_state, old_pid, &new_state, new_pid, &trace).unwrap();
        assert!(report.conflicts.iter().any(|c| matches!(c, Conflict::NonUpdatableObjectChanged { .. })));
    }

    /// A user transform handler overrides the structural transformation.
    #[test]
    fn semantic_transform_handler_is_applied() {
        let mut kernel = Kernel::new();
        let (mut old_state, old_pid) = make_instance(&mut kernel, "v1", 0);
        register_v1_types(&mut old_state);
        let old_tid = kernel.process(old_pid).unwrap().main_tid();
        let conf_global;
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut old_state, old_pid, old_tid, "main");
            conf_global = env.define_global("conf_inline", "conf_s").unwrap();
            env.write_u32(conf_global, 4).unwrap();
            env.write_u32(conf_global.offset(4), 80).unwrap();
        }
        let (mut new_state, new_pid) = make_instance(&mut kernel, "v2", 0x1_0000_0000);
        register_v2_types(&mut new_state);
        let new_tid = kernel.process(new_pid).unwrap().main_tid();
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut new_state, new_pid, new_tid, "main");
            env.define_global("conf_inline", "conf_s").unwrap();
            // Semantic change: the new version stores workers doubled.
            env.add_transform(
                "conf_s",
                Box::new(|old| {
                    let mut out = old.to_vec();
                    let workers = u32::from_le_bytes(old[0..4].try_into().unwrap());
                    out[0..4].copy_from_slice(&(workers * 2).to_le_bytes());
                    out
                }),
                21,
            );
        }
        let trace = trace_process(&kernel, &old_state, old_pid, TraceOptions::default()).unwrap();
        let report = transfer_process(&mut kernel, &old_state, old_pid, &new_state, new_pid, &trace).unwrap();
        assert!(report.conflicts.is_empty());
        let new_addr = new_state.statics.lookup("conf_inline").unwrap().addr;
        let space = kernel.process(new_pid).unwrap().space();
        assert_eq!(space.read_u32(new_addr).unwrap(), 8, "transform doubled the worker count");
        assert_eq!(space.read_u32(new_addr.offset(4)).unwrap(), 80);
        assert_eq!(new_state.annotations.state_transfer_loc(), 21);
    }

    /// The resumable delta plan: a pre-copy round copies everything once,
    /// the stop-the-world pass then only pays for what was dirtied in
    /// between, and the logical report stays the full-transfer report.
    #[test]
    fn precopy_round_shrinks_the_residual_to_the_working_set() {
        let mut kernel = Kernel::new();
        let (mut old_state, old_pid) = make_instance(&mut kernel, "v1", 0);
        register_v1_types(&mut old_state);
        let old_tid = kernel.process(old_pid).unwrap().main_tid();
        let (list_global, node_a, node_b);
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut old_state, old_pid, old_tid, "main");
            list_global = env.define_global("list", "l_t").unwrap();
            let _pad = env.alloc_bytes(2 * mcr_procsim::PAGE_SIZE, "pad").unwrap();
            node_a = env.alloc("l_t", "handle_event:node").unwrap();
            node_b = env.alloc("l_t", "handle_event:node").unwrap();
            env.write_u32(node_a, 20).unwrap();
            env.write_ptr(node_a.offset(8), node_b).unwrap();
            env.write_u32(node_b, 30).unwrap();
            env.write_ptr(list_global.offset(8), node_a).unwrap();
        }
        {
            let p = kernel.process_mut(old_pid).unwrap();
            p.heap_mut().unwrap().end_startup();
        }
        let (mut new_state, new_pid) = make_instance(&mut kernel, "v2", 0x1_0000_0000);
        register_v2_types(&mut new_state);
        let new_tid = kernel.process(new_pid).unwrap().main_tid();
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut new_state, new_pid, new_tid, "main");
            env.define_global("list", "l_t").unwrap();
        }
        {
            let p = kernel.process_mut(new_pid).unwrap();
            p.heap_mut().unwrap().end_startup();
            p.space_mut().clear_soft_dirty();
        }

        let plan = TransferContext::new(&old_state, &new_state);
        let mut delta = DeltaPlan::new();

        // Round 1: everything is stale, everything gets copied.
        let mut trace = trace_process(&kernel, &old_state, old_pid, TraceOptions::default()).unwrap();
        let since = kernel.advance_write_epoch(old_pid).unwrap();
        let round = {
            let mut split = kernel.split_pairs(&[(old_pid, new_pid)]).unwrap();
            let (old_proc, new_proc) = split.pop().unwrap();
            precopy_transfer_round(&plan, &mut delta, old_proc, &old_state, new_proc, &new_state, &trace)
                .unwrap()
        };
        assert!(round.objects_copied >= 3, "round 1 copies the whole graph");
        delta.traced_upto = since;

        // The old version keeps running: it touches one node.
        kernel.process_mut(old_pid).unwrap().space_mut().write_u32(node_a, 21).unwrap();

        // Stop the world: retrace the delta, transfer the residual.
        let (report, residual) = {
            let mut split = kernel.split_pairs(&[(old_pid, new_pid)]).unwrap();
            let (old_proc, new_proc) = split.pop().unwrap();
            let tracer = Tracer::for_process(old_proc, &old_state, TraceOptions::default());
            trace.stats = trace.graph.retrace_dirty(&tracer, delta.traced_upto);
            transfer_residual(&plan, &mut delta, old_proc, &old_state, new_proc, &new_state, &trace).unwrap()
        };
        assert!(report.conflicts.is_empty(), "{:?}", report.conflicts);
        assert_eq!(report.objects_transferred, round.objects_copied, "logical report covers everything");
        // Dirtiness is page-granular: the touched node plus its page
        // neighbour are stale, the page-padded list head is not.
        assert!(residual.objects >= 1 && residual.objects < report.objects_transferred);
        assert!(residual.cost < report.duration, "downtime cost shrank to the working set");

        // The transferred list in the new version reflects the final value.
        let new_space = kernel.process(new_pid).unwrap().space();
        let new_list = new_state.statics.lookup("list").unwrap().addr;
        let new_node_a = Addr(new_space.read_u64(new_list.offset(8)).unwrap());
        assert_eq!(new_space.read_u32(new_node_a).unwrap(), 21, "residual re-copy carried the last write");
    }

    /// The armed object fault fires instead of the n-th write, during a
    /// pre-copy round as well as during a stop-the-world transfer.
    #[test]
    fn object_fault_fires_at_the_nth_write() {
        let mut kernel = Kernel::new();
        let (mut old_state, old_pid) = make_instance(&mut kernel, "v1", 0);
        register_v1_types(&mut old_state);
        let old_tid = kernel.process(old_pid).unwrap().main_tid();
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut old_state, old_pid, old_tid, "main");
            let list = env.define_global("list", "l_t").unwrap();
            let node = env.alloc("l_t", "handle_event:node").unwrap();
            env.write_u32(node, 1).unwrap();
            env.write_ptr(list.offset(8), node).unwrap();
        }
        let (mut new_state, new_pid) = make_instance(&mut kernel, "v2", 0x1_0000_0000);
        register_v2_types(&mut new_state);
        let new_tid = kernel.process(new_pid).unwrap().main_tid();
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut new_state, new_pid, new_tid, "main");
            env.define_global("list", "l_t").unwrap();
        }
        let trace = trace_process(&kernel, &old_state, old_pid, TraceOptions::default()).unwrap();
        let plan = TransferContext::new(&old_state, &new_state).with_object_fault(Some(1));
        let mut delta = DeltaPlan::new();
        let err = {
            let mut split = kernel.split_pairs(&[(old_pid, new_pid)]).unwrap();
            let (old_proc, new_proc) = split.pop().unwrap();
            precopy_transfer_round(&plan, &mut delta, old_proc, &old_state, new_proc, &new_state, &trace)
                .unwrap_err()
        };
        let conflicts = match err {
            McrError::Conflicts(cs) => cs,
            other => panic!("unexpected error {other}"),
        };
        assert!(conflicts.iter().any(|c| matches!(c, Conflict::FaultInjected { .. })));
    }

    #[test]
    fn summary_aggregates_serial_and_parallel_durations() {
        let mut summary = TransferSummary::default();
        summary.push(ProcessTransferReport {
            duration: SimDuration(300),
            objects_transferred: 2,
            ..Default::default()
        });
        summary.push(ProcessTransferReport {
            duration: SimDuration(500),
            bytes_transferred: 64,
            ..Default::default()
        });
        assert_eq!(summary.serial_duration, SimDuration(800));
        assert_eq!(summary.parallel_duration, SimDuration(500));
        assert_eq!(summary.objects_transferred(), 2);
        assert_eq!(summary.bytes_transferred(), 64);
        assert_eq!(summary.conflicts().count(), 0);
    }
}
