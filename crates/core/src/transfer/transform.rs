//! Structural type transformations between program versions.
//!
//! When an update changes a data structure (adds, removes or reorders
//! fields), state transfer must re-lay the old object's bytes into the new
//! layout and rewrite the pointers it contains. The [`FieldMap`] computed
//! here pairs old and new byte ranges by walking both type descriptions and
//! matching struct fields *by name*, recursively — the automatic portion of
//! MCR's type transformation. Semantic changes beyond that are the job of
//! user transform handlers (annotations).

use mcr_typemeta::{TypeId, TypeKind, TypeRegistry};

/// A plan for converting one object from its old layout to its new layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FieldMap {
    /// Raw byte copies: `(old_offset, new_offset, len)`.
    pub copies: Vec<(u64, u64, u64)>,
    /// Pointer slots to rewrite: `(old_offset, new_offset)`.
    pub pointers: Vec<(u64, u64)>,
    /// Size of the old representation.
    pub old_size: u64,
    /// Size of the new representation.
    pub new_size: u64,
}

impl FieldMap {
    /// An identity map for an object whose layout did not change.
    pub fn identity(size: u64, pointer_offsets: &[u64]) -> Self {
        let mut copies = Vec::new();
        let mut last = 0u64;
        let mut pointers = Vec::new();
        for &off in pointer_offsets {
            if off > last {
                copies.push((last, last, off - last));
            }
            pointers.push((off, off));
            last = off + 8;
        }
        if last < size {
            copies.push((last, last, size - last));
        }
        FieldMap { copies, pointers, old_size: size, new_size: size }
    }

    /// Total bytes copied by the plan (excluding rewritten pointers).
    pub fn copied_bytes(&self) -> u64 {
        self.copies.iter().map(|(_, _, len)| len).sum()
    }
}

/// Computes the transformation plan from `old_ty` (in `old_reg`) to `new_ty`
/// (in `new_reg`).
///
/// Unknown types fall back to a raw copy of the overlapping prefix.
pub fn compute_field_map(
    old_reg: &TypeRegistry,
    old_ty: TypeId,
    new_reg: &TypeRegistry,
    new_ty: TypeId,
) -> FieldMap {
    let old_size = old_reg.size_of(old_ty);
    let new_size = new_reg.size_of(new_ty);
    let mut map = FieldMap { copies: Vec::new(), pointers: Vec::new(), old_size, new_size };
    map_into(old_reg, old_ty, 0, new_reg, new_ty, 0, &mut map);
    map
}

fn raw_copy(
    old_reg: &TypeRegistry,
    old_ty: TypeId,
    old_off: u64,
    new_reg: &TypeRegistry,
    new_ty: TypeId,
    new_off: u64,
    map: &mut FieldMap,
) {
    let len = old_reg.size_of(old_ty).min(new_reg.size_of(new_ty));
    if len > 0 {
        map.copies.push((old_off, new_off, len));
    }
}

fn map_into(
    old_reg: &TypeRegistry,
    old_ty: TypeId,
    old_off: u64,
    new_reg: &TypeRegistry,
    new_ty: TypeId,
    new_off: u64,
    map: &mut FieldMap,
) {
    let (Some(old_desc), Some(new_desc)) = (old_reg.get(old_ty), new_reg.get(new_ty)) else {
        // Unknown on either side: copy the overlapping bytes verbatim.
        let len = old_reg.size_of(old_ty).max(8).min(new_reg.size_of(new_ty).max(8));
        map.copies.push((old_off, new_off, len));
        return;
    };
    match (&old_desc.kind, &new_desc.kind) {
        (TypeKind::Pointer { .. }, TypeKind::Pointer { .. }) => {
            map.pointers.push((old_off, new_off));
        }
        (TypeKind::Struct { fields: old_fields }, TypeKind::Struct { fields: new_fields }) => {
            let old_layout = old_reg.struct_layout(old_ty);
            let new_layout = new_reg.struct_layout(new_ty);
            let _ = (old_fields, new_fields);
            for new_field in &new_layout {
                if let Some(old_field) = old_layout.iter().find(|f| f.name == new_field.name) {
                    map_into(
                        old_reg,
                        old_field.ty,
                        old_off + old_field.offset,
                        new_reg,
                        new_field.ty,
                        new_off + new_field.offset,
                        map,
                    );
                }
            }
        }
        (
            TypeKind::Array { elem: old_elem, len: old_len },
            TypeKind::Array { elem: new_elem, len: new_len },
        ) => {
            let old_stride = stride(old_reg, *old_elem);
            let new_stride = stride(new_reg, *new_elem);
            for i in 0..(*old_len).min(*new_len) {
                map_into(
                    old_reg,
                    *old_elem,
                    old_off + i * old_stride,
                    new_reg,
                    *new_elem,
                    new_off + i * new_stride,
                    map,
                );
            }
        }
        (TypeKind::Int { size: a }, TypeKind::Int { size: b }) => {
            map.copies.push((old_off, new_off, (*a).min(*b)));
        }
        (TypeKind::CharArray { len: a }, TypeKind::CharArray { len: b }) => {
            map.copies.push((old_off, new_off, (*a).min(*b)));
        }
        (TypeKind::PtrSizedInt, TypeKind::PtrSizedInt) => {
            map.copies.push((old_off, new_off, 8));
        }
        (TypeKind::Union { .. }, TypeKind::Union { .. })
        | (TypeKind::Opaque { .. }, TypeKind::Opaque { .. }) => {
            raw_copy(old_reg, old_ty, old_off, new_reg, new_ty, new_off, map);
        }
        // Kind changed (e.g. int widened to pointer): nothing can be copied
        // structurally; the slot is left zeroed for the new version (or
        // handled by a user transform).
        _ => {}
    }
}

fn stride(reg: &TypeRegistry, ty: TypeId) -> u64 {
    let size = reg.size_of(ty).max(1);
    let align = reg.align_of(ty).max(1);
    size.div_ceil(align) * align
}

/// Applies a field map to an old object's bytes, producing the new object's
/// bytes with pointer slots still holding their *old* values (the caller
/// rewrites them afterwards using its address map).
pub fn apply_field_map(map: &FieldMap, old_bytes: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; map.new_size.max(1) as usize];
    for &(old_off, new_off, len) in &map.copies {
        let old_off = old_off as usize;
        let new_off = new_off as usize;
        let len = len as usize;
        if old_off + len <= old_bytes.len() && new_off + len <= out.len() {
            out[new_off..new_off + len].copy_from_slice(&old_bytes[old_off..old_off + len]);
        }
    }
    for &(old_off, new_off) in &map.pointers {
        let old_off = old_off as usize;
        let new_off = new_off as usize;
        if old_off + 8 <= old_bytes.len() && new_off + 8 <= out.len() {
            out[new_off..new_off + 8].copy_from_slice(&old_bytes[old_off..old_off + 8]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_typemeta::Field;

    fn listing1_old() -> (TypeRegistry, TypeId) {
        let mut reg = TypeRegistry::new();
        let int = reg.int("int", 4);
        let fwd = reg.opaque("l_t_fwd", 16);
        let ptr = reg.pointer("l_t*", fwd);
        let node = reg.struct_type("l_t", vec![Field::new("value", int), Field::new("next", ptr)]);
        (reg, node)
    }

    /// The Figure 2 update: `l_t` gains a `new` field between `value` and
    /// `next`.
    fn listing1_new() -> (TypeRegistry, TypeId) {
        let mut reg = TypeRegistry::new();
        let int = reg.int("int", 4);
        let fwd = reg.opaque("l_t_fwd", 24);
        let ptr = reg.pointer("l_t*", fwd);
        let node = reg.struct_type(
            "l_t",
            vec![Field::new("value", int), Field::new("new", int), Field::new("next", ptr)],
        );
        (reg, node)
    }

    #[test]
    fn field_added_between_existing_fields() {
        let (old_reg, old_ty) = listing1_old();
        let (new_reg, new_ty) = listing1_new();
        let map = compute_field_map(&old_reg, old_ty, &new_reg, new_ty);
        assert_eq!(map.old_size, 16);
        assert_eq!(map.new_size, 16, "value:4 + new:4 + ptr:8");
        // `value` copied 0 -> 0, pointer moves from offset 8 to offset 8.
        assert!(map.copies.contains(&(0, 0, 4)));
        assert_eq!(map.pointers, vec![(8, 8)]);

        // Apply to a concrete old node {value: 5, next: 0xabc0}.
        let mut old_bytes = vec![0u8; 16];
        old_bytes[0..4].copy_from_slice(&5i32.to_le_bytes());
        old_bytes[8..16].copy_from_slice(&0xabc0u64.to_le_bytes());
        let new_bytes = apply_field_map(&map, &old_bytes);
        assert_eq!(&new_bytes[0..4], &5i32.to_le_bytes());
        assert_eq!(&new_bytes[4..8], &[0, 0, 0, 0], "new field zero-initialized");
        assert_eq!(&new_bytes[8..16], &0xabc0u64.to_le_bytes());
    }

    #[test]
    fn reordered_fields_matched_by_name() {
        let mut old_reg = TypeRegistry::new();
        let int = old_reg.int("int", 4);
        let c8 = old_reg.char_array("char[8]", 8);
        let old = old_reg.struct_type("conf_s", vec![Field::new("workers", int), Field::new("name", c8)]);
        let mut new_reg = TypeRegistry::new();
        let int2 = new_reg.int("int", 4);
        let c8b = new_reg.char_array("char[8]", 8);
        let new = new_reg.struct_type("conf_s", vec![Field::new("name", c8b), Field::new("workers", int2)]);
        let map = compute_field_map(&old_reg, old, &new_reg, new);
        // workers: old offset 0 -> new offset 8; name: old 4 -> new 0.
        assert!(map.copies.contains(&(0, 8, 4)));
        assert!(map.copies.contains(&(4, 0, 8)));

        let mut old_bytes = vec![0u8; 12];
        old_bytes[0..4].copy_from_slice(&3i32.to_le_bytes());
        old_bytes[4..12].copy_from_slice(b"apache\0\0");
        let out = apply_field_map(&map, &old_bytes);
        assert_eq!(&out[0..8], b"apache\0\0");
        assert_eq!(&out[8..12], &3i32.to_le_bytes());
    }

    #[test]
    fn removed_field_dropped() {
        let mut old_reg = TypeRegistry::new();
        let int = old_reg.int("int", 4);
        let old = old_reg.struct_type("s", vec![Field::new("keep", int), Field::new("drop", int)]);
        let mut new_reg = TypeRegistry::new();
        let int2 = new_reg.int("int", 4);
        let new = new_reg.struct_type("s", vec![Field::new("keep", int2)]);
        let map = compute_field_map(&old_reg, old, &new_reg, new);
        assert_eq!(map.copies, vec![(0, 0, 4)]);
        assert_eq!(map.new_size, 4);
    }

    #[test]
    fn identity_map_roundtrips() {
        let map = FieldMap::identity(24, &[8]);
        assert_eq!(map.copied_bytes(), 16);
        let old: Vec<u8> = (0..24).collect();
        let out = apply_field_map(&map, &old);
        assert_eq!(out, old);
    }

    #[test]
    fn arrays_map_elementwise_with_truncation() {
        let mut old_reg = TypeRegistry::new();
        let int = old_reg.int("int", 4);
        let old = old_reg.array("int[4]", int, 4);
        let mut new_reg = TypeRegistry::new();
        let int2 = new_reg.int("int", 4);
        let new = new_reg.array("int[2]", int2, 2);
        let map = compute_field_map(&old_reg, old, &new_reg, new);
        assert_eq!(map.copies.len(), 2);
        assert_eq!(map.new_size, 8);
    }

    #[test]
    fn kind_change_leaves_slot_zeroed() {
        let mut old_reg = TypeRegistry::new();
        let int = old_reg.int("int", 4);
        let old = old_reg.struct_type("s", vec![Field::new("x", int)]);
        let mut new_reg = TypeRegistry::new();
        let tgt = new_reg.int("int", 4);
        let ptr = new_reg.pointer("int*", tgt);
        let new = new_reg.struct_type("s", vec![Field::new("x", ptr)]);
        let map = compute_field_map(&old_reg, old, &new_reg, new);
        assert!(map.copies.is_empty());
        assert!(map.pointers.is_empty());
        let out = apply_field_map(&map, &[7, 0, 0, 0]);
        assert_eq!(out, vec![0u8; 8]);
    }

    #[test]
    fn unknown_types_fall_back_to_prefix_copy() {
        let old_reg = TypeRegistry::new();
        let new_reg = TypeRegistry::new();
        let map = compute_field_map(&old_reg, TypeId(9), &new_reg, TypeId(8));
        assert_eq!(map.copies, vec![(0, 0, 8)]);
    }
}
