//! The MCR-enabled program abstraction and its execution environment.
//!
//! A simulated server implements the [`Program`] trait: it declares its data
//! types, runs a `startup` phase (issuing syscalls and initializing global
//! data structures in simulated memory), and then executes an event loop one
//! [`Program::thread_step`] at a time. All interaction with the outside world
//! goes through the [`ProgramEnv`], which is where MCR interposes: syscalls
//! are recorded or replayed, allocations are tagged, globals are registered
//! as tracing roots, and the quiescence machinery observes where threads
//! block.

use mcr_procsim::{
    Addr, AllocSite, Fd, Kernel, Pid, PoolId, SimDuration, SimError, Syscall, SyscallRet, Tid, TypeTag,
};
use mcr_typemeta::{CallSiteRegistry, InstrumentationConfig, StaticRegistry, TypeId, TypeKind, TypeRegistry};

use crate::annotations::{AnnotationRegistry, ObjTreatment, ReinitHandler, TransformHandler};
use crate::callstack::CallStackId;
use crate::error::{McrError, McrResult};
use crate::interpose::Interposer;

/// What a blocking thread is waiting for — the readiness interest it
/// declares so the event-driven scheduler can park it on the right kernel
/// wait queue instead of re-polling it every round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitInterest {
    /// Readiness of a descriptor: a listener with a non-empty backlog, a
    /// connection with queued bytes (or a peer close), a Unix channel with a
    /// pending datagram.
    Fd(Fd),
    /// A timed block: wake when the virtual clock has advanced by this much
    /// (timer-wheel entry; e.g. a poll timeout or a retry backoff).
    Timer(SimDuration),
    /// No kernel-visible wakeup source (`sigsuspend`-style): the thread only
    /// runs again when the runtime wakes everything — a quiescence request
    /// or a post-checkpoint resume.
    External,
}

/// Outcome of one scheduling step of a program thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The thread made progress (handled at least one event).
    Progress,
    /// The thread found nothing to do and would block in the named library
    /// call at the top of the named long-running loop — i.e. it sits at a
    /// quiescent point.
    WouldBlock {
        /// The blocking library call (e.g. `"accept"`, `"epoll_wait"`).
        call: String,
        /// The enclosing long-lived loop (e.g. `"main_loop"`).
        loop_name: String,
        /// The readiness interest the blocked thread declares.
        wait: WaitInterest,
    },
    /// The thread (or its process) finished and will not run again.
    Exit,
}

/// A simulated MCR-enabled server program.
///
/// Implementations live in the `mcr-servers` crate; the trait is object-safe
/// so the runtime can manage old and new versions uniformly.
pub trait Program {
    /// Program name (e.g. `"httpd"`).
    fn name(&self) -> &str;

    /// Version string (e.g. `"2.2.23"`).
    fn version(&self) -> &str;

    /// Registers the program's data types into the per-version registry.
    fn register_types(&mut self, types: &mut TypeRegistry);

    /// Runs the program's startup code on the initial process's main thread.
    ///
    /// # Errors
    ///
    /// Startup errors abort program boot (old version) or trigger rollback
    /// (new version).
    fn startup(&mut self, env: &mut ProgramEnv<'_>) -> McrResult<()>;

    /// Initializes a child process created by [`ProgramEnv::fork`] during
    /// startup; `kind` is the string passed to `fork`.
    ///
    /// # Errors
    ///
    /// Same as [`Program::startup`].
    fn process_init(&mut self, env: &mut ProgramEnv<'_>, kind: &str) -> McrResult<()> {
        let _ = (env, kind);
        Ok(())
    }

    /// Executes one step of the calling thread's event loop.
    ///
    /// # Errors
    ///
    /// Run-time errors are reported to the caller (the scheduler) and, during
    /// a live update, trigger rollback.
    fn thread_step(&mut self, env: &mut ProgramEnv<'_>) -> McrResult<StepOutcome>;
}

/// One entry in the instance's thread roster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadRosterEntry {
    /// Actual kernel pid of the owning process.
    pub pid: Pid,
    /// Thread id.
    pub tid: Tid,
    /// Thread name (e.g. `"main"`, `"worker-3"`).
    pub name: String,
    /// Whether the thread existed before startup completed (such threads
    /// yield *persistent* quiescent points in Table 1).
    pub created_during_startup: bool,
    /// Whether the thread has exited.
    pub exited: bool,
}

/// A forked child process whose program-level initialization is still
/// pending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingChild {
    /// Actual kernel pid of the child.
    pub actual_pid: Pid,
    /// Virtual pid observed by the program.
    pub virtual_pid: Pid,
    /// The `kind` passed to [`ProgramEnv::fork`].
    pub kind: String,
}

/// Counters tracking the work done by MCR instrumentation at run time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeCounters {
    /// Unblockification wrapper invocations.
    pub unblock_wraps: u64,
    /// Quiescence-hook flag checks.
    pub quiescence_checks: u64,
    /// Allocations tracked by the dynamic instrumentation layer.
    pub dyn_tracked_allocs: u64,
    /// Library-region allocations performed by the program.
    pub lib_allocs: u64,
    /// Simulated nanoseconds of application work charged via
    /// [`ProgramEnv::charge_work`].
    pub charged_work_ns: u64,
    /// Events handled by the program (used by workload harnesses).
    pub events_handled: u64,
}

/// Mutable, non-`Program` state of one MCR-enabled program instance.
#[derive(Debug)]
pub struct InstanceState {
    /// Program name.
    pub program_name: String,
    /// Program version string.
    pub version: String,
    /// Instrumentation configuration the instance was built with.
    pub config: InstrumentationConfig,
    /// Per-version type registry.
    pub types: TypeRegistry,
    /// Per-version static object registry.
    pub statics: StaticRegistry,
    /// Per-version allocation-site registry.
    pub sites: CallSiteRegistry,
    /// User annotations.
    pub annotations: AnnotationRegistry,
    /// Record/replay engine.
    pub interpose: Interposer,
    /// Whether the program is still executing startup code.
    pub startup_phase: bool,
    /// Whether a live update (and therefore quiescence) has been requested.
    pub quiesce_requested: bool,
    /// Actual pids of every process of this instance, in creation order
    /// (index 0 is the initial process).
    pub processes: Vec<Pid>,
    /// Thread roster.
    pub threads: Vec<ThreadRosterEntry>,
    /// Forked children awaiting program-level initialization.
    pub pending_children: Vec<PendingChild>,
    /// Instrumentation activity counters.
    pub counters: RuntimeCounters,
    /// Shadow log of allocations kept by the dynamic instrumentation layer
    /// (contributes to the memory overhead measured in §8).
    pub dyn_alloc_log: Vec<(u64, u64)>,
    /// Library-region objects allocated by the program (addr, size, name).
    pub lib_objects: Vec<(Addr, u64, std::sync::Arc<str>)>,
    /// Simulated time spent in the startup phase (record or replay).
    pub startup_duration: mcr_procsim::SimDuration,
    /// Raw tid → index into `threads` (tids are globally unique), so
    /// per-step roster lookups are one bounds-checked vector probe at fleet
    /// scale. `u32::MAX` marks an unindexed slot. Maintained by
    /// [`InstanceState::add_roster_entry`]; lookups verify the entry and fall
    /// back to a linear scan for entries pushed directly.
    roster_index: Vec<u32>,
    static_bump: u64,
    lib_bump: u64,
}

impl InstanceState {
    /// Creates the state for a new instance.
    pub fn new(
        program_name: impl Into<String>,
        version: impl Into<String>,
        config: InstrumentationConfig,
        interpose: Interposer,
    ) -> Self {
        InstanceState {
            program_name: program_name.into(),
            version: version.into(),
            config,
            types: TypeRegistry::new(),
            statics: StaticRegistry::new(),
            sites: CallSiteRegistry::new(),
            annotations: AnnotationRegistry::new(),
            interpose,
            startup_phase: true,
            quiesce_requested: false,
            processes: Vec::new(),
            threads: Vec::new(),
            pending_children: Vec::new(),
            counters: RuntimeCounters::default(),
            dyn_alloc_log: Vec::new(),
            lib_objects: Vec::new(),
            startup_duration: mcr_procsim::SimDuration(0),
            roster_index: Vec::new(),
            static_bump: 0,
            lib_bump: 0,
        }
    }

    /// Appends a thread to the roster, keeping the index in sync.
    pub fn add_roster_entry(&mut self, entry: ThreadRosterEntry) {
        let slot = entry.tid.0 as usize;
        if slot >= self.roster_index.len() {
            self.roster_index.resize(slot + 1, u32::MAX);
        }
        self.roster_index[slot] = self.threads.len() as u32;
        self.threads.push(entry);
    }

    fn roster_position(&self, pid: Pid, tid: Tid) -> Option<usize> {
        if let Some(&i) = self.roster_index.get(tid.0 as usize) {
            if self.threads.get(i as usize).is_some_and(|t| t.pid == pid && t.tid == tid) {
                return Some(i as usize);
            }
        }
        self.threads.iter().position(|t| t.pid == pid && t.tid == tid)
    }

    /// The roster entry for a thread, if known.
    pub fn roster_entry(&self, pid: Pid, tid: Tid) -> Option<&ThreadRosterEntry> {
        self.roster_position(pid, tid).map(|i| &self.threads[i])
    }

    /// Marks a roster thread as exited.
    pub fn mark_thread_exited(&mut self, pid: Pid, tid: Tid) {
        if let Some(i) = self.roster_position(pid, tid) {
            self.threads[i].exited = true;
        }
    }

    /// Live (non-exited) roster entries.
    pub fn live_threads(&self) -> impl Iterator<Item = &ThreadRosterEntry> {
        self.threads.iter().filter(|t| !t.exited)
    }

    /// Approximate bytes of MCR metadata resident for this instance
    /// (startup log, tag registries, dynamic instrumentation shadow log).
    pub fn metadata_bytes(&self) -> u64 {
        let log = self.interpose.recorded_log().memory_bytes();
        let types = self.types.len() as u64 * 64;
        let statics = self.statics.len() as u64 * 48;
        let sites = self.sites.len() as u64 * 48;
        let dyn_log = self.dyn_alloc_log.len() as u64 * 16;
        let libs = self.lib_objects.len() as u64 * 40;
        log + types + statics + sites + dyn_log + libs
    }
}

/// The execution environment handed to [`Program`] callbacks.
///
/// It binds together the kernel, the instance state, and the identity of the
/// currently-executing thread.
pub struct ProgramEnv<'a> {
    kernel: &'a mut Kernel,
    state: &'a mut InstanceState,
    pid: Pid,
    tid: Tid,
    thread_name: String,
}

impl<'a> ProgramEnv<'a> {
    /// Creates an environment bound to thread `tid` of process `pid`.
    pub fn new(
        kernel: &'a mut Kernel,
        state: &'a mut InstanceState,
        pid: Pid,
        tid: Tid,
        thread_name: impl Into<String>,
    ) -> Self {
        ProgramEnv { kernel, state, pid, tid, thread_name: thread_name.into() }
    }

    // ------------------------------------------------------------------
    // Identity and phase
    // ------------------------------------------------------------------

    /// The pid the *program* observes (old-version pid when replaying).
    pub fn pid(&self) -> Pid {
        self.state.interpose.virtual_pid(self.pid)
    }

    /// The actual kernel pid of the current process.
    pub fn actual_pid(&self) -> Pid {
        self.pid
    }

    /// The current thread's id.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// The current thread's name.
    pub fn thread_name(&self) -> &str {
        &self.thread_name
    }

    /// Whether startup has not yet completed.
    pub fn in_startup(&self) -> bool {
        self.state.startup_phase
    }

    /// Whether MCR has requested quiescence (threads should park at their
    /// quiescent points as soon as possible).
    pub fn quiesce_requested(&self) -> bool {
        self.state.quiesce_requested
    }

    /// Current simulated time in nanoseconds since boot.
    pub fn now_ns(&self) -> u64 {
        self.kernel.now().0
    }

    /// Charges `ns` nanoseconds of application work to the simulated clock.
    pub fn charge_work(&mut self, ns: u64) {
        self.kernel.advance_clock(mcr_procsim::SimDuration(ns));
        self.state.counters.charged_work_ns += ns;
    }

    /// Records that the program handled one external event.
    pub fn note_event_handled(&mut self) {
        self.state.counters.events_handled += 1;
    }

    // ------------------------------------------------------------------
    // Call-stack bookkeeping
    // ------------------------------------------------------------------

    /// Pushes a function frame on the current thread's call stack.
    pub fn enter_function(&mut self, name: &str) {
        if let Ok(p) = self.kernel.process_mut(self.pid) {
            if let Ok(t) = p.thread_mut(self.tid) {
                t.push_frame(name);
            }
        }
    }

    /// Pops the innermost function frame.
    pub fn exit_function(&mut self) {
        if let Ok(p) = self.kernel.process_mut(self.pid) {
            if let Ok(t) = p.thread_mut(self.tid) {
                t.pop_frame();
            }
        }
    }

    /// Runs `f` with `name` pushed on the call stack, popping it afterwards
    /// even on error.
    pub fn scoped<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> McrResult<R>) -> McrResult<R> {
        self.enter_function(name);
        let out = f(self);
        self.exit_function();
        out
    }

    /// The current call-stack identifier of the executing thread.
    pub fn callstack_id(&self) -> CallStackId {
        self.kernel
            .process(self.pid)
            .and_then(|p| p.thread(self.tid))
            .map(|t| CallStackId::from_frames(t.call_stack()))
            .unwrap_or_else(|_| CallStackId::empty())
    }

    // ------------------------------------------------------------------
    // System calls (interposed)
    // ------------------------------------------------------------------

    /// Issues a system call through the MCR interposition layer.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors and replay conflicts.
    pub fn syscall(&mut self, call: Syscall) -> McrResult<SyscallRet> {
        let callstack = self.callstack_id();
        let InstanceState { interpose, annotations, startup_phase, .. } = &mut *self.state;
        interpose.handle(
            self.kernel,
            self.pid,
            self.tid,
            &self.thread_name,
            callstack,
            call,
            *startup_phase,
            annotations,
        )
    }

    /// Forks a child process of the given `kind` (e.g. `"worker"`).
    ///
    /// The child's program-level initialization runs later, when the runtime
    /// drains pending children and invokes [`Program::process_init`].
    ///
    /// # Errors
    ///
    /// Propagates fork failures and replay conflicts.
    pub fn fork(&mut self, kind: &str) -> McrResult<Pid> {
        let ret = self.syscall(Syscall::Fork)?;
        let virtual_child =
            ret.as_pid().ok_or_else(|| McrError::InvalidState("fork did not return a pid".into()))?;
        let actual_child = self.state.interpose.actual_pid(virtual_child);
        let child_main = self.kernel.process(actual_child).map_err(McrError::Sim)?.main_tid();
        self.state.processes.push(actual_child);
        let created_during_startup = self.state.startup_phase;
        self.state.add_roster_entry(ThreadRosterEntry {
            pid: actual_child,
            tid: child_main,
            name: format!("{kind}-main"),
            created_during_startup,
            exited: false,
        });
        self.state.pending_children.push(PendingChild {
            actual_pid: actual_child,
            virtual_pid: virtual_child,
            kind: kind.to_string(),
        });
        Ok(virtual_child)
    }

    /// Spawns an additional thread named `name` in the current process.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn spawn_thread(&mut self, name: &str) -> McrResult<Tid> {
        let ret = self.syscall(Syscall::SpawnThread { name: name.to_string() })?;
        let tid = match ret {
            SyscallRet::Tid(t) => t,
            other => return Err(McrError::InvalidState(format!("spawn_thread returned {other:?}"))),
        };
        let created_during_startup = self.state.startup_phase;
        self.state.add_roster_entry(ThreadRosterEntry {
            pid: self.pid,
            tid,
            name: name.to_string(),
            created_during_startup,
            exited: false,
        });
        Ok(tid)
    }

    // ------------------------------------------------------------------
    // Types and globals
    // ------------------------------------------------------------------

    /// Resolves a type name to its id.
    ///
    /// # Errors
    ///
    /// Returns [`McrError::UnknownMetadata`] for unregistered names.
    pub fn type_id(&self, name: &str) -> McrResult<TypeId> {
        self.state.types.lookup(name).ok_or_else(|| McrError::UnknownMetadata(format!("type {name}")))
    }

    /// Size in bytes of a registered type.
    ///
    /// # Errors
    ///
    /// Returns [`McrError::UnknownMetadata`] for unregistered names.
    pub fn size_of(&self, type_name: &str) -> McrResult<u64> {
        let id = self.type_id(type_name)?;
        Ok(self.state.types.size_of(id))
    }

    /// Shared access to the per-version type registry.
    pub fn types(&self) -> &TypeRegistry {
        &self.state.types
    }

    /// Defines (and registers as a tracing root) a global variable of the
    /// given type, placing it in the static data region.
    ///
    /// # Errors
    ///
    /// Fails for unknown types or if the static region is exhausted.
    pub fn define_global(&mut self, symbol: &str, type_name: &str) -> McrResult<Addr> {
        let ty = self.type_id(type_name)?;
        let size = self.state.types.size_of(ty).max(1);
        self.place_global(symbol, ty, size)
    }

    /// Defines a global of explicit size with an opaque layout (e.g. a buffer
    /// owned by an uninstrumented library).
    ///
    /// # Errors
    ///
    /// Fails if the static region is exhausted.
    pub fn define_global_opaque(&mut self, symbol: &str, size: u64) -> McrResult<Addr> {
        let ty = self.state.types.register(format!("opaque[{size}]"), TypeKind::Opaque { size });
        self.place_global(symbol, ty, size)
    }

    fn place_global(&mut self, symbol: &str, ty: TypeId, size: u64) -> McrResult<Addr> {
        let layout = self.kernel.process(self.pid).map_err(McrError::Sim)?.layout();
        let aligned = self.state.static_bump.div_ceil(16) * 16;
        if aligned + size > layout.static_size {
            return Err(McrError::Sim(SimError::OutOfMemory { requested: size }));
        }
        let addr = layout.static_base.offset(aligned);
        self.state.static_bump = aligned + size;
        self.state.statics.register_root(symbol, addr, ty, size);
        Ok(addr)
    }

    /// Address of a previously defined global.
    ///
    /// # Errors
    ///
    /// Returns [`McrError::UnknownMetadata`] for unknown symbols.
    pub fn global_addr(&self, symbol: &str) -> McrResult<Addr> {
        self.state
            .statics
            .lookup(symbol)
            .map(|o| o.addr)
            .ok_or_else(|| McrError::UnknownMetadata(format!("global {symbol}")))
    }

    // ------------------------------------------------------------------
    // Heap, pool and library allocation
    // ------------------------------------------------------------------

    fn register_site(&mut self, site_name: &str, ty: Option<TypeId>) -> AllocSite {
        self.state.sites.register(site_name, ty)
    }

    fn note_dyn_alloc(&mut self, addr: Addr, size: u64) {
        if self.state.config.level.dynamic_tracking() {
            self.state.counters.dyn_tracked_allocs += 1;
            self.state.dyn_alloc_log.push((addr.0, size));
        }
    }

    /// Allocates a heap object of the given registered type.
    ///
    /// # Errors
    ///
    /// Fails for unknown types or an exhausted heap.
    pub fn alloc(&mut self, type_name: &str, site_name: &str) -> McrResult<Addr> {
        let ty = self.type_id(type_name)?;
        let size = self.state.types.size_of(ty).max(1);
        let site = self.register_site(site_name, Some(ty));
        let type_tag = if self.state.config.level.heap_instrumented() { TypeTag(ty.0) } else { TypeTag(0) };
        let proc = self.kernel.process_mut(self.pid).map_err(McrError::Sim)?;
        let (space, heap) = proc.space_and_heap_mut().map_err(McrError::Sim)?;
        let addr = heap.malloc(space, size, site, type_tag).map_err(McrError::Sim)?;
        self.note_dyn_alloc(addr, size);
        Ok(addr)
    }

    /// Allocates `size` raw heap bytes (no type information; tracing treats
    /// the chunk conservatively).
    ///
    /// # Errors
    ///
    /// Fails when the heap is exhausted.
    pub fn alloc_bytes(&mut self, size: u64, site_name: &str) -> McrResult<Addr> {
        let site = self.register_site(site_name, None);
        let proc = self.kernel.process_mut(self.pid).map_err(McrError::Sim)?;
        let (space, heap) = proc.space_and_heap_mut().map_err(McrError::Sim)?;
        let addr = heap.malloc(space, size, site, TypeTag(0)).map_err(McrError::Sim)?;
        self.note_dyn_alloc(addr, size);
        Ok(addr)
    }

    /// Frees a heap object.
    ///
    /// # Errors
    ///
    /// Fails for addresses that are not live chunks.
    pub fn free(&mut self, addr: Addr) -> McrResult<()> {
        let proc = self.kernel.process_mut(self.pid).map_err(McrError::Sim)?;
        let (space, heap) = proc.space_and_heap_mut().map_err(McrError::Sim)?;
        heap.free(space, addr).map_err(McrError::Sim)
    }

    /// Creates a region/pool of `size` bytes (nginx pools, APR pools).
    ///
    /// # Errors
    ///
    /// Fails when the heap cannot back the pool.
    pub fn create_pool(&mut self, size: u64, parent: Option<PoolId>) -> McrResult<PoolId> {
        let proc = self.kernel.process_mut(self.pid).map_err(McrError::Sim)?;
        let (space, heap, regions) = proc.space_heap_regions_mut().map_err(McrError::Sim)?;
        regions.create_pool(space, heap, size, parent).map_err(McrError::Sim)
    }

    /// Allocates a typed object from a pool.
    ///
    /// # Errors
    ///
    /// Fails for unknown types, unknown pools or exhausted pools.
    pub fn palloc(&mut self, pool: PoolId, type_name: &str, site_name: &str) -> McrResult<Addr> {
        let ty = self.type_id(type_name)?;
        let size = self.state.types.size_of(ty).max(1);
        let site = self.register_site(site_name, Some(ty));
        let tag = TypeTag(ty.0);
        let proc = self.kernel.process_mut(self.pid).map_err(McrError::Sim)?;
        let (space, _, regions) = proc.space_heap_regions_mut().map_err(McrError::Sim)?;
        let addr = regions.palloc(space, pool, size, site, tag).map_err(McrError::Sim)?;
        self.note_dyn_alloc(addr, size);
        Ok(addr)
    }

    /// Allocates raw bytes from a pool.
    ///
    /// # Errors
    ///
    /// Fails for unknown or exhausted pools.
    pub fn palloc_bytes(&mut self, pool: PoolId, size: u64, site_name: &str) -> McrResult<Addr> {
        let site = self.register_site(site_name, None);
        let proc = self.kernel.process_mut(self.pid).map_err(McrError::Sim)?;
        let (space, _, regions) = proc.space_heap_regions_mut().map_err(McrError::Sim)?;
        let addr = regions.palloc(space, pool, size, site, TypeTag(0)).map_err(McrError::Sim)?;
        self.note_dyn_alloc(addr, size);
        Ok(addr)
    }

    /// Destroys a pool (and its children), releasing its storage.
    ///
    /// # Errors
    ///
    /// Fails for unknown pools.
    pub fn destroy_pool(&mut self, pool: PoolId) -> McrResult<()> {
        let proc = self.kernel.process_mut(self.pid).map_err(McrError::Sim)?;
        let (space, heap, regions) = proc.space_heap_regions_mut().map_err(McrError::Sim)?;
        regions.destroy_pool(space, heap, pool).map_err(McrError::Sim)
    }

    /// Allocates `size` bytes in the shared-library data region, modelling
    /// state owned by an (uninstrumented) library.
    ///
    /// # Errors
    ///
    /// Fails when the library region is exhausted.
    pub fn lib_alloc(&mut self, size: u64, name: &str) -> McrResult<Addr> {
        let layout = self.kernel.process(self.pid).map_err(McrError::Sim)?.layout();
        let aligned = self.state.lib_bump.div_ceil(16) * 16;
        if aligned + size > layout.lib_size {
            return Err(McrError::Sim(SimError::OutOfMemory { requested: size }));
        }
        let addr = layout.lib_base.offset(aligned);
        self.state.lib_bump = aligned + size;
        self.state.lib_objects.push((addr, size, name.into()));
        self.state.counters.lib_allocs += 1;
        self.note_dyn_alloc(addr, size);
        Ok(addr)
    }

    // ------------------------------------------------------------------
    // Typed memory access
    // ------------------------------------------------------------------

    /// Reads a 64-bit word from the current process's memory.
    ///
    /// # Errors
    ///
    /// Fails for unmapped addresses.
    pub fn read_u64(&self, addr: Addr) -> McrResult<u64> {
        self.kernel.process(self.pid).map_err(McrError::Sim)?.space().read_u64(addr).map_err(McrError::Sim)
    }

    /// Writes a 64-bit word into the current process's memory.
    ///
    /// # Errors
    ///
    /// Fails for unmapped or read-only addresses.
    pub fn write_u64(&mut self, addr: Addr, value: u64) -> McrResult<()> {
        self.kernel
            .process_mut(self.pid)
            .map_err(McrError::Sim)?
            .space_mut()
            .write_u64(addr, value)
            .map_err(McrError::Sim)
    }

    /// Reads a 32-bit word.
    ///
    /// # Errors
    ///
    /// Fails for unmapped addresses.
    pub fn read_u32(&self, addr: Addr) -> McrResult<u32> {
        self.kernel.process(self.pid).map_err(McrError::Sim)?.space().read_u32(addr).map_err(McrError::Sim)
    }

    /// Writes a 32-bit word.
    ///
    /// # Errors
    ///
    /// Fails for unmapped or read-only addresses.
    pub fn write_u32(&mut self, addr: Addr, value: u32) -> McrResult<()> {
        self.kernel
            .process_mut(self.pid)
            .map_err(McrError::Sim)?
            .space_mut()
            .write_u32(addr, value)
            .map_err(McrError::Sim)
    }

    /// Reads a pointer-sized value as an address.
    ///
    /// # Errors
    ///
    /// Fails for unmapped addresses.
    pub fn read_ptr(&self, addr: Addr) -> McrResult<Addr> {
        Ok(Addr(self.read_u64(addr)?))
    }

    /// Writes an address as a pointer-sized value.
    ///
    /// # Errors
    ///
    /// Fails for unmapped or read-only addresses.
    pub fn write_ptr(&mut self, addr: Addr, value: Addr) -> McrResult<()> {
        self.write_u64(addr, value.0)
    }

    /// Reads raw bytes.
    ///
    /// # Errors
    ///
    /// Fails for unmapped ranges.
    pub fn read_bytes(&self, addr: Addr, len: usize) -> McrResult<Vec<u8>> {
        self.kernel
            .process(self.pid)
            .map_err(McrError::Sim)?
            .space()
            .read_bytes(addr, len)
            .map_err(McrError::Sim)
    }

    /// Writes raw bytes.
    ///
    /// # Errors
    ///
    /// Fails for unmapped or read-only ranges.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) -> McrResult<()> {
        self.kernel
            .process_mut(self.pid)
            .map_err(McrError::Sim)?
            .space_mut()
            .write_bytes(addr, bytes)
            .map_err(McrError::Sim)
    }

    /// Writes a NUL-terminated string.
    ///
    /// # Errors
    ///
    /// Fails for unmapped or read-only ranges.
    pub fn write_cstring(&mut self, addr: Addr, s: &str) -> McrResult<()> {
        self.kernel
            .process_mut(self.pid)
            .map_err(McrError::Sim)?
            .space_mut()
            .write_cstring(addr, s)
            .map_err(McrError::Sim)
    }

    /// Reads a NUL-terminated string of at most `max` bytes.
    ///
    /// # Errors
    ///
    /// Fails for unmapped ranges.
    pub fn read_cstring(&self, addr: Addr, max: usize) -> McrResult<String> {
        self.kernel
            .process(self.pid)
            .map_err(McrError::Sim)?
            .space()
            .read_cstring(addr, max)
            .map_err(McrError::Sim)
    }

    // ------------------------------------------------------------------
    // Annotations (MCR_ADD_*)
    // ------------------------------------------------------------------

    /// Registers a state annotation (`MCR_ADD_OBJ_HANDLER`).
    pub fn add_obj_handler(&mut self, symbol: &str, treatment: ObjTreatment, loc: u64) {
        self.state.annotations.add_obj_handler(symbol, treatment, loc);
    }

    /// Registers a reinitialization handler (`MCR_ADD_REINIT_HANDLER`).
    pub fn add_reinit_handler(&mut self, name: &str, handler: ReinitHandler, loc: u64) {
        self.state.annotations.add_reinit_handler(name, handler, loc);
    }

    /// Registers a semantic state-transfer transform.
    pub fn add_transform(&mut self, name: &str, handler: TransformHandler, loc: u64) {
        self.state.annotations.add_transform(name, handler, loc);
    }

    /// Accounts annotation lines that are plain source tweaks.
    pub fn note_annotation_loc(&mut self, loc: u64) {
        self.state.annotations.add_annotation_loc(loc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_procsim::MemoryLayout;
    use mcr_typemeta::Field;

    fn setup() -> (Kernel, InstanceState, Pid, Tid) {
        let mut kernel = Kernel::new();
        let pid = kernel.create_process("tiny").unwrap();
        let tid = kernel.process(pid).unwrap().main_tid();
        kernel.process_mut(pid).unwrap().setup_memory(MemoryLayout::default(), true).unwrap();
        let mut state =
            InstanceState::new("tiny", "1.0", InstrumentationConfig::full(), Interposer::recorder());
        state.processes.push(pid);
        state.threads.push(ThreadRosterEntry {
            pid,
            tid,
            name: "main".into(),
            created_during_startup: true,
            exited: false,
        });
        let int = state.types.int("int", 4);
        let node = state.types.struct_type("node", vec![Field::new("value", int), Field::new("pad", int)]);
        let _ = node;
        (kernel, state, pid, tid)
    }

    #[test]
    fn globals_are_placed_and_registered() {
        let (mut kernel, mut state, pid, tid) = setup();
        let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
        let a = env.define_global("counter", "int").unwrap();
        let b = env.define_global("node0", "node").unwrap();
        assert_ne!(a, b);
        env.write_u32(a, 7).unwrap();
        assert_eq!(env.read_u32(a).unwrap(), 7);
        assert_eq!(env.global_addr("counter").unwrap(), a);
        assert!(env.global_addr("missing").is_err());
        assert_eq!(state.statics.len(), 2);
    }

    #[test]
    fn typed_and_raw_allocation_with_tags() {
        let (mut kernel, mut state, pid, tid) = setup();
        let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
        let typed = env.alloc("node", "test:node").unwrap();
        let raw = env.alloc_bytes(32, "test:raw").unwrap();
        assert_ne!(typed, raw);
        env.write_u64(typed, 42).unwrap();
        assert_eq!(env.read_u64(typed).unwrap(), 42);
        // Instrumented heap: the typed chunk carries the node type tag.
        let node_ty = state.types.lookup("node").unwrap();
        let proc = kernel.process(pid).unwrap();
        let info = proc.heap().unwrap().chunk_info(proc.space(), typed).unwrap();
        assert_eq!(info.type_tag.0, node_ty.0);
        let raw_info = proc.heap().unwrap().chunk_info(proc.space(), raw).unwrap();
        assert_eq!(raw_info.type_tag.0, 0);
        // Dynamic tracking recorded both allocations.
        assert_eq!(state.counters.dyn_tracked_allocs, 2);
        assert_eq!(state.dyn_alloc_log.len(), 2);
    }

    #[test]
    fn scoped_callstack_and_syscall_recording() {
        let (mut kernel, mut state, pid, tid) = setup();
        let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
        let fd = env
            .scoped("main", |env| {
                env.scoped("server_init", |env| Ok(env.syscall(Syscall::Socket)?.as_fd().unwrap()))
            })
            .unwrap();
        assert_eq!(fd.0, 0);
        // The call stack was popped back to empty.
        assert_eq!(env.callstack_id(), CallStackId::empty());
        let log = state.interpose.recorded_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries()[0].callstack, CallStackId::from_frames(&["main", "server_init"]));
    }

    #[test]
    fn fork_registers_roster_and_pending_child() {
        let (mut kernel, mut state, pid, tid) = setup();
        let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
        let child = env.scoped("main", |env| env.fork("worker")).unwrap();
        assert_eq!(state.processes.len(), 2);
        assert_eq!(state.pending_children.len(), 1);
        assert_eq!(state.pending_children[0].kind, "worker");
        assert_eq!(state.pending_children[0].virtual_pid, child);
        assert_eq!(state.threads.len(), 2);
        assert!(state.threads[1].name.starts_with("worker"));
    }

    #[test]
    fn spawn_thread_updates_roster() {
        let (mut kernel, mut state, pid, tid) = setup();
        let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
        let new_tid = env.spawn_thread("worker-1").unwrap();
        assert_ne!(new_tid, tid);
        assert!(state.roster_entry(pid, new_tid).is_some());
        assert_eq!(state.live_threads().count(), 2);
        state.mark_thread_exited(pid, new_tid);
        assert_eq!(state.live_threads().count(), 1);
    }

    #[test]
    fn pools_and_lib_allocations() {
        let (mut kernel, mut state, pid, tid) = setup();
        let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
        let pool = env.create_pool(4096, None).unwrap();
        let obj = env.palloc_bytes(pool, 64, "pool:obj").unwrap();
        env.write_u64(obj, 5).unwrap();
        let lib = env.lib_alloc(128, "libssl:ctx").unwrap();
        env.write_u64(lib, 9).unwrap();
        env.destroy_pool(pool).unwrap();
        assert!(env.size_of("int").unwrap() == 4);
        assert!(env.type_id("nope").is_err());
        assert_eq!(state.counters.lib_allocs, 1);
        assert_eq!(state.lib_objects.len(), 1);
    }

    #[test]
    fn metadata_bytes_reflect_activity() {
        let (mut kernel, mut state, pid, tid) = setup();
        let before = state.metadata_bytes();
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            env.scoped("main", |env| {
                env.syscall(Syscall::Socket)?;
                env.alloc_bytes(64, "m")?;
                Ok(())
            })
            .unwrap();
        }
        assert!(state.metadata_bytes() > before);
    }
}
