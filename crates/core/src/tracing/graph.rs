//! The traced object graph of the old program version.

use std::collections::BTreeMap;
use std::sync::Arc;

use mcr_procsim::Addr;
use mcr_typemeta::TypeId;

/// Where a traced object lives and how it can be identified across versions.
///
/// Names are shared `Arc<str>`s handed out by the per-version registries, so
/// tracing a process never copies name bytes per object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjectOrigin {
    /// A global/static variable, matched across versions by symbol name.
    Static {
        /// Symbol name.
        symbol: Arc<str>,
    },
    /// A heap chunk, matched across versions by allocation-site name.
    Heap {
        /// Allocation-site name, when the allocator was instrumented.
        site: Option<Arc<str>>,
    },
    /// An object carved from a region/pool allocator.
    Pool {
        /// Allocation-site name, when the region allocator was instrumented.
        site: Option<Arc<str>>,
    },
    /// State owned by a shared library (not transferred by default).
    Lib {
        /// Library object name, if known.
        name: Option<Arc<str>>,
    },
    /// A memory-mapped region.
    Mmap,
}

impl ObjectOrigin {
    /// A short description used in conflict messages.
    pub fn describe(&self) -> String {
        match self {
            ObjectOrigin::Static { symbol } => format!("static `{symbol}`"),
            ObjectOrigin::Heap { site: Some(s) } => format!("heap object from `{s}`"),
            ObjectOrigin::Heap { site: None } => "untyped heap object".to_string(),
            ObjectOrigin::Pool { site: Some(s) } => format!("pool object from `{s}`"),
            ObjectOrigin::Pool { site: None } => "untyped pool object".to_string(),
            ObjectOrigin::Lib { name: Some(n) } => format!("library object `{n}`"),
            ObjectOrigin::Lib { name: None } => "library object".to_string(),
            ObjectOrigin::Mmap => "memory-mapped object".to_string(),
        }
    }

    /// Whether the object is a static (symbol-matched) object.
    pub fn is_static(&self) -> bool {
        matches!(self, ObjectOrigin::Static { .. })
    }
}

/// A pointer discovered by mutable tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerEdge {
    /// Offset of the pointer slot within the source object.
    pub offset: u64,
    /// The raw pointer value (may be an interior pointer).
    pub target: Addr,
    /// Base address of the object the pointer lands in.
    pub target_base: Addr,
    /// Bits masked off the raw value before following (encoded pointers).
    pub masked_bits: u64,
}

/// One object reached by mutable tracing in the old version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedObject {
    /// Base address in the old version.
    pub addr: Addr,
    /// Size in bytes.
    pub size: u64,
    /// Origin (static / heap / pool / lib / mmap).
    pub origin: ObjectOrigin,
    /// Type, when precise information is available.
    pub type_id: Option<TypeId>,
    /// The highest write-epoch stamp of the pages covering the object: `0`
    /// when the object is clean since startup (nothing to transfer),
    /// `u64::MAX` when dirty tracking is disabled (everything is treated as
    /// dirty). This is the single source of truth for dirtiness — the
    /// pre-copy engine compares it against the epoch at which the object's
    /// contents were last copied to decide whether a re-copy is needed.
    pub dirty_epoch: u64,
    /// Whether the object was created during startup.
    pub startup: bool,
    /// Whether the object must keep its address in the new version
    /// (conservatively referenced).
    pub immutable: bool,
    /// Whether the object may not be type-transformed (it is referenced by,
    /// or contains, likely pointers).
    pub non_updatable: bool,
    /// Pointers located with precise type information.
    pub precise_pointers: Vec<PointerEdge>,
    /// Likely pointers located by conservative scanning.
    pub likely_pointers: Vec<PointerEdge>,
}

impl TracedObject {
    /// Whether the object was modified after startup (must be transferred).
    pub fn is_dirty(&self) -> bool {
        self.dirty_epoch != 0
    }

    /// End address (exclusive).
    pub fn end(&self) -> Addr {
        Addr(self.addr.0 + self.size)
    }

    /// Whether `addr` falls inside the object.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 >= self.addr.0 && addr.0 < self.addr.0 + self.size.max(1)
    }

    /// All outgoing pointer edges (precise then likely).
    pub fn edges(&self) -> impl Iterator<Item = &PointerEdge> {
        self.precise_pointers.iter().chain(self.likely_pointers.iter())
    }
}

/// The object graph produced by tracing one process of the old version.
#[derive(Debug, Clone, Default)]
pub struct ObjectGraph {
    objects: BTreeMap<u64, TracedObject>,
}

impl ObjectGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an object (keyed by base address); replaces an existing entry.
    pub fn insert(&mut self, obj: TracedObject) {
        self.objects.insert(obj.addr.0, obj);
    }

    /// Whether an object with this base address is present.
    pub fn contains(&self, addr: Addr) -> bool {
        self.objects.contains_key(&addr.0)
    }

    /// Shared access by base address.
    pub fn get(&self, addr: Addr) -> Option<&TracedObject> {
        self.objects.get(&addr.0)
    }

    /// Exclusive access by base address.
    pub fn get_mut(&mut self, addr: Addr) -> Option<&mut TracedObject> {
        self.objects.get_mut(&addr.0)
    }

    /// Removes the object with this base address (delta retraces drop
    /// objects that were freed or became unreachable).
    pub fn remove(&mut self, addr: Addr) -> Option<TracedObject> {
        self.objects.remove(&addr.0)
    }

    /// Keeps only the objects satisfying `pred` (the reachability sweep of a
    /// delta retrace).
    pub fn retain(&mut self, mut pred: impl FnMut(&TracedObject) -> bool) {
        self.objects.retain(|_, o| pred(o));
    }

    /// The object whose extent contains `addr`, if any.
    pub fn object_containing(&self, addr: Addr) -> Option<&TracedObject> {
        self.objects.range(..=addr.0).next_back().map(|(_, o)| o).filter(|o| o.contains(addr))
    }

    /// Iterates over all objects in address order.
    pub fn iter(&self) -> impl Iterator<Item = &TracedObject> {
        self.objects.values()
    }

    /// Iterates mutably over all objects in address order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut TracedObject> {
        self.objects.values_mut()
    }

    /// Number of traced objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no objects were traced.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Marks the object at `addr` immutable (and non-updatable).
    pub fn mark_immutable(&mut self, addr: Addr) {
        if let Some(o) = self.objects.get_mut(&addr.0) {
            o.immutable = true;
            o.non_updatable = true;
        }
    }

    /// Marks the object at `addr` non-updatable.
    pub fn mark_non_updatable(&mut self, addr: Addr) {
        if let Some(o) = self.objects.get_mut(&addr.0) {
            o.non_updatable = true;
        }
    }

    /// Objects that must be transferred (dirty) in address order. Dirtiness
    /// is derived from each object's epoch stamp
    /// ([`TracedObject::dirty_epoch`]), the same source of truth the
    /// pre-copy delta engine uses.
    pub fn dirty_objects(&self) -> impl Iterator<Item = &TracedObject> {
        self.objects.values().filter(|o| o.is_dirty())
    }

    /// Objects pinned at their old address.
    pub fn immutable_objects(&self) -> impl Iterator<Item = &TracedObject> {
        self.objects.values().filter(|o| o.immutable)
    }

    /// Total bytes of all traced objects.
    pub fn total_bytes(&self) -> u64 {
        self.objects.values().map(|o| o.size).sum()
    }

    /// Total bytes of dirty objects only (the state-transfer payload).
    pub fn dirty_bytes(&self) -> u64 {
        self.objects.values().filter(|o| o.is_dirty()).map(|o| o.size).sum()
    }

    /// Delta retrace: re-scans only the objects whose pages were written
    /// after epoch `since`, follows any new edges into yet-untraced objects,
    /// sweeps objects that became unreachable, and recomputes the derived
    /// pin flags and statistics — converging to the same graph a fresh
    /// [`Tracer::trace`](crate::tracing::tracer::Tracer::trace) of the same
    /// memory would produce, while visiting only the dirtied part.
    pub fn retrace_dirty(
        &mut self,
        tracer: &crate::tracing::tracer::Tracer<'_>,
        since: u64,
    ) -> crate::tracing::stats::TracingStats {
        tracer.retrace_dirty(self, since)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(addr: u64, size: u64, dirty: bool) -> TracedObject {
        TracedObject {
            addr: Addr(addr),
            size,
            origin: ObjectOrigin::Heap { site: Some("s".into()) },
            type_id: Some(TypeId(1)),
            dirty_epoch: u64::from(dirty),
            startup: true,
            immutable: false,
            non_updatable: false,
            precise_pointers: Vec::new(),
            likely_pointers: Vec::new(),
        }
    }

    #[test]
    fn insert_lookup_and_containment() {
        let mut g = ObjectGraph::new();
        g.insert(obj(0x1000, 64, true));
        g.insert(obj(0x2000, 32, false));
        assert_eq!(g.len(), 2);
        assert!(g.contains(Addr(0x1000)));
        assert!(g.get(Addr(0x2000)).is_some());
        assert_eq!(g.object_containing(Addr(0x1010)).unwrap().addr, Addr(0x1000));
        assert!(g.object_containing(Addr(0x1040)).is_none());
        assert!(g.object_containing(Addr(0x500)).is_none());
    }

    #[test]
    fn dirty_and_immutable_queries() {
        let mut g = ObjectGraph::new();
        g.insert(obj(0x1000, 64, true));
        g.insert(obj(0x2000, 32, false));
        assert_eq!(g.dirty_objects().count(), 1);
        assert_eq!(g.dirty_bytes(), 64);
        assert_eq!(g.total_bytes(), 96);
        g.mark_immutable(Addr(0x2000));
        g.mark_non_updatable(Addr(0x1000));
        assert_eq!(g.immutable_objects().count(), 1);
        assert!(g.get(Addr(0x2000)).unwrap().non_updatable);
        assert!(g.get(Addr(0x1000)).unwrap().non_updatable);
        assert!(!g.get(Addr(0x1000)).unwrap().immutable);
    }

    #[test]
    fn dirty_epoch_is_the_single_source_of_truth() {
        let mut o = obj(0x1000, 64, false);
        assert!(!o.is_dirty());
        o.dirty_epoch = 7;
        assert!(o.is_dirty());
        let mut g = ObjectGraph::new();
        g.insert(o);
        g.insert(obj(0x2000, 32, false));
        assert_eq!(g.dirty_objects().count(), 1);
        assert_eq!(g.dirty_bytes(), 64);
        g.remove(Addr(0x1000));
        assert_eq!(g.dirty_objects().count(), 0);
        g.retain(|o| o.addr != Addr(0x2000));
        assert!(g.is_empty());
    }

    #[test]
    fn origin_descriptions() {
        assert!(ObjectOrigin::Static { symbol: "conf".into() }.describe().contains("conf"));
        assert!(ObjectOrigin::Heap { site: None }.describe().contains("untyped"));
        assert!(ObjectOrigin::Lib { name: None }.describe().contains("library"));
        assert!(ObjectOrigin::Static { symbol: "x".into() }.is_static());
        assert!(!ObjectOrigin::Mmap.is_static());
    }

    #[test]
    fn edges_iterate_precise_then_likely() {
        let mut o = obj(0x1000, 64, true);
        o.precise_pointers.push(PointerEdge {
            offset: 0,
            target: Addr(0x2000),
            target_base: Addr(0x2000),
            masked_bits: 0,
        });
        o.likely_pointers.push(PointerEdge {
            offset: 8,
            target: Addr(0x3000),
            target_base: Addr(0x3000),
            masked_bits: 0,
        });
        assert_eq!(o.edges().count(), 2);
        assert!(o.contains(Addr(0x1000)) && o.contains(Addr(0x103f)) && !o.contains(Addr(0x1040)));
        assert_eq!(o.end(), Addr(0x1040));
    }
}
