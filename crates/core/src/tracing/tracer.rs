//! The hybrid (precise + conservative) heap traversal of mutable tracing.
//!
//! Starting from the root set (global variables registered by the old
//! version, plus any annotated objects), the tracer walks pointer chains
//! through the old version's simulated memory. Where data-type tags are
//! available it locates pointers *precisely*; where the layout is opaque
//! (char buffers, unions, pointer-sized integers, objects from
//! uninstrumented allocators, library state) it falls back to *conservative*
//! scanning for likely pointers, deriving the `immutable` / `non-updatable`
//! invariants that constrain state transfer (paper §6).

use std::collections::{BTreeSet, VecDeque};

use mcr_procsim::{Addr, Kernel, Pid, Process, RegionKind, PAGE_SIZE};
use mcr_typemeta::{LayoutElement, TypeId};

use crate::annotations::ObjTreatment;
use crate::error::{McrError, McrResult};
use crate::program::InstanceState;
use crate::tracing::graph::{ObjectGraph, ObjectOrigin, PointerEdge, TracedObject};
use crate::tracing::stats::{RegionClass, TracingStats};

/// Options controlling a tracing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOptions {
    /// Follow (and transfer) shared-library state instead of only counting
    /// pointers into it. Off by default, as in the paper.
    pub trace_libraries: bool,
    /// Honour soft-dirty bits: objects on clean pages are marked clean and
    /// skipped by state transfer. Disabling this is the ablation baseline.
    pub use_dirty_tracking: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions { trace_libraries: false, use_dirty_tracking: true }
    }
}

/// The result of tracing one process.
#[derive(Debug, Clone)]
pub struct TraceResult {
    /// The traced object graph.
    pub graph: ObjectGraph,
    /// Aggregated statistics (Table 2 input).
    pub stats: TracingStats,
}

struct ResolvedObject {
    base: Addr,
    size: u64,
    origin: ObjectOrigin,
    type_id: Option<TypeId>,
    startup: bool,
}

/// The mutable-tracing engine for one process of the old version.
pub struct Tracer<'a> {
    process: &'a Process,
    state: &'a InstanceState,
    options: TraceOptions,
}

impl<'a> Tracer<'a> {
    /// Creates a tracer over process `pid` of the (quiescent) old version.
    ///
    /// # Errors
    ///
    /// Fails if the process does not exist.
    pub fn new(
        kernel: &'a Kernel,
        state: &'a InstanceState,
        pid: Pid,
        options: TraceOptions,
    ) -> McrResult<Self> {
        let process = kernel.process(pid).map_err(McrError::Sim)?;
        Ok(Tracer::for_process(process, state, options))
    }

    /// Creates a tracer over an already-borrowed process.
    ///
    /// This is the entry point used by the pair-parallel trace/transfer
    /// phase: workers hold per-process borrows obtained from
    /// [`Kernel::split_pairs`](mcr_procsim::Kernel::split_pairs) instead of
    /// going through `&Kernel`, which would alias the exclusive borrows of
    /// the new version's processes.
    pub fn for_process(process: &'a Process, state: &'a InstanceState, options: TraceOptions) -> Self {
        Tracer { process, state, options }
    }

    /// Runs the traversal from the root set.
    pub fn trace(&self) -> TraceResult {
        let mut graph = ObjectGraph::new();
        let mut stats = TracingStats::default();
        let mut worklist: VecDeque<(Addr, Option<TypeId>)> = VecDeque::new();
        let mut enqueued: BTreeSet<u64> = BTreeSet::new();
        // Objects that conservative scanning requires to be pinned.
        let mut pin_immutable: Vec<Addr> = Vec::new();
        let mut pin_non_updatable: Vec<Addr> = Vec::new();

        for root in self.state.statics.roots() {
            worklist.push_back((root.addr, Some(root.ty)));
            enqueued.insert(root.addr.0);
        }

        while let Some((addr, declared_ty)) = worklist.pop_front() {
            let Some(resolved) = self.resolve_object(addr) else { continue };
            if graph.contains(resolved.base) {
                continue;
            }
            let type_id = resolved.type_id.or(if addr == resolved.base { declared_ty } else { None });
            let dirty = if self.options.use_dirty_tracking {
                self.range_dirty(resolved.base, resolved.size)
            } else {
                true
            };
            let mut traced = TracedObject {
                addr: resolved.base,
                size: resolved.size,
                origin: resolved.origin,
                type_id,
                dirty,
                startup: resolved.startup,
                immutable: false,
                non_updatable: false,
                precise_pointers: Vec::new(),
                likely_pointers: Vec::new(),
            };

            self.scan_object(
                &mut traced,
                &mut stats,
                &mut worklist,
                &mut enqueued,
                &mut pin_immutable,
                &mut pin_non_updatable,
            );
            graph.insert(traced);
        }

        for addr in pin_immutable {
            graph.mark_immutable(addr);
        }
        for addr in pin_non_updatable {
            graph.mark_non_updatable(addr);
        }

        stats.objects_traced = graph.len() as u64;
        stats.immutable_objects = graph.immutable_objects().count() as u64;
        stats.non_updatable_objects = graph.iter().filter(|o| o.non_updatable).count() as u64;
        stats.dirty_objects = graph.dirty_objects().count() as u64;
        stats.traced_bytes = graph.total_bytes();
        stats.dirty_bytes = graph.dirty_bytes();
        TraceResult { graph, stats }
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_object(
        &self,
        traced: &mut TracedObject,
        stats: &mut TracingStats,
        worklist: &mut VecDeque<(Addr, Option<TypeId>)>,
        enqueued: &mut BTreeSet<u64>,
        pin_immutable: &mut Vec<Addr>,
        pin_non_updatable: &mut Vec<Addr>,
    ) {
        let src_class = self.region_class_of(traced.addr);
        let treatment = match &traced.origin {
            ObjectOrigin::Static { symbol } => self.state.annotations.obj_treatment(symbol).cloned(),
            _ => None,
        };

        // Decide the layout to scan.
        enum Plan {
            Typed(Vec<LayoutElement>, u64),
            PointerSlots(Vec<u64>),
            Conservative,
        }
        let mask_bits = match treatment {
            Some(ObjTreatment::EncodedPointers { mask_bits }) => mask_bits,
            _ => 0,
        };
        let plan = match (&treatment, traced.type_id) {
            (Some(ObjTreatment::SkipTransfer), _) => return,
            (Some(ObjTreatment::ForceConservative), _) => Plan::Conservative,
            (Some(ObjTreatment::PointerSlots(offsets)), _) => Plan::PointerSlots(offsets.clone()),
            (_, Some(ty)) => {
                let elems = self.state.types.layout_elements(ty);
                if elems.is_empty() {
                    Plan::Conservative
                } else {
                    let stride = self.state.types.size_of(ty).max(1);
                    Plan::Typed(elems, stride)
                }
            }
            (_, None) => Plan::Conservative,
        };

        match plan {
            Plan::Typed(elems, stride) => {
                let copies = (traced.size / stride).max(1);
                for k in 0..copies {
                    let base_off = k * stride;
                    for elem in &elems {
                        match elem {
                            LayoutElement::Pointer { offset, to } => {
                                self.follow_precise(
                                    traced,
                                    base_off + offset,
                                    Some(*to),
                                    mask_bits,
                                    src_class,
                                    stats,
                                    worklist,
                                    enqueued,
                                );
                            }
                            LayoutElement::Opaque { offset, len } => {
                                self.scan_conservative(
                                    traced,
                                    base_off + offset,
                                    *len,
                                    src_class,
                                    stats,
                                    worklist,
                                    enqueued,
                                    pin_immutable,
                                    pin_non_updatable,
                                );
                            }
                            LayoutElement::Scalar { .. } => {}
                        }
                    }
                }
            }
            Plan::PointerSlots(offsets) => {
                for off in offsets {
                    self.follow_precise(traced, off, None, mask_bits, src_class, stats, worklist, enqueued);
                }
            }
            Plan::Conservative => {
                self.scan_conservative(
                    traced,
                    0,
                    traced.size,
                    src_class,
                    stats,
                    worklist,
                    enqueued,
                    pin_immutable,
                    pin_non_updatable,
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn follow_precise(
        &self,
        traced: &mut TracedObject,
        offset: u64,
        pointee: Option<TypeId>,
        mask_bits: u32,
        src_class: RegionClass,
        stats: &mut TracingStats,
        worklist: &mut VecDeque<(Addr, Option<TypeId>)>,
        enqueued: &mut BTreeSet<u64>,
    ) {
        if offset + 8 > traced.size {
            return;
        }
        let slot = traced.addr.offset(offset);
        let Ok(raw) = self.process.space().read_u64(slot) else { return };
        let mask = (1u64 << mask_bits) - 1;
        let masked_bits = raw & mask;
        let value = raw & !mask;
        if value == 0 {
            return;
        }
        let target = Addr(value);
        if !self.process.space().is_mapped(target) {
            return;
        }
        let targ_class = self.region_class_of(target);
        stats.precise.record(src_class, targ_class);
        let target_base = self.resolve_object(target).map(|r| r.base).unwrap_or(target);
        traced.precise_pointers.push(PointerEdge { offset, target, target_base, masked_bits });
        let follow_lib = targ_class != RegionClass::Lib || self.options.trace_libraries;
        if follow_lib && enqueued.insert(target_base.0) {
            worklist.push_back((target_base, pointee));
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_conservative(
        &self,
        traced: &mut TracedObject,
        offset: u64,
        len: u64,
        src_class: RegionClass,
        stats: &mut TracingStats,
        worklist: &mut VecDeque<(Addr, Option<TypeId>)>,
        enqueued: &mut BTreeSet<u64>,
        pin_immutable: &mut Vec<Addr>,
        pin_non_updatable: &mut Vec<Addr>,
    ) {
        let start = offset.div_ceil(8) * 8;
        let end = (offset + len).min(traced.size);
        let mut found_any = false;
        let mut word = start;
        while word + 8 <= end {
            let slot = traced.addr.offset(word);
            if let Ok(raw) = self.process.space().read_u64(slot) {
                if let Some(target_base) = self.validate_likely_pointer(Addr(raw)) {
                    found_any = true;
                    let targ_class = self.region_class_of(Addr(raw));
                    stats.likely.record(src_class, targ_class);
                    traced.likely_pointers.push(PointerEdge {
                        offset: word,
                        target: Addr(raw),
                        target_base,
                        masked_bits: 0,
                    });
                    if targ_class != RegionClass::Lib {
                        // The pointed-to object can no longer be relocated or
                        // type-transformed.
                        pin_immutable.push(target_base);
                        if enqueued.insert(target_base.0) {
                            worklist.push_back((target_base, None));
                        }
                    }
                }
            }
            word += 8;
        }
        if found_any {
            // An object containing likely pointers cannot be safely
            // type-transformed (its layout interpretation is ambiguous).
            traced.non_updatable = true;
            pin_non_updatable.push(traced.addr);
        }
    }

    /// A word is a likely pointer when it is aligned and points inside a
    /// live, known object of the process.
    fn validate_likely_pointer(&self, candidate: Addr) -> Option<Addr> {
        if candidate.is_null() || !candidate.is_aligned(8) {
            return None;
        }
        if !self.process.space().is_mapped(candidate) {
            return None;
        }
        self.resolve_object(candidate).map(|r| r.base)
    }

    fn region_class_of(&self, addr: Addr) -> RegionClass {
        self.process
            .space()
            .region_containing(addr)
            .map(|r| RegionClass::from_kind(r.kind()))
            .unwrap_or(RegionClass::Dynamic)
    }

    fn range_dirty(&self, base: Addr, size: u64) -> bool {
        let mut page = base.page_base();
        let end = base.0 + size.max(1);
        while page.0 < end {
            if self.process.space().is_dirty(page) {
                return true;
            }
            page = page.offset(PAGE_SIZE);
        }
        false
    }

    fn resolve_object(&self, addr: Addr) -> Option<ResolvedObject> {
        // 1. Registered static objects.
        if let Some(o) = self.state.statics.object_containing(addr) {
            return Some(ResolvedObject {
                base: o.addr,
                size: o.size,
                origin: ObjectOrigin::Static { symbol: o.symbol.clone() },
                type_id: Some(o.ty),
                startup: true,
            });
        }
        let region = self.process.space().region_containing(addr)?;
        match region.kind() {
            RegionKind::Static => {
                // Unregistered static data (string constants and the like):
                // a synthetic word-sized object so likely pointers into it can
                // be counted and pinned.
                let base = Addr(addr.0 & !7);
                Some(ResolvedObject {
                    base,
                    size: 8,
                    origin: ObjectOrigin::Static { symbol: format!("static@{:#x}", base.0).into() },
                    type_id: None,
                    startup: true,
                })
            }
            RegionKind::Heap => {
                // Instrumented region-allocator objects take precedence over
                // the backing heap chunk.
                if let Some((base, size, site, tag)) = self.process.regions().object_containing(addr) {
                    let site_name = self.state.sites.get(site).map(|s| s.name.clone());
                    let type_id = if tag.0 != 0 { Some(TypeId(tag.0)) } else { None };
                    return Some(ResolvedObject {
                        base,
                        size,
                        origin: ObjectOrigin::Pool { site: site_name },
                        type_id,
                        startup: false,
                    });
                }
                let heap = self.process.heap()?;
                let chunk = heap.chunk_containing(self.process.space(), addr)?;
                let site_info = self.state.sites.get(chunk.site);
                let type_id = if chunk.type_tag.0 != 0 {
                    Some(TypeId(chunk.type_tag.0))
                } else {
                    site_info.and_then(|s| s.ty)
                };
                Some(ResolvedObject {
                    base: chunk.payload,
                    size: chunk.size,
                    origin: ObjectOrigin::Heap { site: site_info.map(|s| s.name.clone()) },
                    type_id,
                    startup: chunk.startup,
                })
            }
            RegionKind::Lib => {
                let found = self
                    .state
                    .lib_objects
                    .iter()
                    .find(|(base, size, _)| addr.0 >= base.0 && addr.0 < base.0 + *size);
                match found {
                    Some((base, size, name)) => Some(ResolvedObject {
                        base: *base,
                        size: *size,
                        origin: ObjectOrigin::Lib { name: Some(name.clone()) },
                        type_id: None,
                        startup: true,
                    }),
                    None => Some(ResolvedObject {
                        base: Addr(addr.0 & !7),
                        size: 8,
                        origin: ObjectOrigin::Lib { name: None },
                        type_id: None,
                        startup: true,
                    }),
                }
            }
            RegionKind::Mmap => Some(ResolvedObject {
                base: region.base(),
                size: region.size(),
                origin: ObjectOrigin::Mmap,
                type_id: None,
                startup: true,
            }),
            RegionKind::Stack => None,
        }
    }
}

/// Convenience wrapper: traces one process with the given options.
///
/// # Errors
///
/// Fails if the process does not exist.
pub fn trace_process(
    kernel: &Kernel,
    state: &InstanceState,
    pid: Pid,
    options: TraceOptions,
) -> McrResult<TraceResult> {
    Ok(Tracer::new(kernel, state, pid, options)?.trace())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpose::Interposer;
    use crate::program::{InstanceState, ProgramEnv, ThreadRosterEntry};
    use mcr_procsim::MemoryLayout;
    use mcr_typemeta::{Field, InstrumentationConfig, TypeKind};

    /// Builds the Listing 1 scenario: `conf` (clean pointer to a heap
    /// config), `list` (linked list head with a dirty heap node), and
    /// `b` (char buffer hiding a pointer to a heap array).
    fn listing1() -> (Kernel, InstanceState, Pid) {
        let mut kernel = Kernel::new();
        let pid = kernel.create_process("listing1").unwrap();
        let tid = kernel.process(pid).unwrap().main_tid();
        kernel.process_mut(pid).unwrap().setup_memory(MemoryLayout::default(), true).unwrap();
        let mut state =
            InstanceState::new("listing1", "1.0", InstrumentationConfig::full(), Interposer::recorder());
        state.processes.push(pid);
        state.threads.push(ThreadRosterEntry {
            pid,
            tid,
            name: "main".into(),
            created_during_startup: true,
            exited: false,
        });

        (kernel, state, pid)
    }

    /// Registers the Listing 1 types (`conf_s`, `l_t`, pointers) into the
    /// instance's type registry.
    fn build_types(state: &mut InstanceState) {
        let mut types = mcr_typemeta::TypeRegistry::new();
        let int = types.int("int", 4);
        let conf = types.struct_type("conf_s", vec![Field::new("workers", int), Field::new("port", int)]);
        let _conf_ptr = types.pointer("conf_s*", conf);
        // Create the node struct with a pointer to a same-named placeholder:
        // first create a placeholder pointer target.
        let placeholder = types.opaque("l_t_fwd", 16);
        let node_ptr = types.pointer("l_t*", placeholder);
        let _node = types.register(
            "l_t",
            TypeKind::Struct { fields: vec![Field::new("value", int), Field::new("next", node_ptr)] },
        );
        state.types = types;
    }

    #[test]
    fn precise_and_conservative_tracing_of_listing1() {
        let (mut kernel, mut state, pid) = listing1();
        build_types(&mut state);
        let tid = kernel.process(pid).unwrap().main_tid();

        // Build the program state through the environment.
        let (conf_global, list_global, b_global, heap_conf, node1, hidden_arr);
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            conf_global = env.define_global("conf", "conf_s*").unwrap();
            list_global = env.define_global("list", "l_t").unwrap();
            b_global = env.define_global_opaque("b", 8).unwrap();

            heap_conf = env.alloc("conf_s", "server_init:conf").unwrap();
            env.write_u32(heap_conf, 4).unwrap();
            env.write_ptr(conf_global, heap_conf).unwrap();

            // Page-sized padding keeps the config and the node on different
            // pages, so dirtying the node does not dirty the config.
            let _pad = env.alloc_bytes(2 * mcr_procsim::PAGE_SIZE, "pad").unwrap();
            node1 = env.alloc("l_t", "handle_event:node").unwrap();
            env.write_u32(node1, 5).unwrap();
            env.write_u32(list_global, 1).unwrap();
            env.write_ptr(list_global.offset(8), node1).unwrap();

            hidden_arr = env.alloc_bytes(24, "handle_event:buf").unwrap();
            env.write_ptr(b_global, hidden_arr).unwrap();
        }

        // Startup is over: clear dirty bits, then dirty only the node.
        kernel.process_mut(pid).unwrap().space_mut().clear_soft_dirty();
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            env.write_u32(node1, 6).unwrap();
        }

        let result = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();
        let graph = &result.graph;

        // conf -> heap conf_s followed precisely.
        let conf_obj = graph.get(conf_global).expect("conf global traced");
        assert_eq!(conf_obj.precise_pointers.len(), 1);
        assert_eq!(conf_obj.precise_pointers[0].target_base, heap_conf);
        assert!(graph.get(heap_conf).is_some());
        assert!(!graph.get(heap_conf).unwrap().dirty, "config untouched after startup");

        // list.next -> node followed precisely; node is dirty.
        let list_obj = graph.get(list_global).expect("list traced");
        assert_eq!(list_obj.precise_pointers.len(), 1);
        assert_eq!(list_obj.precise_pointers[0].offset, 8);
        let node_obj = graph.get(node1).expect("node traced");
        assert!(node_obj.dirty);

        // b scanned conservatively: hidden array pinned immutable.
        let b_obj = graph.get(b_global).expect("b traced");
        assert_eq!(b_obj.likely_pointers.len(), 1);
        assert!(b_obj.non_updatable);
        let hidden = graph.get(hidden_arr).expect("hidden array traced");
        assert!(hidden.immutable && hidden.non_updatable);

        // Statistics.
        assert_eq!(result.stats.precise.total, 2);
        assert_eq!(result.stats.likely.total, 1);
        assert!(result.stats.precise.src_static >= 2);
        assert_eq!(result.stats.likely.targ_dynamic, 1);
        assert!(result.stats.objects_traced >= 6);
        assert!(result.stats.dirty_objects >= 1);
        assert!(result.stats.dirty_reduction() > 0.0);
    }

    #[test]
    fn disabling_dirty_tracking_marks_everything_dirty() {
        let (mut kernel, mut state, pid) = listing1();
        build_types(&mut state);
        let tid = kernel.process(pid).unwrap().main_tid();
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            let g = env.define_global("conf", "conf_s*").unwrap();
            let c = env.alloc("conf_s", "init:conf").unwrap();
            env.write_ptr(g, c).unwrap();
        }
        kernel.process_mut(pid).unwrap().space_mut().clear_soft_dirty();
        let with = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();
        let without = trace_process(
            &kernel,
            &state,
            pid,
            TraceOptions { use_dirty_tracking: false, ..Default::default() },
        )
        .unwrap();
        assert_eq!(with.stats.dirty_objects, 0);
        assert_eq!(without.stats.dirty_objects, without.stats.objects_traced);
        assert!(without.stats.dirty_bytes >= with.stats.dirty_bytes);
    }

    #[test]
    fn pointer_slot_annotation_upgrades_hidden_pointer_to_precise() {
        let (mut kernel, mut state, pid) = listing1();
        build_types(&mut state);
        let tid = kernel.process(pid).unwrap().main_tid();
        let (b_global, hidden);
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            b_global = env.define_global_opaque("b", 8).unwrap();
            hidden = env.alloc("conf_s", "init:hidden").unwrap();
            env.write_ptr(b_global, hidden).unwrap();
            env.add_obj_handler("b", ObjTreatment::PointerSlots(vec![0]), 2);
        }
        let result = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();
        let b_obj = result.graph.get(b_global).unwrap();
        assert_eq!(b_obj.precise_pointers.len(), 1);
        assert!(b_obj.likely_pointers.is_empty());
        // The target is reached precisely, so it is not pinned.
        assert!(!result.graph.get(hidden).unwrap().immutable);
    }

    #[test]
    fn encoded_pointers_are_masked_before_following() {
        let (mut kernel, mut state, pid) = listing1();
        build_types(&mut state);
        let tid = kernel.process(pid).unwrap().main_tid();
        let (tagged_global, target);
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            tagged_global = env.define_global("tagged", "conf_s*").unwrap();
            target = env.alloc("conf_s", "init:enc").unwrap();
            // Store the pointer with metadata in the low 2 bits, nginx-style.
            env.write_u64(tagged_global, target.0 | 0b11).unwrap();
            env.add_obj_handler("tagged", ObjTreatment::EncodedPointers { mask_bits: 2 }, 22);
        }
        let result = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();
        let obj = result.graph.get(tagged_global).unwrap();
        assert_eq!(obj.precise_pointers.len(), 1);
        assert_eq!(obj.precise_pointers[0].target_base, target);
        assert_eq!(obj.precise_pointers[0].masked_bits, 0b11);
        assert!(result.graph.get(target).is_some());
    }

    #[test]
    fn library_targets_counted_but_not_traversed() {
        let (mut kernel, mut state, pid) = listing1();
        build_types(&mut state);
        let tid = kernel.process(pid).unwrap().main_tid();
        let lib_obj;
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            let g = env.define_global("ssl_ctx", "conf_s*").unwrap();
            lib_obj = env.lib_alloc(64, "libssl:ctx").unwrap();
            env.write_ptr(g, lib_obj).unwrap();
        }
        let result = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();
        assert_eq!(result.stats.precise.targ_lib, 1);
        assert!(result.graph.get(lib_obj).is_none(), "library state is not traced by default");
        let traced_libs =
            trace_process(&kernel, &state, pid, TraceOptions { trace_libraries: true, ..Default::default() })
                .unwrap();
        assert!(traced_libs.graph.get(lib_obj).is_some());
    }

    #[test]
    fn uninstrumented_pool_objects_scanned_conservatively() {
        let (mut kernel, mut state, pid) = listing1();
        build_types(&mut state);
        let tid = kernel.process(pid).unwrap().main_tid();
        let (pool_obj, victim);
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            // The root is an opaque word (no precise type information), as is
            // typical for globals managed by a custom allocator.
            let g = env.define_global_opaque("pool_root", 8).unwrap();
            let pool = env.create_pool(1024, None).unwrap();
            pool_obj = env.palloc_bytes(pool, 64, "nginx:request").unwrap();
            victim = env.alloc("conf_s", "init:victim").unwrap();
            // The pool object stores a pointer the heap allocator knows
            // nothing about.
            env.write_ptr(pool_obj, victim).unwrap();
            env.write_ptr(g, pool_obj).unwrap();
        }
        let result = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();
        // The pool storage chunk is untyped, so the pointer inside it is a
        // likely pointer and its target is pinned.
        assert!(result.stats.likely.total >= 1);
        assert!(result.graph.get(victim).unwrap().immutable);
    }
}
