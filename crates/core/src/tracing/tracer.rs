//! The hybrid (precise + conservative) heap traversal of mutable tracing.
//!
//! Starting from the root set (global variables registered by the old
//! version, plus any annotated objects), the tracer walks pointer chains
//! through the old version's simulated memory. Where data-type tags are
//! available it locates pointers *precisely*; where the layout is opaque
//! (char buffers, unions, pointer-sized integers, objects from
//! uninstrumented allocators, library state) it falls back to *conservative*
//! scanning for likely pointers, deriving the `immutable` / `non-updatable`
//! invariants that constrain state transfer (paper §6).
//!
//! # Delta tracing (pre-copy)
//!
//! The derived state — pin flags and [`TracingStats`] — is computed by a
//! *finalize* pass over the finished graph rather than accumulated during
//! the traversal. That makes tracing incremental: [`Tracer::retrace_dirty`]
//! re-scans only the objects whose pages carry a write-epoch stamp newer
//! than a given round, follows any new edges, sweeps unreachable objects and
//! re-runs the same finalize pass, so an iterative pre-copy converges to a
//! graph (and statistics) byte-identical to a fresh full trace of the same
//! memory — while each round's cost is proportional to the working set
//! written since the previous round, not to the whole heap.
//!
//! # Sharded (parallel) marking
//!
//! A single-process server with a huge heap used to trace on one thread, so
//! its traversal cost was bound by single-core memory-walk speed. With
//! [`Tracer::with_shards`] the traversal becomes *level-synchronous*: the
//! FIFO worklist is processed wave by wave (a wave is exactly the set of
//! addresses the serial walk would pop before reaching the first address
//! discovered by the wave), each wave's entries are scanned concurrently by
//! shard workers pulling chunks from a shared cursor into per-worker result
//! fragments, and the fragments are merged *serially, in wave order* — the
//! same order the serial FIFO walk uses. Because object scanning is a pure
//! function of the (frozen) process memory, and dedup/type-assignment
//! decisions are replayed at merge time in the serial order, the finished
//! graph, the conservative pins and the Table 2 statistics are byte-identical
//! to the serial walk for every shard count ([`finalize`](Tracer::trace)
//! stays a single pass over the merged graph). Delta retraces shard the
//! stale-object re-scan the same way.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use mcr_procsim::{Addr, Kernel, Pid, Process, RegionKind};
use mcr_typemeta::{LayoutElement, TypeId};

use crate::annotations::ObjTreatment;
use crate::error::{McrError, McrResult};
use crate::program::InstanceState;
use crate::tracing::graph::{ObjectGraph, ObjectOrigin, PointerEdge, TracedObject};
use crate::tracing::stats::{RegionClass, TracingStats};

/// Options controlling a tracing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOptions {
    /// Follow (and transfer) shared-library state instead of only counting
    /// pointers into it. Off by default, as in the paper.
    pub trace_libraries: bool,
    /// Honour soft-dirty bits: objects on clean pages are marked clean and
    /// skipped by state transfer. Disabling this is the ablation baseline.
    pub use_dirty_tracking: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions { trace_libraries: false, use_dirty_tracking: true }
    }
}

/// The result of tracing one process.
#[derive(Debug, Clone)]
pub struct TraceResult {
    /// The traced object graph.
    pub graph: ObjectGraph,
    /// Aggregated statistics (Table 2 input).
    pub stats: TracingStats,
}

struct ResolvedObject {
    base: Addr,
    size: u64,
    origin: ObjectOrigin,
    type_id: Option<TypeId>,
    startup: bool,
}

/// What scanning one worklist entry produced: the traced object plus the
/// outgoing targets the scan would have enqueued, in scan order. Workers
/// produce these independently; the merge pass replays the enqueue/dedup
/// decisions serially so the traversal is byte-identical to the serial walk.
struct ScannedObject {
    traced: TracedObject,
    discovered: Vec<(Addr, Option<TypeId>)>,
}

/// Runs `f` over `items`, returning results in item order. With `workers <=
/// 1` (or a trivially small batch) the items are mapped inline; otherwise
/// `workers` scoped threads pull index chunks from a shared cursor. Results
/// are slotted by index, so the output is independent of which worker scanned
/// what.
fn run_sharded<T: Sync, R: Send>(items: &[T], workers: usize, f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    if workers <= 1 || items.len() < workers.saturating_mul(2) {
        return items.iter().map(f).collect();
    }
    let chunk = (items.len() / (workers * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let cursor = &cursor;
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break done;
                        }
                        for (i, item) in
                            items.iter().enumerate().take((start + chunk).min(items.len())).skip(start)
                        {
                            done.push((i, f(item)));
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            for (index, result) in handle.join().expect("trace shard worker panicked") {
                slots[index] = Some(result);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("every item scanned")).collect()
}

/// A persistent shard-worker pool for one level-synchronous traversal:
/// workers are spawned once per traversal (not once per wave) and fed waves
/// through a mutex/condvar handshake, so deep graphs — whose BFS has many
/// waves — do not pay a thread spawn/join per wave. Wave entries are `Copy`,
/// so a worker copies its chunk out under the lock and scans without holding
/// it; results are slotted by wave index, which keeps the merge order (and
/// with it the determinism contract) identical to the serial walk.
struct WavePool {
    state: Mutex<WaveState>,
    ready: Condvar,
}

struct WaveState {
    wave: Vec<(Addr, Option<TypeId>)>,
    cursor: usize,
    chunk: usize,
    /// Entries of the current wave not yet scanned into `results`.
    pending: usize,
    results: Vec<Option<Option<ScannedObject>>>,
    shutdown: bool,
    /// A worker panicked while scanning: the coordinator re-raises instead
    /// of waiting forever on `pending` (the panic happened with the mutex
    /// released, so lock poisoning alone would not unblock it).
    failed: bool,
}

impl WavePool {
    fn new() -> Self {
        WavePool {
            state: Mutex::new(WaveState {
                wave: Vec::new(),
                cursor: 0,
                chunk: 1,
                pending: 0,
                results: Vec::new(),
                shutdown: false,
                failed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// The shard-worker loop: pull a chunk, scan it unlocked, slot the
    /// results, park on the condvar when the wave is drained.
    fn worker(&self, scan: impl Fn(Addr, Option<TypeId>) -> Option<ScannedObject>) {
        let mut state = self.state.lock().expect("wave pool poisoned");
        loop {
            if state.shutdown {
                return;
            }
            if state.cursor < state.wave.len() {
                let start = state.cursor;
                let end = (start + state.chunk).min(state.wave.len());
                state.cursor = end;
                let items: Vec<(Addr, Option<TypeId>)> = state.wave[start..end].to_vec();
                drop(state);
                // The scan runs with the mutex released, so a panic here
                // would neither poison the lock nor decrement `pending` —
                // catch it, flag the pool failed (waking the coordinator and
                // every parked worker) and re-raise so `thread::scope`
                // propagates it.
                let scanned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    items.into_iter().map(|(addr, declared)| scan(addr, declared)).collect::<Vec<_>>()
                }));
                state = self.state.lock().expect("wave pool poisoned");
                match scanned {
                    Ok(scanned) => {
                        for (i, outcome) in scanned.into_iter().enumerate() {
                            state.results[start + i] = Some(outcome);
                        }
                        state.pending = state.pending.saturating_sub(end - start);
                        if state.pending == 0 {
                            self.ready.notify_all();
                        }
                    }
                    Err(payload) => {
                        state.failed = true;
                        state.shutdown = true;
                        self.ready.notify_all();
                        drop(state);
                        std::panic::resume_unwind(payload);
                    }
                }
            } else {
                state = self.ready.wait(state).expect("wave pool poisoned");
            }
        }
    }

    /// Publishes one wave to the workers and blocks until every entry is
    /// scanned, returning the results in wave order.
    fn run_wave(&self, wave: Vec<(Addr, Option<TypeId>)>, workers: usize) -> Vec<Option<ScannedObject>> {
        let len = wave.len();
        let mut state = self.state.lock().expect("wave pool poisoned");
        state.chunk = (len / (workers.max(1) * 4)).max(1);
        state.wave = wave;
        state.cursor = 0;
        state.pending = len;
        state.results = (0..len).map(|_| None).collect();
        self.ready.notify_all();
        while state.pending > 0 && !state.failed {
            state = self.ready.wait(state).expect("wave pool poisoned");
        }
        if state.failed {
            // The failing worker already re-raised on its own thread;
            // unwinding out of the scope closure lets `thread::scope` join
            // the workers (shutdown is set) and propagate the panic.
            drop(state);
            panic!("trace shard worker panicked");
        }
        state.wave.clear();
        state.results.drain(..).map(|slot| slot.expect("every wave entry scanned")).collect()
    }

    fn shutdown(&self) {
        let mut state = self.state.lock().expect("wave pool poisoned");
        state.shutdown = true;
        self.ready.notify_all();
    }
}

/// The mutable-tracing engine for one process of the old version.
pub struct Tracer<'a> {
    process: &'a Process,
    state: &'a InstanceState,
    options: TraceOptions,
    /// Worker threads used by the sharded traversal (`<= 1` = serial).
    shards: usize,
}

impl<'a> Tracer<'a> {
    /// Creates a tracer over process `pid` of the (quiescent) old version.
    ///
    /// # Errors
    ///
    /// Fails if the process does not exist.
    pub fn new(
        kernel: &'a Kernel,
        state: &'a InstanceState,
        pid: Pid,
        options: TraceOptions,
    ) -> McrResult<Self> {
        let process = kernel.process(pid).map_err(McrError::Sim)?;
        Ok(Tracer::for_process(process, state, options))
    }

    /// Creates a tracer over an already-borrowed process.
    ///
    /// This is the entry point used by the pair-parallel trace/transfer
    /// phase: workers hold per-process borrows obtained from
    /// [`Kernel::split_pairs`](mcr_procsim::Kernel::split_pairs) instead of
    /// going through `&Kernel`, which would alias the exclusive borrows of
    /// the new version's processes.
    pub fn for_process(process: &'a Process, state: &'a InstanceState, options: TraceOptions) -> Self {
        Tracer { process, state, options, shards: 1 }
    }

    /// Shards the traversal across `shards` worker threads (`0`/`1` keeps it
    /// serial). The traversal is level-synchronous and merge order replays
    /// the serial walk, so the resulting graph, pins and statistics are
    /// byte-identical for every shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Runs the traversal from the root set.
    pub fn trace(&self) -> TraceResult {
        let mut graph = ObjectGraph::new();
        let mut enqueued: BTreeSet<u64> = BTreeSet::new();
        let mut wave: Vec<(Addr, Option<TypeId>)> = Vec::new();
        for root in self.state.statics.roots() {
            wave.push((root.addr, Some(root.ty)));
            enqueued.insert(root.addr.0);
        }
        self.traverse(&mut graph, wave, &mut enqueued);
        let stats = self.finalize(&mut graph);
        TraceResult { graph, stats }
    }

    /// Delta retrace over an existing graph: re-scans only the objects whose
    /// covering pages were written after epoch `since`, follows new edges
    /// into yet-untraced objects, drops objects that were freed or became
    /// unreachable, and recomputes pins and statistics with the same
    /// finalize pass a fresh trace uses.
    ///
    /// Staleness is detected through page write-epochs, so a free is only
    /// noticed if it (or the unlinking store) touched the object's pages:
    /// `PtMalloc::free` writes free-list metadata into the payload (as real
    /// ptmalloc does), which covers heap objects; *pool/slab* objects freed
    /// without any store and still referenced by a dangling pointer can
    /// survive a retrace that a fresh trace would re-resolve differently.
    pub fn retrace_dirty(&self, graph: &mut ObjectGraph, since: u64) -> TracingStats {
        let stale: Vec<(Addr, Option<TypeId>)> = graph
            .iter()
            .filter(|o| {
                let epoch = self.object_dirty_epoch(o.addr, o.size);
                epoch == u64::MAX || epoch > since
            })
            .map(|o| (o.addr, o.type_id))
            .collect();
        let mut enqueued: BTreeSet<u64> = graph.iter().map(|o| o.addr.0).collect();
        // Re-scan the stale set on the shard workers (each re-scan is a pure
        // read of the frozen process memory), then merge in address order —
        // the same order the serial loop used.
        let rescanned = run_sharded(&stale, self.shards, |&(addr, prev_ty)| self.rescan_stale(addr, prev_ty));
        let mut frontier: Vec<(Addr, Option<TypeId>)> = Vec::new();
        for (&(addr, _), outcome) in stale.iter().zip(rescanned) {
            match outcome {
                // An object whose backing chunk was freed (or replaced by an
                // allocation with a different base) no longer resolves to the
                // same base; drop it — the sweep below catches dangling
                // edges.
                None => {
                    graph.remove(addr);
                    enqueued.remove(&addr.0);
                }
                Some(ScannedObject { traced, discovered }) => {
                    for &(target, ty) in &discovered {
                        if enqueued.insert(target.0) {
                            frontier.push((target, ty));
                        }
                    }
                    graph.insert(traced);
                }
            }
        }
        self.traverse(graph, frontier, &mut enqueued);
        self.sweep(graph);
        self.finalize(graph)
    }

    /// Level-synchronous worklist traversal: each wave (the addresses the
    /// serial FIFO walk would pop before reaching this wave's discoveries) is
    /// scanned on the shard workers, then merged serially *in wave order* —
    /// replaying exactly the dedup and insertion decisions of the serial
    /// walk, so the result is independent of the shard count.
    ///
    /// With shards enabled, the workers are spawned once and fed every wave
    /// through a [`WavePool`] (a per-wave `thread::scope` would pay a
    /// spawn/join per BFS level, which dominates on deep graphs); waves too
    /// small to amortize even the pool handshake are scanned inline. Either
    /// path slots results by wave index, so the merge is order-identical.
    fn traverse(
        &self,
        graph: &mut ObjectGraph,
        mut wave: Vec<(Addr, Option<TypeId>)>,
        enqueued: &mut BTreeSet<u64>,
    ) {
        let scan_inline = |wave: &[(Addr, Option<TypeId>)]| {
            wave.iter().map(|&(addr, declared)| self.scan_entry(addr, declared)).collect::<Vec<_>>()
        };
        if self.shards <= 1 {
            while !wave.is_empty() {
                let scanned = scan_inline(&wave);
                wave = self.merge_wave(graph, scanned, enqueued);
            }
            return;
        }
        let pool = WavePool::new();
        std::thread::scope(|scope| {
            let pool = &pool;
            for _ in 0..self.shards {
                scope.spawn(move || pool.worker(|addr, declared| self.scan_entry(addr, declared)));
            }
            while !wave.is_empty() {
                let scanned = if wave.len() < self.shards * 2 {
                    scan_inline(&wave)
                } else {
                    pool.run_wave(std::mem::take(&mut wave), self.shards)
                };
                wave = self.merge_wave(graph, scanned, enqueued);
            }
            pool.shutdown();
        });
    }

    /// Merges one scanned wave into the graph in wave order, returning the
    /// next wave. Two wave entries can resolve to the same base (interior
    /// pointers); the first in wave order wins, exactly like the serial
    /// pop-time check — the duplicate's scan (and its discoveries) are
    /// discarded.
    fn merge_wave(
        &self,
        graph: &mut ObjectGraph,
        scanned: Vec<Option<ScannedObject>>,
        enqueued: &mut BTreeSet<u64>,
    ) -> Vec<(Addr, Option<TypeId>)> {
        let mut next: Vec<(Addr, Option<TypeId>)> = Vec::new();
        for outcome in scanned {
            let Some(ScannedObject { traced, discovered }) = outcome else { continue };
            if graph.contains(traced.addr) {
                continue;
            }
            for &(target, ty) in &discovered {
                if enqueued.insert(target.0) {
                    next.push((target, ty));
                }
            }
            graph.insert(traced);
        }
        next
    }

    /// Scans one frontier entry: resolves the address, builds the traced
    /// object (the declared pointee type applies only when the address is the
    /// object base, as in the serial walk) and collects its outgoing targets.
    /// Pure with respect to shared state, so entries scan concurrently.
    fn scan_entry(&self, addr: Addr, declared: Option<TypeId>) -> Option<ScannedObject> {
        let resolved = self.resolve_object(addr)?;
        let type_id = resolved.type_id.or(if addr == resolved.base { declared } else { None });
        Some(self.scan_resolved(resolved, type_id))
    }

    /// Re-scans one stale object of a delta retrace. Returns `None` when the
    /// object no longer resolves to the same base (freed or replaced).
    /// Declared root/pointee types are sticky: a fresh trace would re-derive
    /// them from the (unchanged) pointer declarations.
    fn rescan_stale(&self, addr: Addr, prev_ty: Option<TypeId>) -> Option<ScannedObject> {
        let resolved = match self.resolve_object(addr) {
            Some(r) if r.base == addr => r,
            _ => return None,
        };
        let type_id = resolved.type_id.or(prev_ty);
        Some(self.scan_resolved(resolved, type_id))
    }

    fn scan_resolved(&self, resolved: ResolvedObject, type_id: Option<TypeId>) -> ScannedObject {
        let mut traced = TracedObject {
            addr: resolved.base,
            size: resolved.size,
            origin: resolved.origin,
            type_id,
            dirty_epoch: self.object_dirty_epoch(resolved.base, resolved.size),
            startup: resolved.startup,
            immutable: false,
            non_updatable: false,
            precise_pointers: Vec::new(),
            likely_pointers: Vec::new(),
        };
        let mut discovered = Vec::new();
        self.scan_object(&mut traced, &mut discovered);
        ScannedObject { traced, discovered }
    }

    /// Reachability sweep for delta retraces: keeps only the objects a fresh
    /// traversal from the roots would reach over the current edges.
    fn sweep(&self, graph: &mut ObjectGraph) {
        let mut reached: BTreeSet<u64> = BTreeSet::new();
        let mut stack: Vec<u64> = Vec::new();
        for root in self.state.statics.roots() {
            if let Some(r) = self.resolve_object(root.addr) {
                if graph.contains(r.base) && reached.insert(r.base.0) {
                    stack.push(r.base.0);
                }
            }
        }
        while let Some(base) = stack.pop() {
            let Some(obj) = graph.get(Addr(base)) else { continue };
            for edge in obj.precise_pointers.iter() {
                let follow =
                    self.region_class_of(edge.target) != RegionClass::Lib || self.options.trace_libraries;
                if follow && graph.contains(edge.target_base) && reached.insert(edge.target_base.0) {
                    stack.push(edge.target_base.0);
                }
            }
            for edge in obj.likely_pointers.iter() {
                if self.region_class_of(edge.target) != RegionClass::Lib
                    && graph.contains(edge.target_base)
                    && reached.insert(edge.target_base.0)
                {
                    stack.push(edge.target_base.0);
                }
            }
        }
        graph.retain(|o| reached.contains(&o.addr.0));
    }

    /// Recomputes everything derived from the graph's edges — conservative
    /// pins, non-updatability, and the Table 2 statistics. Both the full
    /// trace and delta retraces end here, which is what guarantees that an
    /// incrementally maintained graph reports exactly like a fresh one.
    fn finalize(&self, graph: &mut ObjectGraph) -> TracingStats {
        for obj in graph.iter_mut() {
            obj.immutable = false;
            // An object containing likely pointers cannot be safely
            // type-transformed (its layout interpretation is ambiguous).
            obj.non_updatable = !obj.likely_pointers.is_empty();
        }
        let mut pins: Vec<Addr> = Vec::new();
        let mut stats = TracingStats::default();
        for obj in graph.iter() {
            let src_class = self.region_class_of(obj.addr);
            for edge in obj.precise_pointers.iter() {
                stats.precise.record(src_class, self.region_class_of(edge.target));
            }
            for edge in obj.likely_pointers.iter() {
                let targ_class = self.region_class_of(edge.target);
                stats.likely.record(src_class, targ_class);
                if targ_class != RegionClass::Lib {
                    // The conservatively-referenced target can no longer be
                    // relocated or type-transformed.
                    pins.push(edge.target_base);
                }
            }
        }
        for addr in pins {
            graph.mark_immutable(addr);
        }
        stats.objects_traced = graph.len() as u64;
        stats.immutable_objects = graph.immutable_objects().count() as u64;
        stats.non_updatable_objects = graph.iter().filter(|o| o.non_updatable).count() as u64;
        stats.dirty_objects = graph.dirty_objects().count() as u64;
        stats.traced_bytes = graph.total_bytes();
        stats.dirty_bytes = graph.dirty_bytes();
        stats
    }

    /// Scans one object for outgoing edges. Candidate traversal targets are
    /// appended to `discovered` in scan order (deduplication against the
    /// global enqueued set happens at merge time, so this stays a pure read
    /// of process memory and can run on any shard worker).
    fn scan_object(&self, traced: &mut TracedObject, discovered: &mut Vec<(Addr, Option<TypeId>)>) {
        let treatment = match &traced.origin {
            ObjectOrigin::Static { symbol } => self.state.annotations.obj_treatment(symbol).cloned(),
            _ => None,
        };

        // Decide the layout to scan.
        enum Plan {
            Typed(Vec<LayoutElement>, u64),
            PointerSlots(Vec<u64>),
            Conservative,
        }
        let mask_bits = match treatment {
            Some(ObjTreatment::EncodedPointers { mask_bits }) => mask_bits,
            _ => 0,
        };
        let plan = match (&treatment, traced.type_id) {
            (Some(ObjTreatment::SkipTransfer), _) => return,
            (Some(ObjTreatment::ForceConservative), _) => Plan::Conservative,
            (Some(ObjTreatment::PointerSlots(offsets)), _) => Plan::PointerSlots(offsets.clone()),
            (_, Some(ty)) => {
                let elems = self.state.types.layout_elements(ty);
                if elems.is_empty() {
                    Plan::Conservative
                } else {
                    let stride = self.state.types.size_of(ty).max(1);
                    Plan::Typed(elems, stride)
                }
            }
            (_, None) => Plan::Conservative,
        };

        match plan {
            Plan::Typed(elems, stride) => {
                let copies = (traced.size / stride).max(1);
                for k in 0..copies {
                    let base_off = k * stride;
                    for elem in &elems {
                        match elem {
                            LayoutElement::Pointer { offset, to } => {
                                self.follow_precise(
                                    traced,
                                    base_off + offset,
                                    Some(*to),
                                    mask_bits,
                                    discovered,
                                );
                            }
                            LayoutElement::Opaque { offset, len } => {
                                self.scan_conservative(traced, base_off + offset, *len, discovered);
                            }
                            LayoutElement::Scalar { .. } => {}
                        }
                    }
                }
            }
            Plan::PointerSlots(offsets) => {
                for off in offsets {
                    self.follow_precise(traced, off, None, mask_bits, discovered);
                }
            }
            Plan::Conservative => {
                self.scan_conservative(traced, 0, traced.size, discovered);
            }
        }
    }

    fn follow_precise(
        &self,
        traced: &mut TracedObject,
        offset: u64,
        pointee: Option<TypeId>,
        mask_bits: u32,
        discovered: &mut Vec<(Addr, Option<TypeId>)>,
    ) {
        if offset + 8 > traced.size {
            return;
        }
        let slot = traced.addr.offset(offset);
        let Ok(raw) = self.process.space().read_u64(slot) else { return };
        let mask = (1u64 << mask_bits) - 1;
        let masked_bits = raw & mask;
        let value = raw & !mask;
        if value == 0 {
            return;
        }
        let target = Addr(value);
        if !self.process.space().is_mapped(target) {
            return;
        }
        let targ_class = self.region_class_of(target);
        let target_base = self.resolve_object(target).map(|r| r.base).unwrap_or(target);
        traced.precise_pointers.push(PointerEdge { offset, target, target_base, masked_bits });
        let follow_lib = targ_class != RegionClass::Lib || self.options.trace_libraries;
        if follow_lib {
            discovered.push((target_base, pointee));
        }
    }

    fn scan_conservative(
        &self,
        traced: &mut TracedObject,
        offset: u64,
        len: u64,
        discovered: &mut Vec<(Addr, Option<TypeId>)>,
    ) {
        let start = offset.div_ceil(8) * 8;
        let end = (offset + len).min(traced.size);
        let mut word = start;
        while word + 8 <= end {
            let slot = traced.addr.offset(word);
            if let Ok(raw) = self.process.space().read_u64(slot) {
                if let Some(target_base) = self.validate_likely_pointer(Addr(raw)) {
                    let targ_class = self.region_class_of(Addr(raw));
                    traced.likely_pointers.push(PointerEdge {
                        offset: word,
                        target: Addr(raw),
                        target_base,
                        masked_bits: 0,
                    });
                    // Pinning (and the non-updatable flag) is derived from
                    // these edges by the finalize pass; the traversal only
                    // needs to keep following reachable targets.
                    if targ_class != RegionClass::Lib {
                        discovered.push((target_base, None));
                    }
                }
            }
            word += 8;
        }
    }

    /// A word is a likely pointer when it is aligned and points inside a
    /// live, known object of the process.
    fn validate_likely_pointer(&self, candidate: Addr) -> Option<Addr> {
        if candidate.is_null() || !candidate.is_aligned(8) {
            return None;
        }
        if !self.process.space().is_mapped(candidate) {
            return None;
        }
        self.resolve_object(candidate).map(|r| r.base)
    }

    fn region_class_of(&self, addr: Addr) -> RegionClass {
        self.process
            .space()
            .region_containing(addr)
            .map(|r| RegionClass::from_kind(r.kind()))
            .unwrap_or(RegionClass::Dynamic)
    }

    /// The dirty stamp mutable tracing records on an object: the highest
    /// write epoch of its covering pages, or `u64::MAX` when dirty tracking
    /// is disabled (every object is then treated as dirty and as stale in
    /// every pre-copy round).
    fn object_dirty_epoch(&self, base: Addr, size: u64) -> u64 {
        if !self.options.use_dirty_tracking {
            return u64::MAX;
        }
        self.process.space().range_dirty_epoch(base, size)
    }

    fn resolve_object(&self, addr: Addr) -> Option<ResolvedObject> {
        // 1. Registered static objects.
        if let Some(o) = self.state.statics.object_containing(addr) {
            return Some(ResolvedObject {
                base: o.addr,
                size: o.size,
                origin: ObjectOrigin::Static { symbol: o.symbol.clone() },
                type_id: Some(o.ty),
                startup: true,
            });
        }
        let region = self.process.space().region_containing(addr)?;
        match region.kind() {
            RegionKind::Static => {
                // Unregistered static data (string constants and the like):
                // a synthetic word-sized object so likely pointers into it can
                // be counted and pinned.
                let base = Addr(addr.0 & !7);
                Some(ResolvedObject {
                    base,
                    size: 8,
                    origin: ObjectOrigin::Static { symbol: format!("static@{:#x}", base.0).into() },
                    type_id: None,
                    startup: true,
                })
            }
            RegionKind::Heap => {
                // Instrumented region-allocator objects take precedence over
                // the backing heap chunk.
                if let Some((base, size, site, tag)) = self.process.regions().object_containing(addr) {
                    let site_name = self.state.sites.get(site).map(|s| s.name.clone());
                    let type_id = if tag.0 != 0 { Some(TypeId(tag.0)) } else { None };
                    return Some(ResolvedObject {
                        base,
                        size,
                        origin: ObjectOrigin::Pool { site: site_name },
                        type_id,
                        startup: false,
                    });
                }
                let heap = self.process.heap()?;
                let chunk = heap.chunk_containing(self.process.space(), addr)?;
                let site_info = self.state.sites.get(chunk.site);
                let type_id = if chunk.type_tag.0 != 0 {
                    Some(TypeId(chunk.type_tag.0))
                } else {
                    site_info.and_then(|s| s.ty)
                };
                Some(ResolvedObject {
                    base: chunk.payload,
                    size: chunk.size,
                    origin: ObjectOrigin::Heap { site: site_info.map(|s| s.name.clone()) },
                    type_id,
                    startup: chunk.startup,
                })
            }
            RegionKind::Lib => {
                let found = self
                    .state
                    .lib_objects
                    .iter()
                    .find(|(base, size, _)| addr.0 >= base.0 && addr.0 < base.0 + *size);
                match found {
                    Some((base, size, name)) => Some(ResolvedObject {
                        base: *base,
                        size: *size,
                        origin: ObjectOrigin::Lib { name: Some(name.clone()) },
                        type_id: None,
                        startup: true,
                    }),
                    None => Some(ResolvedObject {
                        base: Addr(addr.0 & !7),
                        size: 8,
                        origin: ObjectOrigin::Lib { name: None },
                        type_id: None,
                        startup: true,
                    }),
                }
            }
            RegionKind::Mmap => Some(ResolvedObject {
                base: region.base(),
                size: region.size(),
                origin: ObjectOrigin::Mmap,
                type_id: None,
                startup: true,
            }),
            RegionKind::Stack => None,
        }
    }
}

/// Convenience wrapper: traces one process with the given options.
///
/// # Errors
///
/// Fails if the process does not exist.
pub fn trace_process(
    kernel: &Kernel,
    state: &InstanceState,
    pid: Pid,
    options: TraceOptions,
) -> McrResult<TraceResult> {
    Ok(Tracer::new(kernel, state, pid, options)?.trace())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpose::Interposer;
    use crate::program::{InstanceState, ProgramEnv, ThreadRosterEntry};
    use mcr_procsim::MemoryLayout;
    use mcr_typemeta::{Field, InstrumentationConfig, TypeKind};

    /// Builds the Listing 1 scenario: `conf` (clean pointer to a heap
    /// config), `list` (linked list head with a dirty heap node), and
    /// `b` (char buffer hiding a pointer to a heap array).
    fn listing1() -> (Kernel, InstanceState, Pid) {
        let mut kernel = Kernel::new();
        let pid = kernel.create_process("listing1").unwrap();
        let tid = kernel.process(pid).unwrap().main_tid();
        kernel.process_mut(pid).unwrap().setup_memory(MemoryLayout::default(), true).unwrap();
        let mut state =
            InstanceState::new("listing1", "1.0", InstrumentationConfig::full(), Interposer::recorder());
        state.processes.push(pid);
        state.threads.push(ThreadRosterEntry {
            pid,
            tid,
            name: "main".into(),
            created_during_startup: true,
            exited: false,
        });

        (kernel, state, pid)
    }

    /// Registers the Listing 1 types (`conf_s`, `l_t`, pointers) into the
    /// instance's type registry.
    fn build_types(state: &mut InstanceState) {
        let mut types = mcr_typemeta::TypeRegistry::new();
        let int = types.int("int", 4);
        let conf = types.struct_type("conf_s", vec![Field::new("workers", int), Field::new("port", int)]);
        let _conf_ptr = types.pointer("conf_s*", conf);
        // Create the node struct with a pointer to a same-named placeholder:
        // first create a placeholder pointer target.
        let placeholder = types.opaque("l_t_fwd", 16);
        let node_ptr = types.pointer("l_t*", placeholder);
        let _node = types.register(
            "l_t",
            TypeKind::Struct { fields: vec![Field::new("value", int), Field::new("next", node_ptr)] },
        );
        state.types = types;
    }

    #[test]
    fn precise_and_conservative_tracing_of_listing1() {
        let (mut kernel, mut state, pid) = listing1();
        build_types(&mut state);
        let tid = kernel.process(pid).unwrap().main_tid();

        // Build the program state through the environment.
        let (conf_global, list_global, b_global, heap_conf, node1, hidden_arr);
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            conf_global = env.define_global("conf", "conf_s*").unwrap();
            list_global = env.define_global("list", "l_t").unwrap();
            b_global = env.define_global_opaque("b", 8).unwrap();

            heap_conf = env.alloc("conf_s", "server_init:conf").unwrap();
            env.write_u32(heap_conf, 4).unwrap();
            env.write_ptr(conf_global, heap_conf).unwrap();

            // Page-sized padding keeps the config and the node on different
            // pages, so dirtying the node does not dirty the config.
            let _pad = env.alloc_bytes(2 * mcr_procsim::PAGE_SIZE, "pad").unwrap();
            node1 = env.alloc("l_t", "handle_event:node").unwrap();
            env.write_u32(node1, 5).unwrap();
            env.write_u32(list_global, 1).unwrap();
            env.write_ptr(list_global.offset(8), node1).unwrap();

            hidden_arr = env.alloc_bytes(24, "handle_event:buf").unwrap();
            env.write_ptr(b_global, hidden_arr).unwrap();
        }

        // Startup is over: clear dirty bits, then dirty only the node.
        kernel.process_mut(pid).unwrap().space_mut().clear_soft_dirty();
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            env.write_u32(node1, 6).unwrap();
        }

        let result = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();
        let graph = &result.graph;

        // conf -> heap conf_s followed precisely.
        let conf_obj = graph.get(conf_global).expect("conf global traced");
        assert_eq!(conf_obj.precise_pointers.len(), 1);
        assert_eq!(conf_obj.precise_pointers[0].target_base, heap_conf);
        assert!(graph.get(heap_conf).is_some());
        assert!(!graph.get(heap_conf).unwrap().is_dirty(), "config untouched after startup");

        // list.next -> node followed precisely; node is dirty.
        let list_obj = graph.get(list_global).expect("list traced");
        assert_eq!(list_obj.precise_pointers.len(), 1);
        assert_eq!(list_obj.precise_pointers[0].offset, 8);
        let node_obj = graph.get(node1).expect("node traced");
        assert!(node_obj.is_dirty());

        // b scanned conservatively: hidden array pinned immutable.
        let b_obj = graph.get(b_global).expect("b traced");
        assert_eq!(b_obj.likely_pointers.len(), 1);
        assert!(b_obj.non_updatable);
        let hidden = graph.get(hidden_arr).expect("hidden array traced");
        assert!(hidden.immutable && hidden.non_updatable);

        // Statistics.
        assert_eq!(result.stats.precise.total, 2);
        assert_eq!(result.stats.likely.total, 1);
        assert!(result.stats.precise.src_static >= 2);
        assert_eq!(result.stats.likely.targ_dynamic, 1);
        assert!(result.stats.objects_traced >= 6);
        assert!(result.stats.dirty_objects >= 1);
        assert!(result.stats.dirty_reduction() > 0.0);
    }

    /// Delta retrace converges to the same graph and statistics as a fresh
    /// full trace of the same memory, while only revisiting dirtied objects.
    #[test]
    fn retrace_dirty_matches_fresh_trace() {
        let (mut kernel, mut state, pid) = listing1();
        build_types(&mut state);
        let tid = kernel.process(pid).unwrap().main_tid();
        let (list_global, node1, node2);
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            list_global = env.define_global("list", "l_t").unwrap();
            node1 = env.alloc("l_t", "handle_event:node").unwrap();
            node2 = env.alloc("l_t", "handle_event:node").unwrap();
            env.write_u32(node1, 1).unwrap();
            env.write_ptr(list_global.offset(8), node1).unwrap();
        }
        kernel.process_mut(pid).unwrap().space_mut().clear_soft_dirty();

        let mut result = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();
        assert!(result.graph.get(node2).is_none(), "unlinked node is unreachable");
        let since = kernel.process_mut(pid).unwrap().space_mut().advance_write_epoch();

        // Mutate after the epoch: bump a value and link the second node.
        {
            let space = kernel.process_mut(pid).unwrap().space_mut();
            space.write_u32(node1, 2).unwrap();
            space.write_u64(node1.offset(8), node2.0).unwrap();
        }

        let tracer = Tracer::new(&kernel, &state, pid, TraceOptions::default()).unwrap();
        result.stats = result.graph.retrace_dirty(&tracer, since);
        let fresh = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();

        assert_eq!(result.stats, fresh.stats, "retraced statistics diverged from a fresh trace");
        let incremental: Vec<_> = result.graph.iter().collect();
        let scratch: Vec<_> = fresh.graph.iter().collect();
        assert_eq!(incremental, scratch, "retraced graph diverged from a fresh trace");
        assert!(result.graph.get(node2).is_some(), "newly linked node was discovered");
        assert!(result.graph.get(node1).unwrap().dirty_epoch > since);

        // Unlink node2 again: the next retrace sweeps it.
        let since2 = kernel.process_mut(pid).unwrap().space_mut().advance_write_epoch();
        kernel.process_mut(pid).unwrap().space_mut().write_u64(node1.offset(8), 0).unwrap();
        let tracer = Tracer::new(&kernel, &state, pid, TraceOptions::default()).unwrap();
        result.stats = result.graph.retrace_dirty(&tracer, since2);
        assert!(result.graph.get(node2).is_none(), "unreachable node was swept");
        let fresh = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();
        assert_eq!(result.stats, fresh.stats);
    }

    #[test]
    fn disabling_dirty_tracking_marks_everything_dirty() {
        let (mut kernel, mut state, pid) = listing1();
        build_types(&mut state);
        let tid = kernel.process(pid).unwrap().main_tid();
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            let g = env.define_global("conf", "conf_s*").unwrap();
            let c = env.alloc("conf_s", "init:conf").unwrap();
            env.write_ptr(g, c).unwrap();
        }
        kernel.process_mut(pid).unwrap().space_mut().clear_soft_dirty();
        let with = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();
        let without = trace_process(
            &kernel,
            &state,
            pid,
            TraceOptions { use_dirty_tracking: false, ..Default::default() },
        )
        .unwrap();
        assert_eq!(with.stats.dirty_objects, 0);
        assert_eq!(without.stats.dirty_objects, without.stats.objects_traced);
        assert!(without.stats.dirty_bytes >= with.stats.dirty_bytes);
    }

    #[test]
    fn pointer_slot_annotation_upgrades_hidden_pointer_to_precise() {
        let (mut kernel, mut state, pid) = listing1();
        build_types(&mut state);
        let tid = kernel.process(pid).unwrap().main_tid();
        let (b_global, hidden);
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            b_global = env.define_global_opaque("b", 8).unwrap();
            hidden = env.alloc("conf_s", "init:hidden").unwrap();
            env.write_ptr(b_global, hidden).unwrap();
            env.add_obj_handler("b", ObjTreatment::PointerSlots(vec![0]), 2);
        }
        let result = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();
        let b_obj = result.graph.get(b_global).unwrap();
        assert_eq!(b_obj.precise_pointers.len(), 1);
        assert!(b_obj.likely_pointers.is_empty());
        // The target is reached precisely, so it is not pinned.
        assert!(!result.graph.get(hidden).unwrap().immutable);
    }

    #[test]
    fn encoded_pointers_are_masked_before_following() {
        let (mut kernel, mut state, pid) = listing1();
        build_types(&mut state);
        let tid = kernel.process(pid).unwrap().main_tid();
        let (tagged_global, target);
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            tagged_global = env.define_global("tagged", "conf_s*").unwrap();
            target = env.alloc("conf_s", "init:enc").unwrap();
            // Store the pointer with metadata in the low 2 bits, nginx-style.
            env.write_u64(tagged_global, target.0 | 0b11).unwrap();
            env.add_obj_handler("tagged", ObjTreatment::EncodedPointers { mask_bits: 2 }, 22);
        }
        let result = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();
        let obj = result.graph.get(tagged_global).unwrap();
        assert_eq!(obj.precise_pointers.len(), 1);
        assert_eq!(obj.precise_pointers[0].target_base, target);
        assert_eq!(obj.precise_pointers[0].masked_bits, 0b11);
        assert!(result.graph.get(target).is_some());
    }

    #[test]
    fn library_targets_counted_but_not_traversed() {
        let (mut kernel, mut state, pid) = listing1();
        build_types(&mut state);
        let tid = kernel.process(pid).unwrap().main_tid();
        let lib_obj;
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            let g = env.define_global("ssl_ctx", "conf_s*").unwrap();
            lib_obj = env.lib_alloc(64, "libssl:ctx").unwrap();
            env.write_ptr(g, lib_obj).unwrap();
        }
        let result = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();
        assert_eq!(result.stats.precise.targ_lib, 1);
        assert!(result.graph.get(lib_obj).is_none(), "library state is not traced by default");
        let traced_libs =
            trace_process(&kernel, &state, pid, TraceOptions { trace_libraries: true, ..Default::default() })
                .unwrap();
        assert!(traced_libs.graph.get(lib_obj).is_some());
    }

    /// Builds a wide, multi-level object graph (a bucketed hash table of
    /// linked chains with conservative value blobs) and checks that the
    /// sharded traversal produces a graph and statistics byte-identical to
    /// the serial walk, for several shard counts, for fresh traces and for
    /// delta retraces.
    #[test]
    fn sharded_trace_is_byte_identical_to_serial() {
        let (mut kernel, mut state, pid) = listing1();
        build_types(&mut state);
        let tid = kernel.process(pid).unwrap().main_tid();
        let mut nodes = Vec::new();
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            // 8 bucket heads, each an interleaved chain of 12 typed nodes
            // and 12 untyped blobs (node.next → blob, blob word 0 → next
            // node), so the traversal alternates precise and conservative
            // scanning across many waves.
            for b in 0..8u64 {
                let head = env.define_global(&format!("bucket{b}"), "l_t").unwrap();
                let mut prev_slot = head.offset(8);
                for i in 0..12u64 {
                    let node = env.alloc("l_t", "handle_event:node").unwrap();
                    env.write_u32(node, (b * 100 + i) as u32).unwrap();
                    let blob = env.alloc_bytes(48, "handle_event:blob").unwrap();
                    env.write_u64(blob.offset(8), 0x6c6f_6221).unwrap();
                    env.write_ptr(prev_slot, node).unwrap();
                    env.write_ptr(node.offset(8), blob).unwrap();
                    prev_slot = blob;
                    nodes.push(node);
                }
                // A hidden pointer from an opaque buffer pins one chain node.
                let buf = env.define_global_opaque(&format!("buf{b}"), 8).unwrap();
                env.write_ptr(buf, nodes[(b * 12) as usize]).unwrap();
            }
        }
        kernel.process_mut(pid).unwrap().space_mut().clear_soft_dirty();

        let serial = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();
        assert!(serial.stats.objects_traced >= 8 * 24, "the synthetic heap is traced");
        for shards in [2usize, 3, 7] {
            let tracer =
                Tracer::new(&kernel, &state, pid, TraceOptions::default()).unwrap().with_shards(shards);
            let sharded = tracer.trace();
            assert_eq!(sharded.stats, serial.stats, "{shards} shards: stats diverged");
            let a: Vec<_> = serial.graph.iter().collect();
            let b: Vec<_> = sharded.graph.iter().collect();
            assert_eq!(a, b, "{shards} shards: graph diverged");
        }

        // Delta retrace: dirty a few chain nodes, compare the sharded
        // retrace against the serial retrace and a fresh trace.
        let since = kernel.process_mut(pid).unwrap().space_mut().advance_write_epoch();
        {
            let space = kernel.process_mut(pid).unwrap().space_mut();
            for node in nodes.iter().step_by(9) {
                space.write_u32(*node, 0xd1d1).unwrap();
            }
        }
        let mut serial_graph = serial.graph.clone();
        let serial_tracer = Tracer::new(&kernel, &state, pid, TraceOptions::default()).unwrap();
        let serial_stats = serial_graph.retrace_dirty(&serial_tracer, since);
        for shards in [2usize, 5] {
            let mut graph = serial.graph.clone();
            let tracer =
                Tracer::new(&kernel, &state, pid, TraceOptions::default()).unwrap().with_shards(shards);
            let stats = graph.retrace_dirty(&tracer, since);
            assert_eq!(stats, serial_stats, "{shards} shards: retrace stats diverged");
            let a: Vec<_> = serial_graph.iter().collect();
            let b: Vec<_> = graph.iter().collect();
            assert_eq!(a, b, "{shards} shards: retraced graph diverged");
        }
        let fresh = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();
        assert_eq!(serial_stats, fresh.stats, "retrace converged to the fresh trace");
    }

    /// Pins the documented `retrace_dirty` caveat as an asserted known
    /// limit: an instrumented pool object freed *without any store touching
    /// its pages* (here: `destroy_pool`, whose only store is the heap
    /// free-list metadata on the pool storage's first page) and still
    /// referenced by a dangling pointer survives a delta retrace, while a
    /// fresh trace of the same memory resolves the address differently and
    /// drops it. If this test starts failing because the graphs agree, the
    /// caveat has been fixed — update the `retrace_dirty` docs.
    #[test]
    fn retrace_dirty_caveat_pool_free_without_store_diverges_from_fresh_trace() {
        let (mut kernel, mut state, pid) = listing1();
        build_types(&mut state);
        let tid = kernel.process(pid).unwrap().main_tid();
        // Instrumented region allocator: pool objects resolve individually.
        kernel.process_mut(pid).unwrap().set_region_allocator(mcr_procsim::RegionAllocator::new(true));
        let (pool, victim);
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            let root = env.define_global_opaque("pool_root", 8).unwrap();
            pool = env.create_pool(4 * mcr_procsim::PAGE_SIZE, None).unwrap();
            // Page-sized padding puts the victim on a later page of the pool
            // storage, away from the free-list metadata written by `free`.
            let _pad = env.palloc_bytes(pool, 2 * mcr_procsim::PAGE_SIZE, "pool:pad").unwrap();
            victim = env.palloc_bytes(pool, 64, "pool:victim").unwrap();
            env.write_u64(victim, 0x5a5a).unwrap();
            env.write_ptr(root, victim).unwrap();
        }
        kernel.process_mut(pid).unwrap().space_mut().clear_soft_dirty();

        let mut result = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();
        let traced = result.graph.get(victim).expect("victim traced through the pool record");
        assert!(matches!(traced.origin, crate::tracing::graph::ObjectOrigin::Pool { .. }));
        let since = kernel.process_mut(pid).unwrap().space_mut().advance_write_epoch();

        // Free the pool. The only store goes to the storage chunk's first
        // page (ptmalloc free-list metadata); the victim's page is untouched,
        // so page-granular staleness detection cannot see the free.
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            env.destroy_pool(pool).unwrap();
        }

        let tracer = Tracer::new(&kernel, &state, pid, TraceOptions::default()).unwrap();
        result.stats = result.graph.retrace_dirty(&tracer, since);
        let fresh = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();

        // The caveat: the stale pool object survives the retrace...
        assert!(
            result.graph.get(victim).is_some(),
            "known limit: the freed pool object survives a delta retrace"
        );
        // ...while the fresh trace no longer resolves it as a pool object.
        let fresh_victim = fresh.graph.get(victim);
        let fresh_is_pool = fresh_victim
            .map(|o| matches!(o.origin, crate::tracing::graph::ObjectOrigin::Pool { .. }))
            .unwrap_or(false);
        assert!(!fresh_is_pool, "fresh trace resolves the freed pool address differently");
        assert_ne!(
            result.stats, fresh.stats,
            "the divergence is the documented caveat — if this starts failing, the limit was fixed"
        );
    }

    #[test]
    fn uninstrumented_pool_objects_scanned_conservatively() {
        let (mut kernel, mut state, pid) = listing1();
        build_types(&mut state);
        let tid = kernel.process(pid).unwrap().main_tid();
        let (pool_obj, victim);
        {
            let mut env = ProgramEnv::new(&mut kernel, &mut state, pid, tid, "main");
            // The root is an opaque word (no precise type information), as is
            // typical for globals managed by a custom allocator.
            let g = env.define_global_opaque("pool_root", 8).unwrap();
            let pool = env.create_pool(1024, None).unwrap();
            pool_obj = env.palloc_bytes(pool, 64, "nginx:request").unwrap();
            victim = env.alloc("conf_s", "init:victim").unwrap();
            // The pool object stores a pointer the heap allocator knows
            // nothing about.
            env.write_ptr(pool_obj, victim).unwrap();
            env.write_ptr(g, pool_obj).unwrap();
        }
        let result = trace_process(&kernel, &state, pid, TraceOptions::default()).unwrap();
        // The pool storage chunk is untyped, so the pointer inside it is a
        // likely pointer and its target is pinned.
        assert!(result.stats.likely.total >= 1);
        assert!(result.graph.get(victim).unwrap().immutable);
    }
}
