//! Mutable tracing: hybrid precise/conservative traversal of the old
//! version's program state (paper §6).
//!
//! The traversal starts from the root set (registered globals plus annotated
//! objects), follows pointers precisely where data-type tags are available,
//! scans opaque memory conservatively for likely pointers otherwise, and
//! produces an [`ObjectGraph`] plus the [`TracingStats`] reported in Table 2.
//! Soft-dirty page information restricts the transferable set to objects
//! modified after startup.

pub mod graph;
pub mod stats;
pub mod tracer;

pub use graph::{ObjectGraph, ObjectOrigin, PointerEdge, TracedObject};
pub use stats::{PointerStats, RegionClass, TracingStats};
pub use tracer::{trace_process, TraceOptions, TraceResult, Tracer};
