//! Mutable-tracing statistics (the data behind Table 2).

use mcr_procsim::RegionKind;

/// Memory-region class used by the Table 2 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionClass {
    /// Global variables, strings and other static program data.
    Static,
    /// Heap, pools, stacks and anonymous mappings.
    Dynamic,
    /// Static or dynamic shared-library state.
    Lib,
}

impl RegionClass {
    /// Classifies a simulator region kind.
    pub fn from_kind(kind: RegionKind) -> Self {
        match kind {
            RegionKind::Static => RegionClass::Static,
            RegionKind::Lib => RegionClass::Lib,
            RegionKind::Heap | RegionKind::Stack | RegionKind::Mmap => RegionClass::Dynamic,
        }
    }
}

/// Pointer counts broken down by source and target region class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PointerStats {
    /// Total pointers of this kind.
    pub total: u64,
    /// Pointers whose *source* slot lives in static memory.
    pub src_static: u64,
    /// Pointers whose source slot lives in dynamic memory.
    pub src_dynamic: u64,
    /// Pointers whose source slot lives in library memory.
    pub src_lib: u64,
    /// Pointers whose *target* lives in static memory.
    pub targ_static: u64,
    /// Pointers whose target lives in dynamic memory.
    pub targ_dynamic: u64,
    /// Pointers whose target lives in library memory.
    pub targ_lib: u64,
}

impl PointerStats {
    /// Records one pointer with the given source and target classes.
    pub fn record(&mut self, src: RegionClass, targ: RegionClass) {
        self.total += 1;
        match src {
            RegionClass::Static => self.src_static += 1,
            RegionClass::Dynamic => self.src_dynamic += 1,
            RegionClass::Lib => self.src_lib += 1,
        }
        match targ {
            RegionClass::Static => self.targ_static += 1,
            RegionClass::Dynamic => self.targ_dynamic += 1,
            RegionClass::Lib => self.targ_lib += 1,
        }
    }

    /// Merges another set of counts into this one.
    pub fn merge(&mut self, other: &PointerStats) {
        self.total += other.total;
        self.src_static += other.src_static;
        self.src_dynamic += other.src_dynamic;
        self.src_lib += other.src_lib;
        self.targ_static += other.targ_static;
        self.targ_dynamic += other.targ_dynamic;
        self.targ_lib += other.targ_lib;
    }
}

/// Aggregate statistics produced by mutable tracing (Table 2 plus the object
/// counts quoted in the text of §8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TracingStats {
    /// Precisely identified pointers.
    pub precise: PointerStats,
    /// Likely pointers found by conservative scanning.
    pub likely: PointerStats,
    /// Objects reached by the traversal.
    pub objects_traced: u64,
    /// Objects marked immutable (pinned at their old address).
    pub immutable_objects: u64,
    /// Objects marked non-updatable.
    pub non_updatable_objects: u64,
    /// Objects found dirty (modified after startup).
    pub dirty_objects: u64,
    /// Total traced bytes.
    pub traced_bytes: u64,
    /// Dirty traced bytes (the state-transfer payload).
    pub dirty_bytes: u64,
}

impl TracingStats {
    /// Fraction of traced objects marked immutable (the "0.7%–31.9%"
    /// discussion in §8).
    pub fn immutable_fraction(&self) -> f64 {
        if self.objects_traced == 0 {
            0.0
        } else {
            self.immutable_objects as f64 / self.objects_traced as f64
        }
    }

    /// Reduction in transferred state achieved by dirty-object tracking
    /// (1.0 means everything was skipped, 0.0 means everything was dirty).
    pub fn dirty_reduction(&self) -> f64 {
        if self.traced_bytes == 0 {
            0.0
        } else {
            1.0 - (self.dirty_bytes as f64 / self.traced_bytes as f64)
        }
    }

    /// Merges per-process statistics into a program-wide aggregate.
    pub fn merge(&mut self, other: &TracingStats) {
        self.precise.merge(&other.precise);
        self.likely.merge(&other.likely);
        self.objects_traced += other.objects_traced;
        self.immutable_objects += other.immutable_objects;
        self.non_updatable_objects += other.non_updatable_objects;
        self.dirty_objects += other.dirty_objects;
        self.traced_bytes += other.traced_bytes;
        self.dirty_bytes += other.dirty_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_classification() {
        assert_eq!(RegionClass::from_kind(RegionKind::Static), RegionClass::Static);
        assert_eq!(RegionClass::from_kind(RegionKind::Heap), RegionClass::Dynamic);
        assert_eq!(RegionClass::from_kind(RegionKind::Stack), RegionClass::Dynamic);
        assert_eq!(RegionClass::from_kind(RegionKind::Mmap), RegionClass::Dynamic);
        assert_eq!(RegionClass::from_kind(RegionKind::Lib), RegionClass::Lib);
    }

    #[test]
    fn pointer_stats_record_and_merge() {
        let mut a = PointerStats::default();
        a.record(RegionClass::Static, RegionClass::Dynamic);
        a.record(RegionClass::Dynamic, RegionClass::Dynamic);
        let mut b = PointerStats::default();
        b.record(RegionClass::Lib, RegionClass::Static);
        a.merge(&b);
        assert_eq!(a.total, 3);
        assert_eq!(a.src_static, 1);
        assert_eq!(a.src_dynamic, 1);
        assert_eq!(a.src_lib, 1);
        assert_eq!(a.targ_dynamic, 2);
        assert_eq!(a.targ_static, 1);
    }

    #[test]
    fn derived_fractions() {
        let mut s = TracingStats { objects_traced: 10, immutable_objects: 3, ..Default::default() };
        s.traced_bytes = 1000;
        s.dirty_bytes = 200;
        assert!((s.immutable_fraction() - 0.3).abs() < 1e-9);
        assert!((s.dirty_reduction() - 0.8).abs() < 1e-9);
        let empty = TracingStats::default();
        assert_eq!(empty.immutable_fraction(), 0.0);
        assert_eq!(empty.dirty_reduction(), 0.0);
    }

    #[test]
    fn stats_merge() {
        let mut a = TracingStats { objects_traced: 5, dirty_objects: 2, ..Default::default() };
        let b = TracingStats { objects_traced: 7, immutable_objects: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.objects_traced, 12);
        assert_eq!(a.immutable_objects, 1);
        assert_eq!(a.dirty_objects, 2);
    }
}
