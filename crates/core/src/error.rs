//! Error and conflict types for the MCR runtime.

use std::fmt;

use mcr_procsim::SimError;

/// A conflict detected by mutable reinitialization or mutable tracing.
///
/// Conflicts are the paper's mechanism for falling back to user control: an
/// unresolved conflict aborts the update and rolls back to the old version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Conflict {
    /// A replayed system call was issued with arguments that do not match the
    /// recorded ones (same call stack, same call, different arguments).
    ReplayArgumentMismatch {
        /// Call-stack identifier of the mismatching call.
        callstack: u64,
        /// Name of the system call.
        syscall: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Startup in the new version completed without re-issuing a recorded
    /// operation on immutable state (an omitted syscall).
    OmittedReplayEntry {
        /// Call-stack identifier of the recorded call.
        callstack: u64,
        /// Name of the recorded system call.
        syscall: String,
    },
    /// The new version issued an operation on immutable state that failed
    /// when executed live.
    StartupFailure {
        /// Name of the failing system call.
        syscall: String,
        /// The underlying simulator error.
        error: String,
    },
    /// A conservatively-traced (type-ambiguous) object was changed by the
    /// update and cannot be type-transformed.
    NonUpdatableObjectChanged {
        /// Description of the object (symbol or allocation site).
        object: String,
        /// Old type name.
        old_type: String,
        /// New type name.
        new_type: String,
    },
    /// An object pinned as immutable could not be reallocated at its original
    /// address in the new version.
    ImmutablePlacementFailed {
        /// Description of the object.
        object: String,
        /// Why placement failed.
        detail: String,
    },
    /// A traced object has no counterpart in the new version and no handler
    /// was registered to resolve the situation.
    MissingCounterpart {
        /// Description of the object (symbol or allocation site).
        object: String,
    },
    /// The quiescence protocol did not converge within its deadline.
    QuiescenceTimeout {
        /// Number of threads that were still running.
        running_threads: usize,
    },
    /// A user annotation explicitly requested manual intervention.
    HandlerRequested {
        /// Message supplied by the handler.
        message: String,
    },
    /// A fault injected at a pipeline phase boundary (testing/chaos tooling:
    /// proves the update rolls back cleanly no matter where it dies).
    FaultInjected {
        /// Label of the phase at whose boundary the fault fired.
        phase: String,
    },
    /// Writing the durable checkpoint failed (store error, injected torn
    /// write, or a quiescence problem); the update aborts and rolls back
    /// rather than proceed without a recovery point.
    CheckpointFailed {
        /// The underlying checkpoint error.
        error: String,
    },
    /// The old instance's processes died mid-update (crash injection or a
    /// real fault). Rollback cannot resume it; a restore-aware supervisor
    /// recovers from the last durable checkpoint instead.
    OldInstanceCrashed {
        /// Label of the phase the crash landed before.
        phase: String,
    },
    /// The update supervisor's watchdog fired: a pipeline phase overran its
    /// sim-time deadline budget and the attempt was aborted and rolled back.
    WatchdogExpired {
        /// Label of the overrunning phase.
        phase: String,
        /// The configured budget, in simulated nanoseconds.
        budget_ns: u64,
        /// The sim time the phase actually spent, in nanoseconds.
        spent_ns: u64,
    },
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Conflict::ReplayArgumentMismatch { callstack, syscall, detail } => {
                write!(f, "replay mismatch for {syscall} at callstack {callstack:#x}: {detail}")
            }
            Conflict::OmittedReplayEntry { callstack, syscall } => {
                write!(f, "new version omitted recorded {syscall} at callstack {callstack:#x}")
            }
            Conflict::StartupFailure { syscall, error } => {
                write!(f, "startup operation {syscall} failed in the new version: {error}")
            }
            Conflict::NonUpdatableObjectChanged { object, old_type, new_type } => {
                write!(f, "non-updatable object {object} changed type ({old_type} -> {new_type})")
            }
            Conflict::ImmutablePlacementFailed { object, detail } => {
                write!(f, "immutable object {object} could not be pinned: {detail}")
            }
            Conflict::MissingCounterpart { object } => {
                write!(f, "no counterpart in the new version for {object}")
            }
            Conflict::QuiescenceTimeout { running_threads } => {
                write!(f, "quiescence not reached: {running_threads} threads still running")
            }
            Conflict::HandlerRequested { message } => write!(f, "handler requested rollback: {message}"),
            Conflict::FaultInjected { phase } => {
                write!(f, "fault injected at the {phase} phase boundary")
            }
            Conflict::CheckpointFailed { error } => {
                write!(f, "durable checkpoint failed: {error}")
            }
            Conflict::OldInstanceCrashed { phase } => {
                write!(f, "old instance crashed before the {phase} phase")
            }
            Conflict::WatchdogExpired { phase, budget_ns, spent_ns } => {
                write!(f, "watchdog expired: {phase} spent {spent_ns}ns against a {budget_ns}ns budget")
            }
        }
    }
}

/// Errors surfaced by the MCR runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McrError {
    /// An error bubbled up from the simulated kernel or memory subsystem.
    Sim(SimError),
    /// A live-update conflict (carries every conflict found).
    Conflicts(Vec<Conflict>),
    /// The runtime was asked to operate on a program state it does not have
    /// (e.g. update before boot).
    InvalidState(String),
    /// A type or symbol referenced by a program or annotation is unknown.
    UnknownMetadata(String),
}

impl fmt::Display for McrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McrError::Sim(e) => write!(f, "simulator error: {e}"),
            McrError::Conflicts(cs) => {
                write!(f, "{} live-update conflict(s): ", cs.len())?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
            McrError::InvalidState(m) => write!(f, "invalid runtime state: {m}"),
            McrError::UnknownMetadata(m) => write!(f, "unknown metadata: {m}"),
        }
    }
}

impl std::error::Error for McrError {}

impl From<SimError> for McrError {
    fn from(e: SimError) -> Self {
        McrError::Sim(e)
    }
}

impl From<Conflict> for McrError {
    fn from(c: Conflict) -> Self {
        McrError::Conflicts(vec![c])
    }
}

/// Result alias used across the crate.
pub type McrResult<T> = Result<T, McrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_display() {
        let c = Conflict::OmittedReplayEntry { callstack: 0xabc, syscall: "bind".into() };
        assert!(c.to_string().contains("bind"));
        let c = Conflict::NonUpdatableObjectChanged {
            object: "b".into(),
            old_type: "char[8]".into(),
            new_type: "char[16]".into(),
        };
        assert!(c.to_string().contains("char[16]"));
    }

    #[test]
    fn error_conversions() {
        let e: McrError = SimError::WouldBlock.into();
        assert!(matches!(e, McrError::Sim(_)));
        let e: McrError = Conflict::HandlerRequested { message: "x".into() }.into();
        match e {
            McrError::Conflicts(cs) => assert_eq!(cs.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_conflict_display_lists_all() {
        let e = McrError::Conflicts(vec![
            Conflict::MissingCounterpart { object: "list".into() },
            Conflict::QuiescenceTimeout { running_threads: 2 },
        ]);
        let s = e.to_string();
        assert!(s.contains("2 live-update conflict(s)"));
        assert!(s.contains("list") && s.contains("2 threads"));
    }
}
