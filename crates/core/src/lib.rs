//! # mcr-core — Mutable Checkpoint-Restart
//!
//! A Rust reproduction of the live-update system described in
//! *"Mutable Checkpoint-Restart: Automating Live Update for Generic Server
//! Programs"* (Giuffrida, Iorgulescu, Tanenbaum — Middleware 2014), built on
//! the simulated OS substrate of [`mcr_procsim`] and the type metadata of
//! [`mcr_typemeta`].
//!
//! The crate implements the paper's three techniques:
//!
//! * **Quiescence detection** ([`quiescence`], [`runtime`]) — a
//!   profiler that suggests per-thread quiescent points and a barrier
//!   protocol that parks every thread at its quiescent point when an update
//!   is requested.
//! * **Mutable reinitialization** ([`log`], [`interpose`]) — startup-time
//!   system calls are recorded in the old version and replayed in the new
//!   version, matched by call-stack ID with deep argument comparison, so the
//!   new version restores its threads, processes and startup-time state by
//!   re-running its own initialization code while inheriting immutable state
//!   objects (descriptors, pids, pinned memory).
//! * **Mutable tracing** ([`tracing`], [`transfer`]) — a hybrid
//!   precise/conservative GC-style traversal of the old version's memory
//!   that transfers the remaining (dirty) objects, relocating and
//!   type-transforming them where type information permits and pinning them
//!   as immutable where it does not.
//!
//! The [`runtime`] module ties everything together: [`runtime::boot`] starts
//! an MCR-enabled program, and [`runtime::live_update`] performs an atomic,
//! reversible live update.
//!
//! ## The phase model
//!
//! A live update is executed by an [`UpdatePipeline`]: an ordered sequence of
//! named [`Phase`] values sharing one [`UpdateCtx`]. The standard pipeline is
//!
//! | # | Phase ([`PhaseName`]) | Paper stage |
//! |---|---|---|
//! | 1 | `Quiesce` | checkpoint: park old-version threads at quiescent points |
//! | 2 | `ReinitReplay` | restart: mutable reinitialization (record/replay, descriptor and pid inheritance) |
//! | 3 | `MatchProcesses` | restore: pair old and new processes by creation call stack |
//! | 4 | `TraceAndTransfer` | restore: mutable tracing + state transfer per pair |
//! | 5 | `Commit` | commit: resume the new version, terminate the old |
//!
//! The pipeline driver records each phase's duration into
//! [`UpdateReport::phases`](runtime::report::UpdateReport) and routes *every*
//! failure through a single rollback guard, so a failure at any phase
//! boundary leaves the old version running exactly where it was parked. A
//! [`FaultPlan`] injects failures at chosen boundaries to prove exactly that
//! (see `tests/live_update_integration.rs`).
//!
//! ## Example
//!
//! Programs implement the [`Program`] trait (see the `mcr-servers` crate for
//! full models of Apache httpd, nginx, vsftpd and OpenSSH); updating one is a
//! single call:
//!
//! ```text
//! let mut kernel = Kernel::new();
//! let v1 = runtime::boot(&mut kernel, Box::new(MyServer::new(1)), &BootOptions::default())?;
//! // ... serve traffic ...
//! let (v2, outcome) = runtime::live_update(
//!     &mut kernel, v1, Box::new(MyServer::new(2)),
//!     InstrumentationConfig::full(), &UpdateOptions::default());
//! assert!(outcome.is_committed());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod annotations;
pub mod callstack;
pub mod error;
pub mod intern;
pub mod interpose;
pub mod log;
pub mod program;
pub mod quiescence;
pub mod runtime;
pub mod tracing;
pub mod transfer;

pub use annotations::{AnnotationRegistry, ObjTreatment, ReinitDecision};
pub use callstack::CallStackId;
pub use error::{Conflict, McrError, McrResult};
pub use intern::{Sym, SymbolTable};
pub use interpose::{InterposeMode, InterposeStats, Interposer};
pub use log::{LogEntry, StartupLog};
pub use program::{InstanceState, Program, ProgramEnv, StepOutcome, WaitInterest};
pub use quiescence::{QuiescenceProfiler, QuiescenceReport, QuiescentPoint};
pub use runtime::{
    boot, live_update, supervised_update, AttemptSummary, BootOptions, ChaosPlan, ChaosRng, DegradationTier,
    FaultCatalog, FaultPlan, FaultSite, McrInstance, MemoryReport, Phase, PhaseName, PhaseRecord, PhaseTrace,
    RoundStats, Scheduler, SchedulerMode, SupervisorPolicy, UpdateCtx, UpdateOptions, UpdateOutcome,
    UpdatePipeline, UpdateReport,
};
pub use tracing::{ObjectGraph, TraceOptions, TracingStats};
pub use transfer::TransferSummary;
