//! Instance lifecycle and cooperative scheduling.
//!
//! The scheduler drives MCR-enabled programs one loop iteration at a time:
//! it boots an instance (running its startup code under recording or replay),
//! steps its threads round-robin, charges the cost of the MCR
//! instrumentation (unblockification wrappers, quiescence hooks), feeds the
//! quiescence profiler, and implements the barrier protocol that parks every
//! thread at its quiescent point when an update is requested.

use mcr_procsim::{Kernel, Pid, SimDuration, SimInstant, ThreadState, Tid};
use mcr_typemeta::InstrumentationConfig;

use crate::error::{Conflict, McrError, McrResult};
use crate::interpose::Interposer;
use crate::program::{InstanceState, Program, ProgramEnv, StepOutcome, ThreadRosterEntry};

/// A running MCR-enabled program instance: the program object plus all the
/// runtime state MCR keeps about it.
pub struct McrInstance {
    /// The program implementation.
    pub program: Box<dyn Program>,
    /// MCR's per-instance state (registries, startup log, roster, counters).
    pub state: InstanceState,
}

impl std::fmt::Debug for McrInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McrInstance")
            .field("program", &self.state.program_name)
            .field("version", &self.state.version)
            .field("processes", &self.state.processes)
            .finish()
    }
}

impl McrInstance {
    /// The actual pid of the instance's initial process.
    ///
    /// # Errors
    ///
    /// Fails if the instance has no processes (not yet created).
    pub fn init_pid(&self) -> McrResult<Pid> {
        self.state
            .processes
            .first()
            .copied()
            .ok_or_else(|| McrError::InvalidState("instance has no processes".into()))
    }

    /// Resident memory of the instance: mapped bytes plus allocator and MCR
    /// metadata across all its processes.
    pub fn resident_bytes(&self, kernel: &Kernel) -> u64 {
        let proc_bytes: u64 = self
            .state
            .processes
            .iter()
            .filter_map(|&pid| kernel.process(pid).ok())
            .map(|p| p.resident_bytes())
            .sum();
        proc_bytes + self.state.metadata_bytes()
    }
}

/// Options controlling instance creation.
#[derive(Debug)]
pub struct BootOptions {
    /// Instrumentation configuration for this build of the program.
    pub config: InstrumentationConfig,
    /// ASLR-style slide applied to the program's private memory regions.
    pub layout_slide: u64,
    /// Whether the instance starts with quiescence already requested (the new
    /// version during a live update: its threads park at their quiescent
    /// points instead of accepting new work).
    pub start_quiesced: bool,
}

impl Default for BootOptions {
    fn default() -> Self {
        BootOptions { config: InstrumentationConfig::full(), layout_slide: 0, start_quiesced: false }
    }
}

/// Creates the initial process of an instance without running its startup
/// code (the controller inherits descriptors and seeds pid mappings between
/// creation and startup).
///
/// # Errors
///
/// Fails if the process cannot be created or its memory cannot be mapped.
pub fn create_instance(
    kernel: &mut Kernel,
    mut program: Box<dyn Program>,
    interposer: Interposer,
    opts: &BootOptions,
) -> McrResult<McrInstance> {
    let name = program.name().to_string();
    let version = program.version().to_string();
    let pid = kernel.create_process(&name).map_err(McrError::Sim)?;
    let layout = mcr_procsim::MemoryLayout::with_slide(opts.layout_slide);
    {
        let proc = kernel.process_mut(pid).map_err(McrError::Sim)?;
        proc.setup_memory(layout, opts.config.level.heap_instrumented()).map_err(McrError::Sim)?;
        proc.set_region_allocator(mcr_procsim::RegionAllocator::new(opts.config.instrument_region_allocator));
        if let Ok(heap) = proc.heap_mut() {
            heap.set_defer_free(true);
        }
    }
    let main_tid = kernel.process(pid).map_err(McrError::Sim)?.main_tid();
    let mut state = InstanceState::new(name, version, opts.config, interposer);
    state.quiesce_requested = opts.start_quiesced;
    state.processes.push(pid);
    state.threads.push(ThreadRosterEntry {
        pid,
        tid: main_tid,
        name: "main".into(),
        created_during_startup: true,
        exited: false,
    });
    program.register_types(&mut state.types);
    Ok(McrInstance { program, state })
}

/// Runs the instance's startup code (and any forked children's
/// initialization), then finalizes the startup phase: deferred frees are
/// flushed, allocators leave their startup phase and soft-dirty bits are
/// cleared so that post-startup modifications can be detected.
///
/// # Errors
///
/// Propagates startup failures and replay conflicts.
pub fn run_startup(kernel: &mut Kernel, instance: &mut McrInstance) -> McrResult<()> {
    let start = kernel.now();
    let init_pid = instance.init_pid()?;
    let init_tid = kernel.process(init_pid).map_err(McrError::Sim)?.main_tid();
    {
        let McrInstance { program, state } = instance;
        let mut env = ProgramEnv::new(kernel, state, init_pid, init_tid, "main");
        env.scoped("main", |env| program.startup(env))?;
    }
    // Children forked during startup perform their own initialization next
    // (possibly forking further children or spawning threads).
    while !instance.state.pending_children.is_empty() {
        let pending = instance.state.pending_children.remove(0);
        let child_tid = kernel.process(pending.actual_pid).map_err(McrError::Sim)?.main_tid();
        let McrInstance { program, state } = instance;
        let mut env =
            ProgramEnv::new(kernel, state, pending.actual_pid, child_tid, format!("{}-main", pending.kind));
        let kind = pending.kind.clone();
        env.scoped("main", |env| {
            env.scoped(&format!("{kind}_init"), |env| program.process_init(env, &kind))
        })?;
    }
    finish_startup(kernel, instance, start)
}

fn finish_startup(kernel: &mut Kernel, instance: &mut McrInstance, start: SimInstant) -> McrResult<()> {
    instance.state.startup_phase = false;
    for &pid in &instance.state.processes {
        if let Ok(proc) = kernel.process_mut(pid) {
            if let Ok(heap) = proc.heap_mut() {
                heap.end_startup();
            }
            let (space, heap) = proc.space_and_heap_mut().map_err(McrError::Sim)?;
            heap.flush_deferred(space).map_err(McrError::Sim)?;
            proc.space_mut().clear_soft_dirty();
        }
    }
    instance.state.startup_duration = kernel.now().duration_since(start);
    Ok(())
}

/// Convenience: creates an instance with a fresh recording interposer and
/// runs its startup (the normal way to launch the *old* version).
///
/// # Errors
///
/// Propagates creation and startup failures.
pub fn boot(kernel: &mut Kernel, program: Box<dyn Program>, opts: &BootOptions) -> McrResult<McrInstance> {
    let mut instance = create_instance(kernel, program, Interposer::recorder(), opts)?;
    run_startup(kernel, &mut instance)?;
    Ok(instance)
}

/// Statistics of one scheduling round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Threads that made progress.
    pub progressed: usize,
    /// Threads that found nothing to do (at their quiescent point).
    pub blocked: usize,
    /// Threads that exited this round.
    pub exited: usize,
    /// Threads parked by the quiescence barrier this round.
    pub parked: usize,
}

/// Executes one scheduling step of a single thread.
///
/// # Errors
///
/// Propagates program-level errors (during a live update these trigger
/// rollback).
pub fn step_thread(
    kernel: &mut Kernel,
    instance: &mut McrInstance,
    pid: Pid,
    tid: Tid,
) -> McrResult<StepOutcome> {
    let config = instance.state.config;
    let thread_name =
        instance.state.roster_entry(pid, tid).map(|t| t.name.clone()).unwrap_or_else(|| "thread".to_string());

    // The quiescence hook runs before re-entering the blocking call: when an
    // update has been requested, the thread parks right here, at the top of
    // its long-running loop.
    if instance.state.quiesce_requested && config.level.quiescence_hooks() {
        instance.state.counters.quiescence_checks += 1;
        kernel.advance_clock(SimDuration(50));
        if let Ok(p) = kernel.process_mut(pid) {
            if let Ok(t) = p.thread_mut(tid) {
                t.set_state(ThreadState::Quiesced);
            }
        }
        return Ok(StepOutcome::WouldBlock { call: "quiesce".into(), loop_name: "main_loop".into() });
    }

    let outcome = {
        let McrInstance { program, state } = instance;
        let mut env = ProgramEnv::new(kernel, state, pid, tid, thread_name);
        program.thread_step(&mut env)?
    };

    match &outcome {
        StepOutcome::WouldBlock { call, loop_name } => {
            if config.level.unblockified() {
                instance.state.counters.unblock_wraps += 1;
                kernel.advance_clock(SimDuration(200));
            }
            if config.level.quiescence_hooks() {
                instance.state.counters.quiescence_checks += 1;
                kernel.advance_clock(SimDuration(50));
            }
            if let Ok(p) = kernel.process_mut(pid) {
                if let Ok(t) = p.thread_mut(tid) {
                    t.record_blocking(call, 1_000);
                    t.record_loop_iteration(loop_name);
                    t.set_state(ThreadState::Blocked { call: call.clone() });
                }
            }
            // Idle blocking also advances time (the thread sits in the
            // timeout-based unblockified call).
            kernel.advance_clock(SimDuration(1_000));
        }
        StepOutcome::Progress => {
            if let Ok(p) = kernel.process_mut(pid) {
                if let Ok(t) = p.thread_mut(tid) {
                    t.set_state(ThreadState::Running);
                }
            }
        }
        StepOutcome::Exit => {
            instance.state.mark_thread_exited(pid, tid);
            if let Ok(p) = kernel.process_mut(pid) {
                if let Ok(t) = p.thread_mut(tid) {
                    t.set_state(ThreadState::Exited);
                }
            }
        }
    }
    Ok(outcome)
}

/// Runs one round-robin pass over every live, unparked thread.
///
/// # Errors
///
/// Propagates program-level errors.
pub fn run_round(kernel: &mut Kernel, instance: &mut McrInstance) -> McrResult<RoundStats> {
    let mut stats = RoundStats::default();
    let threads: Vec<(Pid, Tid)> = instance.state.live_threads().map(|t| (t.pid, t.tid)).collect();
    for (pid, tid) in threads {
        // Skip threads that are already parked or whose process is gone.
        let skip = match kernel.process(pid) {
            Ok(p) => {
                p.has_exited()
                    || matches!(
                        p.thread(tid).map(|t| t.state().clone()),
                        Ok(ThreadState::Quiesced) | Ok(ThreadState::Exited) | Err(_)
                    )
            }
            Err(_) => true,
        };
        if skip {
            continue;
        }
        match step_thread(kernel, instance, pid, tid)? {
            StepOutcome::Progress => stats.progressed += 1,
            StepOutcome::WouldBlock { .. } => {
                stats.blocked += 1;
                if instance.state.quiesce_requested {
                    stats.parked += 1;
                }
            }
            StepOutcome::Exit => stats.exited += 1,
        }
    }
    Ok(stats)
}

/// Runs up to `rounds` scheduling rounds (the basic way to "run the server
/// for a while" in tests and benchmarks).
///
/// # Errors
///
/// Propagates program-level errors.
pub fn run_rounds(kernel: &mut Kernel, instance: &mut McrInstance, rounds: usize) -> McrResult<()> {
    for _ in 0..rounds {
        run_round(kernel, instance)?;
    }
    Ok(())
}

/// Requests quiescence: threads will park at their quiescent points on their
/// next pass through the quiescence hook.
pub fn request_quiescence(instance: &mut McrInstance) {
    instance.state.quiesce_requested = true;
}

/// Drives the barrier protocol until every live thread of the instance is
/// parked at its quiescent point, returning the time it took.
///
/// # Errors
///
/// Returns a [`Conflict::QuiescenceTimeout`] if the threads do not converge
/// within `max_rounds` rounds.
pub fn wait_quiescence(
    kernel: &mut Kernel,
    instance: &mut McrInstance,
    max_rounds: usize,
) -> McrResult<SimDuration> {
    let start = kernel.now();
    request_quiescence(instance);
    for _ in 0..max_rounds {
        if all_quiesced(kernel, instance) {
            return Ok(kernel.now().duration_since(start));
        }
        run_round(kernel, instance)?;
    }
    if all_quiesced(kernel, instance) {
        return Ok(kernel.now().duration_since(start));
    }
    let running = instance
        .state
        .live_threads()
        .filter(|t| {
            kernel.process(t.pid).and_then(|p| p.thread(t.tid).map(|th| !th.is_quiesced())).unwrap_or(false)
        })
        .count();
    Err(Conflict::QuiescenceTimeout { running_threads: running }.into())
}

/// Whether every live thread of the instance is parked at a quiescent point.
pub fn all_quiesced(kernel: &Kernel, instance: &McrInstance) -> bool {
    instance.state.live_threads().all(|t| {
        kernel.process(t.pid).and_then(|p| p.thread(t.tid).map(|th| th.is_quiesced())).unwrap_or(true)
    })
}

/// Resumes execution after a checkpoint: clears the quiescence request and
/// unparks every quiesced thread.
pub fn resume(kernel: &mut Kernel, instance: &mut McrInstance) {
    instance.state.quiesce_requested = false;
    for entry in &instance.state.threads {
        if entry.exited {
            continue;
        }
        if let Ok(p) = kernel.process_mut(entry.pid) {
            if let Ok(t) = p.thread_mut(entry.tid) {
                if t.is_quiesced() {
                    t.set_state(ThreadState::Running);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::testprog::TinyServer;

    #[test]
    fn boot_runs_startup_and_clears_dirty_bits() {
        let mut kernel = Kernel::new();
        kernel.add_file("/etc/tiny.conf", b"workers=1\n".to_vec());
        let instance = boot(&mut kernel, Box::new(TinyServer::new(1)), &BootOptions::default()).unwrap();
        let pid = instance.init_pid().unwrap();
        assert!(!instance.state.startup_phase);
        assert!(instance.state.startup_duration.0 > 0);
        assert!(instance.state.interpose.recorded_log().len() >= 4, "startup calls recorded");
        let proc = kernel.process(pid).unwrap();
        assert_eq!(proc.space().dirty_page_count(), 0, "soft-dirty cleared after startup");
        assert!(proc.heap().unwrap().live_count() >= 1);
    }

    #[test]
    fn server_accepts_connections_between_rounds() {
        let mut kernel = Kernel::new();
        kernel.add_file("/etc/tiny.conf", b"workers=1\n".to_vec());
        let mut instance = boot(&mut kernel, Box::new(TinyServer::new(1)), &BootOptions::default()).unwrap();
        // No clients yet: the main thread blocks at its quiescent point.
        let stats = run_round(&mut kernel, &mut instance).unwrap();
        assert_eq!(stats.blocked, 1);
        // A client connects and is served.
        let conn = kernel.client_connect(8080).unwrap();
        kernel.client_send(conn, b"GET /".to_vec()).unwrap();
        let stats = run_round(&mut kernel, &mut instance).unwrap();
        assert_eq!(stats.progressed, 1);
        let reply = kernel.client_recv(conn).unwrap();
        assert!(String::from_utf8_lossy(&reply).contains("v1"));
        assert_eq!(instance.state.counters.events_handled, 1);
    }

    #[test]
    fn quiescence_barrier_parks_and_resume_unparks() {
        let mut kernel = Kernel::new();
        kernel.add_file("/etc/tiny.conf", b"workers=1\n".to_vec());
        let mut instance = boot(&mut kernel, Box::new(TinyServer::new(1)), &BootOptions::default()).unwrap();
        run_rounds(&mut kernel, &mut instance, 3).unwrap();
        let d = wait_quiescence(&mut kernel, &mut instance, 100).unwrap();
        assert!(all_quiesced(&kernel, &instance));
        assert!(d.as_millis_f64() < 100.0, "quiescence converges quickly ({} ms)", d.as_millis_f64());
        // While quiesced, rounds do not run program code.
        let stats = run_round(&mut kernel, &mut instance).unwrap();
        assert_eq!(stats.progressed + stats.blocked, 0);
        resume(&mut kernel, &mut instance);
        assert!(!all_quiesced(&kernel, &instance));
        // Pending clients are served after resume.
        let conn = kernel.client_connect(8080).unwrap();
        kernel.client_send(conn, b"GET /".to_vec()).unwrap();
        run_round(&mut kernel, &mut instance).unwrap();
        assert!(kernel.client_recv(conn).is_some());
    }

    #[test]
    fn instrumentation_counters_reflect_level() {
        let mut kernel = Kernel::new();
        kernel.add_file("/etc/tiny.conf", b"workers=1\n".to_vec());
        let mut full = boot(&mut kernel, Box::new(TinyServer::new(1)), &BootOptions::default()).unwrap();
        run_rounds(&mut kernel, &mut full, 5).unwrap();
        assert!(full.state.counters.unblock_wraps > 0);
        assert!(full.state.counters.quiescence_checks > 0);

        let mut kernel2 = Kernel::new();
        kernel2.add_file("/etc/tiny.conf", b"workers=1\n".to_vec());
        let opts = BootOptions { config: InstrumentationConfig::baseline(), ..Default::default() };
        let mut base = boot(&mut kernel2, Box::new(TinyServer::new(1)), &opts).unwrap();
        run_rounds(&mut kernel2, &mut base, 5).unwrap();
        assert_eq!(base.state.counters.unblock_wraps, 0);
        assert_eq!(base.state.counters.quiescence_checks, 0);
        assert_eq!(base.state.counters.dyn_tracked_allocs, 0);
    }

    #[test]
    fn resident_bytes_include_metadata() {
        let mut kernel = Kernel::new();
        kernel.add_file("/etc/tiny.conf", b"workers=1\n".to_vec());
        let instance = boot(&mut kernel, Box::new(TinyServer::new(1)), &BootOptions::default()).unwrap();
        let resident = instance.resident_bytes(&kernel);
        let pid = instance.init_pid().unwrap();
        assert!(resident > kernel.process(pid).unwrap().space().mapped_bytes());
    }
}
