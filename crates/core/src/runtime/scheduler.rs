//! Instance lifecycle and event-driven cooperative scheduling.
//!
//! The scheduler drives MCR-enabled programs one loop iteration at a time:
//! it boots an instance (running its startup code under recording or replay),
//! runs its threads, charges the cost of the MCR instrumentation
//! (unblockification wrappers, quiescence hooks), feeds the quiescence
//! profiler, and implements the barrier protocol that parks every thread at
//! its quiescent point when an update is requested.
//!
//! # Event-driven core (wake queue + timer wheel)
//!
//! Scheduling is *readiness-driven*, not scan-driven: each instance owns a
//! [`Scheduler`] whose ready deque is seeded from the kernel's wake queue.
//! A thread that returns [`StepOutcome::WouldBlock`] parks on the wait queue
//! its [`WaitInterest`] names — the kernel object behind a descriptor, a
//! timer-wheel deadline, or nothing at all (`sigsuspend`-style external
//! blocks) — and is not looked at again until a state change (client
//! connect/send/close, queued datagram, pipe write, expired timer) produces
//! a wakeup. [`run_round`]/[`run_rounds`] are thin wrappers over
//! [`Scheduler::run_until_idle`], so the cost of a round scales with the
//! number of *active* threads, not with the total thread count — the regime
//! fleet-scale experiments need (see `benches/fleet_scale.rs`).
//!
//! The quiescence barrier is event-driven too: [`wait_quiescence`] wakes
//! every parked thread exactly once per barrier pass so each can park at its
//! quiescence hook — the paper's "threads quiesce the next time they block",
//! without polling.
//!
//! # Determinism contract
//!
//! Wake order is FIFO over the kernel's deterministic wake queue, roster
//! admission follows roster (creation) order, and all time comes from the
//! virtual clock, so a run's schedule is a pure function of its event
//! history. The legacy O(threads)-per-round scan is preserved as
//! [`SchedulerMode::FullScan`]: `tests/properties.rs` proves that a full
//! live update (commit *and* rollback) produces byte-identical kernel state
//! and reports on both paths, and the fleet-scale bench uses it as the
//! baseline its scaling assertion compares against.

use std::collections::VecDeque;

use mcr_procsim::{Kernel, Pid, SimDuration, SimInstant, ThreadState, Tid};
use mcr_typemeta::InstrumentationConfig;

use crate::error::{Conflict, McrError, McrResult};
use crate::interpose::Interposer;
use crate::program::{InstanceState, Program, ProgramEnv, StepOutcome, ThreadRosterEntry, WaitInterest};

/// Which scheduling core drives an instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedulerMode {
    /// Event-driven: a ready deque seeded from kernel wakeups; blocked
    /// threads park on wait queues / the timer wheel. O(active) per round.
    #[default]
    EventDriven,
    /// The legacy round-robin scan over every live thread. O(threads) per
    /// round; kept as the ablation baseline and determinism oracle.
    FullScan,
}

/// A grow-on-demand bitset over small dense integer keys (raw pids/tids).
/// One cache-friendly word probe replaces an ordered-set lookup on the
/// scheduler's hottest paths.
#[derive(Debug, Default)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Sets `idx`; returns `true` if it was not set before.
    fn insert(&mut self, idx: u32) -> bool {
        let w = (idx / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << (idx % 64);
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        fresh
    }

    fn remove(&mut self, idx: u32) {
        if let Some(word) = self.words.get_mut((idx / 64) as usize) {
            *word &= !(1u64 << (idx % 64));
        }
    }

    fn contains(&self, idx: u32) -> bool {
        self.words.get((idx / 64) as usize).is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
    }
}

/// Per-instance scheduler state: the ready deque plus admission bookkeeping.
///
/// The scheduler holds no borrows — it is plain queue state owned by the
/// instance — so the driving functions can split-borrow it away from the
/// program while stepping threads.
#[derive(Debug, Default)]
pub struct Scheduler {
    /// Which core drives this instance.
    pub mode: SchedulerMode,
    /// Runnable threads, in wake/admission order.
    ready: VecDeque<(Pid, Tid)>,
    /// Dedup bitset mirroring `ready`, keyed by raw tid (tids are globally
    /// unique, so the tid alone identifies the thread).
    ready_set: BitSet,
    /// Roster watermark: entries below this index have been admitted.
    admitted: usize,
    /// Pids owned by this instance (drains only its own kernel wakeups).
    pids: BitSet,
    /// Reusable batch buffer for kernel wake delivery: one allocation serves
    /// every `drain_wakeups` call instead of a fresh vector per drain.
    wake_buf: Vec<(Pid, Tid)>,
}

impl Scheduler {
    /// Queues a thread as runnable (idempotent while it is already queued).
    fn push_ready(&mut self, pid: Pid, tid: Tid) {
        if self.ready_set.insert(tid.0) {
            self.ready.push_back((pid, tid));
        }
    }

    fn pop_ready(&mut self) -> Option<(Pid, Tid)> {
        let (pid, tid) = self.ready.pop_front()?;
        self.ready_set.remove(tid.0);
        Some((pid, tid))
    }

    /// Admits roster entries added since the last call (new threads and
    /// forked processes), in roster order. O(new), not O(threads).
    fn admit_new(&mut self, state: &InstanceState) {
        while self.admitted < state.threads.len() {
            let entry = &state.threads[self.admitted];
            self.pids.insert(entry.pid.0);
            if !entry.exited {
                self.push_ready(entry.pid, entry.tid);
            }
            self.admitted += 1;
        }
    }

    /// Moves this instance's queued kernel wakeups onto the ready deque in
    /// one batched pass, returning how many threads were woken.
    fn drain_wakeups(&mut self, kernel: &mut Kernel) -> usize {
        let mut buf = std::mem::take(&mut self.wake_buf);
        let pids = &self.pids;
        kernel.drain_wakeups_into(|pid| pids.contains(pid.0), &mut buf);
        let n = buf.len();
        for &(pid, tid) in &buf {
            self.push_ready(pid, tid);
        }
        self.wake_buf = buf;
        n
    }

    /// Runs the instance until no thread is ready and no wakeup is pending
    /// (or `budget` steps have executed — a livelock guard for programs that
    /// always report progress).
    ///
    /// This is the scheduler core: `run_round`, `run_rounds`,
    /// `wait_quiescence` and the workload drivers are wrappers around it.
    ///
    /// # Errors
    ///
    /// Propagates program-level errors (during a live update these trigger
    /// rollback).
    pub fn run_until_idle(
        kernel: &mut Kernel,
        instance: &mut McrInstance,
        budget: usize,
    ) -> McrResult<RoundStats> {
        let mut sched = std::mem::take(&mut instance.sched);
        let result = Self::drive(kernel, instance, &mut sched, budget);
        instance.sched = sched;
        result
    }

    fn drive(
        kernel: &mut Kernel,
        instance: &mut McrInstance,
        sched: &mut Scheduler,
        budget: usize,
    ) -> McrResult<RoundStats> {
        let mut stats = RoundStats::default();
        let mut steps = 0usize;
        loop {
            sched.admit_new(&instance.state);
            stats.woken += sched.drain_wakeups(kernel);
            let next = match sched.pop_ready() {
                Some(next) => next,
                None => {
                    // Nothing is runnable. If this instance's only pending
                    // work is a timer-wheel entry, sleep straight to its
                    // deadline — simulated time only moves when threads
                    // run, so without this jump a timed retry would never
                    // fire and its wakeup (and any client data it would
                    // have served) would be lost.
                    let pids = &sched.pids;
                    let Some(deadline) = kernel.next_timer_deadline_where(|pid| pids.contains(pid.0)) else {
                        break;
                    };
                    kernel.advance_clock(deadline.duration_since(kernel.now()));
                    continue;
                }
            };
            let (pid, tid) = next;
            if !thread_is_runnable(kernel, pid, tid) {
                continue;
            }
            match step_thread(kernel, instance, pid, tid)? {
                StepOutcome::Progress => {
                    stats.progressed += 1;
                    sched.push_ready(pid, tid);
                }
                StepOutcome::WouldBlock { wait, .. } => {
                    stats.blocked += 1;
                    if instance.state.quiesce_requested {
                        stats.parked += 1;
                    }
                    let quiesced = kernel
                        .process(pid)
                        .ok()
                        .and_then(|p| p.thread(tid).ok())
                        .is_some_and(|t| t.is_quiesced());
                    if !quiesced {
                        match wait {
                            WaitInterest::Fd(fd) => {
                                // The failing syscall usually registered the
                                // waiter already; this keeps threads that
                                // declare interest without a syscall parked
                                // on the right queue too.
                                let _ = kernel.wait_on_fd(pid, tid, fd);
                            }
                            WaitInterest::Timer(delay) => {
                                let deadline = SimInstant(kernel.now().0 + delay.0);
                                kernel.wait_until(pid, tid, deadline);
                            }
                            WaitInterest::External => {
                                // Only a wake-everyone event (quiescence
                                // request, resume) reschedules this thread.
                                kernel.cancel_wait(pid, tid);
                            }
                        }
                    }
                }
                StepOutcome::Exit => stats.exited += 1,
            }
            steps += 1;
            if steps >= budget {
                break;
            }
        }
        Ok(stats)
    }
}

/// Step budget for one event-driven round: generous enough for every
/// admitted thread to run several times, bounded so a program that always
/// reports progress cannot hang the driver.
fn round_budget(instance: &McrInstance) -> usize {
    4_096 + 16 * instance.state.threads.len()
}

/// Whether a thread can be stepped at all (its process is alive and it is
/// neither exited nor parked at a quiescent point).
fn thread_is_runnable(kernel: &Kernel, pid: Pid, tid: Tid) -> bool {
    match kernel.process(pid) {
        Ok(p) if !p.has_exited() => p
            .thread(tid)
            .map(|t| !matches!(t.state(), ThreadState::Quiesced | ThreadState::Exited))
            .unwrap_or(false),
        _ => false,
    }
}

/// A running MCR-enabled program instance: the program object plus all the
/// runtime state MCR keeps about it.
pub struct McrInstance {
    /// The program implementation.
    pub program: Box<dyn Program>,
    /// MCR's per-instance state (registries, startup log, roster, counters).
    pub state: InstanceState,
    /// The instance's scheduler (ready deque + admission bookkeeping).
    pub sched: Scheduler,
}

impl std::fmt::Debug for McrInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McrInstance")
            .field("program", &self.state.program_name)
            .field("version", &self.state.version)
            .field("processes", &self.state.processes)
            .field("scheduler", &self.sched.mode)
            .finish()
    }
}

impl McrInstance {
    /// The actual pid of the instance's initial process.
    ///
    /// # Errors
    ///
    /// Fails if the instance has no processes (not yet created).
    pub fn init_pid(&self) -> McrResult<Pid> {
        self.state
            .processes
            .first()
            .copied()
            .ok_or_else(|| McrError::InvalidState("instance has no processes".into()))
    }

    /// Resident memory of the instance: mapped bytes plus allocator and MCR
    /// metadata across all its processes.
    pub fn resident_bytes(&self, kernel: &Kernel) -> u64 {
        let proc_bytes: u64 = self
            .state
            .processes
            .iter()
            .filter_map(|&pid| kernel.process(pid).ok())
            .map(|p| p.resident_bytes())
            .sum();
        proc_bytes + self.state.metadata_bytes()
    }
}

/// Options controlling instance creation.
#[derive(Debug)]
pub struct BootOptions {
    /// Instrumentation configuration for this build of the program.
    pub config: InstrumentationConfig,
    /// ASLR-style slide applied to the program's private memory regions.
    pub layout_slide: u64,
    /// Whether the instance starts with quiescence already requested (the new
    /// version during a live update: its threads park at their quiescent
    /// points instead of accepting new work).
    pub start_quiesced: bool,
    /// Which scheduling core drives the instance.
    pub scheduler: SchedulerMode,
}

impl Default for BootOptions {
    fn default() -> Self {
        BootOptions {
            config: InstrumentationConfig::full(),
            layout_slide: 0,
            start_quiesced: false,
            scheduler: SchedulerMode::default(),
        }
    }
}

/// Creates the initial process of an instance without running its startup
/// code (the controller inherits descriptors and seeds pid mappings between
/// creation and startup).
///
/// # Errors
///
/// Fails if the process cannot be created or its memory cannot be mapped.
pub fn create_instance(
    kernel: &mut Kernel,
    mut program: Box<dyn Program>,
    interposer: Interposer,
    opts: &BootOptions,
) -> McrResult<McrInstance> {
    let name = program.name().to_string();
    let version = program.version().to_string();
    let pid = kernel.create_process(&name).map_err(McrError::Sim)?;
    let layout = mcr_procsim::MemoryLayout::with_slide(opts.layout_slide);
    {
        let proc = kernel.process_mut(pid).map_err(McrError::Sim)?;
        proc.setup_memory(layout, opts.config.level.heap_instrumented()).map_err(McrError::Sim)?;
        proc.set_region_allocator(mcr_procsim::RegionAllocator::new(opts.config.instrument_region_allocator));
        if let Ok(heap) = proc.heap_mut() {
            heap.set_defer_free(true);
        }
    }
    let main_tid = kernel.process(pid).map_err(McrError::Sim)?.main_tid();
    let mut state = InstanceState::new(name, version, opts.config, interposer);
    state.quiesce_requested = opts.start_quiesced;
    state.processes.push(pid);
    state.add_roster_entry(ThreadRosterEntry {
        pid,
        tid: main_tid,
        name: "main".into(),
        created_during_startup: true,
        exited: false,
    });
    program.register_types(&mut state.types);
    let sched = Scheduler { mode: opts.scheduler, ..Scheduler::default() };
    Ok(McrInstance { program, state, sched })
}

/// Runs the instance's startup code (and any forked children's
/// initialization), then finalizes the startup phase: deferred frees are
/// flushed, allocators leave their startup phase and soft-dirty bits are
/// cleared so that post-startup modifications can be detected.
///
/// # Errors
///
/// Propagates startup failures and replay conflicts.
pub fn run_startup(kernel: &mut Kernel, instance: &mut McrInstance) -> McrResult<()> {
    let start = kernel.now();
    let init_pid = instance.init_pid()?;
    let init_tid = kernel.process(init_pid).map_err(McrError::Sim)?.main_tid();
    {
        let McrInstance { program, state, .. } = instance;
        let mut env = ProgramEnv::new(kernel, state, init_pid, init_tid, "main");
        env.scoped("main", |env| program.startup(env))?;
    }
    // Children forked during startup perform their own initialization next
    // (possibly forking further children or spawning threads).
    while !instance.state.pending_children.is_empty() {
        let pending = instance.state.pending_children.remove(0);
        let child_tid = kernel.process(pending.actual_pid).map_err(McrError::Sim)?.main_tid();
        let McrInstance { program, state, .. } = instance;
        let mut env =
            ProgramEnv::new(kernel, state, pending.actual_pid, child_tid, format!("{}-main", pending.kind));
        let kind = pending.kind.clone();
        env.scoped("main", |env| {
            env.scoped(&format!("{kind}_init"), |env| program.process_init(env, &kind))
        })?;
    }
    finish_startup(kernel, instance, start)
}

fn finish_startup(kernel: &mut Kernel, instance: &mut McrInstance, start: SimInstant) -> McrResult<()> {
    instance.state.startup_phase = false;
    for &pid in &instance.state.processes {
        if let Ok(proc) = kernel.process_mut(pid) {
            if let Ok(heap) = proc.heap_mut() {
                heap.end_startup();
            }
            let (space, heap) = proc.space_and_heap_mut().map_err(McrError::Sim)?;
            heap.flush_deferred(space).map_err(McrError::Sim)?;
            proc.space_mut().clear_soft_dirty();
        }
    }
    instance.state.startup_duration = kernel.now().duration_since(start);
    Ok(())
}

/// Convenience: creates an instance with a fresh recording interposer and
/// runs its startup (the normal way to launch the *old* version).
///
/// # Errors
///
/// Propagates creation and startup failures.
pub fn boot(kernel: &mut Kernel, program: Box<dyn Program>, opts: &BootOptions) -> McrResult<McrInstance> {
    let mut instance = create_instance(kernel, program, Interposer::recorder(), opts)?;
    run_startup(kernel, &mut instance)?;
    Ok(instance)
}

/// Statistics of one scheduling round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Threads that made progress.
    pub progressed: usize,
    /// Threads that found nothing to do (at their quiescent point).
    pub blocked: usize,
    /// Threads that exited this round.
    pub exited: usize,
    /// Threads parked by the quiescence barrier this round.
    pub parked: usize,
    /// Threads moved from a wait queue / the timer wheel onto the ready
    /// deque by kernel wakeups (always 0 on the full-scan path).
    pub woken: usize,
}

impl RoundStats {
    /// Accumulates another round's statistics into this one.
    pub fn absorb(&mut self, other: &RoundStats) {
        self.progressed += other.progressed;
        self.blocked += other.blocked;
        self.exited += other.exited;
        self.parked += other.parked;
        self.woken += other.woken;
    }

    /// Total thread steps this round executed (the per-round cost the
    /// fleet-scale bench compares across scheduler modes).
    pub fn steps(&self) -> usize {
        self.progressed + self.blocked + self.exited
    }
}

/// Executes one scheduling step of a single thread.
///
/// # Errors
///
/// Propagates program-level errors (during a live update these trigger
/// rollback).
pub fn step_thread(
    kernel: &mut Kernel,
    instance: &mut McrInstance,
    pid: Pid,
    tid: Tid,
) -> McrResult<StepOutcome> {
    let config = instance.state.config;
    let thread_name =
        instance.state.roster_entry(pid, tid).map(|t| t.name.clone()).unwrap_or_else(|| "thread".to_string());

    // The quiescence hook runs before re-entering the blocking call: when an
    // update has been requested, the thread parks right here, at the top of
    // its long-running loop.
    if instance.state.quiesce_requested && config.level.quiescence_hooks() {
        instance.state.counters.quiescence_checks += 1;
        kernel.advance_clock(SimDuration(50));
        if let Ok(p) = kernel.process_mut(pid) {
            if let Ok(t) = p.thread_mut(tid) {
                t.set_state(ThreadState::Quiesced);
            }
        }
        return Ok(StepOutcome::WouldBlock {
            call: "quiesce".into(),
            loop_name: "main_loop".into(),
            wait: WaitInterest::External,
        });
    }

    let outcome = {
        let McrInstance { program, state, .. } = instance;
        let mut env = ProgramEnv::new(kernel, state, pid, tid, thread_name);
        program.thread_step(&mut env)?
    };

    match &outcome {
        StepOutcome::WouldBlock { call, loop_name, .. } => {
            if config.level.unblockified() {
                instance.state.counters.unblock_wraps += 1;
                kernel.advance_clock(SimDuration(200));
            }
            if config.level.quiescence_hooks() {
                instance.state.counters.quiescence_checks += 1;
                kernel.advance_clock(SimDuration(50));
            }
            if let Ok(p) = kernel.process_mut(pid) {
                if let Ok(t) = p.thread_mut(tid) {
                    t.record_blocking(call, 1_000);
                    t.record_loop_iteration(loop_name);
                    t.set_state(ThreadState::Blocked { call: call.clone() });
                }
            }
            // Idle blocking also advances time (the thread sits in the
            // timeout-based unblockified call).
            kernel.advance_clock(SimDuration(1_000));
        }
        StepOutcome::Progress => {
            if let Ok(p) = kernel.process_mut(pid) {
                if let Ok(t) = p.thread_mut(tid) {
                    t.set_state(ThreadState::Running);
                }
            }
        }
        StepOutcome::Exit => {
            instance.state.mark_thread_exited(pid, tid);
            if let Ok(p) = kernel.process_mut(pid) {
                if let Ok(t) = p.thread_mut(tid) {
                    t.set_state(ThreadState::Exited);
                }
            }
        }
    }
    Ok(outcome)
}

/// Runs one scheduling round.
///
/// In [`SchedulerMode::EventDriven`] this is a thin wrapper over
/// [`Scheduler::run_until_idle`]: newly created threads are admitted, queued
/// wakeups are drained, and the instance runs until no thread is ready — the
/// cost scales with *active* threads. In [`SchedulerMode::FullScan`] it is
/// the legacy round-robin pass over every live, unparked thread.
///
/// # Errors
///
/// Propagates program-level errors.
#[must_use = "the round may report scheduling errors and statistics"]
pub fn run_round(kernel: &mut Kernel, instance: &mut McrInstance) -> McrResult<RoundStats> {
    match instance.sched.mode {
        SchedulerMode::EventDriven => {
            let budget = round_budget(instance);
            Scheduler::run_until_idle(kernel, instance, budget)
        }
        SchedulerMode::FullScan => run_round_full_scan(kernel, instance),
    }
}

/// The legacy O(threads) scheduling round: one round-robin pass over every
/// live, unparked thread, regardless of readiness. Kept as the ablation
/// baseline (`benches/fleet_scale.rs`) and as the determinism oracle the
/// event-driven path is verified against (`tests/properties.rs`).
///
/// # Errors
///
/// Propagates program-level errors.
#[must_use = "the round may report scheduling errors and statistics"]
pub fn run_round_full_scan(kernel: &mut Kernel, instance: &mut McrInstance) -> McrResult<RoundStats> {
    let mut stats = RoundStats::default();
    let threads: Vec<(Pid, Tid)> = instance.state.live_threads().map(|t| (t.pid, t.tid)).collect();
    for (pid, tid) in threads {
        // Skip threads that are already parked or whose process is gone.
        if !thread_is_runnable(kernel, pid, tid) {
            continue;
        }
        match step_thread(kernel, instance, pid, tid)? {
            StepOutcome::Progress => stats.progressed += 1,
            StepOutcome::WouldBlock { .. } => {
                stats.blocked += 1;
                if instance.state.quiesce_requested {
                    stats.parked += 1;
                }
            }
            StepOutcome::Exit => stats.exited += 1,
        }
    }
    Ok(stats)
}

/// Runs up to `rounds` scheduling rounds (the basic way to "run the server
/// for a while" in tests and benchmarks), returning the accumulated
/// statistics.
///
/// # Errors
///
/// Propagates program-level errors.
#[must_use = "the rounds may report scheduling errors and statistics"]
pub fn run_rounds(kernel: &mut Kernel, instance: &mut McrInstance, rounds: usize) -> McrResult<RoundStats> {
    let mut total = RoundStats::default();
    for _ in 0..rounds {
        total.absorb(&run_round(kernel, instance)?);
    }
    Ok(total)
}

/// Requests quiescence: threads will park at their quiescent points on their
/// next pass through the quiescence hook.
pub fn request_quiescence(instance: &mut McrInstance) {
    instance.state.quiesce_requested = true;
}

/// Wakes every live thread of the instance: cancels wait-queue and timer
/// registrations and queues the threads as ready, in roster order. This is
/// the wake-everyone half of the quiescence barrier (and of
/// [`resume`]) — parked threads run once more so they can park at their
/// hooks (or re-declare their readiness interest).
pub fn wake_all_threads(kernel: &mut Kernel, instance: &mut McrInstance) {
    let McrInstance { state, sched, .. } = instance;
    sched.admit_new(state);
    for entry in state.threads.iter().filter(|t| !t.exited) {
        kernel.cancel_wait(entry.pid, entry.tid);
        sched.push_ready(entry.pid, entry.tid);
    }
}

/// Number of live threads that are *not* parked at a quiescent point.
pub fn running_thread_count(kernel: &Kernel, instance: &McrInstance) -> usize {
    instance
        .state
        .live_threads()
        .filter(|t| {
            kernel.process(t.pid).and_then(|p| p.thread(t.tid).map(|th| !th.is_quiesced())).unwrap_or(false)
        })
        .count()
}

/// Whether every live thread of the instance is parked at a quiescent point.
pub fn all_quiesced(kernel: &Kernel, instance: &McrInstance) -> bool {
    running_thread_count(kernel, instance) == 0
}

/// Drives the barrier protocol until every live thread of the instance is
/// parked at its quiescent point, returning the time it took.
///
/// Event-driven instances wake every parked thread once per barrier pass
/// (the threads park at their hooks on that step); full-scan instances run
/// the legacy scan. Both converge to the same state on the same clock.
///
/// # Errors
///
/// Returns a [`Conflict::QuiescenceTimeout`] if the threads do not converge
/// within `max_rounds` barrier passes.
pub fn wait_quiescence(
    kernel: &mut Kernel,
    instance: &mut McrInstance,
    max_rounds: usize,
) -> McrResult<SimDuration> {
    let start = kernel.now();
    request_quiescence(instance);
    // One convergence check per pass plus a final one after the last pass,
    // all through the single `running_thread_count` helper.
    for round in 0..=max_rounds {
        if all_quiesced(kernel, instance) {
            return Ok(kernel.now().duration_since(start));
        }
        if round == max_rounds {
            break;
        }
        match instance.sched.mode {
            SchedulerMode::EventDriven => {
                wake_all_threads(kernel, instance);
                let budget = round_budget(instance);
                Scheduler::run_until_idle(kernel, instance, budget)?;
            }
            SchedulerMode::FullScan => {
                run_round_full_scan(kernel, instance)?;
            }
        }
    }
    Err(Conflict::QuiescenceTimeout { running_threads: running_thread_count(kernel, instance) }.into())
}

/// Resumes execution after a checkpoint: clears the quiescence request,
/// unparks every quiesced thread and queues the instance's threads as ready
/// so they can re-declare their readiness interests.
pub fn resume(kernel: &mut Kernel, instance: &mut McrInstance) {
    instance.state.quiesce_requested = false;
    for entry in &instance.state.threads {
        if entry.exited {
            continue;
        }
        if let Ok(p) = kernel.process_mut(entry.pid) {
            if let Ok(t) = p.thread_mut(entry.tid) {
                if t.is_quiesced() {
                    t.set_state(ThreadState::Running);
                }
            }
        }
    }
    wake_all_threads(kernel, instance);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::testprog::TinyServer;

    #[test]
    fn boot_runs_startup_and_clears_dirty_bits() {
        let mut kernel = Kernel::new();
        kernel.add_file("/etc/tiny.conf", b"workers=1\n".to_vec());
        let instance = boot(&mut kernel, Box::new(TinyServer::new(1)), &BootOptions::default()).unwrap();
        let pid = instance.init_pid().unwrap();
        assert!(!instance.state.startup_phase);
        assert!(instance.state.startup_duration.0 > 0);
        assert!(instance.state.interpose.recorded_log().len() >= 4, "startup calls recorded");
        let proc = kernel.process(pid).unwrap();
        assert_eq!(proc.space().dirty_page_count(), 0, "soft-dirty cleared after startup");
        assert!(proc.heap().unwrap().live_count() >= 1);
    }

    #[test]
    fn server_accepts_connections_between_rounds() {
        let mut kernel = Kernel::new();
        kernel.add_file("/etc/tiny.conf", b"workers=1\n".to_vec());
        let mut instance = boot(&mut kernel, Box::new(TinyServer::new(1)), &BootOptions::default()).unwrap();
        // No clients yet: the main thread blocks at its quiescent point.
        let stats = run_round(&mut kernel, &mut instance).unwrap();
        assert_eq!(stats.blocked, 1);
        assert_eq!(kernel.waiting_thread_count(), 1, "the acceptor parked on the listener");
        // A client connects and is served.
        let conn = kernel.client_connect(8080).unwrap();
        kernel.client_send(conn, b"GET /".to_vec()).unwrap();
        let stats = run_round(&mut kernel, &mut instance).unwrap();
        assert_eq!(stats.progressed, 1);
        assert_eq!(stats.woken, 1, "the connect woke the parked acceptor");
        let reply = kernel.client_recv(conn).unwrap();
        assert!(String::from_utf8_lossy(&reply).contains("v1"));
        assert_eq!(instance.state.counters.events_handled, 1);
    }

    #[test]
    fn idle_rounds_cost_nothing_once_parked() {
        let mut kernel = Kernel::new();
        kernel.add_file("/etc/tiny.conf", b"workers=1\n".to_vec());
        let mut instance = boot(&mut kernel, Box::new(TinyServer::new(1)), &BootOptions::default()).unwrap();
        let first = run_round(&mut kernel, &mut instance).unwrap();
        assert_eq!(first.steps(), 1, "the first round admits and parks the main thread");
        // With no events, subsequent rounds execute zero steps.
        let idle = run_rounds(&mut kernel, &mut instance, 5).unwrap();
        assert_eq!(idle.steps(), 0, "idle rounds are free on the event-driven path");
        assert_eq!(idle.woken, 0);
    }

    #[test]
    fn quiescence_barrier_parks_and_resume_unparks() {
        let mut kernel = Kernel::new();
        kernel.add_file("/etc/tiny.conf", b"workers=1\n".to_vec());
        let mut instance = boot(&mut kernel, Box::new(TinyServer::new(1)), &BootOptions::default()).unwrap();
        run_rounds(&mut kernel, &mut instance, 3).unwrap();
        let d = wait_quiescence(&mut kernel, &mut instance, 100).unwrap();
        assert!(all_quiesced(&kernel, &instance));
        assert!(d.as_millis_f64() < 100.0, "quiescence converges quickly ({} ms)", d.as_millis_f64());
        // While quiesced, rounds do not run program code.
        let stats = run_round(&mut kernel, &mut instance).unwrap();
        assert_eq!(stats.progressed + stats.blocked, 0);
        resume(&mut kernel, &mut instance);
        assert!(!all_quiesced(&kernel, &instance));
        // Pending clients are served after resume.
        let conn = kernel.client_connect(8080).unwrap();
        kernel.client_send(conn, b"GET /".to_vec()).unwrap();
        run_round(&mut kernel, &mut instance).unwrap();
        assert!(kernel.client_recv(conn).is_some());
    }

    #[test]
    fn full_scan_mode_still_serves_and_quiesces() {
        let mut kernel = Kernel::new();
        kernel.add_file("/etc/tiny.conf", b"workers=1\n".to_vec());
        let opts = BootOptions { scheduler: SchedulerMode::FullScan, ..Default::default() };
        let mut instance = boot(&mut kernel, Box::new(TinyServer::new(1)), &opts).unwrap();
        let conn = kernel.client_connect(8080).unwrap();
        kernel.client_send(conn, b"GET /".to_vec()).unwrap();
        let stats = run_round(&mut kernel, &mut instance).unwrap();
        assert_eq!(stats.progressed, 1);
        assert_eq!(stats.woken, 0, "the scan path never consumes wakeups");
        assert!(kernel.client_recv(conn).is_some());
        wait_quiescence(&mut kernel, &mut instance, 10).unwrap();
        assert!(all_quiesced(&kernel, &instance));
        resume(&mut kernel, &mut instance);
        assert!(!all_quiesced(&kernel, &instance));
    }

    #[test]
    fn instrumentation_counters_reflect_level() {
        let mut kernel = Kernel::new();
        kernel.add_file("/etc/tiny.conf", b"workers=1\n".to_vec());
        let mut full = boot(&mut kernel, Box::new(TinyServer::new(1)), &BootOptions::default()).unwrap();
        run_rounds(&mut kernel, &mut full, 5).unwrap();
        assert!(full.state.counters.unblock_wraps > 0);
        assert!(full.state.counters.quiescence_checks > 0);

        let mut kernel2 = Kernel::new();
        kernel2.add_file("/etc/tiny.conf", b"workers=1\n".to_vec());
        let opts = BootOptions { config: InstrumentationConfig::baseline(), ..Default::default() };
        let mut base = boot(&mut kernel2, Box::new(TinyServer::new(1)), &opts).unwrap();
        run_rounds(&mut kernel2, &mut base, 5).unwrap();
        assert_eq!(base.state.counters.unblock_wraps, 0);
        assert_eq!(base.state.counters.quiescence_checks, 0);
        assert_eq!(base.state.counters.dyn_tracked_allocs, 0);
    }

    #[test]
    fn resident_bytes_include_metadata() {
        let mut kernel = Kernel::new();
        kernel.add_file("/etc/tiny.conf", b"workers=1\n".to_vec());
        let instance = boot(&mut kernel, Box::new(TinyServer::new(1)), &BootOptions::default()).unwrap();
        let resident = instance.resident_bytes(&kernel);
        let pid = instance.init_pid().unwrap();
        assert!(resident > kernel.process(pid).unwrap().space().mapped_bytes());
    }
}
