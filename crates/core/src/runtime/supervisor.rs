//! The self-healing update supervisor: retry, deterministic backoff,
//! configuration degradation, and watchdog deadlines around
//! [`UpdatePipeline`].
//!
//! MCR's safety claim is that a failed update is never fatal — it rolls
//! back. The supervisor turns that into a *liveness* property: a rolled-back
//! update is retried with exponential backoff on the virtual clock (the old
//! instance keeps serving between attempts), the configuration degrades on
//! repeated failure (pre-copy → stop-the-world, parallel transfer →
//! serial), every phase can carry a sim-time watchdog budget
//! ([`UpdatePipeline::with_uniform_phase_deadline`]), and after
//! [`SupervisorPolicy::max_attempts`] the supervisor gives up cleanly with
//! the full attempt history embedded in the final
//! [`UpdateReport::attempts`].
//!
//! Everything is driven by the simulated clock, so a supervised update is
//! exactly as deterministic as a bare pipeline run: same kernel, same
//! per-attempt fault plans, same outcome, byte for byte.

use std::cell::RefCell;
use std::rc::Rc;

use mcr_procsim::{Kernel, SimDuration, SimInstant, Store};
use mcr_typemeta::InstrumentationConfig;

use crate::error::Conflict;
use crate::program::Program;
use crate::runtime::controller::{PrecopyOptions, TransferMode, UpdateOptions, UpdateOutcome};
use crate::runtime::pipeline::{ChaosPlan, UpdatePipeline};
use crate::runtime::report::UpdateReport;
use crate::runtime::scheduler::{resume, run_rounds, McrInstance};
use crate::transfer::checkpoint::{checkpoint_now, restore_latest, CheckpointOptions, RestoreError};

/// How far the supervisor has degraded the update configuration.
///
/// The ladder trades update speed for simplicity: each rung disables the
/// most concurrency-hungry mechanism left, on the theory that a fault that
/// bit a complex schedule may spare a simpler one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationTier {
    /// The configuration as requested (attempt 1).
    Full,
    /// Pre-copy disabled — classic stop-the-world pipeline (attempt 2).
    NoPrecopy,
    /// Stop-the-world *and* fully serial: one transfer worker, one
    /// intra-pair shard (attempt 3 and later).
    Serial,
}

impl DegradationTier {
    /// The tier used for 1-based attempt number `attempt`.
    pub fn for_attempt(attempt: usize) -> Self {
        match attempt {
            0 | 1 => DegradationTier::Full,
            2 => DegradationTier::NoPrecopy,
            _ => DegradationTier::Serial,
        }
    }

    /// Stable label for reports and bench output.
    pub fn label(&self) -> &'static str {
        match self {
            DegradationTier::Full => "full",
            DegradationTier::NoPrecopy => "no-precopy",
            DegradationTier::Serial => "serial",
        }
    }

    /// The options this tier actually runs with, derived from the
    /// requested configuration.
    pub fn apply(&self, requested: &UpdateOptions) -> UpdateOptions {
        let mut opts = *requested;
        match self {
            DegradationTier::Full => {}
            DegradationTier::NoPrecopy => {
                opts.precopy = PrecopyOptions::disabled();
                // Post-copy (forced or adaptive) is the other concurrent
                // transfer mechanism: a fault that bit a drain schedule is
                // retried with the residual applied synchronously inside
                // the window, where rollback needs no trap machinery.
                opts.mode = TransferMode::StopTheWorld;
            }
            DegradationTier::Serial => {
                opts.precopy = PrecopyOptions::disabled();
                opts.mode = TransferMode::StopTheWorld;
                opts.transfer_workers = 1;
                opts.intra_pair_shards = 1;
            }
        }
        opts
    }
}

impl std::fmt::Display for DegradationTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What one supervised pipeline attempt did, recorded in
/// [`UpdateReport::attempts`].
#[derive(Debug, Clone)]
pub struct AttemptSummary {
    /// 1-based attempt number.
    pub attempt: usize,
    /// The degradation tier the attempt ran at.
    pub tier: DegradationTier,
    /// Whether the attempt committed (true only for the last entry).
    pub committed: bool,
    /// The conflicts that rolled the attempt back (empty on commit).
    pub conflicts: Vec<Conflict>,
    /// Virtual-clock instants bracketing the pipeline run.
    pub started_at: SimInstant,
    /// See `started_at`.
    pub finished_at: SimInstant,
    /// The deterministic backoff slept *after* this attempt (zero for the
    /// committed or final attempt).
    pub backoff: SimDuration,
    /// Whether the old instance crashed during this attempt and had to be
    /// revived from the latest durable checkpoint before the ladder could
    /// continue (only ever true under [`supervised_update_durable`]).
    pub recovered: bool,
}

/// Ceiling on a single inter-attempt backoff: one simulated minute. Deep
/// retry ladders plateau here instead of overflowing the `<<` doubling (a
/// shift past 63 panics in debug, and value bits wrap long before that) or
/// stalling the virtual clock for geological spans.
pub const MAX_BACKOFF: SimDuration = SimDuration(60_000_000_000);

/// Exponential backoff slept after the 1-based `attempt`:
/// `base << (attempt - 1)`, saturating and clamped to [`MAX_BACKOFF`] so
/// the ladder stays monotone for arbitrarily large attempt counts.
fn backoff_for_attempt(base: SimDuration, attempt: usize) -> SimDuration {
    let exp = attempt.saturating_sub(1).min(63) as u32;
    SimDuration(base.0.saturating_mul(1u64 << exp).min(MAX_BACKOFF.0))
}

/// Retry/backoff/degradation policy of [`supervised_update`].
#[derive(Debug, Clone, Copy)]
pub struct SupervisorPolicy {
    /// Give up (returning the last rollback) after this many attempts.
    pub max_attempts: usize,
    /// Backoff before retry `k+1` is `base_backoff << (k-1)` on the virtual
    /// clock — deterministic, no host time involved — capped at
    /// [`MAX_BACKOFF`].
    pub base_backoff: SimDuration,
    /// Scheduler rounds the old instance serves between attempts, so
    /// clients keep getting answers while the supervisor waits.
    pub serve_rounds_between_attempts: usize,
    /// Optional per-phase watchdog budget applied to every attempt (see
    /// [`UpdatePipeline::with_uniform_phase_deadline`]).
    pub phase_deadline: Option<SimDuration>,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_attempts: 3,
            base_backoff: SimDuration(1_000_000), // 1 simulated millisecond
            serve_rounds_between_attempts: 2,
            phase_deadline: None,
        }
    }
}

/// Runs a live update under supervision: retries rolled-back attempts with
/// deterministic backoff, degrades the configuration along the
/// [`DegradationTier`] ladder, and gives up after
/// [`SupervisorPolicy::max_attempts`].
///
/// `new_program` is a factory because every attempt consumes a fresh boxed
/// program (the pipeline boots it under replay). `fault_for_attempt` maps
/// the 1-based attempt number to that attempt's [`ChaosPlan`] — chaos
/// campaigns inject into early attempts and leave later ones clean to model
/// transient faults; pass `|_| ChaosPlan::none()` outside of drills.
///
/// The returned outcome is the last attempt's, with
/// [`UpdateReport::attempts`] rewritten to the full ladder history. Between
/// attempts the old instance serves
/// [`SupervisorPolicy::serve_rounds_between_attempts`] scheduler rounds, so
/// traffic keeps flowing across failures.
pub fn supervised_update(
    kernel: &mut Kernel,
    old: McrInstance,
    mut new_program: impl FnMut() -> Box<dyn Program>,
    config: InstrumentationConfig,
    opts: &UpdateOptions,
    policy: &SupervisorPolicy,
    mut fault_for_attempt: impl FnMut(usize) -> ChaosPlan,
) -> (McrInstance, UpdateOutcome) {
    let max_attempts = policy.max_attempts.max(1);
    let mut attempts: Vec<AttemptSummary> = Vec::new();
    let mut instance = old;
    for attempt in 1..=max_attempts {
        let tier = DegradationTier::for_attempt(attempt);
        let tier_opts = tier.apply(opts);
        let mut pipeline =
            UpdatePipeline::for_options(&tier_opts).with_fault_plan(fault_for_attempt(attempt));
        if let Some(budget) = policy.phase_deadline {
            pipeline = pipeline.with_uniform_phase_deadline(budget);
        }
        let started_at = kernel.now();
        let (next_instance, outcome) = pipeline.run(kernel, instance, new_program(), config, &tier_opts);
        instance = next_instance;
        let finished_at = kernel.now();
        match outcome {
            UpdateOutcome::Committed(mut report) => {
                attempts.push(AttemptSummary {
                    attempt,
                    tier,
                    committed: true,
                    conflicts: Vec::new(),
                    started_at,
                    finished_at,
                    backoff: SimDuration(0),
                    recovered: false,
                });
                report.attempts = attempts;
                return (instance, UpdateOutcome::Committed(report));
            }
            UpdateOutcome::RolledBack { conflicts, report } => {
                let giving_up = attempt == max_attempts;
                let backoff = if giving_up {
                    SimDuration(0)
                } else {
                    backoff_for_attempt(policy.base_backoff, attempt)
                };
                attempts.push(AttemptSummary {
                    attempt,
                    tier,
                    committed: false,
                    conflicts: conflicts.clone(),
                    started_at,
                    finished_at,
                    backoff,
                    recovered: false,
                });
                if giving_up {
                    let mut report = report;
                    report.attempts = attempts;
                    return (instance, UpdateOutcome::RolledBack { conflicts, report });
                }
                // Deterministic backoff on the virtual clock, with the old
                // instance serving: rollback restored it, so clients see
                // answers (from the old version) across the whole ladder.
                kernel.advance_clock(backoff);
                let _ = run_rounds(kernel, &mut instance, policy.serve_rounds_between_attempts);
            }
        }
    }
    unreachable!("loop returns on the final attempt");
}

/// A [`supervised_update`] whose retry ladder survives a crash of the *old
/// instance itself*.
///
/// Every attempt inserts a durable-checkpoint phase right after the
/// quiescence barrier ([`UpdatePipeline::with_checkpoint`]), and one extra
/// checkpoint is taken up front so even a crash inside the very first
/// attempt has a recovery point. When an attempt fails with
/// [`Conflict::OldInstanceCrashed`] — rollback cannot resume processes that
/// no longer exist — the supervisor remounts the store and revives the old
/// version from the latest durable checkpoint ([`restore_latest`]), then
/// continues the ladder with the revived instance serving between attempts.
/// The attempt that crashed is recorded with
/// [`AttemptSummary::recovered`] set.
///
/// `old_program` is the factory for the *old* version's program — restore
/// re-boots it deterministically from the manifest's boot recipe —
/// while `new_program` is the per-attempt factory for the update target, as
/// in [`supervised_update`]. A restore killed by an injected
/// [`ChaosPlan::at_restore_step`] fault is retried once without the fault
/// (the transient-fault model of the chaos campaigns); any other restore
/// failure ends the ladder, and the returned instance then has no live
/// processes — the caller is facing a real outage, not a rolled-back update.
///
/// The virtual clock never runs backwards across a recovery: the restored
/// kernel boots with the checkpoint's clock and is fast-forwarded to the
/// crashed kernel's `now` before the ladder continues.
#[allow(clippy::too_many_arguments)]
pub fn supervised_update_durable(
    kernel: &mut Kernel,
    old: McrInstance,
    mut old_program: impl FnMut() -> Box<dyn Program>,
    mut new_program: impl FnMut() -> Box<dyn Program>,
    config: InstrumentationConfig,
    opts: &UpdateOptions,
    policy: &SupervisorPolicy,
    store: Rc<RefCell<dyn Store>>,
    ckpt_opts: CheckpointOptions,
    mut fault_for_attempt: impl FnMut(usize) -> ChaosPlan,
) -> (McrInstance, UpdateOutcome) {
    let max_attempts = policy.max_attempts.max(1);
    let mut attempts: Vec<AttemptSummary> = Vec::new();
    let mut instance = old;
    // Checkpoint #0: a recovery point that predates the first attempt. A
    // store failure here is not retried — the per-attempt checkpoint phase
    // remounts the store and tries again — but the store is recovered so a
    // half-written version directory cannot wedge that phase.
    {
        let mut store = store.borrow_mut();
        if checkpoint_now(kernel, &mut instance, &mut *store, &ckpt_opts).is_err() {
            store.recover();
        }
    }
    for attempt in 1..=max_attempts {
        let tier = DegradationTier::for_attempt(attempt);
        let tier_opts = tier.apply(opts);
        let plan = fault_for_attempt(attempt);
        let restore_fault = plan.at_restore_step();
        let mut pipeline = UpdatePipeline::for_options(&tier_opts)
            .with_fault_plan(plan)
            .with_checkpoint(Rc::clone(&store), ckpt_opts);
        if let Some(budget) = policy.phase_deadline {
            pipeline = pipeline.with_uniform_phase_deadline(budget);
        }
        let started_at = kernel.now();
        let (next_instance, outcome) = pipeline.run(kernel, instance, new_program(), config, &tier_opts);
        instance = next_instance;
        let finished_at = kernel.now();
        match outcome {
            UpdateOutcome::Committed(mut report) => {
                attempts.push(AttemptSummary {
                    attempt,
                    tier,
                    committed: true,
                    conflicts: Vec::new(),
                    started_at,
                    finished_at,
                    backoff: SimDuration(0),
                    recovered: false,
                });
                report.attempts = attempts;
                return (instance, UpdateOutcome::Committed(report));
            }
            UpdateOutcome::RolledBack { conflicts, report } => {
                let crashed = conflicts.iter().any(|c| matches!(c, Conflict::OldInstanceCrashed { .. }));
                let mut recovered = false;
                if crashed {
                    match revive_from_checkpoint(kernel, &store, &mut old_program, restore_fault) {
                        Ok(revived) => {
                            instance = revived;
                            recovered = true;
                        }
                        Err(_) => {
                            // Nothing left to serve and nothing restorable:
                            // give up with the crash conflicts on record.
                            attempts.push(AttemptSummary {
                                attempt,
                                tier,
                                committed: false,
                                conflicts: conflicts.clone(),
                                started_at,
                                finished_at,
                                backoff: SimDuration(0),
                                recovered: false,
                            });
                            let mut report = report;
                            report.attempts = attempts;
                            return (instance, UpdateOutcome::RolledBack { conflicts, report });
                        }
                    }
                }
                let giving_up = attempt == max_attempts;
                let backoff = if giving_up {
                    SimDuration(0)
                } else {
                    backoff_for_attempt(policy.base_backoff, attempt)
                };
                attempts.push(AttemptSummary {
                    attempt,
                    tier,
                    committed: false,
                    conflicts: conflicts.clone(),
                    started_at,
                    finished_at,
                    backoff,
                    recovered,
                });
                if giving_up {
                    let mut report = report;
                    report.attempts = attempts;
                    return (instance, UpdateOutcome::RolledBack { conflicts, report });
                }
                kernel.advance_clock(backoff);
                let _ = run_rounds(kernel, &mut instance, policy.serve_rounds_between_attempts);
            }
        }
    }
    unreachable!("loop returns on the final attempt");
}

/// Revives the old version from the latest durable checkpoint: remounts the
/// store, restores into a scratch kernel, fast-forwards its clock so virtual
/// time stays monotone, swaps it in, and resumes the revived instance. A
/// restore killed by an injected `at_restore_step` fault is retried once
/// without the fault.
fn revive_from_checkpoint(
    kernel: &mut Kernel,
    store: &Rc<RefCell<dyn Store>>,
    old_program: &mut dyn FnMut() -> Box<dyn Program>,
    restore_fault: Option<u64>,
) -> Result<McrInstance, RestoreError> {
    store.borrow_mut().recover();
    let store_ref = store.borrow();
    let restored = match restore_latest(&*store_ref, old_program, restore_fault) {
        Ok(r) => r,
        Err(RestoreError::FaultInjected { .. }) => restore_latest(&*store_ref, old_program, None)?,
        Err(e) => return Err(e),
    };
    drop(store_ref);
    let now_before = kernel.now();
    *kernel = restored.kernel;
    let now_restored = kernel.now();
    if now_restored.0 < now_before.0 {
        kernel.advance_clock(SimDuration(now_before.0 - now_restored.0));
    }
    let mut instance = restored.instance;
    resume(kernel, &mut instance);
    Ok(instance)
}

/// Mean time to recovery of a supervised update: virtual time from the
/// first attempt's start to the committing attempt's end (`None` when the
/// history is empty or never committed).
pub fn time_to_recovery(report: &UpdateReport) -> Option<SimDuration> {
    let first = report.attempts.first()?;
    let committed = report.attempts.iter().find(|a| a.committed)?;
    Some(committed.finished_at.duration_since(first.started_at))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::pipeline::PhaseName;
    use crate::runtime::scheduler::{boot, BootOptions};
    use crate::runtime::testprog::TinyServer;

    fn booted(kernel: &mut Kernel) -> McrInstance {
        kernel.add_file("/etc/tiny.conf", b"workers=2\n".to_vec());
        boot(kernel, Box::new(TinyServer::new(1)), &BootOptions::default()).expect("boot v1")
    }

    fn drive_traffic(kernel: &mut Kernel, instance: &mut McrInstance, n: usize) {
        for _ in 0..n {
            let conn = kernel.client_connect(8080).expect("connect");
            kernel.client_send(conn, b"ping".to_vec()).expect("send");
            let _ = run_rounds(kernel, instance, 2);
        }
    }

    #[test]
    fn backoff_doubles_then_saturates_at_the_cap_without_overflow() {
        let base = SimDuration(1_000_000); // the default 1 ms
        assert_eq!(backoff_for_attempt(base, 1), base);
        assert_eq!(backoff_for_attempt(base, 2), SimDuration(2_000_000));
        assert_eq!(backoff_for_attempt(base, 5), SimDuration(16_000_000));
        // Deep ladders plateau at the cap instead of wrapping (~attempt 45
        // with a 1 ms base) or panicking on a >= 64-bit shift (attempt 65+).
        assert_eq!(backoff_for_attempt(base, 45), MAX_BACKOFF);
        assert_eq!(backoff_for_attempt(base, 65), MAX_BACKOFF);
        assert_eq!(backoff_for_attempt(base, usize::MAX), MAX_BACKOFF);
        assert_eq!(backoff_for_attempt(SimDuration(u64::MAX), 2), MAX_BACKOFF);
        assert_eq!(backoff_for_attempt(SimDuration(0), 100), SimDuration(0));
    }

    #[test]
    fn supervisor_commits_first_try_without_faults() {
        let mut kernel = Kernel::new();
        let mut instance = booted(&mut kernel);
        drive_traffic(&mut kernel, &mut instance, 3);
        let (instance, outcome) = supervised_update(
            &mut kernel,
            instance,
            || Box::new(TinyServer::new(2)),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
            &SupervisorPolicy::default(),
            |_| ChaosPlan::none(),
        );
        assert!(outcome.is_committed());
        let report = outcome.report();
        assert_eq!(report.attempts.len(), 1);
        assert!(report.attempts[0].committed);
        assert_eq!(report.attempts[0].tier, DegradationTier::Full);
        assert!(time_to_recovery(report).is_some());
        assert_eq!(instance.state.version, "2.0");
    }

    #[test]
    fn supervisor_retries_through_transient_faults_and_records_the_ladder() {
        let mut kernel = Kernel::new();
        let mut instance = booted(&mut kernel);
        drive_traffic(&mut kernel, &mut instance, 2);
        // Attempts 1 and 2 are sabotaged at different sites; attempt 3 is
        // clean — a transient fault the ladder must climb over.
        let (instance, outcome) = supervised_update(
            &mut kernel,
            instance,
            || Box::new(TinyServer::new(2)),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
            &SupervisorPolicy::default(),
            |attempt| match attempt {
                1 => ChaosPlan::at_boundaries([PhaseName::Commit]),
                2 => ChaosPlan::failing_at_transfer_object(1),
                _ => ChaosPlan::none(),
            },
        );
        assert!(outcome.is_committed(), "third attempt commits: {:?}", outcome.conflicts());
        let report = outcome.report();
        assert_eq!(report.attempts.len(), 3);
        assert_eq!(
            report.attempts.iter().map(|a| a.tier).collect::<Vec<_>>(),
            vec![DegradationTier::Full, DegradationTier::NoPrecopy, DegradationTier::Serial]
        );
        assert_eq!(report.attempts.iter().map(|a| a.committed).collect::<Vec<_>>(), vec![false, false, true]);
        // Exponential, deterministic backoff on the virtual clock.
        assert_eq!(report.attempts[0].backoff.0 * 2, report.attempts[1].backoff.0);
        assert_eq!(report.attempts[2].backoff.0, 0);
        assert!(!report.attempts[0].conflicts.is_empty());
        let mttr = time_to_recovery(report).expect("committed ladder has an MTTR");
        assert!(mttr.0 > 0);
        assert_eq!(instance.state.version, "2.0");
    }

    #[test]
    fn supervisor_gives_up_cleanly_and_old_version_still_serves() {
        let mut kernel = Kernel::new();
        let mut instance = booted(&mut kernel);
        drive_traffic(&mut kernel, &mut instance, 2);
        let policy = SupervisorPolicy { max_attempts: 2, ..SupervisorPolicy::default() };
        let (mut instance, outcome) = supervised_update(
            &mut kernel,
            instance,
            || Box::new(TinyServer::new(2)),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
            &policy,
            // Every attempt dies at the commit boundary: unrecoverable.
            |_| ChaosPlan::at_boundaries([PhaseName::Commit]),
        );
        assert!(!outcome.is_committed());
        let report = outcome.report();
        assert_eq!(report.attempts.len(), 2);
        assert!(report.attempts.iter().all(|a| !a.committed));
        assert!(time_to_recovery(report).is_none());
        assert_eq!(instance.state.version, "1.0", "old version resumed");
        // The resumed old instance still answers traffic.
        let conn = kernel.client_connect(8080).expect("connect after give-up");
        kernel.client_send(conn, b"ping".to_vec()).expect("send");
        let _ = run_rounds(&mut kernel, &mut instance, 3);
        assert_eq!(kernel.client_recv(conn).expect("reply"), b"hello from v1".to_vec());
    }

    #[test]
    fn postcopy_drain_fault_degrades_to_synchronous_retry() {
        // Attempt 1 runs forced post-copy and dies applying a parked object
        // after the new version already resumed; the supervisor must roll
        // back to the intact old instance and retry stop-the-world, which
        // commits. This is the fallback ladder for the trap machinery.
        let mut kernel = Kernel::new();
        let mut instance = booted(&mut kernel);
        drive_traffic(&mut kernel, &mut instance, 3);
        let opts = UpdateOptions { mode: TransferMode::Postcopy, ..UpdateOptions::default() };
        let (instance, outcome) = supervised_update(
            &mut kernel,
            instance,
            || Box::new(TinyServer::new(2)),
            InstrumentationConfig::full(),
            &opts,
            &SupervisorPolicy::default(),
            |attempt| match attempt {
                1 => ChaosPlan::failing_at_fault_in(1),
                _ => ChaosPlan::none(),
            },
        );
        assert!(outcome.is_committed(), "degraded retry commits: {:?}", outcome.conflicts());
        let report = outcome.report();
        assert_eq!(report.attempts.len(), 2);
        assert!(!report.attempts[0].committed);
        assert!(report.attempts[0]
            .conflicts
            .iter()
            .any(|c| matches!(c, Conflict::FaultInjected { phase } if phase == "fault-in")));
        // The retry ran without the trap machinery: stop-the-world tier.
        assert_eq!(report.attempts[1].tier, DegradationTier::NoPrecopy);
        assert!(report.attempts[1].committed);
        assert_eq!(report.postcopy.deferred_pairs, 0, "committing attempt deferred nothing");
        assert_eq!(instance.state.version, "2.0");
    }

    #[test]
    fn degradation_ladder_strips_postcopy_modes() {
        let requested = UpdateOptions { mode: TransferMode::Adaptive, ..UpdateOptions::default() };
        assert_eq!(DegradationTier::Full.apply(&requested).mode, TransferMode::Adaptive);
        assert_eq!(DegradationTier::NoPrecopy.apply(&requested).mode, TransferMode::StopTheWorld);
        let serial = DegradationTier::Serial.apply(&requested);
        assert_eq!(serial.mode, TransferMode::StopTheWorld);
        assert_eq!(serial.transfer_workers, 1);
    }

    #[test]
    fn durable_supervisor_recovers_from_old_instance_crash_and_commits() {
        use mcr_procsim::MemStore;

        let mut kernel = Kernel::new();
        let mut instance = booted(&mut kernel);
        drive_traffic(&mut kernel, &mut instance, 3);
        let store: Rc<RefCell<MemStore>> = Rc::new(RefCell::new(MemStore::new()));
        // Attempt 1: the old instance's processes die right before commit —
        // after this attempt's own checkpoint phase ran, so the latest
        // durable image is fresh. Attempt 2 is clean.
        let (mut instance, outcome) = supervised_update_durable(
            &mut kernel,
            instance,
            || Box::new(TinyServer::new(1)),
            || Box::new(TinyServer::new(2)),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
            &SupervisorPolicy::default(),
            store.clone() as Rc<RefCell<dyn Store>>,
            CheckpointOptions::default(),
            |attempt| match attempt {
                1 => ChaosPlan::crashing_old_before(PhaseName::Commit),
                _ => ChaosPlan::none(),
            },
        );
        assert!(outcome.is_committed(), "recovered ladder commits: {:?}", outcome.conflicts());
        let report = outcome.report();
        assert_eq!(report.attempts.len(), 2);
        assert!(!report.attempts[0].committed);
        assert!(report.attempts[0].recovered, "crash attempt was revived from the checkpoint");
        assert!(report.attempts[0]
            .conflicts
            .iter()
            .any(|c| matches!(c, Conflict::OldInstanceCrashed { phase } if phase == "commit")));
        assert!(report.attempts[1].committed);
        assert!(!report.attempts[1].recovered);
        // The committing attempt re-checkpointed inside its own window.
        assert!(report.checkpoint.is_some());
        assert_eq!(instance.state.version, "2.0");
        // The updated instance serves on the restored kernel.
        let conn = kernel.client_connect(8080).expect("connect after recovery");
        kernel.client_send(conn, b"ping".to_vec()).expect("send");
        let _ = run_rounds(&mut kernel, &mut instance, 3);
        assert_eq!(kernel.client_recv(conn).expect("reply"), b"hello from v2".to_vec());
    }

    #[test]
    fn durable_supervisor_retries_a_fault_injected_restore_once() {
        use mcr_procsim::MemStore;

        let mut kernel = Kernel::new();
        let mut instance = booted(&mut kernel);
        drive_traffic(&mut kernel, &mut instance, 2);
        let store: Rc<RefCell<MemStore>> = Rc::new(RefCell::new(MemStore::new()));
        // Attempt 1 crashes the old instance *and* sabotages the recovery
        // restore at step 5; the supervisor retries the restore without the
        // fault (transient model) and the ladder still commits.
        let (instance, outcome) = supervised_update_durable(
            &mut kernel,
            instance,
            || Box::new(TinyServer::new(1)),
            || Box::new(TinyServer::new(2)),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
            &SupervisorPolicy::default(),
            store as Rc<RefCell<dyn Store>>,
            CheckpointOptions::default(),
            |attempt| match attempt {
                1 => ChaosPlan::crashing_old_before(PhaseName::TraceAndTransfer).and_at_restore_step(5),
                _ => ChaosPlan::none(),
            },
        );
        assert!(outcome.is_committed(), "retried restore commits: {:?}", outcome.conflicts());
        let report = outcome.report();
        assert!(report.attempts[0].recovered);
        assert_eq!(instance.state.version, "2.0");
    }

    #[test]
    fn durable_supervisor_survives_torn_checkpoint_write_and_retries() {
        use mcr_procsim::MemStore;

        let mut kernel = Kernel::new();
        let mut instance = booted(&mut kernel);
        drive_traffic(&mut kernel, &mut instance, 2);
        let store: Rc<RefCell<MemStore>> = Rc::new(RefCell::new(MemStore::new()));
        // Attempt 1's checkpoint write dies mid-block (torn write): the
        // attempt aborts with CheckpointFailed and rolls back — the old
        // instance never stopped existing — and attempt 2 remounts the
        // store, checkpoints cleanly, and commits.
        let (instance, outcome) = supervised_update_durable(
            &mut kernel,
            instance,
            || Box::new(TinyServer::new(1)),
            || Box::new(TinyServer::new(2)),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
            &SupervisorPolicy::default(),
            store.clone() as Rc<RefCell<dyn Store>>,
            CheckpointOptions::default(),
            |attempt| match attempt {
                1 => ChaosPlan::failing_at_torn_write(2),
                _ => ChaosPlan::none(),
            },
        );
        assert!(outcome.is_committed(), "retry after torn write commits: {:?}", outcome.conflicts());
        let report = outcome.report();
        assert_eq!(report.attempts.len(), 2);
        assert!(report.attempts[0].conflicts.iter().any(|c| matches!(c, Conflict::CheckpointFailed { .. })));
        assert!(!report.attempts[0].recovered, "rollback sufficed; no restore needed");
        assert!(report.attempts[1].committed);
        assert_eq!(instance.state.version, "2.0");
    }

    #[test]
    fn watchdog_budget_aborts_and_rolls_back() {
        let mut kernel = Kernel::new();
        let mut instance = booted(&mut kernel);
        drive_traffic(&mut kernel, &mut instance, 2);
        let policy = SupervisorPolicy {
            max_attempts: 1,
            phase_deadline: Some(SimDuration(1)), // nothing fits in 1ns
            ..SupervisorPolicy::default()
        };
        let (instance, outcome) = supervised_update(
            &mut kernel,
            instance,
            || Box::new(TinyServer::new(2)),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
            &policy,
            |_| ChaosPlan::none(),
        );
        assert!(!outcome.is_committed());
        assert!(
            outcome.conflicts().iter().any(|c| matches!(c, Conflict::WatchdogExpired { .. })),
            "watchdog conflict reported: {:?}",
            outcome.conflicts()
        );
        assert_eq!(instance.state.version, "1.0");
    }
}
