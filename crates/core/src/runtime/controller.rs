//! The live-update controller (the `mcr-ctl` counterpart).
//!
//! [`live_update`] orchestrates the full MCR pipeline of Figure 1:
//! checkpoint (quiesce) the old version, restart the new version under
//! mutable reinitialization, remap the remaining state with mutable tracing
//! and state transfer, and either commit (terminate the old version) or roll
//! back (terminate the new version and resume the old one from its
//! checkpoint). The whole sequence is atomic and reversible: a failure at
//! any stage leaves the old version running exactly where it was parked.
//!
//! The actual staging lives in [`crate::runtime::pipeline`]: `live_update`
//! is a thin wrapper that runs [`UpdatePipeline::standard`] — an ordered
//! sequence of named phases over a shared `UpdateCtx`, with rollback
//! centralized in the pipeline's single guard. Callers that need per-phase
//! control (fault injection, custom phase lists) use [`UpdatePipeline`]
//! directly.

use mcr_procsim::Kernel;
use mcr_typemeta::InstrumentationConfig;

use crate::error::Conflict;
use crate::program::Program;
use crate::runtime::pipeline::UpdatePipeline;
use crate::runtime::report::UpdateReport;
use crate::runtime::scheduler::{McrInstance, SchedulerMode};
use crate::tracing::tracer::TraceOptions;

/// Knobs of the iterative pre-copy phase (live-migration style): how many
/// concurrent trace-and-copy rounds run before the world stops, and when
/// the iteration is considered converged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecopyOptions {
    /// Maximum concurrent copy rounds before quiescing. `0` disables
    /// pre-copy entirely — the classic stop-the-world pipeline (and the
    /// baseline the downtime bench compares against).
    pub rounds: usize,
    /// Convergence threshold: stop iterating early once the bytes dirtied
    /// during a round (measured page-granular) drop to this value or below.
    /// `0` keeps iterating until a round ends with nothing newly dirty (or
    /// `rounds` is exhausted).
    pub convergence_bytes: u64,
    /// Scheduler rounds granted to the old instance between copy rounds so
    /// it keeps serving pending traffic while the copy runs "concurrently".
    pub serve_rounds: usize,
}

impl PrecopyOptions {
    /// Pre-copy disabled (the stop-the-world baseline).
    pub fn disabled() -> Self {
        PrecopyOptions { rounds: 0, convergence_bytes: 0, serve_rounds: 1 }
    }

    /// Pre-copy with up to `rounds` concurrent rounds and default
    /// convergence.
    pub fn rounds(rounds: usize) -> Self {
        PrecopyOptions { rounds, ..Self::disabled() }
    }

    /// Whether a pre-copy phase should run at all.
    pub fn is_enabled(&self) -> bool {
        self.rounds > 0
    }
}

impl Default for PrecopyOptions {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Which transfer strategy drives the update pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TransferMode {
    /// The historical selection: the pre-copy pipeline when
    /// [`UpdateOptions::precopy`] enables rounds, the classic stop-the-world
    /// pipeline otherwise.
    #[default]
    StopTheWorld,
    /// Force the pre-copy pipeline (a named sweep point; behaves like
    /// `StopTheWorld` with `precopy` enabled).
    Precopy,
    /// Post-copy: quiesce only long enough to commit control state and park
    /// the stale residual behind access traps, resume the new version
    /// immediately, and fault in / background-drain the residual afterwards.
    Postcopy,
    /// Per-process-pair adaptive selection: each pair's residual is either
    /// synced inside the commit window (converged pairs) or deferred to
    /// post-copy (diverging pairs), decided by [`TransferPolicy`] from the
    /// pre-copy round history and the pair's residual size.
    Adaptive,
}

/// Knobs of the post-copy drain loop that runs after the new version has
/// resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostcopyOptions {
    /// Parked objects the background drainer applies per pair per drain
    /// round (clamped to at least 1 so the drain always terminates).
    pub drain_batch: usize,
    /// Scheduler rounds the already-resumed new instance serves between
    /// drain batches.
    pub serve_rounds: usize,
}

impl Default for PostcopyOptions {
    fn default() -> Self {
        PostcopyOptions { drain_batch: 32, serve_rounds: 1 }
    }
}

/// The adaptive transfer controller's per-pair decision rule
/// ([`TransferMode::Adaptive`]).
///
/// At post-copy commit time every pair's residual (the objects still stale
/// at quiesce) is known exactly, and the pre-copy round history says whether
/// the workload was converging (each round re-dirtied less than the one
/// before) or diverging (the writer outpaces the copier). The policy picks,
/// per pair:
///
/// * **sync** — apply the residual inside the commit window, exactly like a
///   pre-copy (or stop-the-world) update. Right when the residual is small
///   or shrinking: the synchronous copy costs less than exposing the
///   resumed instance to access-trap latency.
/// * **defer** — park the residual behind access traps and resume
///   immediately. Right when the dirty rate matches or exceeds the copy
///   rate, where pre-copy provably cannot converge and a synchronous pass
///   would pay O(working set) downtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferPolicy {
    /// A residual at or below this many bytes is always synced inside the
    /// window: the copy is cheaper than one access-trap round trip.
    pub sync_residual_bytes: u64,
    /// Convergence test on the last two pre-copy rounds: if the final
    /// round's copied bytes are at most this percentage of the previous
    /// round's, the dirty rate is dropping and the pair is synced.
    pub converging_percent: u64,
}

impl Default for TransferPolicy {
    fn default() -> Self {
        TransferPolicy { sync_residual_bytes: 2 * mcr_procsim::PAGE_SIZE, converging_percent: 60 }
    }
}

impl TransferPolicy {
    /// The per-pair decision: `true` defers the pair's residual to
    /// post-copy, `false` syncs it inside the commit window. `rounds` is the
    /// pre-copy round history of this update (empty without pre-copy) and
    /// `residual_bytes` the pair's stale bytes at quiesce.
    pub fn should_defer(
        &self,
        rounds: &[crate::transfer::engine::PrecopyRoundReport],
        residual_bytes: u64,
    ) -> bool {
        if residual_bytes <= self.sync_residual_bytes {
            return false;
        }
        if let [.., prev, last] = rounds {
            // Dirty rate dropping round over round: pre-copy was converging,
            // so one more synchronous pass is small. A flat or growing rate
            // means the residual never shrinks — defer it.
            if last.bytes_copied * 100 <= prev.bytes_copied * self.converging_percent {
                return false;
            }
        }
        true
    }
}

/// Options for one live-update attempt.
#[derive(Debug, Clone, Copy)]
pub struct UpdateOptions {
    /// ASLR-style slide applied to the new version's private regions (must
    /// keep old and new heaps disjoint).
    pub layout_slide: u64,
    /// Maximum scheduling rounds the barrier protocol may take.
    pub max_quiesce_rounds: usize,
    /// Mutable-tracing options.
    pub trace: TraceOptions,
    /// Recreate counterparts for old processes that the new version's
    /// startup did not spawn (per-connection worker processes, i.e. volatile
    /// quiescent points). Requires the corresponding annotations in real
    /// deployments; disable to model an annotation-free deployment.
    pub recreate_unmatched_processes: bool,
    /// Worker threads used by the pair-parallel trace/transfer phase.
    ///
    /// `0` (the default) means one worker per matched pair — the paper's
    /// parallel multi-process transfer. `1` selects the serial ablation: the
    /// pairs run in order on the calling thread, reproducing the sequential
    /// timings while leaving every report byte-identical to a parallel run.
    ///
    /// When [`UpdateOptions::intra_pair_shards`] is above one, an explicit
    /// `transfer_workers` value is a *global* thread budget shared by pairs
    /// × shards: the pair-level pool shrinks to `transfer_workers / shards`
    /// so the total number of concurrent threads stays at the requested
    /// budget.
    pub transfer_workers: usize,
    /// Worker threads used *inside* each matched pair: the tracer's heap
    /// traversal and the transfer engine's snapshot/transform pass run over
    /// contiguous address-range shards of the per-pair object list. This is
    /// what parallelizes a *single-process* server with a huge heap, which
    /// pair-level parallelism cannot touch. `0`/`1` (the default) keeps the
    /// within-pair passes serial.
    ///
    /// Determinism contract: the traced graph, pins, Table 2 statistics,
    /// transfer reports, conflicts and post-commit memory are byte-identical
    /// across every shard count; only the charged makespan (the
    /// deterministic list-schedule over the per-shard costs) shrinks.
    pub intra_pair_shards: usize,
    /// Scheduling core for the new version's instance (the old instance
    /// keeps whatever mode it was booted with). The event-driven default and
    /// the legacy full scan produce byte-identical updates
    /// (`tests/properties.rs`); the scan is kept as the ablation baseline.
    pub scheduler: SchedulerMode,
    /// Iterative pre-copy configuration. When enabled, the pipeline boots
    /// and matches the new version first, copies the bulk of the object
    /// graph while the old version keeps serving, and quiesces only for the
    /// residual dirty delta — shrinking downtime from O(heap) to O(working
    /// set). Disabled by default (the paper's stop-the-world pipeline).
    pub precopy: PrecopyOptions,
    /// Which transfer strategy to run (stop-the-world / pre-copy /
    /// post-copy / per-pair adaptive). The default honors `precopy` the way
    /// older callers expect.
    pub mode: TransferMode,
    /// Post-copy drain knobs (used by `Postcopy` and `Adaptive` modes).
    pub postcopy: PostcopyOptions,
    /// The adaptive per-pair sync-vs-defer decision rule (`Adaptive` mode).
    pub policy: TransferPolicy,
}

impl UpdateOptions {
    /// The pair-level worker count the trace/transfer phase will actually
    /// use for `pairs` matched pairs. Resolves the `0 = one per pair`
    /// default, never exceeds the number of pairs, and divides an explicit
    /// thread budget by the intra-pair shard count (floor division, so a
    /// non-divisible combination rounds *down*) — pairs × shards share one
    /// global budget that is never exceeded.
    pub fn effective_transfer_workers(&self, pairs: usize) -> usize {
        let shards = self.effective_intra_pair_shards();
        let requested =
            if self.transfer_workers == 0 { pairs } else { (self.transfer_workers / shards).max(1) };
        requested.clamp(1, pairs.max(1))
    }

    /// The intra-pair shard count actually used: `0` resolves to serial,
    /// and an explicit `transfer_workers` budget caps the shard count too —
    /// `min(S, W)` shard threads per pair, so a requested budget below the
    /// shard count (including the `transfer_workers = 1` serial ablation)
    /// is never exceeded.
    pub fn effective_intra_pair_shards(&self) -> usize {
        let shards = self.intra_pair_shards.max(1);
        if self.transfer_workers == 0 {
            shards
        } else {
            shards.min(self.transfer_workers.max(1))
        }
    }
}

impl Default for UpdateOptions {
    fn default() -> Self {
        UpdateOptions {
            layout_slide: 0x1_0000_0000,
            max_quiesce_rounds: 1_000,
            trace: TraceOptions::default(),
            recreate_unmatched_processes: true,
            transfer_workers: 0,
            intra_pair_shards: 1,
            scheduler: SchedulerMode::default(),
            precopy: PrecopyOptions::default(),
            mode: TransferMode::default(),
            postcopy: PostcopyOptions::default(),
            policy: TransferPolicy::default(),
        }
    }
}

/// The result of a live-update attempt.
#[derive(Debug)]
pub enum UpdateOutcome {
    /// The new version took over; the old version was terminated.
    Committed(UpdateReport),
    /// The update was aborted; the old version resumed from its checkpoint.
    RolledBack {
        /// The conflicts (or failures) that caused the rollback.
        conflicts: Vec<Conflict>,
        /// Whatever was measured before the abort.
        report: UpdateReport,
    },
}

impl UpdateOutcome {
    /// True if the new version is now running.
    pub fn is_committed(&self) -> bool {
        matches!(self, UpdateOutcome::Committed(_))
    }

    /// The report gathered during the attempt.
    pub fn report(&self) -> &UpdateReport {
        match self {
            UpdateOutcome::Committed(r) => r,
            UpdateOutcome::RolledBack { report, .. } => report,
        }
    }

    /// The conflicts of a rolled-back attempt (empty when committed).
    pub fn conflicts(&self) -> &[Conflict] {
        match self {
            UpdateOutcome::Committed(_) => &[],
            UpdateOutcome::RolledBack { conflicts, .. } => conflicts,
        }
    }
}

/// Performs a live update of `old` to `new_program` with the pipeline the
/// options select: the standard stop-the-world sequence (quiesce →
/// reinit/replay → match → trace/transfer → commit), or — when
/// [`UpdateOptions::precopy`] is enabled — the pre-copy sequence that boots
/// and matches the new version first, copies concurrently, and quiesces
/// only for the residual delta.
///
/// Returns the instance that is running afterwards (the new version on
/// success, the old version after a rollback) together with the outcome.
pub fn live_update(
    kernel: &mut Kernel,
    old: McrInstance,
    new_program: Box<dyn Program>,
    config: InstrumentationConfig,
    opts: &UpdateOptions,
) -> (McrInstance, UpdateOutcome) {
    UpdatePipeline::for_options(opts).run(kernel, old, new_program, config, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::pipeline::{FaultPlan, PhaseName, UpdatePipeline};
    use crate::runtime::scheduler::{boot, run_round, run_rounds, BootOptions};
    use crate::runtime::testprog::{FaultyServer, TinyServer};
    use mcr_procsim::{Addr, SimDuration};

    fn booted_v1(kernel: &mut Kernel) -> McrInstance {
        kernel.add_file("/etc/tiny.conf", b"workers=1\n".to_vec());
        boot(kernel, Box::new(TinyServer::new(1)), &BootOptions::default()).unwrap()
    }

    fn serve_clients(kernel: &mut Kernel, instance: &mut McrInstance, n: usize) -> Vec<mcr_procsim::ConnId> {
        let mut conns = Vec::new();
        for _ in 0..n {
            let c = kernel.client_connect(8080).unwrap();
            kernel.client_send(c, b"GET /".to_vec()).unwrap();
            run_round(kernel, instance).unwrap();
            let _ = kernel.client_recv(c);
            conns.push(c);
        }
        conns
    }

    /// Pairs × shards share one global thread budget: an explicit
    /// `transfer_workers` value is never exceeded, whichever way the two
    /// knobs are combined.
    #[test]
    fn worker_budget_is_shared_by_pairs_and_shards() {
        // Budget below the shard count: the shards are clamped to the
        // budget and the pair pool collapses to one worker.
        let opts = UpdateOptions { transfer_workers: 2, intra_pair_shards: 4, ..Default::default() };
        assert_eq!(opts.effective_intra_pair_shards(), 2);
        assert_eq!(opts.effective_transfer_workers(8), 1);
        assert!(opts.effective_transfer_workers(8) * opts.effective_intra_pair_shards() <= 2);
        // Auto budget (`0`): one thread per pair × shard.
        let auto = UpdateOptions { intra_pair_shards: 4, ..Default::default() };
        assert_eq!(auto.effective_intra_pair_shards(), 4);
        assert_eq!(auto.effective_transfer_workers(3), 3);
        // The serial ablation stays fully serial regardless of shards.
        let serial = UpdateOptions { transfer_workers: 1, intra_pair_shards: 8, ..Default::default() };
        assert_eq!(serial.effective_intra_pair_shards(), 1);
        assert_eq!(serial.effective_transfer_workers(5), 1);
        // A budget above the shard count splits across pairs.
        let wide = UpdateOptions { transfer_workers: 8, intra_pair_shards: 2, ..Default::default() };
        assert_eq!(wide.effective_intra_pair_shards(), 2);
        assert_eq!(wide.effective_transfer_workers(6), 4);
        assert!(wide.effective_transfer_workers(6) * wide.effective_intra_pair_shards() <= 8);
        // Non-divisible combinations round down, never exceeding the budget.
        for (workers, shards, pairs) in [(3usize, 2usize, 4usize), (5, 4, 4), (7, 3, 9), (2, 5, 3)] {
            let opts =
                UpdateOptions { transfer_workers: workers, intra_pair_shards: shards, ..Default::default() };
            let total = opts.effective_transfer_workers(pairs) * opts.effective_intra_pair_shards();
            assert!(total <= workers, "{workers}w x {shards}s over {pairs} pairs: {total} > budget");
        }
    }

    #[test]
    fn successful_live_update_preserves_state_and_serves_clients() {
        let mut kernel = Kernel::new();
        let mut v1 = booted_v1(&mut kernel);
        let conns = serve_clients(&mut kernel, &mut v1, 3);
        let old_pids = v1.state.processes.clone();

        let (mut v2, outcome) = live_update(
            &mut kernel,
            v1,
            Box::new(TinyServer::new(2)),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
        );
        assert!(outcome.is_committed(), "conflicts: {:?}", outcome.conflicts());
        let report = outcome.report();
        assert_eq!(report.open_connections, 3);
        assert!(report.timings.quiescence.0 > 0);
        assert!(report.timings.control_migration.0 > 0);
        assert!(report.timings.total.0 > 0);
        assert!(report.transfer.objects_transferred() >= 3, "the three list nodes moved");
        assert_eq!(v2.state.version, "2.0");

        // The old version's processes are gone.
        for pid in old_pids {
            assert!(kernel.process(pid).is_err());
        }

        // The connection list survived the update: the new version's `list`
        // global reaches 3 nodes whose values are the old connection fds.
        let list_addr = v2.state.statics.lookup("list").unwrap().addr;
        let new_init = v2.init_pid().unwrap();
        let space = kernel.process(new_init).unwrap().space();
        let mut count = 0;
        let mut node = Addr(space.read_u64(list_addr.offset(8)).unwrap());
        while !node.is_null() && count < 10 {
            count += 1;
            node = Addr(space.read_u64(node.offset(8)).unwrap());
        }
        assert_eq!(count, 3);

        // And the new version serves new clients with its own banner.
        let c = kernel.client_connect(8080).unwrap();
        kernel.client_send(c, b"GET /".to_vec()).unwrap();
        run_rounds(&mut kernel, &mut v2, 2).unwrap();
        let reply = kernel.client_recv(c).unwrap();
        assert!(String::from_utf8_lossy(&reply).contains("v2"));
        let _ = conns;
    }

    #[test]
    fn committed_update_records_every_phase() {
        let mut kernel = Kernel::new();
        let v1 = booted_v1(&mut kernel);
        let (_v2, outcome) = live_update(
            &mut kernel,
            v1,
            Box::new(TinyServer::new(2)),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
        );
        assert!(outcome.is_committed());
        let report = outcome.report();
        let executed: Vec<PhaseName> = report.phases.records().iter().map(|r| r.name).collect();
        assert_eq!(executed, PhaseName::ALL, "phases ran in pipeline order");
        for phase in PhaseName::ALL {
            assert!(report.phases.completed(phase), "{phase} completed");
        }
        // The legacy timing breakdown is populated from the phase trace.
        assert_eq!(report.phases.duration_of(PhaseName::Quiesce).unwrap(), report.timings.quiescence);
        assert_eq!(
            report.phases.duration_of(PhaseName::ReinitReplay).unwrap(),
            report.timings.control_migration
        );
        assert!(report.phases.total() <= report.timings.total);
    }

    #[test]
    fn omitted_startup_call_rolls_back_and_old_version_survives() {
        let mut kernel = Kernel::new();
        let mut v1 = booted_v1(&mut kernel);
        serve_clients(&mut kernel, &mut v1, 2);

        // FaultyServer omits the listen() call the old version recorded.
        let (mut still_v1, outcome) = live_update(
            &mut kernel,
            v1,
            Box::new(FaultyServer::omitting_listen()),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
        );
        assert!(!outcome.is_committed());
        assert!(outcome.conflicts().iter().any(|c| matches!(c, Conflict::OmittedReplayEntry { .. })));
        assert_eq!(still_v1.state.version, "1.0");
        // The failing phase is visible in the trace.
        let last = outcome.report().phases.last().unwrap();
        assert_eq!(last.name, PhaseName::ReinitReplay);
        assert!(!last.completed);

        // The old version keeps serving clients after the rollback.
        let c = kernel.client_connect(8080).unwrap();
        kernel.client_send(c, b"GET /".to_vec()).unwrap();
        run_rounds(&mut kernel, &mut still_v1, 2).unwrap();
        let reply = kernel.client_recv(c).unwrap();
        assert!(String::from_utf8_lossy(&reply).contains("v1"));
    }

    #[test]
    fn startup_failure_in_new_version_rolls_back() {
        let mut kernel = Kernel::new();
        let v1 = booted_v1(&mut kernel);
        let (still_v1, outcome) = live_update(
            &mut kernel,
            v1,
            Box::new(FaultyServer::aborting()),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
        );
        assert!(!outcome.is_committed());
        assert_eq!(still_v1.state.version, "1.0");
        // Only the old version's process remains.
        assert_eq!(kernel.pids().len(), 1);
    }

    #[test]
    fn repeated_updates_chain_through_replayed_logs() {
        let mut kernel = Kernel::new();
        let mut instance = booted_v1(&mut kernel);
        for generation in 2..=4u32 {
            serve_clients(&mut kernel, &mut instance, 1);
            let opts =
                UpdateOptions { layout_slide: 0x1_0000_0000 * u64::from(generation), ..Default::default() };
            let (next, outcome) = live_update(
                &mut kernel,
                instance,
                Box::new(TinyServer::new(generation)),
                InstrumentationConfig::full(),
                &opts,
            );
            assert!(outcome.is_committed(), "gen {generation}: {:?}", outcome.conflicts());
            instance = next;
        }
        assert_eq!(instance.state.version, "4.0");
        // Still serving.
        let c = kernel.client_connect(8080).unwrap();
        kernel.client_send(c, b"GET /".to_vec()).unwrap();
        run_rounds(&mut kernel, &mut instance, 2).unwrap();
        assert!(String::from_utf8_lossy(&kernel.client_recv(c).unwrap()).contains("v4"));
    }

    #[test]
    fn injected_fault_before_commit_rolls_back_with_full_trace() {
        let mut kernel = Kernel::new();
        let mut v1 = booted_v1(&mut kernel);
        serve_clients(&mut kernel, &mut v1, 2);

        let pipeline =
            UpdatePipeline::standard().with_fault_plan(FaultPlan::at_boundaries([PhaseName::Commit]));
        let (mut still_v1, outcome) = pipeline.run(
            &mut kernel,
            v1,
            Box::new(TinyServer::new(2)),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
        );
        assert!(!outcome.is_committed());
        assert!(outcome.conflicts().iter().any(|c| matches!(c, Conflict::FaultInjected { .. })));
        // Every phase before the fault ran to completion; commit never ran.
        let report = outcome.report();
        for phase in [
            PhaseName::Quiesce,
            PhaseName::ReinitReplay,
            PhaseName::MatchProcesses,
            PhaseName::TraceAndTransfer,
        ] {
            assert!(report.phases.completed(phase), "{phase} completed before the fault");
        }
        assert!(report.phases.duration_of(PhaseName::Commit).is_none());
        // The old version is intact and serving.
        assert_eq!(still_v1.state.version, "1.0");
        let c = kernel.client_connect(8080).unwrap();
        kernel.client_send(c, b"GET /".to_vec()).unwrap();
        run_rounds(&mut kernel, &mut still_v1, 2).unwrap();
        assert!(String::from_utf8_lossy(&kernel.client_recv(c).unwrap()).contains("v1"));
    }

    fn list_values(kernel: &Kernel, instance: &McrInstance) -> Vec<u32> {
        let list_addr = instance.state.statics.lookup("list").unwrap().addr;
        let space = kernel.process(instance.init_pid().unwrap()).unwrap().space();
        let mut values = Vec::new();
        let mut node = Addr(space.read_u64(list_addr.offset(8)).unwrap());
        while !node.is_null() && values.len() < 64 {
            values.push(space.read_u32(node).unwrap());
            node = Addr(space.read_u64(node.offset(8)).unwrap());
        }
        values
    }

    #[test]
    fn postcopy_update_commits_with_identical_state() {
        // Run the same update stop-the-world and post-copy; the transferred
        // heap must come out identical and the post-copy run must record
        // deferred work that drained to completion.
        let mut reference: Option<Vec<u32>> = None;
        for mode in [TransferMode::StopTheWorld, TransferMode::Postcopy] {
            let mut kernel = Kernel::new();
            let mut v1 = booted_v1(&mut kernel);
            serve_clients(&mut kernel, &mut v1, 4);
            let opts = UpdateOptions { mode, ..Default::default() };
            let (mut v2, outcome) = live_update(
                &mut kernel,
                v1,
                Box::new(TinyServer::new(2)),
                InstrumentationConfig::full(),
                &opts,
            );
            assert!(outcome.is_committed(), "{mode:?}: {:?}", outcome.conflicts());
            let report = outcome.report();
            let values = list_values(&kernel, &v2);
            assert_eq!(values.len(), 4, "{mode:?} preserved the list");
            match &reference {
                None => reference = Some(values),
                Some(expected) => assert_eq!(&values, expected, "modes agree byte-for-byte"),
            }
            if mode == TransferMode::Postcopy {
                assert!(report.postcopy.enabled);
                assert_eq!(report.postcopy.deferred_pairs, 1);
                assert!(report.postcopy.deferred_objects > 0);
                assert!(report.postcopy.drained_objects + report.postcopy.trap_objects > 0);
                let executed: Vec<PhaseName> = report.phases.records().iter().map(|r| r.name).collect();
                assert_eq!(executed, PhaseName::POSTCOPY_ALL);
            }
            // Either way the new version serves clients afterwards.
            let c = kernel.client_connect(8080).unwrap();
            kernel.client_send(c, b"GET /".to_vec()).unwrap();
            run_rounds(&mut kernel, &mut v2, 2).unwrap();
            assert!(String::from_utf8_lossy(&kernel.client_recv(c).unwrap()).contains("v2"));
        }
    }

    #[test]
    fn adaptive_mode_syncs_small_residuals() {
        // TinyServer's residual is tiny, so the adaptive policy syncs it in
        // the window: no deferred pairs, no traps, and downtime no worse
        // than the forced post-copy run.
        let mut kernel = Kernel::new();
        let mut v1 = booted_v1(&mut kernel);
        serve_clients(&mut kernel, &mut v1, 2);
        let opts = UpdateOptions { mode: TransferMode::Adaptive, ..Default::default() };
        let (_v2, outcome) =
            live_update(&mut kernel, v1, Box::new(TinyServer::new(2)), InstrumentationConfig::full(), &opts);
        assert!(outcome.is_committed(), "{:?}", outcome.conflicts());
        let report = outcome.report();
        assert!(report.postcopy.enabled);
        assert_eq!(report.postcopy.synced_pairs, 1);
        assert_eq!(report.postcopy.deferred_pairs, 0);
        assert_eq!(report.postcopy.traps, 0);
        assert_eq!(report.timings.trap_service, SimDuration(0));
    }

    #[test]
    fn mid_drain_fault_rolls_back_to_old_version() {
        let mut kernel = Kernel::new();
        let mut v1 = booted_v1(&mut kernel);
        serve_clients(&mut kernel, &mut v1, 3);
        let reference = {
            // Snapshot the old heap before the attempt.
            let mut probe = Vec::new();
            let list_addr = v1.state.statics.lookup("list").unwrap().addr;
            let space = kernel.process(v1.init_pid().unwrap()).unwrap().space();
            let mut node = Addr(space.read_u64(list_addr.offset(8)).unwrap());
            while !node.is_null() && probe.len() < 64 {
                probe.push(space.read_u32(node).unwrap());
                node = Addr(space.read_u64(node.offset(8)).unwrap());
            }
            probe
        };

        let opts = UpdateOptions { mode: TransferMode::Postcopy, ..Default::default() };
        let pipeline = UpdatePipeline::for_options(&opts)
            .with_fault_plan(crate::runtime::pipeline::ChaosPlan::failing_at_drain_step(1));
        let (mut still_v1, outcome) =
            pipeline.run(&mut kernel, v1, Box::new(TinyServer::new(2)), InstrumentationConfig::full(), &opts);
        assert!(!outcome.is_committed(), "drain fault must abort the update");
        assert!(outcome
            .conflicts()
            .iter()
            .any(|c| matches!(c, Conflict::FaultInjected { phase } if phase == "drain-step")));
        // The old version survived with its heap intact and keeps serving.
        assert_eq!(still_v1.state.version, "1.0");
        assert_eq!(list_values(&kernel, &still_v1), reference);
        let c = kernel.client_connect(8080).unwrap();
        kernel.client_send(c, b"GET /".to_vec()).unwrap();
        run_rounds(&mut kernel, &mut still_v1, 2).unwrap();
        assert!(String::from_utf8_lossy(&kernel.client_recv(c).unwrap()).contains("v1"));
    }

    #[test]
    fn fault_in_chaos_site_aborts_postcopy() {
        let mut kernel = Kernel::new();
        let mut v1 = booted_v1(&mut kernel);
        serve_clients(&mut kernel, &mut v1, 3);
        let opts = UpdateOptions { mode: TransferMode::Postcopy, ..Default::default() };
        let pipeline = UpdatePipeline::for_options(&opts)
            .with_fault_plan(crate::runtime::pipeline::ChaosPlan::failing_at_fault_in(1));
        let (still_v1, outcome) =
            pipeline.run(&mut kernel, v1, Box::new(TinyServer::new(2)), InstrumentationConfig::full(), &opts);
        assert!(!outcome.is_committed());
        assert!(outcome
            .conflicts()
            .iter()
            .any(|c| matches!(c, Conflict::FaultInjected { phase } if phase == "fault-in")));
        assert_eq!(still_v1.state.version, "1.0");
    }
}
