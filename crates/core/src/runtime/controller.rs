//! The live-update controller (the `mcr-ctl` counterpart).
//!
//! [`live_update`] orchestrates the full MCR pipeline of Figure 1:
//! checkpoint (quiesce) the old version, restart the new version under
//! mutable reinitialization, remap the remaining state with mutable tracing
//! and state transfer, and either commit (terminate the old version) or roll
//! back (terminate the new version and resume the old one from its
//! checkpoint). The whole sequence is atomic and reversible: a failure at
//! any stage leaves the old version running exactly where it was parked.

use std::collections::BTreeSet;

use mcr_procsim::{Fd, FdPlacement, Kernel, Pid, Syscall, SyscallPort, ThreadState};
use mcr_typemeta::InstrumentationConfig;

use crate::callstack::CallStackId;
use crate::error::{Conflict, McrError, McrResult};
use crate::interpose::Interposer;
use crate::program::{Program, ThreadRosterEntry};
use crate::runtime::report::UpdateReport;
use crate::runtime::scheduler::{
    create_instance, resume, run_startup, wait_quiescence, BootOptions, McrInstance,
};
use crate::tracing::tracer::{trace_process, TraceOptions};
use crate::transfer::engine::transfer_process;

/// Options for one live-update attempt.
#[derive(Debug, Clone, Copy)]
pub struct UpdateOptions {
    /// ASLR-style slide applied to the new version's private regions (must
    /// keep old and new heaps disjoint).
    pub layout_slide: u64,
    /// Maximum scheduling rounds the barrier protocol may take.
    pub max_quiesce_rounds: usize,
    /// Mutable-tracing options.
    pub trace: TraceOptions,
    /// Recreate counterparts for old processes that the new version's
    /// startup did not spawn (per-connection worker processes, i.e. volatile
    /// quiescent points). Requires the corresponding annotations in real
    /// deployments; disable to model an annotation-free deployment.
    pub recreate_unmatched_processes: bool,
}

impl Default for UpdateOptions {
    fn default() -> Self {
        UpdateOptions {
            layout_slide: 0x1_0000_0000,
            max_quiesce_rounds: 1_000,
            trace: TraceOptions::default(),
            recreate_unmatched_processes: true,
        }
    }
}

/// The result of a live-update attempt.
#[derive(Debug)]
pub enum UpdateOutcome {
    /// The new version took over; the old version was terminated.
    Committed(UpdateReport),
    /// The update was aborted; the old version resumed from its checkpoint.
    RolledBack {
        /// The conflicts (or failures) that caused the rollback.
        conflicts: Vec<Conflict>,
        /// Whatever was measured before the abort.
        report: UpdateReport,
    },
}

impl UpdateOutcome {
    /// True if the new version is now running.
    pub fn is_committed(&self) -> bool {
        matches!(self, UpdateOutcome::Committed(_))
    }

    /// The report gathered during the attempt.
    pub fn report(&self) -> &UpdateReport {
        match self {
            UpdateOutcome::Committed(r) => r,
            UpdateOutcome::RolledBack { report, .. } => report,
        }
    }

    /// The conflicts of a rolled-back attempt (empty when committed).
    pub fn conflicts(&self) -> &[Conflict] {
        match self {
            UpdateOutcome::Committed(_) => &[],
            UpdateOutcome::RolledBack { conflicts, .. } => conflicts,
        }
    }
}

fn conflicts_of(error: McrError) -> Vec<Conflict> {
    match error {
        McrError::Conflicts(cs) => cs,
        other => vec![Conflict::StartupFailure { syscall: "<runtime>".into(), error: other.to_string() }],
    }
}

fn teardown(kernel: &mut Kernel, instance: &McrInstance) {
    for &pid in &instance.state.processes {
        let _ = kernel.remove_process(pid);
    }
}

fn rollback(
    kernel: &mut Kernel,
    new_instance: Option<McrInstance>,
    mut old: McrInstance,
    conflicts: Vec<Conflict>,
    report: UpdateReport,
) -> (McrInstance, UpdateOutcome) {
    if let Some(new_instance) = new_instance {
        teardown(kernel, &new_instance);
    }
    resume(kernel, &mut old);
    (old, UpdateOutcome::RolledBack { conflicts, report })
}

/// Performs a live update of `old` to `new_program`.
///
/// Returns the instance that is running afterwards (the new version on
/// success, the old version after a rollback) together with the outcome.
pub fn live_update(
    kernel: &mut Kernel,
    mut old: McrInstance,
    new_program: Box<dyn Program>,
    config: InstrumentationConfig,
    opts: &UpdateOptions,
) -> (McrInstance, UpdateOutcome) {
    let mut report = UpdateReport { old_startup: old.state.startup_duration, ..Default::default() };
    let t_total = kernel.now();

    // --------------------------------------------------------------
    // 1. Checkpoint: quiesce the old version.
    // --------------------------------------------------------------
    match wait_quiescence(kernel, &mut old, opts.max_quiesce_rounds) {
        Ok(d) => report.timings.quiescence = d,
        Err(e) => return rollback(kernel, None, old, conflicts_of(e), report),
    }
    report.open_connections = kernel.open_connection_count();

    // --------------------------------------------------------------
    // 2. Restart: boot the new version under mutable reinitialization.
    // --------------------------------------------------------------
    let cm_start = kernel.now();
    let boot_opts = BootOptions { config, layout_slide: opts.layout_slide, start_quiesced: true };
    let interposer = Interposer::replayer(old.state.interpose.recorded_log());
    let mut new_instance = match create_instance(kernel, new_program, interposer, &boot_opts) {
        Ok(i) => i,
        Err(e) => return rollback(kernel, None, old, conflicts_of(e), report),
    };
    let new_init = new_instance.init_pid().expect("instance has an initial process");

    // Global inheritance: the new version's first process inherits every
    // descriptor of every old-version process at the same number.
    let old_pids = old.state.processes.clone();
    for &old_pid in &old_pids {
        let fds: Vec<Fd> = match kernel.process(old_pid) {
            Ok(p) => p.fds().iter().map(|(fd, _)| fd).collect(),
            Err(_) => continue,
        };
        for fd in fds {
            let already = kernel.process(new_init).map(|p| p.fds().contains(fd)).unwrap_or(false);
            if !already {
                let _ = kernel.transfer_fd(old_pid, fd, new_init, FdPlacement::Exact(fd));
            }
        }
    }
    // Pid virtualization: the new initial process observes the old initial
    // process's pid.
    let old_init = old_pids[0];
    let old_virt = old.state.interpose.virtual_pid(old_init);
    new_instance.state.interpose.map_pid(old_virt, new_init);

    if let Err(e) = run_startup(kernel, &mut new_instance) {
        return rollback(kernel, Some(new_instance), old, conflicts_of(e), report);
    }
    report.new_startup = new_instance.state.startup_duration;
    // Conservative matching: recorded operations the new version omitted.
    let omission_conflicts = {
        let state = &mut new_instance.state;
        let crate::program::InstanceState { interpose, annotations, .. } = state;
        interpose.finish_replay(annotations)
    };
    if !omission_conflicts.is_empty() {
        return rollback(kernel, Some(new_instance), old, omission_conflicts, report);
    }
    // Park every new-version thread at its quiescent point so it cannot
    // observe external events before commit.
    if let Err(e) = wait_quiescence(kernel, &mut new_instance, opts.max_quiesce_rounds) {
        return rollback(kernel, Some(new_instance), old, conflicts_of(e), report);
    }
    report.replay = new_instance.state.interpose.stats();
    report.timings.control_migration = kernel.now().duration_since(cm_start);

    // --------------------------------------------------------------
    // 3. Restore: match processes, trace the old state, transfer it.
    // --------------------------------------------------------------
    let st_start = kernel.now();
    let pairs = match match_processes(kernel, &old, &mut new_instance, opts, &mut report) {
        Ok(p) => p,
        Err(e) => return rollback(kernel, Some(new_instance), old, conflicts_of(e), report),
    };

    let mut conflicts: Vec<Conflict> = Vec::new();
    for &(old_pid, new_pid) in &pairs {
        let trace = match trace_process(kernel, &old.state, old_pid, opts.trace) {
            Ok(t) => t,
            Err(e) => return rollback(kernel, Some(new_instance), old, conflicts_of(e), report),
        };
        report.tracing.merge(&trace.stats);
        let proc_report =
            match transfer_process(kernel, &old.state, old_pid, &mut new_instance.state, new_pid, &trace) {
                Ok(r) => r,
                Err(e) => return rollback(kernel, Some(new_instance), old, conflicts_of(e), report),
            };
        conflicts.extend(proc_report.conflicts.clone());
        report.transfer.push(proc_report);

        // Per-process descriptor inheritance: connection descriptors created
        // after startup exist only in the matched old process. Descriptor
        // numbers may clash across processes (two old workers can both own a
        // "fd 7" referring to different connections); the matched process's
        // own object wins, mirroring the per-process mapping the paper calls
        // for in multiprocess deployments.
        let fds: Vec<(Fd, mcr_procsim::ObjId)> = match kernel.process(old_pid) {
            Ok(p) => p.fds().iter().map(|(fd, e)| (fd, e.object)).collect(),
            Err(_) => Vec::new(),
        };
        for (fd, old_obj) in fds {
            let existing = kernel.process(new_pid).ok().and_then(|p| p.fds().get(fd).ok());
            match existing {
                Some(entry) if entry.object == old_obj => {}
                Some(_) => {
                    // Same number, different object: replace it with the
                    // object this process actually owned in the old version.
                    let new_tid = kernel.process(new_pid).map(|p| p.main_tid());
                    if let Ok(tid) = new_tid {
                        let _ = kernel.syscall(new_pid, tid, Syscall::Close { fd });
                        let _ = kernel.transfer_fd(old_pid, fd, new_pid, FdPlacement::Exact(fd));
                    }
                }
                None => {
                    let _ = kernel.transfer_fd(old_pid, fd, new_pid, FdPlacement::Exact(fd));
                }
            }
        }
    }
    if !conflicts.is_empty() {
        return rollback(kernel, Some(new_instance), old, conflicts, report);
    }
    report.timings.state_transfer = report.transfer.parallel_duration;
    report.timings.state_transfer_serial = kernel.now().duration_since(st_start);

    // --------------------------------------------------------------
    // 4. Commit: the new version resumes; the old version is terminated.
    // --------------------------------------------------------------
    resume(kernel, &mut new_instance);
    for &pid in &old.state.processes {
        let _ = kernel.remove_process(pid);
    }
    report.timings.total = kernel.now().duration_since(t_total);
    (new_instance, UpdateOutcome::Committed(report))
}

/// Pairs old-version processes with new-version processes by creation-time
/// call-stack ID (and creation order), optionally recreating counterparts
/// for unmatched old processes.
fn match_processes(
    kernel: &mut Kernel,
    old: &McrInstance,
    new_instance: &mut McrInstance,
    opts: &UpdateOptions,
    report: &mut UpdateReport,
) -> McrResult<Vec<(Pid, Pid)>> {
    let new_init = new_instance.init_pid()?;
    let mut pairs = Vec::new();
    let mut used: BTreeSet<u32> = BTreeSet::new();
    for &old_pid in &old.state.processes {
        let old_proc = kernel.process(old_pid).map_err(McrError::Sim)?;
        let old_cs = CallStackId::from_frames(old_proc.creation_stack());
        let old_stack = old_proc.creation_stack().to_vec();
        let candidate = new_instance
            .state
            .processes
            .iter()
            .copied()
            .filter(|p| !used.contains(&p.0))
            .find(|&p| {
                kernel
                    .process(p)
                    .map(|proc| CallStackId::from_frames(proc.creation_stack()) == old_cs)
                    .unwrap_or(false)
            });
        match candidate {
            Some(new_pid) => {
                used.insert(new_pid.0);
                pairs.push((old_pid, new_pid));
                report.processes_matched += 1;
            }
            None if opts.recreate_unmatched_processes => {
                // Fork a counterpart from the new version's initial process
                // (modelling the annotated control-migration extension the
                // paper describes for volatile quiescent points).
                let init_tid = kernel.process(new_init).map_err(McrError::Sim)?.main_tid();
                let child = kernel
                    .syscall(new_init, init_tid, Syscall::Fork)
                    .map_err(McrError::Sim)?
                    .as_pid()
                    .ok_or_else(|| McrError::InvalidState("fork did not return a pid".into()))?;
                {
                    let proc = kernel.process_mut(child).map_err(McrError::Sim)?;
                    proc.set_creation_stack(old_stack);
                    let main = proc.main_tid();
                    proc.thread_mut(main).map_err(McrError::Sim)?.set_state(ThreadState::Quiesced);
                }
                let child_tid = kernel.process(child).map_err(McrError::Sim)?.main_tid();
                let name = old
                    .state
                    .threads
                    .iter()
                    .find(|t| t.pid == old_pid)
                    .map(|t| t.name.clone())
                    .unwrap_or_else(|| "recreated".to_string());
                new_instance.state.processes.push(child);
                new_instance.state.threads.push(ThreadRosterEntry {
                    pid: child,
                    tid: child_tid,
                    name,
                    created_during_startup: false,
                    exited: false,
                });
                // The pid the old process observed stays meaningful in
                // transferred data structures.
                let old_virt = old.state.interpose.virtual_pid(old_pid);
                new_instance.state.interpose.map_pid(old_virt, child);
                used.insert(child.0);
                pairs.push((old_pid, child));
                report.processes_recreated += 1;
            }
            None => {
                return Err(Conflict::MissingCounterpart { object: format!("process {old_pid}") }.into());
            }
        }
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::scheduler::{boot, run_round, run_rounds};
    use crate::runtime::testprog::{FaultyServer, TinyServer};
    use mcr_procsim::Addr;

    fn booted_v1(kernel: &mut Kernel) -> McrInstance {
        kernel.add_file("/etc/tiny.conf", b"workers=1\n".to_vec());
        boot(kernel, Box::new(TinyServer::new(1)), &BootOptions::default()).unwrap()
    }

    fn serve_clients(kernel: &mut Kernel, instance: &mut McrInstance, n: usize) -> Vec<mcr_procsim::ConnId> {
        let mut conns = Vec::new();
        for _ in 0..n {
            let c = kernel.client_connect(8080).unwrap();
            kernel.client_send(c, b"GET /".to_vec()).unwrap();
            run_round(kernel, instance).unwrap();
            let _ = kernel.client_recv(c);
            conns.push(c);
        }
        conns
    }

    #[test]
    fn successful_live_update_preserves_state_and_serves_clients() {
        let mut kernel = Kernel::new();
        let mut v1 = booted_v1(&mut kernel);
        let conns = serve_clients(&mut kernel, &mut v1, 3);
        let old_pids = v1.state.processes.clone();

        let (mut v2, outcome) = live_update(
            &mut kernel,
            v1,
            Box::new(TinyServer::new(2)),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
        );
        assert!(outcome.is_committed(), "conflicts: {:?}", outcome.conflicts());
        let report = outcome.report();
        assert_eq!(report.open_connections, 3);
        assert!(report.timings.quiescence.0 > 0);
        assert!(report.timings.control_migration.0 > 0);
        assert!(report.timings.total.0 > 0);
        assert!(report.transfer.objects_transferred() >= 3, "the three list nodes moved");
        assert_eq!(v2.state.version, "2.0");

        // The old version's processes are gone.
        for pid in old_pids {
            assert!(kernel.process(pid).is_err());
        }

        // The connection list survived the update: the new version's `list`
        // global reaches 3 nodes whose values are the old connection fds.
        let list_addr = v2.state.statics.lookup("list").unwrap().addr;
        let new_init = v2.init_pid().unwrap();
        let space = kernel.process(new_init).unwrap().space();
        let mut count = 0;
        let mut node = Addr(space.read_u64(list_addr.offset(8)).unwrap());
        while !node.is_null() && count < 10 {
            count += 1;
            node = Addr(space.read_u64(node.offset(8)).unwrap());
        }
        assert_eq!(count, 3);

        // And the new version serves new clients with its own banner.
        let c = kernel.client_connect(8080).unwrap();
        kernel.client_send(c, b"GET /".to_vec()).unwrap();
        run_rounds(&mut kernel, &mut v2, 2).unwrap();
        let reply = kernel.client_recv(c).unwrap();
        assert!(String::from_utf8_lossy(&reply).contains("v2"));
        let _ = conns;
    }

    #[test]
    fn omitted_startup_call_rolls_back_and_old_version_survives() {
        let mut kernel = Kernel::new();
        let mut v1 = booted_v1(&mut kernel);
        serve_clients(&mut kernel, &mut v1, 2);

        // FaultyServer omits the listen() call the old version recorded.
        let (mut still_v1, outcome) = live_update(
            &mut kernel,
            v1,
            Box::new(FaultyServer::omitting_listen()),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
        );
        assert!(!outcome.is_committed());
        assert!(outcome
            .conflicts()
            .iter()
            .any(|c| matches!(c, Conflict::OmittedReplayEntry { .. })));
        assert_eq!(still_v1.state.version, "1.0");

        // The old version keeps serving clients after the rollback.
        let c = kernel.client_connect(8080).unwrap();
        kernel.client_send(c, b"GET /".to_vec()).unwrap();
        run_rounds(&mut kernel, &mut still_v1, 2).unwrap();
        let reply = kernel.client_recv(c).unwrap();
        assert!(String::from_utf8_lossy(&reply).contains("v1"));
    }

    #[test]
    fn startup_failure_in_new_version_rolls_back() {
        let mut kernel = Kernel::new();
        let v1 = booted_v1(&mut kernel);
        let (still_v1, outcome) = live_update(
            &mut kernel,
            v1,
            Box::new(FaultyServer::aborting()),
            InstrumentationConfig::full(),
            &UpdateOptions::default(),
        );
        assert!(!outcome.is_committed());
        assert_eq!(still_v1.state.version, "1.0");
        // Only the old version's process remains.
        assert_eq!(kernel.pids().len(), 1);
    }

    #[test]
    fn repeated_updates_chain_through_replayed_logs() {
        let mut kernel = Kernel::new();
        let mut instance = booted_v1(&mut kernel);
        for generation in 2..=4u32 {
            serve_clients(&mut kernel, &mut instance, 1);
            let opts = UpdateOptions {
                layout_slide: 0x1_0000_0000 * u64::from(generation),
                ..Default::default()
            };
            let (next, outcome) = live_update(
                &mut kernel,
                instance,
                Box::new(TinyServer::new(generation)),
                InstrumentationConfig::full(),
                &opts,
            );
            assert!(outcome.is_committed(), "gen {generation}: {:?}", outcome.conflicts());
            instance = next;
        }
        assert_eq!(instance.state.version, "4.0");
        // Still serving.
        let c = kernel.client_connect(8080).unwrap();
        kernel.client_send(c, b"GET /".to_vec()).unwrap();
        run_rounds(&mut kernel, &mut instance, 2).unwrap();
        assert!(String::from_utf8_lossy(&kernel.client_recv(c).unwrap()).contains("v4"));
    }
}
