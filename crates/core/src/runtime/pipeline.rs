//! The staged live-update pipeline.
//!
//! The paper's atomic, reversible update (checkpoint → restart → restore →
//! commit-or-rollback, Figure 1) is expressed here as an ordered sequence of
//! named [`Phase`] values driven by [`UpdatePipeline::run`] over a shared
//! [`UpdateCtx`]:
//!
//! 1. [`PhaseName::Quiesce`] — park every old-version thread at its
//!    quiescent point (the checkpoint).
//! 2. [`PhaseName::ReinitReplay`] — boot the new version under mutable
//!    reinitialization: replay the recorded startup log, inherit descriptors
//!    and virtualized pids, and park the new version's threads.
//! 3. [`PhaseName::MatchProcesses`] — pair old processes with new-version
//!    counterparts by creation-time call-stack ID, optionally recreating
//!    counterparts for volatile quiescent points.
//! 4. [`PhaseName::TraceAndTransfer`] — mutable tracing and state transfer
//!    for every matched pair, plus per-process descriptor inheritance.
//! 5. [`PhaseName::Commit`] — resume the new version and terminate the old
//!    one (the single non-reversible step).
//!
//! Every phase returns `Result`; the driver records each phase's duration
//! into [`UpdateReport::phases`](crate::runtime::report::UpdateReport) and
//! funnels *every* failure — wherever it happens — through the single
//! [`roll_back`](UpdatePipeline::run) code path, which tears down whatever
//! exists of the new version and resumes the old one from its checkpoint.
//! A [`FaultPlan`] can force a failure at any phase boundary, which is how
//! the integration tests prove the rollback invariant phase by phase.
//!
//! # Pair-parallel trace and transfer
//!
//! `TraceAndTransfer` models the paper's parallel multi-process state
//! transfer with real threads: the matched pairs are split into disjoint
//! per-pair process borrows ([`Kernel::split_pairs`]), wrapped in `PairJob`
//! work units, and dealt round-robin onto a `std::thread::scope` worker pool
//! of [`UpdateOptions::transfer_workers`] threads (default: one per pair;
//! `1` selects the serial ablation). Cross-version metadata — interned
//! symbol/site/type names and the old→new type bridge — is resolved once
//! per update into a shared read-only
//! [`TransferContext`](crate::transfer::TransferContext) before the fan-out.
//!
//! **Determinism guarantee:** job results are merged strictly in pair order
//! — tracing statistics, per-process transfer reports, drained conflict
//! sets, descriptor inheritance and simulated clock charges are all
//! independent of the worker count and of job completion order, so an
//! update's reports and post-commit kernel state are byte-identical whether
//! it ran serially or on any number of workers (`tests/properties.rs`
//! proves this). Only the *timing model* differs:
//! [`UpdateTimings::state_transfer`](crate::runtime::report::UpdateTimings)
//! is the makespan of the executed round-robin schedule (with one worker,
//! the serial sum; with one worker per pair, the slowest pair), while
//! `state_transfer_serial` always reports the sequential wall time of the
//! same work.

use std::collections::BTreeSet;
use std::time::Instant;

use mcr_procsim::{Fd, FdPlacement, Kernel, Pid, Process, SimDuration, Syscall, SyscallPort, ThreadState};
use mcr_typemeta::InstrumentationConfig;

use crate::callstack::CallStackId;
use crate::error::{Conflict, McrError, McrResult};
use crate::interpose::Interposer;
use crate::program::{InstanceState, Program, ThreadRosterEntry};
use crate::runtime::controller::{UpdateOptions, UpdateOutcome};
use crate::runtime::report::UpdateReport;
use crate::runtime::scheduler::{
    create_instance, resume, run_startup, wait_quiescence, BootOptions, McrInstance,
};
use crate::tracing::stats::TracingStats;
use crate::tracing::tracer::{TraceOptions, Tracer};
use crate::transfer::engine::{transfer_between, ProcessTransferReport, TransferContext};

/// Identifies one stage of the live-update pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhaseName {
    /// Park the old version at its quiescent points (checkpoint).
    Quiesce,
    /// Boot the new version under mutable reinitialization (record/replay).
    ReinitReplay,
    /// Pair old processes with new-version counterparts.
    MatchProcesses,
    /// Mutable tracing and state transfer of every matched pair.
    TraceAndTransfer,
    /// Resume the new version, terminate the old (point of no return).
    Commit,
}

impl PhaseName {
    /// Every phase of the standard pipeline, in execution order.
    pub const ALL: [PhaseName; 5] = [
        PhaseName::Quiesce,
        PhaseName::ReinitReplay,
        PhaseName::MatchProcesses,
        PhaseName::TraceAndTransfer,
        PhaseName::Commit,
    ];

    /// Stable human-readable label (used in reports and conflict messages).
    pub fn label(self) -> &'static str {
        match self {
            PhaseName::Quiesce => "quiesce",
            PhaseName::ReinitReplay => "reinit-replay",
            PhaseName::MatchProcesses => "match-processes",
            PhaseName::TraceAndTransfer => "trace-and-transfer",
            PhaseName::Commit => "commit",
        }
    }
}

impl std::fmt::Display for PhaseName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Shared state threaded through every phase of one update attempt.
pub struct UpdateCtx<'k> {
    /// The simulated kernel both versions run on.
    pub kernel: &'k mut Kernel,
    /// The running old version (checkpointed by `Quiesce`, terminated by
    /// `Commit`, resumed by the rollback guard).
    pub old: McrInstance,
    /// The new version, once `ReinitReplay` has created it.
    pub new_instance: Option<McrInstance>,
    /// Options of this attempt.
    pub opts: UpdateOptions,
    /// Instrumentation configuration for the new version's build.
    pub config: InstrumentationConfig,
    /// Old-process → new-process pairs produced by `MatchProcesses`.
    pub pairs: Vec<(Pid, Pid)>,
    /// Everything measured so far (each phase appends its own record).
    pub report: UpdateReport,
    /// The program to boot, consumed by `ReinitReplay`.
    new_program: Option<Box<dyn Program>>,
    /// Set by `Commit`; decides between committed and rolled-back outcomes.
    committed: bool,
}

impl<'k> UpdateCtx<'k> {
    fn new(
        kernel: &'k mut Kernel,
        old: McrInstance,
        new_program: Box<dyn Program>,
        config: InstrumentationConfig,
        opts: &UpdateOptions,
    ) -> Self {
        let report = UpdateReport { old_startup: old.state.startup_duration, ..Default::default() };
        UpdateCtx {
            kernel,
            old,
            new_instance: None,
            opts: *opts,
            config,
            pairs: Vec::new(),
            report,
            new_program: Some(new_program),
            committed: false,
        }
    }
}

/// One stage of the update pipeline.
///
/// A phase reads and mutates the shared [`UpdateCtx`]; returning an error
/// aborts the update and sends the whole attempt through the pipeline's
/// single rollback path. Phases must keep the old version restorable until
/// [`PhaseName::Commit`] runs.
pub trait Phase {
    /// The phase's identity (drives reporting and fault injection).
    fn name(&self) -> PhaseName;

    /// Executes the phase.
    fn run(&self, ctx: &mut UpdateCtx<'_>) -> McrResult<()>;
}

/// Forces failures at phase boundaries, for rollback testing and chaos-style
/// drills. A fault "after phase P" is expressed as a fault before the next
/// phase; there is deliberately no way to inject one after `Commit`, because
/// commit is the pipeline's atomic point — nothing is reversible beyond it.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    before: Vec<PhaseName>,
}

impl FaultPlan {
    /// A plan that injects no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan that fails the update at the boundary right before `phase`.
    pub fn failing_before(phase: PhaseName) -> Self {
        FaultPlan { before: vec![phase] }
    }

    /// Adds another boundary fault to the plan.
    #[must_use]
    pub fn and_before(mut self, phase: PhaseName) -> Self {
        self.before.push(phase);
        self
    }

    /// Whether a fault fires at the boundary before `phase`.
    pub fn fires_before(&self, phase: PhaseName) -> bool {
        self.before.contains(&phase)
    }

    /// Whether the plan injects any fault at all.
    pub fn is_empty(&self) -> bool {
        self.before.is_empty()
    }
}

/// An ordered sequence of [`Phase`]s plus an optional [`FaultPlan`].
pub struct UpdatePipeline {
    phases: Vec<Box<dyn Phase>>,
    fault_plan: FaultPlan,
}

impl std::fmt::Debug for UpdatePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdatePipeline")
            .field("phases", &self.phase_names())
            .field("fault_plan", &self.fault_plan)
            .finish()
    }
}

impl Default for UpdatePipeline {
    fn default() -> Self {
        Self::standard()
    }
}

impl UpdatePipeline {
    /// The paper's standard pipeline: quiesce → reinit/replay → match →
    /// trace/transfer → commit.
    pub fn standard() -> Self {
        UpdatePipeline {
            phases: vec![
                Box::new(QuiescePhase),
                Box::new(ReinitReplayPhase),
                Box::new(MatchProcessesPhase),
                Box::new(TraceAndTransferPhase),
                Box::new(CommitPhase),
            ],
            fault_plan: FaultPlan::none(),
        }
    }

    /// Replaces the pipeline's fault plan.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// The names of the phases, in execution order.
    pub fn phase_names(&self) -> Vec<PhaseName> {
        self.phases.iter().map(|p| p.name()).collect()
    }

    /// Runs the pipeline: executes every phase in order over a fresh
    /// [`UpdateCtx`], recording per-phase durations, and returns the instance
    /// that is running afterwards together with the outcome.
    ///
    /// This driver is the *only* place that decides between commit and
    /// rollback: any phase failure — including injected faults — funnels into
    /// the single `roll_back` guard below, so there is exactly one code path
    /// that restores the old version.
    pub fn run(
        &self,
        kernel: &mut Kernel,
        old: McrInstance,
        new_program: Box<dyn Program>,
        config: InstrumentationConfig,
        opts: &UpdateOptions,
    ) -> (McrInstance, UpdateOutcome) {
        let mut ctx = UpdateCtx::new(kernel, old, new_program, config, opts);
        let t_total = ctx.kernel.now();
        let mut failure: Option<McrError> = None;
        for phase in &self.phases {
            let name = phase.name();
            if self.fault_plan.fires_before(name) {
                failure = Some(Conflict::FaultInjected { phase: name.label().into() }.into());
                break;
            }
            let start = ctx.kernel.now();
            let result = phase.run(&mut ctx);
            let duration = ctx.kernel.now().duration_since(start);
            ctx.report.phases.record(name, duration, result.is_ok());
            ctx.report.timings.absorb_phase(name, &ctx.report.phases);
            if let Err(e) = result {
                failure = Some(e);
                break;
            }
        }
        ctx.report.timings.total = ctx.kernel.now().duration_since(t_total);
        if ctx.committed {
            // Commit is the point of no return: the old version's processes
            // are gone, so even if a custom post-commit phase failed we must
            // surface the new version as running. The failure stays visible
            // in the phase trace (its record has `completed == false`).
            let new_instance =
                ctx.new_instance.take().expect("a committed pipeline leaves the new instance in the context");
            return (new_instance, UpdateOutcome::Committed(ctx.report));
        }
        match failure {
            // A pipeline that finished without committing (e.g. a custom
            // phase list with no Commit) is treated as an aborted attempt.
            None => Self::roll_back(ctx, Vec::new()),
            Some(error) => {
                let conflicts = match error {
                    McrError::Conflicts(cs) => cs,
                    other => vec![Conflict::StartupFailure {
                        syscall: "<runtime>".into(),
                        error: other.to_string(),
                    }],
                };
                Self::roll_back(ctx, conflicts)
            }
        }
    }

    /// The pipeline's single rollback guard: tears down whatever exists of
    /// the new version and resumes the old version from its checkpoint.
    /// Every aborted attempt — phase error, conflict set, injected fault —
    /// goes through here and nowhere else.
    fn roll_back(ctx: UpdateCtx<'_>, conflicts: Vec<Conflict>) -> (McrInstance, UpdateOutcome) {
        let UpdateCtx { kernel, mut old, new_instance, report, .. } = ctx;
        if let Some(new_instance) = new_instance {
            for &pid in &new_instance.state.processes {
                let _ = kernel.remove_process(pid);
            }
        }
        resume(kernel, &mut old);
        (old, UpdateOutcome::RolledBack { conflicts, report })
    }
}

// ---------------------------------------------------------------------------
// The standard phases
// ---------------------------------------------------------------------------

/// Phase 1 — checkpoint: drive the barrier protocol until every old-version
/// thread is parked at its quiescent point.
pub struct QuiescePhase;

impl Phase for QuiescePhase {
    fn name(&self) -> PhaseName {
        PhaseName::Quiesce
    }

    fn run(&self, ctx: &mut UpdateCtx<'_>) -> McrResult<()> {
        wait_quiescence(ctx.kernel, &mut ctx.old, ctx.opts.max_quiesce_rounds)?;
        ctx.report.open_connections = ctx.kernel.open_connection_count();
        Ok(())
    }
}

/// Phase 2 — restart: boot the new version under mutable reinitialization
/// (global descriptor inheritance, pid virtualization, startup replay), then
/// park it at its quiescent points so it cannot observe external events
/// before commit.
pub struct ReinitReplayPhase;

impl Phase for ReinitReplayPhase {
    fn name(&self) -> PhaseName {
        PhaseName::ReinitReplay
    }

    fn run(&self, ctx: &mut UpdateCtx<'_>) -> McrResult<()> {
        let new_program = ctx
            .new_program
            .take()
            .ok_or_else(|| McrError::InvalidState("pipeline has no program to boot".into()))?;
        let boot_opts = BootOptions {
            config: ctx.config,
            layout_slide: ctx.opts.layout_slide,
            start_quiesced: true,
            scheduler: ctx.opts.scheduler,
        };
        let interposer = Interposer::replayer(ctx.old.state.interpose.recorded_log());
        let new_instance = create_instance(ctx.kernel, new_program, interposer, &boot_opts)?;
        let new_init = new_instance.init_pid()?;
        ctx.new_instance = Some(new_instance);

        // Global inheritance: the new version's first process inherits every
        // descriptor of every old-version process at the same number.
        let old_pids = ctx.old.state.processes.clone();
        for &old_pid in &old_pids {
            let fds: Vec<Fd> = match ctx.kernel.process(old_pid) {
                Ok(p) => p.fds().iter().map(|(fd, _)| fd).collect(),
                Err(_) => continue,
            };
            for fd in fds {
                let already = ctx.kernel.process(new_init).map(|p| p.fds().contains(fd)).unwrap_or(false);
                if !already {
                    let _ = ctx.kernel.transfer_fd(old_pid, fd, new_init, FdPlacement::Exact(fd));
                }
            }
        }
        // Pid virtualization: the new initial process observes the old
        // initial process's pid.
        let old_init = old_pids[0];
        let old_virt = ctx.old.state.interpose.virtual_pid(old_init);
        let UpdateCtx { kernel, new_instance, opts, report, .. } = ctx;
        let new_instance = new_instance.as_mut().expect("created above");
        new_instance.state.interpose.map_pid(old_virt, new_init);

        run_startup(kernel, new_instance)?;
        report.new_startup = new_instance.state.startup_duration;
        // Conservative matching: recorded operations the new version omitted.
        let omission_conflicts = {
            let state = &mut new_instance.state;
            let crate::program::InstanceState { interpose, annotations, .. } = state;
            interpose.finish_replay(annotations)
        };
        if !omission_conflicts.is_empty() {
            return Err(McrError::Conflicts(omission_conflicts));
        }
        // Park every new-version thread at its quiescent point.
        wait_quiescence(kernel, new_instance, opts.max_quiesce_rounds)?;
        report.replay = new_instance.state.interpose.stats();
        Ok(())
    }
}

/// Phase 3 — pair old-version processes with new-version processes by
/// creation-time call-stack ID (and creation order), optionally recreating
/// counterparts for unmatched old processes (volatile quiescent points).
pub struct MatchProcessesPhase;

impl Phase for MatchProcessesPhase {
    fn name(&self) -> PhaseName {
        PhaseName::MatchProcesses
    }

    fn run(&self, ctx: &mut UpdateCtx<'_>) -> McrResult<()> {
        let UpdateCtx { kernel, old, new_instance, opts, report, pairs, .. } = ctx;
        let new_instance = new_instance
            .as_mut()
            .ok_or_else(|| McrError::InvalidState("new instance not created yet".into()))?;
        *pairs = match_processes(kernel, old, new_instance, opts, report)?;
        Ok(())
    }
}

/// Phase 4 — restore: mutable tracing and state transfer for every matched
/// process pair, then per-process descriptor inheritance for connection
/// descriptors created after startup.
///
/// The per-pair work is expressed as [`PairJob`]s and executed on a scoped
/// worker pool ([`UpdateOptions::transfer_workers`] threads; the default is
/// one per pair, `1` is the serial ablation). Each job owns disjoint borrows
/// of its pair's processes via [`Kernel::split_pairs`], so the jobs run
/// concurrently without sharing mutable state; results are merged back in
/// pair order, which keeps reports, conflict sets and clock accounting
/// byte-identical regardless of the worker count.
pub struct TraceAndTransferPhase;

/// The work unit of the pair-parallel restore phase: trace one old process
/// and transfer its state into the matched new process. Jobs only touch
/// their own pair plus shared read-only state, which is what
/// `std::thread::scope` requires to run them concurrently.
struct PairJob<'a> {
    index: usize,
    old_proc: &'a Process,
    new_proc: &'a mut Process,
    old_state: &'a InstanceState,
    new_state: &'a InstanceState,
    plan: &'a TransferContext,
    trace: TraceOptions,
}

/// What one [`PairJob`] produced.
struct PairOutcome {
    stats: TracingStats,
    report: ProcessTransferReport,
}

impl PairJob<'_> {
    fn run(self) -> McrResult<PairOutcome> {
        let trace = Tracer::for_process(self.old_proc, self.old_state, self.trace).trace();
        let report = transfer_between(
            self.plan,
            self.old_proc,
            self.old_state,
            self.new_proc,
            self.new_state,
            &trace,
        )?;
        Ok(PairOutcome { stats: trace.stats, report })
    }
}

/// Executes the jobs with the given worker count, returning outcomes indexed
/// by pair order.
///
/// `workers <= 1` runs the jobs in order on the calling thread and stops at
/// the first error, exactly like the historical sequential loop. Otherwise
/// the jobs are dealt round-robin onto `workers` scoped threads; the
/// round-robin assignment is also what the reported parallel makespan is
/// computed from, so the timing model matches the schedule that actually
/// executed.
fn run_pair_jobs(jobs: Vec<PairJob<'_>>, workers: usize) -> Vec<McrResult<PairOutcome>> {
    let n = jobs.len();
    if workers <= 1 {
        let mut out = Vec::with_capacity(n);
        for job in jobs {
            let result = job.run();
            let failed = result.is_err();
            out.push(result);
            if failed {
                break;
            }
        }
        return out;
    }
    let mut buckets: Vec<Vec<PairJob<'_>>> = Vec::new();
    buckets.resize_with(workers, Vec::new);
    for job in jobs {
        buckets[job.index % workers].push(job);
    }
    let mut slots: Vec<Option<McrResult<PairOutcome>>> = Vec::new();
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || bucket.into_iter().map(|job| (job.index, job.run())).collect::<Vec<_>>())
            })
            .collect();
        for handle in handles {
            for (index, outcome) in handle.join().expect("transfer worker panicked") {
                slots[index] = Some(outcome);
            }
        }
    });
    slots.into_iter().map(|slot| slot.expect("every pair job ran")).collect()
}

/// Per-process descriptor inheritance: connection descriptors created after
/// startup exist only in the matched old process. Descriptor numbers may
/// clash across processes (two old workers can both own a "fd 7" referring
/// to different connections); the matched process's own object wins,
/// mirroring the per-process mapping the paper calls for in multiprocess
/// deployments.
fn inherit_connection_fds(kernel: &mut Kernel, old_pid: Pid, new_pid: Pid) {
    let fds: Vec<(Fd, mcr_procsim::ObjId)> = match kernel.process(old_pid) {
        Ok(p) => p.fds().iter().map(|(fd, e)| (fd, e.object)).collect(),
        Err(_) => Vec::new(),
    };
    for (fd, old_obj) in fds {
        let existing = kernel.process(new_pid).ok().and_then(|p| p.fds().get(fd).ok());
        match existing {
            Some(entry) if entry.object == old_obj => {}
            Some(_) => {
                // Same number, different object: replace it with the object
                // this process actually owned in the old version.
                let new_tid = kernel.process(new_pid).map(|p| p.main_tid());
                if let Ok(tid) = new_tid {
                    let _ = kernel.syscall(new_pid, tid, Syscall::Close { fd });
                    let _ = kernel.transfer_fd(old_pid, fd, new_pid, FdPlacement::Exact(fd));
                }
            }
            None => {
                let _ = kernel.transfer_fd(old_pid, fd, new_pid, FdPlacement::Exact(fd));
            }
        }
    }
}

impl Phase for TraceAndTransferPhase {
    fn name(&self) -> PhaseName {
        PhaseName::TraceAndTransfer
    }

    fn run(&self, ctx: &mut UpdateCtx<'_>) -> McrResult<()> {
        if ctx.pairs.is_empty() {
            ctx.report.timings.state_transfer = SimDuration(0);
            return Ok(());
        }
        let workers = ctx.opts.effective_transfer_workers(ctx.pairs.len());

        // Fan out: split the kernel's process table into disjoint per-pair
        // borrows and run every trace+transfer job on the worker pool. The
        // interned cross-version metadata is built once and shared read-only.
        let wall = Instant::now();
        let outcomes = {
            let UpdateCtx { kernel, old, new_instance, opts, pairs, .. } = ctx;
            let new_instance = new_instance.as_mut().expect("matched pairs imply an instance");
            let old_state = &old.state;
            let new_state = &new_instance.state;
            let plan = TransferContext::new(old_state, new_state);
            let split = kernel.split_pairs(pairs).map_err(McrError::Sim)?;
            let jobs: Vec<PairJob<'_>> = split
                .into_iter()
                .enumerate()
                .map(|(index, (old_proc, new_proc))| PairJob {
                    index,
                    old_proc,
                    new_proc,
                    old_state,
                    new_state,
                    plan: &plan,
                    trace: opts.trace,
                })
                .collect();
            run_pair_jobs(jobs, workers)
        };
        let host_wall_ns = u64::try_from(wall.elapsed().as_nanos()).unwrap_or(u64::MAX);

        // Merge deterministically, in pair order: tracing statistics,
        // simulated clock charges, per-process reports, conflict sets and
        // descriptor inheritance are all independent of the worker count and
        // of job completion order. Reports keep their conflicts (per-process
        // attribution survives into the rolled-back report); the error list
        // is materialized only on the cold rollback path below.
        let mut any_conflicts = false;
        let mut failure: Option<McrError> = None;
        let mut pair_costs: Vec<SimDuration> = Vec::with_capacity(ctx.pairs.len());
        for (index, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Err(e) => {
                    failure = Some(e);
                    break;
                }
                Ok(PairOutcome { stats, report }) => {
                    let (old_pid, new_pid) = ctx.pairs[index];
                    ctx.report.tracing.merge(&stats);
                    ctx.kernel.advance_clock(report.duration);
                    pair_costs.push(report.duration);
                    any_conflicts |= !report.conflicts.is_empty();
                    ctx.report.transfer.push(report);
                    inherit_connection_fds(ctx.kernel, old_pid, new_pid);
                }
            }
        }
        ctx.report.transfer.workers = workers;
        ctx.report.transfer.host_wall_ns = host_wall_ns;
        if let Some(e) = failure {
            return Err(e);
        }
        if any_conflicts {
            return Err(McrError::Conflicts(ctx.report.transfer.conflicts().cloned().collect()));
        }

        // The measured parallel state-transfer time: the makespan of the
        // round-robin schedule the worker pool executed. One worker yields
        // the serial sum; one worker per pair yields the per-pair maximum
        // (the paper's parallel multi-process transfer).
        let mut load = vec![SimDuration(0); workers];
        for (index, cost) in pair_costs.iter().enumerate() {
            load[index % workers] = load[index % workers].saturating_add(*cost);
        }
        ctx.report.timings.state_transfer = load.into_iter().max().unwrap_or_default();
        Ok(())
    }
}

/// Phase 5 — commit: the new version resumes; the old version is terminated.
/// This is the pipeline's single non-reversible step.
pub struct CommitPhase;

impl Phase for CommitPhase {
    fn name(&self) -> PhaseName {
        PhaseName::Commit
    }

    fn run(&self, ctx: &mut UpdateCtx<'_>) -> McrResult<()> {
        {
            let UpdateCtx { kernel, new_instance, .. } = ctx;
            let new_instance =
                new_instance.as_mut().ok_or_else(|| McrError::InvalidState("nothing to commit".into()))?;
            resume(kernel, new_instance);
        }
        for &pid in &ctx.old.state.processes {
            let _ = ctx.kernel.remove_process(pid);
        }
        ctx.committed = true;
        Ok(())
    }
}

/// Pairs old-version processes with new-version processes by creation-time
/// call-stack ID (and creation order), optionally recreating counterparts
/// for unmatched old processes.
fn match_processes(
    kernel: &mut Kernel,
    old: &McrInstance,
    new_instance: &mut McrInstance,
    opts: &UpdateOptions,
    report: &mut UpdateReport,
) -> McrResult<Vec<(Pid, Pid)>> {
    let new_init = new_instance.init_pid()?;
    let mut pairs = Vec::new();
    let mut used: BTreeSet<u32> = BTreeSet::new();
    for &old_pid in &old.state.processes {
        let old_proc = kernel.process(old_pid).map_err(McrError::Sim)?;
        let old_cs = CallStackId::from_frames(old_proc.creation_stack());
        let old_stack = old_proc.creation_stack().to_vec();
        let candidate =
            new_instance.state.processes.iter().copied().filter(|p| !used.contains(&p.0)).find(|&p| {
                kernel
                    .process(p)
                    .map(|proc| CallStackId::from_frames(proc.creation_stack()) == old_cs)
                    .unwrap_or(false)
            });
        match candidate {
            Some(new_pid) => {
                used.insert(new_pid.0);
                pairs.push((old_pid, new_pid));
                report.processes_matched += 1;
            }
            None if opts.recreate_unmatched_processes => {
                // Fork a counterpart from the new version's initial process
                // (modelling the annotated control-migration extension the
                // paper describes for volatile quiescent points).
                let init_tid = kernel.process(new_init).map_err(McrError::Sim)?.main_tid();
                let child = kernel
                    .syscall(new_init, init_tid, Syscall::Fork)
                    .map_err(McrError::Sim)?
                    .as_pid()
                    .ok_or_else(|| McrError::InvalidState("fork did not return a pid".into()))?;
                {
                    let proc = kernel.process_mut(child).map_err(McrError::Sim)?;
                    proc.set_creation_stack(old_stack);
                    let main = proc.main_tid();
                    proc.thread_mut(main).map_err(McrError::Sim)?.set_state(ThreadState::Quiesced);
                }
                let child_tid = kernel.process(child).map_err(McrError::Sim)?.main_tid();
                let name = old
                    .state
                    .threads
                    .iter()
                    .find(|t| t.pid == old_pid)
                    .map(|t| t.name.clone())
                    .unwrap_or_else(|| "recreated".to_string());
                new_instance.state.processes.push(child);
                new_instance.state.add_roster_entry(ThreadRosterEntry {
                    pid: child,
                    tid: child_tid,
                    name,
                    created_during_startup: false,
                    exited: false,
                });
                // The pid the old process observed stays meaningful in
                // transferred data structures.
                let old_virt = old.state.interpose.virtual_pid(old_pid);
                new_instance.state.interpose.map_pid(old_virt, child);
                used.insert(child.0);
                pairs.push((old_pid, child));
                report.processes_recreated += 1;
            }
            None => {
                return Err(Conflict::MissingCounterpart { object: format!("process {old_pid}") }.into());
            }
        }
    }
    Ok(pairs)
}
