//! The staged live-update pipeline.
//!
//! The paper's atomic, reversible update (checkpoint → restart → restore →
//! commit-or-rollback, Figure 1) is expressed here as an ordered sequence of
//! named [`Phase`] values driven by [`UpdatePipeline::run`] over a shared
//! [`UpdateCtx`]:
//!
//! 1. [`PhaseName::Quiesce`] — park every old-version thread at its
//!    quiescent point (the checkpoint).
//! 2. [`PhaseName::ReinitReplay`] — boot the new version under mutable
//!    reinitialization: replay the recorded startup log, inherit descriptors
//!    and virtualized pids, and park the new version's threads.
//! 3. [`PhaseName::MatchProcesses`] — pair old processes with new-version
//!    counterparts by creation-time call-stack ID, optionally recreating
//!    counterparts for volatile quiescent points.
//! 4. [`PhaseName::TraceAndTransfer`] — mutable tracing and state transfer
//!    for every matched pair, plus per-process descriptor inheritance.
//! 5. [`PhaseName::Commit`] — resume the new version and terminate the old
//!    one (the single non-reversible step).
//!
//! Every phase returns `Result`; the driver records each phase's duration
//! into [`UpdateReport::phases`](crate::runtime::report::UpdateReport) and
//! funnels *every* failure — wherever it happens — through the single
//! [`roll_back`](UpdatePipeline::run) code path, which tears down whatever
//! exists of the new version and resumes the old one from its checkpoint.
//! A [`FaultPlan`] can force a failure at any phase boundary, which is how
//! the integration tests prove the rollback invariant phase by phase.
//!
//! # Pair-parallel trace and transfer
//!
//! `TraceAndTransfer` models the paper's parallel multi-process state
//! transfer with real threads: the matched pairs are split into disjoint
//! per-pair process borrows ([`Kernel::split_pairs`]), wrapped in `PairJob`
//! work units, and dealt round-robin onto a `std::thread::scope` worker pool
//! of [`UpdateOptions::transfer_workers`] threads (default: one per pair;
//! `1` selects the serial ablation). Cross-version metadata — interned
//! symbol/site/type names and the old→new type bridge — is resolved once
//! per update into a shared read-only
//! [`TransferContext`](crate::transfer::TransferContext) before the fan-out.
//!
//! **Determinism guarantee:** job results are merged strictly in pair order
//! — tracing statistics, per-process transfer reports, drained conflict
//! sets, descriptor inheritance and simulated clock charges are all
//! independent of the worker count and of job completion order, so an
//! update's reports and post-commit kernel state are byte-identical whether
//! it ran serially or on any number of workers (`tests/properties.rs`
//! proves this). Only the *timing model* differs:
//! [`UpdateTimings::state_transfer`](crate::runtime::report::UpdateTimings)
//! is the makespan of the executed schedule (with one worker, the serial
//! sum; with one worker per pair, the slowest pair), while
//! `state_transfer_serial` always reports the sequential wall time of the
//! same work. Jobs are pulled from a shared work queue (work stealing), so
//! skewed pair sizes cannot stall the makespan behind an unlucky static
//! assignment; the reported makespan is the matching deterministic
//! list-schedule (each job, in pair order, to the least-loaded worker).
//!
//! ## Intra-pair sharding and the shared worker budget
//!
//! Pair-level parallelism cannot help a *single-process* server with a huge
//! heap — its one pair used to trace and transfer on one thread. With
//! [`UpdateOptions::intra_pair_shards`] above one, the *within-pair* passes
//! are parallel too: the tracer walks the heap with a sharded
//! level-synchronous traversal
//! ([`Tracer::with_shards`](crate::tracing::tracer::Tracer::with_shards)),
//! and the transfer engine snapshots/transforms contiguous address-range
//! shards of the object list on a shard-worker pool, applying the prepared
//! writes serially in address order (see
//! [`TransferContext::with_intra_pair_shards`]).
//!
//! The two knobs compose over **one global worker budget**: with an explicit
//! `transfer_workers = W` and `intra_pair_shards = S`, the pair-level pool
//! shrinks to `ceil(W / S)` workers, each of which fans out into `S` shard
//! threads — so pairs × shards never exceed the requested budget (the
//! `transfer_workers = 0` default sizes the budget at `pairs × S`). The
//! determinism contract is unchanged and extends to sharding: graph, pins,
//! Table 2 statistics, transfer reports, conflicts, the n-th-object fault
//! site and post-commit memory are byte-identical across every
//! (worker count × shard count) combination; only the charged makespan —
//! the deterministic list-schedule over per-shard costs, nested inside the
//! per-pair list-schedule — shrinks as shards are added
//! (`benches/intra_pair.rs` measures it, `tests/properties.rs` proves the
//! equivalence).
//!
//! # Pre-copy: moving trace & transfer out of the quiescence window
//!
//! When [`UpdateOptions::precopy`](crate::runtime::controller::UpdateOptions)
//! is enabled the pipeline borrows the *pre-copy* idea from live migration
//! and runs **six** phases, in this order:
//!
//! 1. [`PhaseName::ReinitReplay`] — the new version boots (parked) while the
//!    old version is still serving.
//! 2. [`PhaseName::MatchProcesses`] — pairs are established up front.
//! 3. [`PhaseName::Precopy`] — iterative concurrent rounds: each round bumps
//!    the old processes' write epoch, delta-retraces only the objects
//!    dirtied since the previous round
//!    ([`ObjectGraph::retrace_dirty`](crate::tracing::graph::ObjectGraph)),
//!    copies the stale delta into the already-placed new-version objects
//!    ([`precopy_transfer_round`]), and then lets the old instance serve
//!    pending traffic (plus an optional mutator/workload hook). Iteration
//!    stops after `precopy.rounds` rounds or as soon as a round ends with at
//!    most `precopy.convergence_bytes` freshly dirtied bytes.
//! 4. [`PhaseName::Quiesce`] — only now does the world stop.
//! 5. [`PhaseName::TraceAndTransfer`] — a final delta retrace plus
//!    [`transfer_residual`]: every write is re-emitted (memory, reports and
//!    conflicts stay byte-identical to a stop-the-world run) but the clock
//!    is charged only for the residual set still stale at quiesce time.
//! 6. [`PhaseName::Commit`] — as before.
//!
//! Downtime therefore shrinks from O(total live heap) to O(working set
//! written during the last round), which
//! [`UpdateTimings::downtime`](crate::runtime::report::UpdateTimings)
//! vs. [`UpdateTimings::precopy`](crate::runtime::report::UpdateTimings)
//! makes directly measurable (`benches/precopy_downtime.rs` sweeps it).
//! With pre-copy disabled (`precopy.rounds == 0`, the default) the classic
//! five-phase stop-the-world order is used unchanged.
//!
//! # Post-copy: moving the *apply* pass out of the window too
//!
//! Pre-copy is beaten by its own assumption on write-heavy heaps: when every
//! round re-dirties everything, the residual never shrinks and the window
//! still pays for a full copy. [`TransferMode::Postcopy`] inverts the idea —
//! commit *first*, transfer *later*:
//!
//! 1. [`PhaseName::ReinitReplay`] / 2. [`PhaseName::MatchProcesses`] /
//!    3. [`PhaseName::Precopy`] — exactly as above (pre-copy rounds are
//!    optional and compose with post-copy).
//! 4. [`PhaseName::Quiesce`] — the world stops.
//! 5. [`PhaseName::PostcopyCommit`] — the final delta retrace runs and the
//!    transfer *plan* is computed, but for deferred pairs the prepared
//!    writes are **parked** instead of applied: their target pages are
//!    write-protected in the new process
//!    ([`AddressSpace::protect_range`](mcr_procsim::AddressSpace)) and the
//!    new version resumes immediately. The window pays for trace + planning
//!    only, not for the copy.
//! 6. [`PhaseName::PostcopyDrain`] — concurrent with the resumed new
//!    version: each round lets the new instance serve, services any **access
//!    traps** (a store to a still-parked page parks as a
//!    [`PendingTrap`](mcr_procsim::PendingTrap); the handler faults in the
//!    touched objects via [`fault_in_at`](crate::transfer::fault_in_at),
//!    then replays the trapped store), and pushes one
//!    [`PostcopyOptions::drain_batch`](crate::runtime::controller::PostcopyOptions)-sized
//!    background [`drain_step`](crate::transfer::drain_step) per pair —
//!    skipping anything a trap already serviced, so every deferred object is
//!    applied exactly once. When the last pair drains, the old processes are
//!    removed and the update is committed (the point of no return moves from
//!    phase 5 to the end of phase 6: a fault mid-drain still rolls back to
//!    the old version).
//!
//! [`TransferMode::Adaptive`] chooses per pair at commit time: a pair whose
//! residual is at most
//! [`TransferPolicy::sync_residual_bytes`](crate::runtime::controller::TransferPolicy),
//! or whose pre-copy rounds are still converging (last-round dirty bytes ≤
//! `converging_percent` of the previous round's), applies synchronously as
//! in pre-copy; everything else defers. The result is measured by
//! `benches/adaptive_transfer.rs`: adaptive downtime ≤ the best static mode
//! on every sweep point, and all modes converge to byte-identical kernel
//! fingerprints (`tests/properties.rs` proves the equivalence, including
//! rollback from mid-drain faults).
//!
//! # Durable checkpoints: surviving crashes, not just aborts
//!
//! Rollback only helps while the old instance is alive. For crashes of the
//! serving version itself,
//! [`with_checkpoint`](UpdatePipeline::with_checkpoint) inserts a
//! [`PhaseName::Checkpoint`] phase right after the quiescence barrier: with
//! every old-version thread parked, the instance's full recoverable state
//! is serialized through parallel shard writers to a
//! [`Store`](mcr_procsim::Store) as a versioned, checksummed manifest
//! (shards synced strictly before the `MANIFEST` blob that names them, so
//! an interrupted write is never visible as a durable version). The
//! crash-recovery flow is owned by
//! [`supervised_update_durable`](crate::runtime::supervisor::supervised_update_durable):
//! checkpoint before each attempt; if the old instance dies mid-update
//! (the [`ChaosPlan::crashing_old_before`] site), restore the newest intact
//! checkpoint with
//! [`restore_latest`](crate::transfer::checkpoint::restore_latest) — a
//! fresh kernel, a re-boot of the checkpointed generation, and a typed
//! 15-step reconcile ending in a digest self-check — then retry the update
//! on the revived instance. Corrupt or torn versions are rejected by
//! checksum and fall back to the next older one; `benches/checkpoint.rs`
//! sweeps every block-level crash point and asserts fingerprint-identical
//! recovery or clean rejection for each.
//!
//! # Fault injection and chaos testing
//!
//! A [`ChaosPlan`] (the type [`FaultPlan`] now aliases) arms triggers of
//! the following kinds on one run, and the first trigger reached fires:
//!
//! * **phase boundaries** — [`ChaosPlan::at_boundaries`] fails the run
//!   right before each listed phase executes (multi-boundary plans arm
//!   several; the earliest in pipeline order fires);
//! * **n-th transfer-object write** — [`ChaosPlan::failing_at_transfer_object`]
//!   fails the n-th object write the transfer engine performs, counted
//!   across pairs, shards and pre-copy rounds (use
//!   `transfer_workers = 1` for a deterministic write order);
//! * **n-th syscall** — [`ChaosPlan::failing_at_syscall`] arms
//!   [`Kernel::arm_syscall_fault`]: the n-th kernel syscall issued after
//!   the pipeline starts is suppressed and fails with
//!   `SimError::FaultInjected`, wherever it lands (replay, serving rounds,
//!   pre-copy traffic);
//! * **n-th post-copy fault-in** — [`ChaosPlan::failing_at_fault_in`] fails
//!   the n-th object faulted in after the post-copy resume, whether a trap
//!   handler or a background drain batch pulled it (counted across pairs
//!   and drain rounds);
//! * **n-th drain batch** — [`ChaosPlan::failing_at_drain_step`] fails the
//!   n-th background drain batch of the [`PhaseName::PostcopyDrain`] phase,
//!   which is the only fault site *after* the new version has resumed but
//!   *before* the point of no return;
//! * **n-th checkpoint block** — [`ChaosPlan::failing_at_manifest_write`]
//!   crashes the checkpoint store before the n-th block the
//!   [`PhaseName::Checkpoint`] phase writes;
//!   [`ChaosPlan::failing_at_torn_write`] additionally leaves that block torn
//!   (half old bytes, half garbage), so only checksum validation can
//!   reject it;
//! * **n-th restore step** — [`ChaosPlan::failing_at_restore_step`] fails
//!   the n-th step of a checkpoint restore attempt (consumed by the
//!   restore-aware supervisor, not the pipeline itself);
//! * **old-instance crash** — [`ChaosPlan::crashing_old_before`] kills the
//!   serving version's processes right before the given phase: rollback
//!   cannot resume it, recovery needs a durable checkpoint.
//!
//! Independent of fault plans, [`UpdatePipeline::with_phase_deadline`] and
//! [`with_uniform_phase_deadline`](UpdatePipeline::with_uniform_phase_deadline)
//! attach sim-clock watchdog budgets: a phase (other than `Commit`, past
//! which there is no rollback) that overruns its budget aborts the update
//! with [`Conflict::WatchdogExpired`] and rolls back.
//!
//! Every failure, injected or organic, funnels through the same rollback
//! guard, which is what the chaos engine verifies at scale:
//!
//! 1. **Enumerate** — run the pipeline once fault-free; the committed
//!    report's [`object_writes`](crate::runtime::report::UpdateReport) and
//!    `update_syscalls` counters plus its phase records become a
//!    [`FaultCatalog`](crate::runtime::chaos::FaultCatalog) of every
//!    injectable site.
//! 2. **Campaign** — draw seeded schedules over the catalog with
//!    [`random_plan`](crate::runtime::chaos::random_plan) and
//!    [`ChaosRng`](crate::runtime::chaos::ChaosRng) (deterministic
//!    xorshift64*: a seed fully reproduces a campaign), asserting that
//!    every fired schedule rolls back to a byte-identical old instance and
//!    that [`supervised_update`](crate::runtime::supervisor::supervised_update)
//!    then converges to a commit once the fault clears
//!    (`benches/chaos.rs` runs the full grid, `tests/chaos.rs` a bounded
//!    one).
//! 3. **Reproduce** — a failing schedule is reduced with
//!    [`shrink_schedule`](crate::runtime::chaos::shrink_schedule) to a
//!    1-minimal reproducer; that plan plus the campaign seed replays the
//!    failure exactly (same virtual kernel, same schedule, same outcome).

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;
use std::sync::Mutex;
use std::time::Instant;

use mcr_procsim::{
    Fd, FdPlacement, Kernel, PendingTrap, Pid, Process, SimDuration, SimError, Store, Syscall, SyscallPort,
    ThreadState, WriteFault, PAGE_SIZE,
};
use mcr_typemeta::InstrumentationConfig;

use crate::callstack::CallStackId;
use crate::error::{Conflict, McrError, McrResult};
use crate::interpose::Interposer;
use crate::program::{InstanceState, Program, ThreadRosterEntry};
use crate::runtime::controller::{TransferMode, TransferPolicy, UpdateOptions, UpdateOutcome};
use crate::runtime::report::UpdateReport;
use crate::runtime::scheduler::{
    create_instance, resume, run_round, run_startup, wait_quiescence, BootOptions, McrInstance,
};
use crate::tracing::stats::TracingStats;
use crate::tracing::tracer::{TraceOptions, TraceResult, Tracer};
use crate::transfer::checkpoint::{write_checkpoint, CheckpointOptions};
use crate::transfer::engine::{
    drain_step, fault_in_at, list_schedule_makespan, postcopy_commit, precopy_transfer_round,
    transfer_residual, DeltaPlan, PostcopyResidual, PrecopyRoundReport, ProcessTransferReport, ResidualStats,
    TransferContext,
};

/// Identifies one stage of the live-update pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhaseName {
    /// Park the old version at its quiescent points (checkpoint).
    Quiesce,
    /// Write a durable checkpoint of the quiesced old instance to a
    /// [`Store`] (optional; inserted after `Quiesce` by
    /// [`UpdatePipeline::with_checkpoint`]). A crash of the old instance
    /// later in the update recovers from this durable version via
    /// [`restore_latest`](crate::transfer::checkpoint::restore_latest).
    Checkpoint,
    /// Boot the new version under mutable reinitialization (record/replay).
    ReinitReplay,
    /// Pair old processes with new-version counterparts.
    MatchProcesses,
    /// Iterative concurrent pre-copy rounds while the old version serves.
    Precopy,
    /// Mutable tracing and state transfer of every matched pair.
    TraceAndTransfer,
    /// Post-copy commit: final delta retrace, control-state commit, parked
    /// residual armed behind access traps, new version resumed immediately.
    PostcopyCommit,
    /// Post-copy drain: the resumed new version serves while traps are
    /// serviced and the background drainer retires the parked residual;
    /// ends by terminating the old version (point of no return).
    PostcopyDrain,
    /// Resume the new version, terminate the old (point of no return).
    Commit,
}

impl PhaseName {
    /// Every phase of the standard (stop-the-world) pipeline, in execution
    /// order.
    pub const ALL: [PhaseName; 5] = [
        PhaseName::Quiesce,
        PhaseName::ReinitReplay,
        PhaseName::MatchProcesses,
        PhaseName::TraceAndTransfer,
        PhaseName::Commit,
    ];

    /// Every phase of the pre-copy pipeline, in execution order: the new
    /// version boots and is matched while the old one still serves, the
    /// bulk of the state is copied concurrently, and the world stops only
    /// for the residual delta.
    pub const PRECOPY_ALL: [PhaseName; 6] = [
        PhaseName::ReinitReplay,
        PhaseName::MatchProcesses,
        PhaseName::Precopy,
        PhaseName::Quiesce,
        PhaseName::TraceAndTransfer,
        PhaseName::Commit,
    ];

    /// Every phase of the post-copy pipeline, in execution order: like
    /// pre-copy up to the quiescence barrier (the `Precopy` phase no-ops
    /// when zero rounds are configured — pure post-copy), then the world
    /// stops only long enough for [`PhaseName::PostcopyCommit`] to commit
    /// control state and park the residual, and [`PhaseName::PostcopyDrain`]
    /// retires the parked objects while the *new* version serves.
    pub const POSTCOPY_ALL: [PhaseName; 6] = [
        PhaseName::ReinitReplay,
        PhaseName::MatchProcesses,
        PhaseName::Precopy,
        PhaseName::Quiesce,
        PhaseName::PostcopyCommit,
        PhaseName::PostcopyDrain,
    ];

    /// Stable human-readable label (used in reports and conflict messages).
    pub fn label(self) -> &'static str {
        match self {
            PhaseName::Quiesce => "quiesce",
            PhaseName::Checkpoint => "checkpoint",
            PhaseName::ReinitReplay => "reinit-replay",
            PhaseName::MatchProcesses => "match-processes",
            PhaseName::Precopy => "precopy",
            PhaseName::TraceAndTransfer => "trace-and-transfer",
            PhaseName::PostcopyCommit => "postcopy-commit",
            PhaseName::PostcopyDrain => "postcopy-drain",
            PhaseName::Commit => "commit",
        }
    }
}

impl std::fmt::Display for PhaseName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A callback the pre-copy phase invokes after every concurrent copy round,
/// while the old version is still live. Benchmarks and property tests use
/// it to model a write workload dirtying state between rounds (and to issue
/// traffic the serving rounds then answer); the argument is the 1-based
/// round number that just finished.
pub type PrecopyHook = Box<dyn FnMut(&mut Kernel, &mut McrInstance, usize)>;

/// A callback the post-copy drain phase invokes after the serving rounds of
/// every drain iteration, with the *new* version already resumed and
/// serving. Benchmarks and property tests use it to model post-commit
/// traffic writing into not-yet-transferred pages (the access-trap path);
/// the argument is the 1-based drain round that just served.
pub type PostcopyHook = Box<dyn FnMut(&mut Kernel, &mut McrInstance, usize)>;

/// Simulated cost of one access-trap round trip (the userfaultfd-style
/// kernel bounce), charged to
/// [`UpdateTimings::trap_service`](crate::runtime::report::UpdateTimings)
/// *on top of* the faulted-in objects' apply cost: the faulting thread is
/// blocked for the whole service, so this is downtime even though the
/// instance as a whole keeps running.
pub const TRAP_SERVICE_LATENCY: SimDuration = SimDuration(10_000);

/// Per-pair resumable pre-copy state: the traced object graph maintained
/// incrementally across rounds plus the engine's [`DeltaPlan`].
pub struct PairPrecopyState {
    /// The pair's delta plan (placements, copied-at epochs, round log).
    pub delta: DeltaPlan,
    /// The incrementally maintained trace (None until the first round).
    pub trace: Option<TraceResult>,
}

/// Per-pair post-copy state built by the commit phase and consumed by the
/// drain phase, aligned with `UpdateCtx::pairs`.
pub struct PairPostcopyState {
    /// The pair's delta plan, kept alive so the placement and copied-at
    /// bookkeeping outlives the commit window while the residual drains.
    pub delta: DeltaPlan,
    /// The parked residual (already drained for a pair the adaptive policy
    /// synced inside the window).
    pub residual: PostcopyResidual,
}

/// Shared state threaded through every phase of one update attempt.
pub struct UpdateCtx<'k> {
    /// The simulated kernel both versions run on.
    pub kernel: &'k mut Kernel,
    /// The running old version (checkpointed by `Quiesce`, terminated by
    /// `Commit`, resumed by the rollback guard).
    pub old: McrInstance,
    /// The new version, once `ReinitReplay` has created it.
    pub new_instance: Option<McrInstance>,
    /// Options of this attempt.
    pub opts: UpdateOptions,
    /// Instrumentation configuration for the new version's build.
    pub config: InstrumentationConfig,
    /// Old-process → new-process pairs produced by `MatchProcesses`.
    pub pairs: Vec<(Pid, Pid)>,
    /// Everything measured so far (each phase appends its own record).
    pub report: UpdateReport,
    /// Cross-version transfer metadata, built once by the first phase that
    /// needs it (`Precopy`, or `TraceAndTransfer` without pre-copy).
    pub plan: Option<TransferContext>,
    /// Per-pair pre-copy state, aligned with `pairs`; empty when no
    /// pre-copy rounds ran.
    pub pair_precopy: Vec<PairPrecopyState>,
    /// Per-pair post-copy state, aligned with `pairs`; filled by
    /// `PostcopyCommit`, drained (and emptied of work) by `PostcopyDrain`.
    pub pair_postcopy: Vec<PairPostcopyState>,
    /// The fault plan of the pipeline (mid-phase triggers are armed on the
    /// transfer context when it is built).
    pub fault: FaultPlan,
    /// Between-rounds callback of the pre-copy phase.
    pub precopy_hook: Option<PrecopyHook>,
    /// Between-rounds callback of the post-copy drain phase.
    pub postcopy_hook: Option<PostcopyHook>,
    /// The program to boot, consumed by `ReinitReplay`.
    new_program: Option<Box<dyn Program>>,
    /// Set by `Commit`; decides between committed and rolled-back outcomes.
    committed: bool,
}

impl<'k> UpdateCtx<'k> {
    fn new(
        kernel: &'k mut Kernel,
        old: McrInstance,
        new_program: Box<dyn Program>,
        config: InstrumentationConfig,
        opts: &UpdateOptions,
    ) -> Self {
        let report = UpdateReport { old_startup: old.state.startup_duration, ..Default::default() };
        UpdateCtx {
            kernel,
            old,
            new_instance: None,
            opts: *opts,
            config,
            pairs: Vec::new(),
            report,
            plan: None,
            pair_precopy: Vec::new(),
            pair_postcopy: Vec::new(),
            fault: FaultPlan::none(),
            precopy_hook: None,
            postcopy_hook: None,
            new_program: Some(new_program),
            committed: false,
        }
    }

    /// Builds the shared [`TransferContext`] if it does not exist yet,
    /// arming any mid-phase object fault of the pipeline's fault plan.
    fn ensure_plan(&mut self) -> McrResult<()> {
        if self.plan.is_none() {
            let new_state = &self
                .new_instance
                .as_ref()
                .ok_or_else(|| McrError::InvalidState("new instance not created yet".into()))?
                .state;
            self.plan = Some(
                TransferContext::new(&self.old.state, new_state)
                    .with_object_fault(self.fault.at_transfer_object())
                    .with_intra_pair_shards(self.opts.effective_intra_pair_shards()),
            );
        }
        Ok(())
    }
}

/// One stage of the update pipeline.
///
/// A phase reads and mutates the shared [`UpdateCtx`]; returning an error
/// aborts the update and sends the whole attempt through the pipeline's
/// single rollback path. Phases must keep the old version restorable until
/// [`PhaseName::Commit`] runs.
pub trait Phase {
    /// The phase's identity (drives reporting and fault injection).
    fn name(&self) -> PhaseName;

    /// Executes the phase.
    fn run(&self, ctx: &mut UpdateCtx<'_>) -> McrResult<()>;
}

/// A chaos schedule: forces failures at phase boundaries, in the middle of
/// state transfer (n-th object write), or at the n-th kernel syscall issued
/// while the update is in flight. A fault "after phase P" is expressed as a
/// fault before the next phase; there is deliberately no way to inject one
/// after `Commit`, because commit is the pipeline's atomic point — nothing
/// is reversible beyond it.
///
/// Plans compose: one schedule may arm several boundary faults plus both
/// mid-phase triggers; the *first* site reached fires (each trigger is
/// one-shot, so a supervisor retry that re-runs the pipeline with the same
/// plan re-arms it). Schedules over an enumerated site catalog — including
/// randomized campaigns and shrinking — live in
/// [`chaos`](crate::runtime::chaos).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    before: Vec<PhaseName>,
    /// Mid-phase trigger: abort right before the n-th (1-based) object
    /// write the transfer engine would perform, counted across every pair
    /// and every pre-copy round.
    at_transfer_object: Option<u64>,
    /// Mid-phase trigger: the n-th (1-based) kernel syscall issued after
    /// the pipeline starts fails with `SimError::FaultInjected` instead of
    /// executing (armed via `Kernel::arm_syscall_fault`).
    at_syscall: Option<u64>,
    /// Post-copy trigger: abort right before the n-th (1-based) parked
    /// object is applied after the new version resumed, whether by trap
    /// service or by the background drainer, counted across pairs and drain
    /// rounds.
    at_fault_in: Option<u64>,
    /// Post-copy trigger: abort right before the n-th (1-based) background
    /// drain batch executes, counted across pairs and drain rounds.
    at_drain_step: Option<u64>,
    /// Checkpoint trigger: the checkpoint store crashes after the n-th
    /// (1-based) block written by this attempt's [`PhaseName::Checkpoint`]
    /// phase — everything past the crash point is lost, everything before
    /// it persists (possibly a truncated blob).
    at_manifest_write: Option<u64>,
    /// Checkpoint trigger: like `at_manifest_write`, but the crashing block
    /// itself is *torn* — half old bytes, half garbage — so only checksum
    /// validation can reject it.
    at_torn_write: Option<u64>,
    /// Restore trigger: the n-th (1-based) step of a checkpoint restore
    /// attempt fails (see
    /// [`RESTORE_STEPS`](crate::transfer::checkpoint::RESTORE_STEPS)).
    /// Consumed by the restore-aware supervisor's recovery path, not by the
    /// pipeline itself.
    at_restore_step: Option<u64>,
    /// Crash trigger: the old instance's processes are killed right before
    /// the given phase executes — modelling a crash of the *serving*
    /// version mid-update. Rollback cannot resume it; recovery needs a
    /// durable checkpoint.
    crash_old_before: Option<PhaseName>,
}

/// Former name of [`ChaosPlan`], kept as an alias for older call sites.
pub type FaultPlan = ChaosPlan;

impl ChaosPlan {
    /// A plan that injects no faults.
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// A plan that fails the update at the boundary right before `phase`.
    #[deprecated(
        since = "0.7.0",
        note = "chaos schedules are multi-boundary; use `ChaosPlan::at_boundaries([phase])`"
    )]
    pub fn failing_before(phase: PhaseName) -> Self {
        Self::at_boundaries([phase])
    }

    /// A plan that fails the update at the boundary right before each of
    /// the given phases — the first one the pipeline reaches fires.
    pub fn at_boundaries(phases: impl IntoIterator<Item = PhaseName>) -> Self {
        ChaosPlan { before: phases.into_iter().collect(), ..ChaosPlan::default() }
    }

    /// A plan that fails the update right before its `nth` (1-based) object
    /// write — a *mid-phase* fault. With pre-copy enabled a small `nth`
    /// lands inside a concurrent copy round, proving the rollback path
    /// while the old instance is still live and serving.
    ///
    /// The counter is shared across transfer workers, so with
    /// `transfer_workers > 1` *which pair* hits the trigger depends on host
    /// scheduling (the abort-and-rollback outcome itself is guaranteed
    /// either way); use `transfer_workers: 1` when the fault site must be
    /// reproducible.
    pub fn failing_at_transfer_object(nth: u64) -> Self {
        ChaosPlan { at_transfer_object: Some(nth), ..ChaosPlan::default() }
    }

    /// A plan that fails the `nth` (1-based) kernel syscall issued after
    /// the pipeline starts — wherever it lands: a serving round inside
    /// quiesce, a pre-copy round's traffic, or the new version's startup
    /// replay. The syscall is suppressed (no state change) and the error
    /// funnels through the pipeline's single rollback guard.
    pub fn failing_at_syscall(nth: u64) -> Self {
        ChaosPlan { at_syscall: Some(nth), ..ChaosPlan::default() }
    }

    /// A plan that fails the update right before the `nth` (1-based) parked
    /// object is applied after a post-copy commit — a fault *inside the
    /// fault handler*, with the new version already resumed and serving.
    /// Fires for trap-service and background-drain applies alike. The old
    /// version is still intact at that point (nothing was removed), so the
    /// rollback guard restores it byte-identically.
    pub fn failing_at_fault_in(nth: u64) -> Self {
        ChaosPlan { at_fault_in: Some(nth), ..ChaosPlan::default() }
    }

    /// A plan that fails the update right before the `nth` (1-based)
    /// background drain batch of the post-copy drain loop.
    pub fn failing_at_drain_step(nth: u64) -> Self {
        ChaosPlan { at_drain_step: Some(nth), ..ChaosPlan::default() }
    }

    /// A plan that crashes the checkpoint store after the `nth` (1-based)
    /// block the [`PhaseName::Checkpoint`] phase writes.
    pub fn failing_at_manifest_write(nth: u64) -> Self {
        ChaosPlan { at_manifest_write: Some(nth), ..ChaosPlan::default() }
    }

    /// A plan that tears the `nth` (1-based) block the checkpoint phase
    /// writes (half-written block persists) and crashes the store there.
    pub fn failing_at_torn_write(nth: u64) -> Self {
        ChaosPlan { at_torn_write: Some(nth), ..ChaosPlan::default() }
    }

    /// A plan that fails the `nth` (1-based) step of a checkpoint restore
    /// attempt (supervisor recovery drills).
    pub fn failing_at_restore_step(nth: u64) -> Self {
        ChaosPlan { at_restore_step: Some(nth), ..ChaosPlan::default() }
    }

    /// A plan that kills the old instance's processes right before `phase`
    /// executes — the crash a restore-aware supervisor must recover from.
    pub fn crashing_old_before(phase: PhaseName) -> Self {
        ChaosPlan { crash_old_before: Some(phase), ..ChaosPlan::default() }
    }

    /// Adds another boundary fault to the plan.
    #[must_use]
    pub fn and_before(mut self, phase: PhaseName) -> Self {
        self.before.push(phase);
        self
    }

    /// Adds (or replaces) the mid-phase n-th-object-write trigger.
    #[must_use]
    pub fn and_at_transfer_object(mut self, nth: u64) -> Self {
        self.at_transfer_object = Some(nth);
        self
    }

    /// Adds (or replaces) the mid-update n-th-syscall trigger.
    #[must_use]
    pub fn and_at_syscall(mut self, nth: u64) -> Self {
        self.at_syscall = Some(nth);
        self
    }

    /// Adds (or replaces) the post-copy n-th-fault-in trigger.
    #[must_use]
    pub fn and_at_fault_in(mut self, nth: u64) -> Self {
        self.at_fault_in = Some(nth);
        self
    }

    /// Adds (or replaces) the post-copy n-th-drain-step trigger.
    #[must_use]
    pub fn and_at_drain_step(mut self, nth: u64) -> Self {
        self.at_drain_step = Some(nth);
        self
    }

    /// Adds (or replaces) the checkpoint n-th-block crash trigger.
    #[must_use]
    pub fn and_at_manifest_write(mut self, nth: u64) -> Self {
        self.at_manifest_write = Some(nth);
        self
    }

    /// Adds (or replaces) the checkpoint n-th-block torn-write trigger.
    #[must_use]
    pub fn and_at_torn_write(mut self, nth: u64) -> Self {
        self.at_torn_write = Some(nth);
        self
    }

    /// Adds (or replaces) the restore n-th-step trigger.
    #[must_use]
    pub fn and_at_restore_step(mut self, nth: u64) -> Self {
        self.at_restore_step = Some(nth);
        self
    }

    /// Adds (or replaces) the old-instance crash trigger.
    #[must_use]
    pub fn and_crashing_old_before(mut self, phase: PhaseName) -> Self {
        self.crash_old_before = Some(phase);
        self
    }

    /// Whether a fault fires at the boundary before `phase`.
    pub fn fires_before(&self, phase: PhaseName) -> bool {
        self.before.contains(&phase)
    }

    /// Whether the old instance crashes right before `phase`.
    pub fn crashes_old_before(&self, phase: PhaseName) -> bool {
        self.crash_old_before == Some(phase)
    }

    /// The armed boundary faults, in insertion order.
    pub fn boundaries(&self) -> &[PhaseName] {
        &self.before
    }

    /// The armed n-th-object-write trigger, if any.
    pub fn at_transfer_object(&self) -> Option<u64> {
        self.at_transfer_object
    }

    /// The armed n-th-syscall trigger, if any.
    pub fn at_syscall(&self) -> Option<u64> {
        self.at_syscall
    }

    /// The armed post-copy n-th-fault-in trigger, if any.
    pub fn at_fault_in(&self) -> Option<u64> {
        self.at_fault_in
    }

    /// The armed post-copy n-th-drain-step trigger, if any.
    pub fn at_drain_step(&self) -> Option<u64> {
        self.at_drain_step
    }

    /// The armed checkpoint n-th-block crash trigger, if any.
    pub fn at_manifest_write(&self) -> Option<u64> {
        self.at_manifest_write
    }

    /// The armed checkpoint n-th-block torn-write trigger, if any.
    pub fn at_torn_write(&self) -> Option<u64> {
        self.at_torn_write
    }

    /// The armed restore n-th-step trigger, if any.
    pub fn at_restore_step(&self) -> Option<u64> {
        self.at_restore_step
    }

    /// The armed old-instance crash phase, if any.
    pub fn crash_old_phase(&self) -> Option<PhaseName> {
        self.crash_old_before
    }

    /// Whether the plan injects any fault at all.
    pub fn is_empty(&self) -> bool {
        self.before.is_empty()
            && self.at_transfer_object.is_none()
            && self.at_syscall.is_none()
            && self.at_fault_in.is_none()
            && self.at_drain_step.is_none()
            && self.at_manifest_write.is_none()
            && self.at_torn_write.is_none()
            && self.at_restore_step.is_none()
            && self.crash_old_before.is_none()
    }

    /// Number of armed triggers (boundaries + mid-phase), used by the
    /// shrinker to order candidates.
    pub fn arm_count(&self) -> usize {
        self.before.len()
            + usize::from(self.at_transfer_object.is_some())
            + usize::from(self.at_syscall.is_some())
            + usize::from(self.at_fault_in.is_some())
            + usize::from(self.at_drain_step.is_some())
            + usize::from(self.at_manifest_write.is_some())
            + usize::from(self.at_torn_write.is_some())
            + usize::from(self.at_restore_step.is_some())
            + usize::from(self.crash_old_before.is_some())
    }

    /// Removes the boundary fault at `idx` (shrinker support).
    #[must_use]
    pub(crate) fn without_boundary(&self, idx: usize) -> Self {
        let mut plan = self.clone();
        plan.before.remove(idx);
        plan
    }

    /// Clears the n-th-object trigger (shrinker support).
    #[must_use]
    pub(crate) fn without_transfer_object(&self) -> Self {
        ChaosPlan { at_transfer_object: None, ..self.clone() }
    }

    /// Clears the n-th-syscall trigger (shrinker support).
    #[must_use]
    pub(crate) fn without_syscall(&self) -> Self {
        ChaosPlan { at_syscall: None, ..self.clone() }
    }

    /// Clears the post-copy n-th-fault-in trigger (shrinker support).
    #[must_use]
    pub(crate) fn without_fault_in(&self) -> Self {
        ChaosPlan { at_fault_in: None, ..self.clone() }
    }

    /// Clears the post-copy n-th-drain-step trigger (shrinker support).
    #[must_use]
    pub(crate) fn without_drain_step(&self) -> Self {
        ChaosPlan { at_drain_step: None, ..self.clone() }
    }

    /// Clears the checkpoint n-th-block crash trigger (shrinker support).
    #[must_use]
    pub(crate) fn without_manifest_write(&self) -> Self {
        ChaosPlan { at_manifest_write: None, ..self.clone() }
    }

    /// Clears the checkpoint torn-write trigger (shrinker support).
    #[must_use]
    pub(crate) fn without_torn_write(&self) -> Self {
        ChaosPlan { at_torn_write: None, ..self.clone() }
    }

    /// Clears the restore n-th-step trigger (shrinker support).
    #[must_use]
    pub(crate) fn without_restore_step(&self) -> Self {
        ChaosPlan { at_restore_step: None, ..self.clone() }
    }

    /// Clears the old-instance crash trigger (shrinker support).
    #[must_use]
    pub(crate) fn without_crash_old(&self) -> Self {
        ChaosPlan { crash_old_before: None, ..self.clone() }
    }
}

/// An ordered sequence of [`Phase`]s plus an optional [`ChaosPlan`].
pub struct UpdatePipeline {
    phases: Vec<Box<dyn Phase>>,
    fault_plan: ChaosPlan,
    /// Watchdog budgets: a phase (other than `Commit`) whose sim-time
    /// duration exceeds its budget aborts the update with
    /// [`Conflict::WatchdogExpired`] and rolls back. Budgets are evaluated
    /// on the virtual clock when the phase returns — simulated phases
    /// always terminate, so "at phase end" is the honest simulated
    /// equivalent of a wall-clock watchdog interrupt.
    phase_deadlines: Vec<(PhaseName, SimDuration)>,
    /// Between-rounds callback handed to the pre-copy phase (taken once per
    /// `run`).
    precopy_hook: RefCell<Option<PrecopyHook>>,
    /// Between-rounds callback handed to the post-copy drain phase (taken
    /// once per `run`).
    postcopy_hook: RefCell<Option<PostcopyHook>>,
}

impl std::fmt::Debug for UpdatePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdatePipeline")
            .field("phases", &self.phase_names())
            .field("fault_plan", &self.fault_plan)
            .field("phase_deadlines", &self.phase_deadlines)
            .finish()
    }
}

impl Default for UpdatePipeline {
    fn default() -> Self {
        Self::standard()
    }
}

impl UpdatePipeline {
    /// The paper's standard pipeline: quiesce → reinit/replay → match →
    /// trace/transfer → commit.
    pub fn standard() -> Self {
        UpdatePipeline {
            phases: vec![
                Box::new(QuiescePhase),
                Box::new(ReinitReplayPhase),
                Box::new(MatchProcessesPhase),
                Box::new(TraceAndTransferPhase),
                Box::new(CommitPhase),
            ],
            fault_plan: ChaosPlan::none(),
            phase_deadlines: Vec::new(),
            precopy_hook: RefCell::new(None),
            postcopy_hook: RefCell::new(None),
        }
    }

    /// The pre-copy pipeline ([`PhaseName::PRECOPY_ALL`]): boot and match
    /// the new version while the old one serves, copy the bulk of the state
    /// concurrently, quiesce only for the residual dirty delta.
    pub fn precopy() -> Self {
        UpdatePipeline {
            phases: vec![
                Box::new(ReinitReplayPhase),
                Box::new(MatchProcessesPhase),
                Box::new(PrecopyPhase),
                Box::new(QuiescePhase),
                Box::new(TraceAndTransferPhase),
                Box::new(CommitPhase),
            ],
            fault_plan: ChaosPlan::none(),
            phase_deadlines: Vec::new(),
            precopy_hook: RefCell::new(None),
            postcopy_hook: RefCell::new(None),
        }
    }

    /// The post-copy pipeline ([`PhaseName::POSTCOPY_ALL`]): quiesce only
    /// long enough to commit control state and park the stale residual
    /// behind access traps, resume the new version immediately, and retire
    /// the residual afterwards (traps + background drain) while it serves.
    /// Optional pre-copy rounds still run before the barrier — that is the
    /// adaptive controller's hybrid.
    pub fn postcopy() -> Self {
        UpdatePipeline {
            phases: vec![
                Box::new(ReinitReplayPhase),
                Box::new(MatchProcessesPhase),
                Box::new(PrecopyPhase),
                Box::new(QuiescePhase),
                Box::new(PostcopyCommitPhase),
                Box::new(PostcopyDrainPhase),
            ],
            fault_plan: ChaosPlan::none(),
            phase_deadlines: Vec::new(),
            precopy_hook: RefCell::new(None),
            postcopy_hook: RefCell::new(None),
        }
    }

    /// The pipeline the options call for: [`UpdatePipeline::postcopy`] in
    /// `Postcopy`/`Adaptive` mode, otherwise [`UpdatePipeline::precopy`]
    /// when pre-copy rounds are enabled and [`UpdatePipeline::standard`] as
    /// the classic default.
    pub fn for_options(opts: &UpdateOptions) -> Self {
        match opts.mode {
            TransferMode::Postcopy | TransferMode::Adaptive => Self::postcopy(),
            TransferMode::Precopy => Self::precopy(),
            TransferMode::StopTheWorld => {
                if opts.precopy.is_enabled() {
                    Self::precopy()
                } else {
                    Self::standard()
                }
            }
        }
    }

    /// Replaces the pipeline's fault plan.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: ChaosPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Inserts a durable-checkpoint phase right after the quiescence
    /// barrier (or first, for custom pipelines without one): with every
    /// old-version thread parked, the old instance's full recoverable state
    /// is serialized to `store` as a versioned, checksummed manifest, so a
    /// crash later in the update — or of the process itself — can be
    /// recovered from a consistent image. Checkpoint time lands inside the
    /// stop-the-world window and therefore counts as downtime.
    #[must_use]
    pub fn with_checkpoint(mut self, store: Rc<RefCell<dyn Store>>, opts: CheckpointOptions) -> Self {
        let pos = self.phases.iter().position(|p| p.name() == PhaseName::Quiesce).map(|i| i + 1).unwrap_or(0);
        self.phases.insert(pos, Box::new(CheckpointPhase { store, opts }));
        self
    }

    /// Sets a watchdog budget for one phase: if the phase's sim-time
    /// duration exceeds `budget`, the update aborts with
    /// [`Conflict::WatchdogExpired`] and rolls back. `Commit` budgets are
    /// ignored — commit is the point of no return, a rollback past it would
    /// be a lie.
    #[must_use]
    pub fn with_phase_deadline(mut self, phase: PhaseName, budget: SimDuration) -> Self {
        self.phase_deadlines.retain(|&(p, _)| p != phase);
        self.phase_deadlines.push((phase, budget));
        self
    }

    /// Sets the same watchdog budget for every phase except `Commit` and
    /// `PostcopyDrain` — both end past the point of no return, so a
    /// watchdog "abort" there would promise a rollback that cannot happen.
    #[must_use]
    pub fn with_uniform_phase_deadline(mut self, budget: SimDuration) -> Self {
        for phase in self.phase_names() {
            if phase != PhaseName::Commit && phase != PhaseName::PostcopyDrain {
                self = self.with_phase_deadline(phase, budget);
            }
        }
        self
    }

    /// The watchdog budget configured for `phase`, if any.
    fn deadline_for(&self, phase: PhaseName) -> Option<SimDuration> {
        self.phase_deadlines.iter().find(|&&(p, _)| p == phase).map(|&(_, d)| d)
    }

    /// Installs a between-rounds callback for the pre-copy phase: it runs
    /// after every concurrent copy round, with the old instance still live.
    /// Benchmarks and property tests use it to model write workloads
    /// dirtying state while the copy is in flight.
    #[must_use]
    pub fn with_precopy_hook(self, hook: PrecopyHook) -> Self {
        *self.precopy_hook.borrow_mut() = Some(hook);
        self
    }

    /// Installs a between-rounds callback for the post-copy drain phase: it
    /// runs after the serving rounds of every drain iteration, with the new
    /// version already resumed. Benchmarks and property tests use it to
    /// model post-commit traffic hitting not-yet-transferred pages.
    #[must_use]
    pub fn with_postcopy_hook(self, hook: PostcopyHook) -> Self {
        *self.postcopy_hook.borrow_mut() = Some(hook);
        self
    }

    /// The names of the phases, in execution order.
    pub fn phase_names(&self) -> Vec<PhaseName> {
        self.phases.iter().map(|p| p.name()).collect()
    }

    /// Runs the pipeline: executes every phase in order over a fresh
    /// [`UpdateCtx`], recording per-phase durations, and returns the instance
    /// that is running afterwards together with the outcome.
    ///
    /// This driver is the *only* place that decides between commit and
    /// rollback: any phase failure — including injected faults — funnels into
    /// the single `roll_back` guard below, so there is exactly one code path
    /// that restores the old version.
    pub fn run(
        &self,
        kernel: &mut Kernel,
        old: McrInstance,
        new_program: Box<dyn Program>,
        config: InstrumentationConfig,
        opts: &UpdateOptions,
    ) -> (McrInstance, UpdateOutcome) {
        let mut ctx = UpdateCtx::new(kernel, old, new_program, config, opts);
        ctx.fault = self.fault_plan.clone();
        ctx.precopy_hook = self.precopy_hook.borrow_mut().take();
        ctx.postcopy_hook = self.postcopy_hook.borrow_mut().take();
        let t_total = ctx.kernel.now();
        let syscalls_before = ctx.kernel.syscall_count();
        // Arm the n-th-syscall chaos trigger inside the simulated kernel for
        // the duration of this attempt; both exit paths disarm it below, so
        // a fault armed for one attempt can never leak into steady-state
        // serving or a later supervisor retry.
        if let Some(nth) = self.fault_plan.at_syscall() {
            ctx.kernel.arm_syscall_fault(nth);
        }
        // Everything from the start of the quiescence barrier onwards is
        // stop-the-world; phases executed before it (reinit/replay, match,
        // pre-copy) ran while the old version could still serve. The
        // post-copy drain runs after the *new* version resumed, so its
        // duration is background time too — except the trap-service share,
        // which the phase records separately and the downtime formula adds
        // back (a faulting thread is blocked for the whole service).
        let mut pre_quiesce = SimDuration(0);
        let mut post_resume = SimDuration(0);
        let mut quiesce_seen = false;
        let mut failure: Option<McrError> = None;
        let mut failing_phase: Option<PhaseName> = None;
        for phase in &self.phases {
            let name = phase.name();
            if self.fault_plan.crashes_old_before(name) {
                // Crash injection: the old instance's processes die outright
                // before this phase. The rollback guard still runs (it tears
                // down whatever exists of the new version), but it cannot
                // revive what no longer exists — a restore-aware supervisor
                // recovers from the last durable checkpoint instead.
                let UpdateCtx { kernel, old, .. } = &mut ctx;
                for &pid in &old.state.processes {
                    let _ = kernel.remove_process(pid);
                }
                failure = Some(Conflict::OldInstanceCrashed { phase: name.label().into() }.into());
                break;
            }
            if self.fault_plan.fires_before(name) {
                failure = Some(Conflict::FaultInjected { phase: name.label().into() }.into());
                break;
            }
            let start = ctx.kernel.now();
            let result = phase.run(&mut ctx);
            let duration = ctx.kernel.now().duration_since(start);
            ctx.report.phases.record(name, duration, result.is_ok());
            ctx.report.timings.absorb_phase(name, &ctx.report.phases);
            if name == PhaseName::Quiesce {
                quiesce_seen = true;
            } else if !quiesce_seen {
                pre_quiesce = pre_quiesce.saturating_add(duration);
            } else if name == PhaseName::PostcopyDrain {
                post_resume = post_resume.saturating_add(duration);
            }
            if let Err(e) = result {
                failure = Some(e);
                failing_phase = Some(name);
                break;
            }
            // Watchdog: a completed phase that overran its sim-time budget
            // aborts the attempt. Commit is exempt — it already happened,
            // and nothing past commit is reversible.
            if name != PhaseName::Commit {
                if let Some(budget) = self.deadline_for(name) {
                    if duration > budget {
                        failure = Some(
                            Conflict::WatchdogExpired {
                                phase: name.label().into(),
                                budget_ns: budget.0,
                                spent_ns: duration.0,
                            }
                            .into(),
                        );
                        failing_phase = Some(name);
                        break;
                    }
                }
            }
        }
        ctx.kernel.disarm_syscall_fault();
        ctx.report.update_syscalls = ctx.kernel.syscall_count() - syscalls_before;
        if let Some(plan) = &ctx.plan {
            ctx.report.object_writes = plan.writes_performed();
        }
        ctx.report.timings.total = ctx.kernel.now().duration_since(t_total);
        ctx.report.timings.downtime = if quiesce_seen {
            SimDuration(
                ctx.report
                    .timings
                    .total
                    .0
                    .saturating_sub(pre_quiesce.0)
                    .saturating_sub(post_resume.0)
                    .saturating_add(ctx.report.timings.trap_service.0),
            )
        } else {
            SimDuration(0)
        };
        // Hand the hooks back so a reused pipeline serves its rounds again
        // on the next run.
        *self.precopy_hook.borrow_mut() = ctx.precopy_hook.take();
        *self.postcopy_hook.borrow_mut() = ctx.postcopy_hook.take();
        if ctx.committed {
            // Commit is the point of no return: the old version's processes
            // are gone, so even if a custom post-commit phase failed we must
            // surface the new version as running. The failure stays visible
            // in the phase trace (its record has `completed == false`).
            let new_instance =
                ctx.new_instance.take().expect("a committed pipeline leaves the new instance in the context");
            return (new_instance, UpdateOutcome::Committed(ctx.report));
        }
        match failure {
            // A pipeline that finished without committing (e.g. a custom
            // phase list with no Commit) is treated as an aborted attempt.
            None => Self::roll_back(ctx, Vec::new()),
            Some(error) => {
                let conflicts = match error {
                    McrError::Conflicts(cs) => cs,
                    // A fired n-th-syscall trigger surfaces as an injected
                    // fault attributed to the phase it landed in.
                    McrError::Sim(SimError::FaultInjected { nth }) => {
                        let phase = match failing_phase {
                            Some(p) => format!("syscall#{nth}@{}", p.label()),
                            None => format!("syscall#{nth}"),
                        };
                        vec![Conflict::FaultInjected { phase }]
                    }
                    other => vec![Conflict::StartupFailure {
                        syscall: "<runtime>".into(),
                        error: other.to_string(),
                    }],
                };
                Self::roll_back(ctx, conflicts)
            }
        }
    }

    /// The pipeline's single rollback guard: tears down whatever exists of
    /// the new version and resumes the old version from its checkpoint.
    /// Every aborted attempt — phase error, conflict set, injected fault —
    /// goes through here and nowhere else.
    fn roll_back(ctx: UpdateCtx<'_>, conflicts: Vec<Conflict>) -> (McrInstance, UpdateOutcome) {
        let UpdateCtx { kernel, mut old, new_instance, report, .. } = ctx;
        if let Some(new_instance) = new_instance {
            for &pid in &new_instance.state.processes {
                let _ = kernel.remove_process(pid);
            }
        }
        resume(kernel, &mut old);
        (old, UpdateOutcome::RolledBack { conflicts, report })
    }
}

// ---------------------------------------------------------------------------
// The standard phases
// ---------------------------------------------------------------------------

/// Phase 1 — checkpoint: drive the barrier protocol until every old-version
/// thread is parked at its quiescent point.
pub struct QuiescePhase;

impl Phase for QuiescePhase {
    fn name(&self) -> PhaseName {
        PhaseName::Quiesce
    }

    fn run(&self, ctx: &mut UpdateCtx<'_>) -> McrResult<()> {
        wait_quiescence(ctx.kernel, &mut ctx.old, ctx.opts.max_quiesce_rounds)?;
        ctx.report.open_connections = ctx.kernel.open_connection_count();
        Ok(())
    }
}

/// Optional phase — durable checkpoint: with the old version quiesced,
/// serialize its full recoverable state (boot recipe, object graph,
/// placements, page deltas) to a [`Store`] as a versioned, checksummed
/// manifest. A failure here aborts the attempt with
/// [`Conflict::CheckpointFailed`] — once a checkpoint was requested, the
/// update never proceeds without a recovery point.
///
/// The pipeline's [`ChaosPlan`] can arm torn-write/crash faults against the
/// store (`at_manifest_write` / `at_torn_write`), counted relative to the
/// blocks already written. The phase "remounts" the store on entry
/// ([`Store::recover`]) so a crash injected in one attempt never wedges the
/// store for a supervisor retry.
pub struct CheckpointPhase {
    store: Rc<RefCell<dyn Store>>,
    opts: CheckpointOptions,
}

impl Phase for CheckpointPhase {
    fn name(&self) -> PhaseName {
        PhaseName::Checkpoint
    }

    fn run(&self, ctx: &mut UpdateCtx<'_>) -> McrResult<()> {
        let mut store = self.store.borrow_mut();
        store.recover();
        if let Some(n) = ctx.fault.at_manifest_write() {
            let at = store.blocks_written() + n;
            store.arm_write_fault(WriteFault::CrashAt(at));
        } else if let Some(n) = ctx.fault.at_torn_write() {
            let at = store.blocks_written() + n;
            store.arm_write_fault(WriteFault::TornAt(at));
        }
        let result = write_checkpoint(ctx.kernel, &ctx.old, &mut *store, &self.opts);
        store.disarm_write_fault();
        match result {
            Ok(summary) => {
                ctx.report.checkpoint = Some(summary);
                Ok(())
            }
            Err(e) => Err(Conflict::CheckpointFailed { error: e.to_string() }.into()),
        }
    }
}

/// Phase 2 — restart: boot the new version under mutable reinitialization
/// (global descriptor inheritance, pid virtualization, startup replay), then
/// park it at its quiescent points so it cannot observe external events
/// before commit.
pub struct ReinitReplayPhase;

impl Phase for ReinitReplayPhase {
    fn name(&self) -> PhaseName {
        PhaseName::ReinitReplay
    }

    fn run(&self, ctx: &mut UpdateCtx<'_>) -> McrResult<()> {
        let new_program = ctx
            .new_program
            .take()
            .ok_or_else(|| McrError::InvalidState("pipeline has no program to boot".into()))?;
        let boot_opts = BootOptions {
            config: ctx.config,
            layout_slide: ctx.opts.layout_slide,
            start_quiesced: true,
            scheduler: ctx.opts.scheduler,
        };
        let interposer = Interposer::replayer(ctx.old.state.interpose.recorded_log());
        let new_instance = create_instance(ctx.kernel, new_program, interposer, &boot_opts)?;
        let new_init = new_instance.init_pid()?;
        ctx.new_instance = Some(new_instance);

        // Global inheritance: the new version's first process inherits every
        // descriptor of every old-version process at the same number.
        let old_pids = ctx.old.state.processes.clone();
        for &old_pid in &old_pids {
            let fds: Vec<Fd> = match ctx.kernel.process(old_pid) {
                Ok(p) => p.fds().iter().map(|(fd, _)| fd).collect(),
                Err(_) => continue,
            };
            for fd in fds {
                let already = ctx.kernel.process(new_init).map(|p| p.fds().contains(fd)).unwrap_or(false);
                if !already {
                    let _ = ctx.kernel.transfer_fd(old_pid, fd, new_init, FdPlacement::Exact(fd));
                }
            }
        }
        // Pid virtualization: the new initial process observes the old
        // initial process's pid.
        let old_init = old_pids[0];
        let old_virt = ctx.old.state.interpose.virtual_pid(old_init);
        let UpdateCtx { kernel, new_instance, opts, report, .. } = ctx;
        let new_instance = new_instance.as_mut().expect("created above");
        new_instance.state.interpose.map_pid(old_virt, new_init);

        run_startup(kernel, new_instance)?;
        report.new_startup = new_instance.state.startup_duration;
        // Conservative matching: recorded operations the new version omitted.
        let omission_conflicts = {
            let state = &mut new_instance.state;
            let crate::program::InstanceState { interpose, annotations, .. } = state;
            interpose.finish_replay(annotations)
        };
        if !omission_conflicts.is_empty() {
            return Err(McrError::Conflicts(omission_conflicts));
        }
        // Park every new-version thread at its quiescent point.
        wait_quiescence(kernel, new_instance, opts.max_quiesce_rounds)?;
        report.replay = new_instance.state.interpose.stats();
        Ok(())
    }
}

/// Phase 3 — pair old-version processes with new-version processes by
/// creation-time call-stack ID (and creation order), optionally recreating
/// counterparts for unmatched old processes (volatile quiescent points).
pub struct MatchProcessesPhase;

impl Phase for MatchProcessesPhase {
    fn name(&self) -> PhaseName {
        PhaseName::MatchProcesses
    }

    fn run(&self, ctx: &mut UpdateCtx<'_>) -> McrResult<()> {
        let UpdateCtx { kernel, old, new_instance, opts, report, pairs, .. } = ctx;
        let new_instance = new_instance
            .as_mut()
            .ok_or_else(|| McrError::InvalidState("new instance not created yet".into()))?;
        *pairs = match_processes(kernel, old, new_instance, opts, report)?;
        Ok(())
    }
}

/// Phase 4 — restore: mutable tracing and state transfer for every matched
/// process pair, then per-process descriptor inheritance for connection
/// descriptors created after startup.
///
/// The per-pair work is expressed as [`PairJob`]s and executed on a scoped
/// worker pool ([`UpdateOptions::transfer_workers`] threads; the default is
/// one per pair, `1` is the serial ablation) pulling from a shared work
/// queue. Each job owns disjoint borrows of its pair's processes via
/// [`Kernel::split_pairs`], so the jobs run concurrently without sharing
/// mutable state; results are merged back in pair order, which keeps
/// reports, conflict sets and clock accounting byte-identical regardless of
/// the worker count. After a pre-copy phase, each job resumes its pair's
/// [`DeltaPlan`]: it delta-retraces the quiesced old process and transfers
/// the residual, charging only the still-stale work to the window.
pub struct TraceAndTransferPhase;

/// The work unit of the pair-parallel restore phase: trace (or delta
/// retrace) one old process and transfer its state into the matched new
/// process. Jobs only touch their own pair plus shared read-only state,
/// which is what `std::thread::scope` requires to run them concurrently.
struct PairJob<'a> {
    old_proc: &'a Process,
    new_proc: &'a mut Process,
    old_state: &'a InstanceState,
    new_state: &'a InstanceState,
    plan: &'a TransferContext,
    trace: TraceOptions,
    /// Worker threads for the *within-pair* passes: the tracer's sharded
    /// heap traversal (the transfer engine reads its own shard count from
    /// `plan`). Byte-identical results for every value.
    shards: usize,
    /// Resumable pre-copy state, when a pre-copy phase ran for this pair.
    precopy: Option<&'a mut PairPrecopyState>,
}

/// What one [`PairJob`] produced.
struct PairOutcome {
    stats: TracingStats,
    report: ProcessTransferReport,
    /// The stop-the-world share of the pair's transfer (equals the full
    /// transfer without pre-copy).
    residual: ResidualStats,
}

impl PairJob<'_> {
    fn run(self) -> McrResult<PairOutcome> {
        let tracer = Tracer::for_process(self.old_proc, self.old_state, self.trace).with_shards(self.shards);
        match self.precopy {
            None => {
                let trace = tracer.trace();
                let mut delta = DeltaPlan::new();
                let (report, residual) = transfer_residual(
                    self.plan,
                    &mut delta,
                    self.old_proc,
                    self.old_state,
                    self.new_proc,
                    self.new_state,
                    &trace,
                )?;
                Ok(PairOutcome { stats: trace.stats, report, residual })
            }
            Some(state) => {
                let trace = state.trace.as_mut().expect("pre-copy rounds traced this pair");
                trace.stats = trace.graph.retrace_dirty(&tracer, state.delta.traced_upto);
                let (report, residual) = transfer_residual(
                    self.plan,
                    &mut state.delta,
                    self.old_proc,
                    self.old_state,
                    self.new_proc,
                    self.new_state,
                    trace,
                )?;
                Ok(PairOutcome { stats: trace.stats, report, residual })
            }
        }
    }
}

/// The work unit of one concurrent pre-copy round: trace (first round) or
/// delta-retrace the old process and copy the stale delta into the new one.
struct PrecopyJob<'a> {
    old_proc: &'a Process,
    new_proc: &'a mut Process,
    old_state: &'a InstanceState,
    new_state: &'a InstanceState,
    plan: &'a TransferContext,
    trace: TraceOptions,
    /// Worker threads for the within-pair passes (see [`PairJob::shards`]).
    shards: usize,
    state: &'a mut PairPrecopyState,
    /// The epoch this round's retrace starts from, and the value
    /// `traced_upto` is advanced to afterwards.
    upto: u64,
}

impl PrecopyJob<'_> {
    fn run(self) -> McrResult<crate::transfer::engine::PrecopyRoundReport> {
        let tracer = Tracer::for_process(self.old_proc, self.old_state, self.trace).with_shards(self.shards);
        match self.state.trace.as_mut() {
            None => self.state.trace = Some(tracer.trace()),
            Some(trace) => {
                trace.stats = trace.graph.retrace_dirty(&tracer, self.state.delta.traced_upto);
            }
        }
        let trace = self.state.trace.as_ref().expect("set above");
        let round = precopy_transfer_round(
            self.plan,
            &mut self.state.delta,
            self.old_proc,
            self.old_state,
            self.new_proc,
            self.new_state,
            trace,
        )?;
        self.state.delta.traced_upto = self.upto;
        Ok(round)
    }
}

/// The work unit of the post-copy commit phase: final delta retrace plus
/// [`postcopy_commit`] (every stale write parks instead of landing), then
/// the per-pair adaptive decision — sync the parked residual inside the
/// window, or leave it parked for the drain phase.
struct PostcopyPairJob<'a> {
    old_proc: &'a Process,
    new_proc: &'a mut Process,
    old_state: &'a InstanceState,
    new_state: &'a InstanceState,
    plan: &'a TransferContext,
    trace: TraceOptions,
    /// Worker threads for the within-pair passes (see [`PairJob::shards`]).
    shards: usize,
    /// Resumable pre-copy state, when pre-copy rounds ran for this pair.
    precopy: Option<&'a mut PairPrecopyState>,
    /// `Postcopy` mode defers unconditionally; `Adaptive` asks the policy.
    force_defer: bool,
    policy: TransferPolicy,
    /// The update's pre-copy round history (the policy's convergence
    /// signal; empty without pre-copy).
    rounds: &'a [PrecopyRoundReport],
}

/// What one [`PostcopyPairJob`] produced.
struct PostcopyPairOutcome {
    stats: TracingStats,
    report: ProcessTransferReport,
    /// Stale-at-quiesce bookkeeping; `cost` is only the share applied
    /// *inside* the window (zero for a fully deferred pair).
    residual: ResidualStats,
    state: PairPostcopyState,
    deferred: bool,
}

impl PostcopyPairJob<'_> {
    fn run(self) -> McrResult<PostcopyPairOutcome> {
        let tracer = Tracer::for_process(self.old_proc, self.old_state, self.trace).with_shards(self.shards);
        let (mut delta, trace) = match self.precopy {
            None => (DeltaPlan::new(), tracer.trace()),
            Some(state) => {
                let mut trace = state.trace.take().expect("pre-copy rounds traced this pair");
                trace.stats = trace.graph.retrace_dirty(&tracer, state.delta.traced_upto);
                (std::mem::take(&mut state.delta), trace)
            }
        };
        let (report, mut residual, mut parked) = postcopy_commit(
            self.plan,
            &mut delta,
            self.old_proc,
            self.old_state,
            self.new_proc,
            self.new_state,
            &trace,
        )?;
        let defer = self.force_defer || self.policy.should_defer(self.rounds, residual.bytes);
        if !defer && !parked.is_drained() {
            // Converged pair: apply the residual synchronously, inside the
            // commit window — exactly what a pre-copy update would do, and
            // cheaper than exposing the resumed instance to trap latency.
            let sync = drain_step(self.plan, &mut parked, self.old_proc, self.new_proc, usize::MAX, None)?;
            residual.cost = sync.cost;
        }
        let deferred = !parked.is_drained();
        Ok(PostcopyPairOutcome {
            stats: trace.stats,
            report,
            residual,
            state: PairPostcopyState { delta, residual: parked },
            deferred,
        })
    }
}

/// Executes `jobs` with the given worker count, returning outcomes indexed
/// by submission (pair) order.
///
/// `workers <= 1` runs the jobs in order on the calling thread and stops at
/// the first error, exactly like the historical sequential loop. Otherwise
/// the jobs are pulled from a *shared work queue* by `workers` scoped
/// threads — work stealing, so a worker that drew a cheap pair immediately
/// grabs the next one and skewed pair sizes cannot stall the makespan the
/// way a static assignment could. Results are still merged in submission
/// order, so determinism is unaffected by who ran what.
fn run_jobs<J, R>(jobs: Vec<J>, workers: usize, run: impl Fn(J) -> McrResult<R> + Sync) -> Vec<McrResult<R>>
where
    J: Send,
    R: Send,
{
    let n = jobs.len();
    if workers <= 1 {
        let mut out = Vec::with_capacity(n);
        for job in jobs {
            let result = run(job);
            let failed = result.is_err();
            out.push(result);
            if failed {
                break;
            }
        }
        return out;
    }
    let queue = Mutex::new(jobs.into_iter().enumerate());
    let run = &run;
    let queue = &queue;
    let mut slots: Vec<Option<McrResult<R>>> = Vec::new();
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let next = queue.lock().expect("work queue poisoned").next();
                        match next {
                            Some((index, job)) => done.push((index, run(job))),
                            None => break done,
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            for (index, outcome) in handle.join().expect("transfer worker panicked") {
                slots[index] = Some(outcome);
            }
        }
    });
    slots.into_iter().map(|slot| slot.expect("every job ran")).collect()
}

/// Per-process descriptor inheritance: connection descriptors created after
/// startup exist only in the matched old process. Descriptor numbers may
/// clash across processes (two old workers can both own a "fd 7" referring
/// to different connections); the matched process's own object wins,
/// mirroring the per-process mapping the paper calls for in multiprocess
/// deployments.
fn inherit_connection_fds(kernel: &mut Kernel, old_pid: Pid, new_pid: Pid) {
    let fds: Vec<(Fd, mcr_procsim::ObjId)> = match kernel.process(old_pid) {
        Ok(p) => p.fds().iter().map(|(fd, e)| (fd, e.object)).collect(),
        Err(_) => Vec::new(),
    };
    for (fd, old_obj) in fds {
        let existing = kernel.process(new_pid).ok().and_then(|p| p.fds().get(fd).ok());
        match existing {
            Some(entry) if entry.object == old_obj => {}
            Some(_) => {
                // Same number, different object: replace it with the object
                // this process actually owned in the old version.
                let new_tid = kernel.process(new_pid).map(|p| p.main_tid());
                if let Ok(tid) = new_tid {
                    let _ = kernel.syscall(new_pid, tid, Syscall::Close { fd });
                    let _ = kernel.transfer_fd(old_pid, fd, new_pid, FdPlacement::Exact(fd));
                }
            }
            None => {
                let _ = kernel.transfer_fd(old_pid, fd, new_pid, FdPlacement::Exact(fd));
            }
        }
    }
}

impl Phase for TraceAndTransferPhase {
    fn name(&self) -> PhaseName {
        PhaseName::TraceAndTransfer
    }

    fn run(&self, ctx: &mut UpdateCtx<'_>) -> McrResult<()> {
        if ctx.pairs.is_empty() {
            ctx.report.timings.state_transfer = SimDuration(0);
            return Ok(());
        }
        let workers = ctx.opts.effective_transfer_workers(ctx.pairs.len());
        ctx.ensure_plan()?;

        // Fan out: split the kernel's process table into disjoint per-pair
        // borrows and run every trace+transfer job on the worker pool. The
        // interned cross-version metadata is built once and shared read-only.
        let wall = Instant::now();
        let outcomes = {
            let UpdateCtx { kernel, old, new_instance, opts, pairs, plan, pair_precopy, .. } = ctx;
            let new_instance = new_instance.as_mut().expect("matched pairs imply an instance");
            let old_state = &old.state;
            let new_state = &new_instance.state;
            let plan = plan.as_ref().expect("ensured above");
            let split = kernel.split_pairs(pairs).map_err(McrError::Sim)?;
            // When pre-copy rounds ran, every pair resumes its delta plan;
            // otherwise each job runs the classic full trace+transfer.
            let mut precopy_states: Vec<Option<&mut PairPrecopyState>> = if pair_precopy.is_empty() {
                (0..pairs.len()).map(|_| None).collect()
            } else {
                pair_precopy.iter_mut().map(Some).collect()
            };
            let shards = opts.effective_intra_pair_shards();
            let jobs: Vec<PairJob<'_>> = split
                .into_iter()
                .zip(precopy_states.iter_mut())
                .map(|((old_proc, new_proc), precopy)| PairJob {
                    old_proc,
                    new_proc,
                    old_state,
                    new_state,
                    plan,
                    trace: opts.trace,
                    shards,
                    precopy: precopy.take(),
                })
                .collect();
            run_jobs(jobs, workers, PairJob::run)
        };
        let host_wall_ns = u64::try_from(wall.elapsed().as_nanos()).unwrap_or(u64::MAX);

        // Merge deterministically, in pair order: tracing statistics,
        // simulated clock charges, per-process reports, conflict sets and
        // descriptor inheritance are all independent of the worker count and
        // of job completion order. Reports keep their conflicts (per-process
        // attribution survives into the rolled-back report); the error list
        // is materialized only on the cold rollback path below. The clock is
        // charged the *residual* cost — without pre-copy that equals the
        // full per-pair duration, with pre-copy it is the stop-the-world
        // share left after the concurrent rounds.
        let mut any_conflicts = false;
        let mut failure: Option<McrError> = None;
        let mut pair_costs: Vec<SimDuration> = Vec::with_capacity(ctx.pairs.len());
        for (index, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Err(e) => {
                    failure = Some(e);
                    break;
                }
                Ok(PairOutcome { stats, report, residual }) => {
                    let (old_pid, new_pid) = ctx.pairs[index];
                    ctx.report.tracing.merge(&stats);
                    ctx.kernel.advance_clock(residual.cost);
                    pair_costs.push(residual.cost);
                    ctx.report.precopy.absorb_residual(&residual);
                    any_conflicts |= !report.conflicts.is_empty();
                    ctx.report.transfer.push(report);
                    inherit_connection_fds(ctx.kernel, old_pid, new_pid);
                }
            }
        }
        ctx.report.transfer.workers = workers;
        ctx.report.transfer.host_wall_ns = host_wall_ns;
        if let Some(e) = failure {
            return Err(e);
        }
        if any_conflicts {
            return Err(McrError::Conflicts(ctx.report.transfer.conflicts().cloned().collect()));
        }

        // The measured stop-the-world state-transfer time: the deterministic
        // list-schedule makespan of the executed work-stealing run. One
        // worker yields the serial sum; one worker per pair the per-pair
        // maximum (the paper's parallel multi-process transfer).
        ctx.report.timings.state_transfer = list_schedule_makespan(&pair_costs, workers);
        Ok(())
    }
}

/// The concurrent pre-copy phase: iterative trace-and-copy rounds executed
/// *before* the quiescence barrier, with the old version still serving
/// between rounds.
///
/// Each round (1) bumps every old process's write epoch, (2) delta-retraces
/// and copies each pair's stale objects on the shared worker pool, (3)
/// charges the round's makespan to the clock (concurrent time, recorded in
/// [`UpdateTimings::precopy`](crate::runtime::report::UpdateTimings), not
/// downtime), and (4) lets the old instance run
/// [`PrecopyOptions::serve_rounds`](crate::runtime::controller::PrecopyOptions)
/// scheduler rounds plus the optional [`PrecopyHook`]. Iteration stops when
/// the freshly dirtied bytes of a round drop to the convergence threshold
/// or the round budget is exhausted; whatever is still dirty afterwards is
/// the residual the stop-the-world window pays for.
pub struct PrecopyPhase;

impl Phase for PrecopyPhase {
    fn name(&self) -> PhaseName {
        PhaseName::Precopy
    }

    fn run(&self, ctx: &mut UpdateCtx<'_>) -> McrResult<()> {
        let precopy_opts = ctx.opts.precopy;
        if !precopy_opts.is_enabled() || ctx.pairs.is_empty() {
            return Ok(());
        }
        ctx.ensure_plan()?;
        ctx.report.precopy.enabled = true;
        ctx.pair_precopy =
            ctx.pairs.iter().map(|_| PairPrecopyState { delta: DeltaPlan::new(), trace: None }).collect();
        let workers = ctx.opts.effective_transfer_workers(ctx.pairs.len());

        for round in 1..=precopy_opts.rounds {
            // Start a new write epoch in every old process: everything the
            // old version writes from here on is the next round's (or the
            // stop-the-world window's) delta.
            let mut uptos = Vec::with_capacity(ctx.pairs.len());
            for &(old_pid, _) in &ctx.pairs {
                uptos.push(ctx.kernel.advance_write_epoch(old_pid).map_err(McrError::Sim)?);
            }

            // Copy this round's stale delta, pair-parallel.
            let outcomes = {
                let UpdateCtx { kernel, old, new_instance, opts, pairs, plan, pair_precopy, .. } = ctx;
                let new_instance = new_instance.as_mut().expect("pre-copy runs after reinit");
                let old_state = &old.state;
                let new_state = &new_instance.state;
                let plan = plan.as_ref().expect("ensured above");
                let split = kernel.split_pairs(pairs).map_err(McrError::Sim)?;
                let shards = opts.effective_intra_pair_shards();
                let jobs: Vec<PrecopyJob<'_>> = split
                    .into_iter()
                    .zip(pair_precopy.iter_mut())
                    .zip(uptos.iter())
                    .map(|(((old_proc, new_proc), state), &upto)| PrecopyJob {
                        old_proc,
                        new_proc,
                        old_state,
                        new_state,
                        plan,
                        trace: opts.trace,
                        shards,
                        state,
                        upto,
                    })
                    .collect();
                run_jobs(jobs, workers, PrecopyJob::run)
            };

            // Merge in pair order; a failing round aborts the update while
            // the old version is still live (rollback costs nothing).
            let mut round_costs = Vec::with_capacity(ctx.pairs.len());
            for outcome in outcomes {
                let round_report = outcome?;
                ctx.report.precopy.absorb_round(round, &round_report);
                round_costs.push(round_report.cost);
            }
            // The round ran concurrently with the old version; charge its
            // makespan to the shared clock (this is pre-copy time, not
            // downtime).
            ctx.kernel.advance_clock(list_schedule_makespan(&round_costs, workers));

            // The old version keeps serving: pending traffic, timers, plus
            // whatever the between-rounds hook injects.
            {
                let UpdateCtx { kernel, old, precopy_hook, .. } = ctx;
                for _ in 0..precopy_opts.serve_rounds {
                    let _ = run_round(kernel, old)?;
                }
                if let Some(hook) = precopy_hook.as_mut() {
                    hook(kernel, old, round);
                }
            }

            // Convergence: stop iterating once the old version dirtied at
            // most `convergence_bytes` since this round's epoch (page
            // granular, like the tracking itself).
            let mut newly_dirty_bytes = 0u64;
            for (&(old_pid, _), &upto) in ctx.pairs.iter().zip(uptos.iter()) {
                let proc = ctx.kernel.process(old_pid).map_err(McrError::Sim)?;
                newly_dirty_bytes += proc.space().dirty_page_count_since(upto) as u64 * PAGE_SIZE;
            }
            if round < precopy_opts.rounds && newly_dirty_bytes <= precopy_opts.convergence_bytes {
                break;
            }
        }
        Ok(())
    }
}

/// Phase 5 — commit: the new version resumes; the old version is terminated.
/// This is the pipeline's single non-reversible step.
pub struct CommitPhase;

impl Phase for CommitPhase {
    fn name(&self) -> PhaseName {
        PhaseName::Commit
    }

    fn run(&self, ctx: &mut UpdateCtx<'_>) -> McrResult<()> {
        {
            let UpdateCtx { kernel, new_instance, .. } = ctx;
            let new_instance =
                new_instance.as_mut().ok_or_else(|| McrError::InvalidState("nothing to commit".into()))?;
            resume(kernel, new_instance);
        }
        for &pid in &ctx.old.state.processes {
            let _ = ctx.kernel.remove_process(pid);
        }
        ctx.committed = true;
        Ok(())
    }
}

/// Post-copy phase 5 — commit: final delta retrace and transfer for every
/// pair with the stale residual *parked* instead of copied, the per-pair
/// sync-vs-defer decision, descriptor inheritance, access traps armed over
/// every parked range, and the new version resumed.
///
/// The old version's processes are deliberately **not** removed here: the
/// parked residual still reads the frozen old address spaces, and a drain
/// failure must roll back to an intact old instance. The phase is therefore
/// still reversible — [`PostcopyDrainPhase`] holds the point of no return.
pub struct PostcopyCommitPhase;

impl Phase for PostcopyCommitPhase {
    fn name(&self) -> PhaseName {
        PhaseName::PostcopyCommit
    }

    fn run(&self, ctx: &mut UpdateCtx<'_>) -> McrResult<()> {
        ctx.report.postcopy.enabled = true;
        if ctx.pairs.is_empty() {
            ctx.report.timings.state_transfer = SimDuration(0);
            let UpdateCtx { kernel, new_instance, .. } = ctx;
            let new_instance =
                new_instance.as_mut().ok_or_else(|| McrError::InvalidState("nothing to commit".into()))?;
            resume(kernel, new_instance);
            return Ok(());
        }
        let workers = ctx.opts.effective_transfer_workers(ctx.pairs.len());
        ctx.ensure_plan()?;
        let rounds: Vec<PrecopyRoundReport> = ctx.report.precopy.rounds.clone();

        let wall = Instant::now();
        let outcomes = {
            let UpdateCtx { kernel, old, new_instance, opts, pairs, plan, pair_precopy, .. } = ctx;
            let new_instance = new_instance.as_mut().expect("matched pairs imply an instance");
            let old_state = &old.state;
            let new_state = &new_instance.state;
            let plan = plan.as_ref().expect("ensured above");
            let split = kernel.split_pairs(pairs).map_err(McrError::Sim)?;
            let mut precopy_states: Vec<Option<&mut PairPrecopyState>> = if pair_precopy.is_empty() {
                (0..pairs.len()).map(|_| None).collect()
            } else {
                pair_precopy.iter_mut().map(Some).collect()
            };
            let shards = opts.effective_intra_pair_shards();
            let force_defer = opts.mode == TransferMode::Postcopy;
            let policy = opts.policy;
            let rounds = rounds.as_slice();
            let jobs: Vec<PostcopyPairJob<'_>> = split
                .into_iter()
                .zip(precopy_states.iter_mut())
                .map(|((old_proc, new_proc), precopy)| PostcopyPairJob {
                    old_proc,
                    new_proc,
                    old_state,
                    new_state,
                    plan,
                    trace: opts.trace,
                    shards,
                    precopy: precopy.take(),
                    force_defer,
                    policy,
                    rounds,
                })
                .collect();
            run_jobs(jobs, workers, PostcopyPairJob::run)
        };
        let host_wall_ns = u64::try_from(wall.elapsed().as_nanos()).unwrap_or(u64::MAX);

        // Merge deterministically, in pair order — identical bookkeeping to
        // the stop-the-world phase, so reports and conflicts stay
        // byte-identical across modes. Only the *charged* cost differs: a
        // deferred pair contributes nothing to the window (its applies are
        // charged when they happen, after resume).
        let mut any_conflicts = false;
        let mut failure: Option<McrError> = None;
        let mut pair_costs: Vec<SimDuration> = Vec::with_capacity(ctx.pairs.len());
        for (index, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Err(e) => {
                    failure = Some(e);
                    break;
                }
                Ok(PostcopyPairOutcome { stats, report, residual, state, deferred }) => {
                    let (old_pid, new_pid) = ctx.pairs[index];
                    ctx.report.tracing.merge(&stats);
                    ctx.kernel.advance_clock(residual.cost);
                    pair_costs.push(residual.cost);
                    ctx.report.precopy.absorb_residual(&residual);
                    if deferred {
                        ctx.report.postcopy.deferred_pairs += 1;
                        ctx.report.postcopy.deferred_objects += state.residual.remaining();
                        ctx.report.postcopy.deferred_bytes += state.residual.remaining_bytes();
                    } else {
                        ctx.report.postcopy.synced_pairs += 1;
                    }
                    any_conflicts |= !report.conflicts.is_empty();
                    ctx.report.transfer.push(report);
                    ctx.pair_postcopy.push(state);
                    inherit_connection_fds(ctx.kernel, old_pid, new_pid);
                }
            }
        }
        ctx.report.transfer.workers = workers;
        ctx.report.transfer.host_wall_ns = host_wall_ns;
        if let Some(e) = failure {
            return Err(e);
        }
        if any_conflicts {
            return Err(McrError::Conflicts(ctx.report.transfer.conflicts().cloned().collect()));
        }
        ctx.report.timings.state_transfer = list_schedule_makespan(&pair_costs, workers);

        // Arm the access traps over every parked range, then resume the new
        // version immediately — from here on the residual retires in the
        // background while the new instance serves.
        for (index, &(_, new_pid)) in ctx.pairs.iter().enumerate() {
            let state = &ctx.pair_postcopy[index];
            if !state.residual.is_drained() {
                let proc = ctx.kernel.process_mut(new_pid).map_err(McrError::Sim)?;
                state.residual.arm(proc)?;
            }
        }
        let UpdateCtx { kernel, new_instance, .. } = ctx;
        let new_instance = new_instance.as_mut().expect("matched pairs imply an instance");
        resume(kernel, new_instance);
        Ok(())
    }
}

/// Translates the chaos plan's *global* 1-based n-th-fault-in trigger into
/// the per-pair counter the engine checks: with `global_done` applies
/// already performed across the attempt and `pair_done` in this pair, the
/// pair's next apply is global number `global_done + 1`.
fn shifted_fault_in(global: Option<u64>, global_done: u64, pair_done: u64) -> Option<u64> {
    match global {
        Some(n) if n > global_done => Some(pair_done + (n - global_done)),
        _ => None,
    }
}

/// Post-copy phase 6 — drain: the resumed new version serves while the
/// parked residual retires two ways. *Access traps*: a store into a
/// not-yet-transferred page parked in the kernel; the handler faults in
/// every parked object on the touched pages, replays the store on the
/// transferred content (so final bytes match a stop-the-world run exactly),
/// and charges [`TRAP_SERVICE_LATENCY`] plus the apply cost as downtime —
/// the faulting thread was blocked. *Background drainer*: up to
/// [`PostcopyOptions::drain_batch`](crate::runtime::controller::PostcopyOptions)
/// objects per pair per round, in deterministic address order, charged as
/// concurrent time. Once every pair is drained the old version is
/// terminated — the phase's last act is the point of no return, so a
/// failure anywhere in the loop still rolls back to the intact old
/// instance.
pub struct PostcopyDrainPhase;

impl Phase for PostcopyDrainPhase {
    fn name(&self) -> PhaseName {
        PhaseName::PostcopyDrain
    }

    fn run(&self, ctx: &mut UpdateCtx<'_>) -> McrResult<()> {
        let serve_rounds = ctx.opts.postcopy.serve_rounds;
        let batch = ctx.opts.postcopy.drain_batch.max(1);
        let workers = ctx.opts.effective_transfer_workers(ctx.pairs.len());
        let fault_in = ctx.fault.at_fault_in();
        let drain_fault = ctx.fault.at_drain_step();
        let mut fault_in_done = 0u64;
        let mut round = 0usize;
        while ctx.pair_postcopy.iter().any(|s| !s.residual.is_drained()) {
            round += 1;
            // The new version serves while the drainer works (pending
            // traffic, timers, plus whatever the hook injects).
            {
                let UpdateCtx { kernel, new_instance, postcopy_hook, .. } = ctx;
                let new_instance = new_instance.as_mut().expect("post-copy commit resumed the new version");
                for _ in 0..serve_rounds {
                    let _ = run_round(kernel, new_instance)?;
                }
                if let Some(hook) = postcopy_hook.as_mut() {
                    hook(kernel, new_instance, round);
                }
            }
            // Collect the access traps the serving rounds parked.
            let mut trap_sets: Vec<Vec<PendingTrap>> = Vec::with_capacity(ctx.pairs.len());
            for &(_, new_pid) in ctx.pairs.iter() {
                trap_sets.push(ctx.kernel.take_pending_traps(new_pid).map_err(McrError::Sim)?);
            }
            let mut trap_cost = SimDuration(0);
            let mut drain_costs = vec![SimDuration(0); ctx.pairs.len()];
            {
                let UpdateCtx { kernel, pairs, plan, pair_postcopy, report, .. } = ctx;
                let plan = plan.as_ref().expect("post-copy commit built the plan");
                let split = kernel.split_pairs(pairs).map_err(McrError::Sim)?;
                for (i, ((old_proc, new_proc), state)) in
                    split.into_iter().zip(pair_postcopy.iter_mut()).enumerate()
                {
                    // Service this pair's traps first: each trapped store
                    // blocked its thread until the parked objects on the
                    // touched pages were faulted in, then replayed in
                    // program order on the transferred content.
                    for trap in &trap_sets[i] {
                        let before = state.residual.faulted_in();
                        let trigger = shifted_fault_in(fault_in, fault_in_done, before);
                        let stats = fault_in_at(
                            plan,
                            &mut state.residual,
                            old_proc,
                            new_proc,
                            trap.addr,
                            trap.bytes.len().max(1),
                            trigger,
                        )?;
                        fault_in_done += state.residual.faulted_in() - before;
                        report.postcopy.traps += 1;
                        report.postcopy.trap_objects += stats.objects;
                        let service = TRAP_SERVICE_LATENCY.saturating_add(stats.cost);
                        report.postcopy.trap_service_ns.push(service.0);
                        trap_cost = trap_cost.saturating_add(service);
                        new_proc
                            .space_mut()
                            .write_bytes_through(trap.addr, &trap.bytes)
                            .map_err(McrError::Sim)?;
                    }
                    // One background drain batch for this pair.
                    if !state.residual.is_drained() {
                        report.postcopy.drain_steps += 1;
                        if drain_fault == Some(report.postcopy.drain_steps) {
                            return Err(Conflict::FaultInjected { phase: "drain-step".into() }.into());
                        }
                        let before = state.residual.faulted_in();
                        let trigger = shifted_fault_in(fault_in, fault_in_done, before);
                        let stats =
                            drain_step(plan, &mut state.residual, old_proc, new_proc, batch, trigger)?;
                        fault_in_done += state.residual.faulted_in() - before;
                        report.postcopy.drained_objects += stats.objects;
                        drain_costs[i] = stats.cost;
                    }
                }
            }
            // Trap service is downtime (the faulting threads were blocked);
            // the drain batches ran concurrently with serving.
            ctx.report.timings.trap_service = ctx.report.timings.trap_service.saturating_add(trap_cost);
            ctx.kernel.advance_clock(trap_cost);
            ctx.kernel.advance_clock(list_schedule_makespan(&drain_costs, workers));
        }
        ctx.report.postcopy.drain_rounds = round as u64;
        // Every parked object is applied — nothing can fault on the old
        // space any more. Terminate the old version: the point of no return.
        for &pid in &ctx.old.state.processes {
            let _ = ctx.kernel.remove_process(pid);
        }
        ctx.committed = true;
        Ok(())
    }
}

/// Pairs old-version processes with new-version processes by creation-time
/// call-stack ID (and creation order), optionally recreating counterparts
/// for unmatched old processes.
fn match_processes(
    kernel: &mut Kernel,
    old: &McrInstance,
    new_instance: &mut McrInstance,
    opts: &UpdateOptions,
    report: &mut UpdateReport,
) -> McrResult<Vec<(Pid, Pid)>> {
    let new_init = new_instance.init_pid()?;
    let mut pairs = Vec::new();
    let mut used: BTreeSet<u32> = BTreeSet::new();
    for &old_pid in &old.state.processes {
        let old_proc = kernel.process(old_pid).map_err(McrError::Sim)?;
        let old_cs = CallStackId::from_frames(old_proc.creation_stack());
        let old_stack = old_proc.creation_stack().to_vec();
        let candidate =
            new_instance.state.processes.iter().copied().filter(|p| !used.contains(&p.0)).find(|&p| {
                kernel
                    .process(p)
                    .map(|proc| CallStackId::from_frames(proc.creation_stack()) == old_cs)
                    .unwrap_or(false)
            });
        match candidate {
            Some(new_pid) => {
                used.insert(new_pid.0);
                pairs.push((old_pid, new_pid));
                report.processes_matched += 1;
            }
            None if opts.recreate_unmatched_processes => {
                // Fork a counterpart from the new version's initial process
                // (modelling the annotated control-migration extension the
                // paper describes for volatile quiescent points).
                let init_tid = kernel.process(new_init).map_err(McrError::Sim)?.main_tid();
                let child = kernel
                    .syscall(new_init, init_tid, Syscall::Fork)
                    .map_err(McrError::Sim)?
                    .as_pid()
                    .ok_or_else(|| McrError::InvalidState("fork did not return a pid".into()))?;
                {
                    let proc = kernel.process_mut(child).map_err(McrError::Sim)?;
                    proc.set_creation_stack(old_stack);
                    let main = proc.main_tid();
                    proc.thread_mut(main).map_err(McrError::Sim)?.set_state(ThreadState::Quiesced);
                }
                let child_tid = kernel.process(child).map_err(McrError::Sim)?.main_tid();
                let name = old
                    .state
                    .threads
                    .iter()
                    .find(|t| t.pid == old_pid)
                    .map(|t| t.name.clone())
                    .unwrap_or_else(|| "recreated".to_string());
                new_instance.state.processes.push(child);
                new_instance.state.add_roster_entry(ThreadRosterEntry {
                    pid: child,
                    tid: child_tid,
                    name,
                    created_during_startup: false,
                    exited: false,
                });
                // The pid the old process observed stays meaningful in
                // transferred data structures.
                let old_virt = old.state.interpose.virtual_pid(old_pid);
                new_instance.state.interpose.map_pid(old_virt, child);
                used.insert(child.0);
                pairs.push((old_pid, child));
                report.processes_recreated += 1;
            }
            None => {
                return Err(Conflict::MissingCounterpart { object: format!("process {old_pid}") }.into());
            }
        }
    }
    Ok(pairs)
}
