//! The MCR runtime: instance lifecycle, cooperative scheduling, the
//! quiescence barrier, and the staged live-update pipeline.
//!
//! The update path is organized as a pipeline of named phases (see
//! [`pipeline`]): [`live_update`] runs the standard phase sequence, while
//! [`UpdatePipeline`] lets callers inject faults at phase boundaries or
//! assemble custom phase lists.

pub mod chaos;
pub mod controller;
pub mod pipeline;
pub mod report;
pub mod scheduler;
pub mod supervisor;

pub use chaos::{random_plan, shrink_schedule, ChaosRng, FaultCatalog, FaultSite};
pub use controller::{
    live_update, PostcopyOptions, PrecopyOptions, TransferMode, TransferPolicy, UpdateOptions, UpdateOutcome,
};
pub use pipeline::{
    ChaosPlan, CheckpointPhase, FaultPlan, PairPostcopyState, PairPrecopyState, Phase, PhaseName,
    PostcopyHook, PrecopyHook, PrecopyPhase, UpdateCtx, UpdatePipeline, TRAP_SERVICE_LATENCY,
};
pub use report::{
    MemoryReport, PhaseRecord, PhaseTrace, PostcopySummary, PrecopySummary, UpdateReport, UpdateTimings,
};
pub use scheduler::{
    all_quiesced, boot, create_instance, request_quiescence, resume, run_round, run_round_full_scan,
    run_rounds, run_startup, running_thread_count, step_thread, wait_quiescence, wake_all_threads,
    BootOptions, McrInstance, RoundStats, Scheduler, SchedulerMode,
};
pub use supervisor::{
    supervised_update, supervised_update_durable, time_to_recovery, AttemptSummary, DegradationTier,
    SupervisorPolicy,
};

/// Minimal MCR-enabled server programs used by the crate's own tests.
///
/// The full evaluation programs (Apache httpd, nginx, vsftpd, OpenSSH
/// models) live in the `mcr-servers` crate; these exist so the runtime can be
/// tested without a dependency cycle.
#[cfg(test)]
pub(crate) mod testprog {
    use mcr_procsim::{Addr, Fd, SimError, Syscall};
    use mcr_typemeta::{Field, TypeRegistry};

    use crate::error::{McrError, McrResult};
    use crate::program::{Program, ProgramEnv, StepOutcome, WaitInterest};

    /// A single-threaded, event-driven server in the shape of Listing 1:
    /// it listens on port 8080, reads a configuration file at startup, and
    /// appends one `l_t` node per handled connection to a global list.
    pub struct TinyServer {
        generation: u32,
        version: String,
        listen_fd: Option<Fd>,
        list_global: Option<Addr>,
    }

    impl TinyServer {
        /// Creates generation `generation` of the server (generation 2 and
        /// later add a `new` field to `l_t`, as in Figure 2).
        pub fn new(generation: u32) -> Self {
            TinyServer { generation, version: format!("{generation}.0"), listen_fd: None, list_global: None }
        }
    }

    impl Program for TinyServer {
        fn name(&self) -> &str {
            "tinyd"
        }

        fn version(&self) -> &str {
            &self.version
        }

        fn register_types(&mut self, types: &mut TypeRegistry) {
            let int = types.int("int", 4);
            let conf = types.struct_type("conf_s", vec![Field::new("workers", int), Field::new("port", int)]);
            let _ = types.pointer("conf_s*", conf);
            let fwd = types.opaque("l_t_fwd", 16);
            let node_ptr = types.pointer("l_t*", fwd);
            let mut fields = vec![Field::new("value", int)];
            if self.generation >= 2 {
                fields.push(Field::new("new", int));
            }
            fields.push(Field::new("next", node_ptr));
            let _ = types.struct_type("l_t", fields);
        }

        fn startup(&mut self, env: &mut ProgramEnv<'_>) -> McrResult<()> {
            env.scoped("server_init", |env| {
                let fd = env
                    .syscall(Syscall::Socket)?
                    .as_fd()
                    .ok_or_else(|| McrError::InvalidState("socket returned no fd".into()))?;
                env.syscall(Syscall::Bind { fd, port: 8080 })?;
                env.syscall(Syscall::Listen { fd })?;
                let conf_fd = env
                    .syscall(Syscall::Open { path: "/etc/tiny.conf".into(), create: false })?
                    .as_fd()
                    .ok_or_else(|| McrError::InvalidState("open returned no fd".into()))?;
                let _config = env.syscall(Syscall::Read { fd: conf_fd, len: 64 })?;
                env.syscall(Syscall::Close { fd: conf_fd })?;

                let conf_global = env.define_global("conf", "conf_s*")?;
                let conf = env.alloc("conf_s", "server_init:conf")?;
                env.write_u32(conf, 2)?;
                env.write_u32(conf.offset(4), 8080)?;
                env.write_ptr(conf_global, conf)?;
                let list_global = env.define_global("list", "l_t")?;
                env.write_u32(list_global, 0)?;

                self.listen_fd = Some(fd);
                self.list_global = Some(list_global);
                Ok(())
            })
        }

        fn thread_step(&mut self, env: &mut ProgramEnv<'_>) -> McrResult<StepOutcome> {
            let fd = self.listen_fd.ok_or_else(|| McrError::InvalidState("server not started".into()))?;
            let list_global =
                self.list_global.ok_or_else(|| McrError::InvalidState("server not started".into()))?;
            match env.syscall(Syscall::Accept { fd }) {
                Err(McrError::Sim(SimError::WouldBlock)) => Ok(StepOutcome::WouldBlock {
                    call: "accept".into(),
                    loop_name: "main_loop".into(),
                    wait: WaitInterest::Fd(fd),
                }),
                Err(e) => Err(e),
                Ok(ret) => {
                    let conn_fd =
                        ret.as_fd().ok_or_else(|| McrError::InvalidState("accept returned no fd".into()))?;
                    // Read the request (it may not have arrived yet).
                    let _ = env.syscall(Syscall::Read { fd: conn_fd, len: 1024 });
                    let reply = format!("hello from v{}", self.generation).into_bytes();
                    env.syscall(Syscall::Write { fd: conn_fd, data: reply })?;
                    // Record the connection in the global list.
                    let node = env.alloc("l_t", "handle_event:node")?;
                    let next_off = env.size_of("l_t")? - 8;
                    env.write_u32(node, conn_fd.0 as u32)?;
                    let old_head = env.read_ptr(list_global.offset(8))?;
                    env.write_ptr(node.offset(next_off), old_head)?;
                    env.write_ptr(list_global.offset(8), node)?;
                    env.note_event_handled();
                    env.charge_work(5_000);
                    Ok(StepOutcome::Progress)
                }
            }
        }
    }

    /// A broken new version used to exercise rollback paths.
    pub struct FaultyServer {
        omit_listen: bool,
        abort_startup: bool,
    }

    impl FaultyServer {
        /// A version whose startup forgets to call `listen()` (an omitted
        /// replay entry).
        pub fn omitting_listen() -> Self {
            FaultyServer { omit_listen: true, abort_startup: false }
        }

        /// A version whose startup aborts outright.
        pub fn aborting() -> Self {
            FaultyServer { omit_listen: false, abort_startup: true }
        }
    }

    impl Program for FaultyServer {
        fn name(&self) -> &str {
            "tinyd"
        }

        fn version(&self) -> &str {
            "9.9-broken"
        }

        fn register_types(&mut self, types: &mut TypeRegistry) {
            let int = types.int("int", 4);
            let conf = types.struct_type("conf_s", vec![Field::new("workers", int), Field::new("port", int)]);
            let _ = types.pointer("conf_s*", conf);
        }

        fn startup(&mut self, env: &mut ProgramEnv<'_>) -> McrResult<()> {
            env.scoped("server_init", |env| {
                if self.abort_startup {
                    return Err(McrError::Sim(SimError::Aborted("detected another running instance".into())));
                }
                let fd = env
                    .syscall(Syscall::Socket)?
                    .as_fd()
                    .ok_or_else(|| McrError::InvalidState("socket returned no fd".into()))?;
                env.syscall(Syscall::Bind { fd, port: 8080 })?;
                if !self.omit_listen {
                    env.syscall(Syscall::Listen { fd })?;
                }
                let conf_fd = env
                    .syscall(Syscall::Open { path: "/etc/tiny.conf".into(), create: false })?
                    .as_fd()
                    .ok_or_else(|| McrError::InvalidState("open returned no fd".into()))?;
                let _ = env.syscall(Syscall::Read { fd: conf_fd, len: 64 })?;
                env.syscall(Syscall::Close { fd: conf_fd })?;
                let conf_global = env.define_global("conf", "conf_s*")?;
                let conf = env.alloc("conf_s", "server_init:conf")?;
                env.write_ptr(conf_global, conf)?;
                Ok(())
            })
        }

        fn thread_step(&mut self, _env: &mut ProgramEnv<'_>) -> McrResult<StepOutcome> {
            Ok(StepOutcome::WouldBlock {
                call: "accept".into(),
                loop_name: "main_loop".into(),
                wait: WaitInterest::External,
            })
        }
    }
}
