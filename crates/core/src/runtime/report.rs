//! Update and memory reports produced by the update pipeline.

use mcr_procsim::{Kernel, SimDuration};

use crate::interpose::InterposeStats;
use crate::runtime::pipeline::PhaseName;
use crate::runtime::scheduler::McrInstance;
use crate::tracing::stats::TracingStats;
use crate::transfer::engine::{PrecopyRoundReport, ResidualStats, TransferSummary};

/// Duration and outcome of one executed pipeline phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Which phase ran.
    pub name: PhaseName,
    /// How long it took (simulated time).
    pub duration: SimDuration,
    /// Whether the phase finished without error. At most one record per
    /// attempt can be `false` — the pipeline rolls back on the first failure.
    pub completed: bool,
}

/// Per-phase timing trace of one update attempt, in execution order.
///
/// The pipeline driver appends one record per executed phase, so a
/// rolled-back attempt shows exactly how far it got and where the time went.
#[derive(Debug, Clone, Default)]
pub struct PhaseTrace {
    records: Vec<PhaseRecord>,
}

impl PhaseTrace {
    /// Appends a record (called by the pipeline driver after each phase).
    pub(crate) fn record(&mut self, name: PhaseName, duration: SimDuration, completed: bool) {
        self.records.push(PhaseRecord { name, duration, completed });
    }

    /// The executed phases, in order.
    pub fn records(&self) -> &[PhaseRecord] {
        &self.records
    }

    /// The duration of `name`, if that phase ran. A custom pipeline may run
    /// the same phase more than once; the most recent run wins.
    pub fn duration_of(&self, name: PhaseName) -> Option<SimDuration> {
        self.records.iter().rev().find(|r| r.name == name).map(|r| r.duration)
    }

    /// Whether `name` ran and its most recent run finished without error.
    pub fn completed(&self, name: PhaseName) -> bool {
        self.records.iter().rev().find(|r| r.name == name).is_some_and(|r| r.completed)
    }

    /// The last phase that started (the failing one, for a rollback).
    pub fn last(&self) -> Option<&PhaseRecord> {
        self.records.last()
    }

    /// Sum of every recorded phase duration.
    pub fn total(&self) -> SimDuration {
        self.records.iter().fold(SimDuration::default(), |acc, r| acc.saturating_add(r.duration))
    }
}

/// Breakdown of the client-perceived update time (§8 "Update time").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateTimings {
    /// Time spent in the concurrent pre-copy phase — tracing and copying
    /// rounds executed *while the old version kept serving traffic*. This is
    /// not downtime; it trades total update latency for a smaller
    /// stop-the-world window. Zero when pre-copy is disabled.
    pub precopy: SimDuration,
    /// The stop-the-world span: everything from the start of the quiescence
    /// barrier to the end of the pipeline. Without pre-copy this equals
    /// `total`; with pre-copy it shrinks to quiescence + residual transfer +
    /// commit, the O(working set) cost the pre-copy design targets.
    pub downtime: SimDuration,
    /// Time for the barrier protocol to park every old-version thread.
    pub quiescence: SimDuration,
    /// Time to restart the new version and complete control migration
    /// (record/replay of startup operations).
    pub control_migration: SimDuration,
    /// State-transfer time with MCR's parallel per-process transfer (the
    /// time reported in Figure 3): the makespan of the round-robin schedule
    /// the pair-parallel phase executed with
    /// [`UpdateOptions::transfer_workers`](crate::runtime::controller::UpdateOptions)
    /// workers. One worker reproduces the sequential sum; one worker per
    /// pair (the default) is bounded by the slowest pair.
    pub state_transfer: SimDuration,
    /// State-transfer time if processes were transferred sequentially
    /// (ablation of the parallel strategy).
    pub state_transfer_serial: SimDuration,
    /// Time the post-copy drain loop spent after the new version resumed
    /// (background serving + fault-in + drain batches). This is *not*
    /// downtime — only the `trap_service` share of it is.
    pub postcopy_drain: SimDuration,
    /// Access-trap service latency charged back to downtime: every trap the
    /// resumed new version took on a not-yet-transferred page blocked the
    /// faulting thread for the fault-in (plus a fixed trap round-trip), so
    /// post-copy downtime is the commit window plus this.
    pub trap_service: SimDuration,
    /// Time the optional [`PhaseName::Checkpoint`] phase spent writing the
    /// durable checkpoint (parallel shard-writer makespan plus manifest
    /// commit). Runs inside the quiescence window, so it is downtime; zero
    /// when no checkpoint phase is configured.
    pub checkpoint_write: SimDuration,
    /// Total time the program was unavailable.
    pub total: SimDuration,
}

impl UpdateTimings {
    /// Folds a just-recorded phase duration into the legacy timing fields
    /// (called by the pipeline driver after every phase, so the breakdown is
    /// populated automatically and stays meaningful on rollback).
    pub(crate) fn absorb_phase(&mut self, name: PhaseName, phases: &PhaseTrace) {
        let d = phases.duration_of(name).unwrap_or_default();
        match name {
            PhaseName::Precopy => self.precopy = d,
            PhaseName::Quiesce => self.quiescence = d,
            PhaseName::ReinitReplay => self.control_migration = d,
            PhaseName::TraceAndTransfer | PhaseName::PostcopyCommit => {
                // The serial wall time spans process matching plus the
                // sequential per-process trace/transfer loop.
                let matching = phases.duration_of(PhaseName::MatchProcesses).unwrap_or_default();
                self.state_transfer_serial = matching.saturating_add(d);
            }
            PhaseName::PostcopyDrain => self.postcopy_drain = d,
            PhaseName::Checkpoint => self.checkpoint_write = d,
            PhaseName::MatchProcesses | PhaseName::Commit => {}
        }
    }
}

/// Observability record of the iterative pre-copy phase of one update.
///
/// The summary is deliberately *excluded* from the determinism comparisons
/// the property tests run across configurations: the whole point of
/// pre-copy is that this concurrent work differs from a stop-the-world run
/// while the logical transfer reports stay byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrecopySummary {
    /// Whether a pre-copy phase ran at all.
    pub enabled: bool,
    /// Per-round copy work, merged across the process pairs in pair order.
    pub rounds: Vec<PrecopyRoundReport>,
    /// The residual work the stop-the-world window still had to do, summed
    /// across pairs (equals the full transfer when pre-copy is disabled).
    pub residual: ResidualStats,
}

impl PrecopySummary {
    /// Total objects copied by the concurrent rounds.
    pub fn precopied_objects(&self) -> u64 {
        self.rounds.iter().map(|r| r.objects_copied).sum()
    }

    /// Total bytes copied by the concurrent rounds.
    pub fn precopied_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.bytes_copied).sum()
    }

    /// Merges one pair's round report into the summary (round is 1-based).
    pub(crate) fn absorb_round(&mut self, round: usize, report: &PrecopyRoundReport) {
        if self.rounds.len() < round {
            self.rounds.resize(round, PrecopyRoundReport::default());
        }
        let slot = &mut self.rounds[round - 1];
        slot.objects_copied += report.objects_copied;
        slot.bytes_copied += report.bytes_copied;
        slot.cost = slot.cost.saturating_add(report.cost);
    }

    /// Merges one pair's residual statistics into the summary.
    pub(crate) fn absorb_residual(&mut self, residual: &ResidualStats) {
        self.residual.objects += residual.objects;
        self.residual.bytes += residual.bytes;
        self.residual.cost = self.residual.cost.saturating_add(residual.cost);
    }
}

/// Observability record of the post-copy phases of one update
/// ([`TransferMode::Postcopy`](crate::runtime::controller::TransferMode) and
/// `Adaptive`).
///
/// Like [`PrecopySummary`], the counters here are *excluded* from the
/// determinism comparisons across configurations: post-copy moves work
/// around in time (traps vs. background drain) while the logical transfer
/// reports and post-drain memory stay byte-identical to a stop-the-world
/// run. The counters also size the chaos engine's post-copy fault windows:
/// after a clean run, `deferred_objects` is the n-th-fault-in site count and
/// `drain_steps` the n-th-drain-step site count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostcopySummary {
    /// Whether a post-copy commit ran at all.
    pub enabled: bool,
    /// Pairs whose residual was synced inside the commit window (the
    /// adaptive controller judged them converged).
    pub synced_pairs: usize,
    /// Pairs whose residual was parked behind access traps.
    pub deferred_pairs: usize,
    /// Objects parked at commit (the post-copy fault-in site count).
    pub deferred_objects: u64,
    /// Bytes parked at commit.
    pub deferred_bytes: u64,
    /// Access traps the resumed new version took on parked pages.
    pub traps: u64,
    /// Parked objects applied by trap service (fault-in).
    pub trap_objects: u64,
    /// Parked objects applied by the background drainer.
    pub drained_objects: u64,
    /// Background drain batches executed (the n-th-drain-step site count).
    pub drain_steps: u64,
    /// Drain-loop rounds (serve + trap service + drain batch) executed.
    pub drain_rounds: u64,
    /// Per-trap service latency samples, nanoseconds: the fixed trap entry
    /// cost plus the fault-in apply cost the blocked thread waited for.
    /// One entry per trap, in service order — percentile material for the
    /// fleet tail-latency bench.
    pub trap_service_ns: Vec<u64>,
}

/// Everything MCR measured while performing (or attempting) one live update.
#[derive(Debug, Clone, Default)]
pub struct UpdateReport {
    /// Timing breakdown.
    pub timings: UpdateTimings,
    /// Pre-copy observability (rounds executed, residual left for the
    /// stop-the-world window).
    pub precopy: PrecopySummary,
    /// Post-copy observability (pairs deferred, traps taken, drain
    /// progress).
    pub postcopy: PostcopySummary,
    /// What the optional durable-checkpoint phase wrote (`None` when the
    /// pipeline ran without [`PhaseName::Checkpoint`] or the phase never
    /// executed).
    pub checkpoint: Option<crate::transfer::checkpoint::CheckpointSummary>,
    /// Per-phase execution trace (which phases ran, for how long, and
    /// whether they completed).
    pub phases: PhaseTrace,
    /// Aggregated mutable-tracing statistics across processes (Table 2).
    pub tracing: TracingStats,
    /// Aggregated state-transfer results across processes.
    pub transfer: TransferSummary,
    /// Record/replay statistics of mutable reinitialization.
    pub replay: InterposeStats,
    /// Old-version processes matched to a new-version counterpart.
    pub processes_matched: usize,
    /// Old-version processes for which a counterpart had to be recreated
    /// (volatile quiescent points, e.g. per-connection worker processes).
    pub processes_recreated: usize,
    /// Connections open at update time.
    pub open_connections: usize,
    /// Startup time of the old version (recorded at its original boot).
    pub old_startup: SimDuration,
    /// Startup time of the new version under mutable reinitialization.
    pub new_startup: SimDuration,
    /// Kernel syscalls issued while the pipeline was in flight (serving
    /// rounds, startup replay, pre-copy traffic). After a clean run this is
    /// the chaos engine's n-th-syscall fault-site count.
    pub update_syscalls: u64,
    /// Object writes the transfer engine performed (across every pair,
    /// shard and pre-copy round). After a clean run this is the chaos
    /// engine's n-th-object-write fault-site count.
    pub object_writes: u64,
    /// Attempt history recorded by the update supervisor: one entry per
    /// pipeline attempt, in order. Empty for a bare (unsupervised)
    /// pipeline run; on a supervised update the *final* outcome's report
    /// carries the whole ladder (see
    /// [`supervised_update`](crate::runtime::supervisor::supervised_update)).
    pub attempts: Vec<crate::runtime::supervisor::AttemptSummary>,
}

impl UpdateReport {
    /// The replay-phase overhead relative to the original startup
    /// (the paper reports 1–45%).
    pub fn replay_overhead_fraction(&self) -> f64 {
        if self.old_startup.0 == 0 {
            0.0
        } else {
            self.new_startup.0 as f64 / self.old_startup.0 as f64 - 1.0
        }
    }

    /// Fraction of traced state that did not need to be transferred thanks to
    /// dirty-object tracking (the 68%–86% reduction quoted in §8).
    pub fn dirty_reduction(&self) -> f64 {
        self.tracing.dirty_reduction()
    }
}

/// Memory usage of one instance, used for the §8 memory-overhead evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Mapped memory plus allocator metadata of all processes.
    pub resident_bytes: u64,
    /// MCR metadata (startup log, registries, shadow allocation log).
    pub metadata_bytes: u64,
}

impl MemoryReport {
    /// Measures an instance.
    pub fn measure(kernel: &Kernel, instance: &McrInstance) -> Self {
        MemoryReport {
            resident_bytes: instance.resident_bytes(kernel),
            metadata_bytes: instance.state.metadata_bytes(),
        }
    }

    /// Total bytes attributable to the instance.
    pub fn total(&self) -> u64 {
        self.resident_bytes
    }

    /// Overhead ratio of this (instrumented) measurement over a baseline
    /// measurement, e.g. `2.8` means a 180% resident-set increase.
    pub fn overhead_over(&self, baseline: &MemoryReport) -> f64 {
        if baseline.resident_bytes == 0 {
            0.0
        } else {
            self.resident_bytes as f64 / baseline.resident_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_overhead_fraction() {
        let report = UpdateReport {
            old_startup: SimDuration(1_000),
            new_startup: SimDuration(1_300),
            ..Default::default()
        };
        assert!((report.replay_overhead_fraction() - 0.3).abs() < 1e-9);
        let zero = UpdateReport::default();
        assert_eq!(zero.replay_overhead_fraction(), 0.0);
    }

    #[test]
    fn memory_overhead_ratio() {
        let baseline = MemoryReport { resident_bytes: 100, metadata_bytes: 0 };
        let instrumented = MemoryReport { resident_bytes: 390, metadata_bytes: 90 };
        assert!((instrumented.overhead_over(&baseline) - 3.9).abs() < 1e-9);
        assert_eq!(instrumented.total(), 390);
        assert_eq!(instrumented.overhead_over(&MemoryReport::default()), 0.0);
    }
}
