//! Update and memory reports produced by the controller.

use mcr_procsim::{Kernel, SimDuration};

use crate::interpose::InterposeStats;
use crate::runtime::scheduler::McrInstance;
use crate::tracing::stats::TracingStats;
use crate::transfer::engine::TransferSummary;

/// Breakdown of the client-perceived update time (§8 "Update time").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateTimings {
    /// Time for the barrier protocol to park every old-version thread.
    pub quiescence: SimDuration,
    /// Time to restart the new version and complete control migration
    /// (record/replay of startup operations).
    pub control_migration: SimDuration,
    /// State-transfer time with MCR's parallel per-process transfer
    /// (the time reported in Figure 3).
    pub state_transfer: SimDuration,
    /// State-transfer time if processes were transferred sequentially
    /// (ablation of the parallel strategy).
    pub state_transfer_serial: SimDuration,
    /// Total time the program was unavailable.
    pub total: SimDuration,
}

/// Everything MCR measured while performing (or attempting) one live update.
#[derive(Debug, Clone, Default)]
pub struct UpdateReport {
    /// Timing breakdown.
    pub timings: UpdateTimings,
    /// Aggregated mutable-tracing statistics across processes (Table 2).
    pub tracing: TracingStats,
    /// Aggregated state-transfer results across processes.
    pub transfer: TransferSummary,
    /// Record/replay statistics of mutable reinitialization.
    pub replay: InterposeStats,
    /// Old-version processes matched to a new-version counterpart.
    pub processes_matched: usize,
    /// Old-version processes for which a counterpart had to be recreated
    /// (volatile quiescent points, e.g. per-connection worker processes).
    pub processes_recreated: usize,
    /// Connections open at update time.
    pub open_connections: usize,
    /// Startup time of the old version (recorded at its original boot).
    pub old_startup: SimDuration,
    /// Startup time of the new version under mutable reinitialization.
    pub new_startup: SimDuration,
}

impl UpdateReport {
    /// The replay-phase overhead relative to the original startup
    /// (the paper reports 1–45%).
    pub fn replay_overhead_fraction(&self) -> f64 {
        if self.old_startup.0 == 0 {
            0.0
        } else {
            self.new_startup.0 as f64 / self.old_startup.0 as f64 - 1.0
        }
    }

    /// Fraction of traced state that did not need to be transferred thanks to
    /// dirty-object tracking (the 68%–86% reduction quoted in §8).
    pub fn dirty_reduction(&self) -> f64 {
        self.tracing.dirty_reduction()
    }
}

/// Memory usage of one instance, used for the §8 memory-overhead evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Mapped memory plus allocator metadata of all processes.
    pub resident_bytes: u64,
    /// MCR metadata (startup log, registries, shadow allocation log).
    pub metadata_bytes: u64,
}

impl MemoryReport {
    /// Measures an instance.
    pub fn measure(kernel: &Kernel, instance: &McrInstance) -> Self {
        MemoryReport {
            resident_bytes: instance.resident_bytes(kernel),
            metadata_bytes: instance.state.metadata_bytes(),
        }
    }

    /// Total bytes attributable to the instance.
    pub fn total(&self) -> u64 {
        self.resident_bytes
    }

    /// Overhead ratio of this (instrumented) measurement over a baseline
    /// measurement, e.g. `2.8` means a 180% resident-set increase.
    pub fn overhead_over(&self, baseline: &MemoryReport) -> f64 {
        if baseline.resident_bytes == 0 {
            0.0
        } else {
            self.resident_bytes as f64 / baseline.resident_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_overhead_fraction() {
        let report = UpdateReport {
            old_startup: SimDuration(1_000),
            new_startup: SimDuration(1_300),
            ..Default::default()
        };
        assert!((report.replay_overhead_fraction() - 0.3).abs() < 1e-9);
        let zero = UpdateReport::default();
        assert_eq!(zero.replay_overhead_fraction(), 0.0);
    }

    #[test]
    fn memory_overhead_ratio() {
        let baseline = MemoryReport { resident_bytes: 100, metadata_bytes: 0 };
        let instrumented = MemoryReport { resident_bytes: 390, metadata_bytes: 90 };
        assert!((instrumented.overhead_over(&baseline) - 3.9).abs() < 1e-9);
        assert_eq!(instrumented.total(), 390);
        assert_eq!(instrumented.overhead_over(&MemoryReport::default()), 0.0);
    }
}
