//! Fault-site enumeration, randomized chaos schedules, and schedule
//! shrinking.
//!
//! The chaos engine turns the pipeline's rollback guarantee into a
//! continuously verified property over an *enumerated* site space:
//!
//! 1. **Enumerate** — run the update once with no faults and derive a
//!    [`FaultCatalog`] from the clean run's [`UpdateReport`]: every phase
//!    boundary, every object write the transfer engine performed (including
//!    pre-copy round copies), and every kernel syscall issued while the
//!    pipeline was in flight is an injectable site.
//! 2. **Schedule** — build [`ChaosPlan`]s over the catalog, either directly
//!    ([`FaultSite::plan`]) or as a seeded randomized campaign
//!    ([`random_plan`] with [`ChaosRng`], the same deterministic xorshift64*
//!    generator the property-test suite uses — a seed fully reproduces a
//!    campaign).
//! 3. **Verify** — every injected schedule must roll back to a byte-identical
//!    old instance; when one does not, [`shrink_schedule`] reduces the
//!    failing schedule to a minimal reproducer (re-running the predicate on
//!    structurally smaller plans), which is what a bug report should carry.

use crate::runtime::pipeline::{ChaosPlan, PhaseName};
use crate::runtime::report::UpdateReport;

/// One injectable fault site of a specific update scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The boundary right before a pipeline phase.
    Boundary(PhaseName),
    /// The n-th (1-based) object write the transfer engine performs,
    /// counted across every pair, shard and pre-copy round.
    TransferObject(u64),
    /// The n-th (1-based) kernel syscall issued while the pipeline is in
    /// flight (serving rounds, startup replay, pre-copy traffic).
    Syscall(u64),
    /// The n-th (1-based) parked object a post-copy update applies after
    /// resume, counted across trap service and background drain batches.
    /// Fires while the *new* version is already serving — the commit-side
    /// rollback guarantee is exercised from the far side of the resume.
    FaultIn(u64),
    /// The n-th (1-based) background drain batch the post-copy drain loop
    /// starts (a commit-boundary class site: the batch fails before it
    /// applies anything).
    DrainStep(u64),
    /// A crash of the checkpoint store after the n-th (1-based) block this
    /// attempt writes: the block lands, everything after is lost, and every
    /// later store call fails until the store is remounted. Exercises the
    /// shards-before-manifest commit protocol.
    ManifestWrite(u64),
    /// A torn write at the n-th (1-based) block this attempt writes: the
    /// block is half-persisted (first half only), then the store crashes.
    /// The nastier sibling of `ManifestWrite` — a checksum must catch the
    /// mangled block on restore.
    TornWrite(u64),
    /// A crash at the n-th (1-based) step of a checkpoint restore (see
    /// [`RESTORE_STEPS`](crate::transfer::checkpoint::RESTORE_STEPS)). In a
    /// campaign this is a *drill* against a live system: the restore must
    /// fail with a typed error and leave the serving instance untouched.
    RestoreStep(u64),
}

impl FaultSite {
    /// The single-site chaos plan that injects exactly this fault.
    pub fn plan(&self) -> ChaosPlan {
        match *self {
            FaultSite::Boundary(phase) => ChaosPlan::at_boundaries([phase]),
            FaultSite::TransferObject(nth) => ChaosPlan::failing_at_transfer_object(nth),
            FaultSite::Syscall(nth) => ChaosPlan::failing_at_syscall(nth),
            FaultSite::FaultIn(nth) => ChaosPlan::failing_at_fault_in(nth),
            FaultSite::DrainStep(nth) => ChaosPlan::failing_at_drain_step(nth),
            FaultSite::ManifestWrite(nth) => ChaosPlan::failing_at_manifest_write(nth),
            FaultSite::TornWrite(nth) => ChaosPlan::failing_at_torn_write(nth),
            FaultSite::RestoreStep(nth) => ChaosPlan::failing_at_restore_step(nth),
        }
    }

    /// Short label for logs and bench output.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultSite::Boundary(_) => "boundary",
            FaultSite::TransferObject(_) => "transfer-object",
            FaultSite::Syscall(_) => "syscall",
            FaultSite::FaultIn(_) => "fault-in",
            FaultSite::DrainStep(_) => "drain-step",
            FaultSite::ManifestWrite(_) => "manifest-write",
            FaultSite::TornWrite(_) => "torn-write",
            FaultSite::RestoreStep(_) => "restore-step",
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSite::Boundary(p) => write!(f, "boundary:{p}"),
            FaultSite::TransferObject(n) => write!(f, "transfer-object:{n}"),
            FaultSite::Syscall(n) => write!(f, "syscall:{n}"),
            FaultSite::FaultIn(n) => write!(f, "fault-in:{n}"),
            FaultSite::DrainStep(n) => write!(f, "drain-step:{n}"),
            FaultSite::ManifestWrite(n) => write!(f, "manifest-write:{n}"),
            FaultSite::TornWrite(n) => write!(f, "torn-write:{n}"),
            FaultSite::RestoreStep(n) => write!(f, "restore-step:{n}"),
        }
    }
}

/// The enumerated fault-site space of one update scenario, derived from a
/// clean (fault-free) dry run.
///
/// Sites are indexed densely — boundaries first, then object writes, then
/// syscalls — so a campaign can sample uniformly over the whole space with
/// one [`ChaosRng::range`] draw and report exact coverage ratios.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultCatalog {
    /// Injectable phase boundaries, in execution order.
    pub boundaries: Vec<PhaseName>,
    /// Number of n-th-object-write sites (object writes the clean run
    /// performed, pre-copy rounds included).
    pub transfer_objects: u64,
    /// How many of `transfer_objects` were performed by concurrent pre-copy
    /// rounds (a sub-range, not additional sites: object-fault triggers
    /// with `nth <= precopy_copies` land while the old instance still
    /// serves).
    pub precopy_copies: u64,
    /// Number of n-th-syscall sites (syscalls the clean run issued while
    /// the pipeline was in flight).
    pub syscalls: u64,
    /// Number of n-th-fault-in sites: parked objects a post-copy run
    /// applied after resume (zero for synchronous modes).
    pub fault_ins: u64,
    /// Number of n-th-drain-step sites: background drain batches the
    /// post-copy drain loop started (zero for synchronous modes).
    pub drain_steps: u64,
    /// Number of store blocks the clean run's checkpoint phase wrote (zero
    /// when the pipeline ran without a checkpoint). Each block is both a
    /// crash site (`ManifestWrite`) and a torn-write site (`TornWrite`).
    pub checkpoint_blocks: u64,
    /// Number of restore steps drillable against this scenario
    /// ([`RESTORE_STEPS`](crate::transfer::checkpoint::RESTORE_STEPS) when a
    /// checkpoint exists, zero otherwise).
    pub restore_steps: u64,
}

impl FaultCatalog {
    /// Derives the catalog from a clean run's report. `report` must come
    /// from a *committed* fault-free attempt, otherwise the counts describe
    /// a truncated site space.
    pub fn from_report(report: &UpdateReport) -> Self {
        FaultCatalog {
            boundaries: report.phases.records().iter().map(|r| r.name).collect(),
            transfer_objects: report.object_writes,
            precopy_copies: report.precopy.precopied_objects(),
            syscalls: report.update_syscalls,
            fault_ins: report.postcopy.deferred_objects,
            drain_steps: report.postcopy.drain_steps,
            checkpoint_blocks: report.checkpoint.map_or(0, |c| c.blocks),
            restore_steps: report
                .checkpoint
                .map_or(0, |_| crate::transfer::checkpoint::RESTORE_STEPS.len() as u64),
        }
    }

    /// Total number of injectable sites.
    pub fn total_sites(&self) -> u64 {
        self.boundaries.len() as u64
            + self.transfer_objects
            + self.syscalls
            + self.fault_ins
            + self.drain_steps
            + self.checkpoint_blocks * 2
            + self.restore_steps
    }

    /// The site behind dense index `index` (see the type docs for the
    /// ordering), or `None` past the end of the space.
    pub fn site(&self, index: u64) -> Option<FaultSite> {
        let nb = self.boundaries.len() as u64;
        if index < nb {
            return Some(FaultSite::Boundary(self.boundaries[index as usize]));
        }
        let index = index - nb;
        if index < self.transfer_objects {
            return Some(FaultSite::TransferObject(index + 1));
        }
        let index = index - self.transfer_objects;
        if index < self.syscalls {
            return Some(FaultSite::Syscall(index + 1));
        }
        let index = index - self.syscalls;
        if index < self.fault_ins {
            return Some(FaultSite::FaultIn(index + 1));
        }
        let index = index - self.fault_ins;
        if index < self.drain_steps {
            return Some(FaultSite::DrainStep(index + 1));
        }
        let index = index - self.drain_steps;
        if index < self.checkpoint_blocks {
            return Some(FaultSite::ManifestWrite(index + 1));
        }
        let index = index - self.checkpoint_blocks;
        if index < self.checkpoint_blocks {
            return Some(FaultSite::TornWrite(index + 1));
        }
        let index = index - self.checkpoint_blocks;
        (index < self.restore_steps).then_some(FaultSite::RestoreStep(index + 1))
    }

    /// Draws one site uniformly over the whole space (`None` if the space
    /// is empty).
    pub fn sample(&self, rng: &mut ChaosRng) -> Option<FaultSite> {
        let total = self.total_sites();
        (total > 0).then(|| self.site(rng.range(0, total)).expect("index in range"))
    }
}

/// The deterministic xorshift64* generator chaos campaigns run on — the
/// same recurrence as the property-test suite's `Rng`, so a campaign is
/// fully reproduced by its seed.
#[derive(Debug, Clone)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// Seeds the generator (any seed, including 0, is valid).
    pub fn new(seed: u64) -> Self {
        ChaosRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Next raw 64-bit draw.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[lo, hi)`; `hi` must be greater than `lo`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    /// True with probability `percent / 100`.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.range(0, 100) < percent
    }
}

/// Draws a randomized schedule over the catalog: one site always, a second
/// independent site 25% of the time (multi-trigger plans exercise the
/// "first site reached fires" composition). Returns an empty plan only for
/// an empty catalog.
pub fn random_plan(rng: &mut ChaosRng, catalog: &FaultCatalog) -> ChaosPlan {
    let mut plan = ChaosPlan::none();
    let picks = if rng.chance(25) { 2 } else { 1 };
    for _ in 0..picks {
        let Some(site) = catalog.sample(rng) else { break };
        plan = match site {
            FaultSite::Boundary(p) if !plan.fires_before(p) => plan.and_before(p),
            FaultSite::Boundary(_) => plan,
            FaultSite::TransferObject(n) => plan.and_at_transfer_object(n),
            FaultSite::Syscall(n) => plan.and_at_syscall(n),
            FaultSite::FaultIn(n) => plan.and_at_fault_in(n),
            FaultSite::DrainStep(n) => plan.and_at_drain_step(n),
            FaultSite::ManifestWrite(n) => plan.and_at_manifest_write(n),
            FaultSite::TornWrite(n) => plan.and_at_torn_write(n),
            FaultSite::RestoreStep(n) => plan.and_at_restore_step(n),
        };
    }
    plan
}

/// Reduces a failing chaos schedule to a minimal reproducer.
///
/// `fails` must return `true` when the given plan still reproduces the
/// observed failure (it is re-invoked on candidate plans, so it should
/// re-run the scenario deterministically). The result is 1-minimal in the
/// tried moves: no single trigger can be dropped, and no n-value lowered to
/// `1`, `n/2` or `n-1`, without losing the failure. The input plan is
/// returned unchanged if it does not fail at all.
pub fn shrink_schedule(plan: &ChaosPlan, mut fails: impl FnMut(&ChaosPlan) -> bool) -> ChaosPlan {
    if !fails(plan) {
        return plan.clone();
    }
    let mut current = plan.clone();
    loop {
        let mut shrunk = false;
        // Drop whole triggers first — fewer arms beats smaller numbers.
        let mut b = 0;
        while b < current.boundaries().len() {
            let candidate = current.without_boundary(b);
            if fails(&candidate) {
                current = candidate;
                shrunk = true;
            } else {
                b += 1;
            }
        }
        // Each candidate must be derived from the *current* plan at the time
        // it is tried: a snapshot taken before the loop would re-add a
        // trigger the previous iteration just dropped, and the shrinker
        // would oscillate forever.
        let drops: [fn(&ChaosPlan) -> ChaosPlan; 8] = [
            ChaosPlan::without_transfer_object,
            ChaosPlan::without_syscall,
            ChaosPlan::without_fault_in,
            ChaosPlan::without_drain_step,
            ChaosPlan::without_manifest_write,
            ChaosPlan::without_torn_write,
            ChaosPlan::without_restore_step,
            ChaosPlan::without_crash_old,
        ];
        for drop_trigger in drops {
            let candidate = drop_trigger(&current);
            if candidate != current && fails(&candidate) {
                current = candidate;
                shrunk = true;
            }
        }
        // Then pull the surviving n-values down.
        if let Some(n) = current.at_transfer_object() {
            for smaller in [1, n / 2, n - 1] {
                if smaller > 0 && smaller < n {
                    let candidate = current.clone().and_at_transfer_object(smaller);
                    if fails(&candidate) {
                        current = candidate;
                        shrunk = true;
                        break;
                    }
                }
            }
        }
        if let Some(n) = current.at_syscall() {
            for smaller in [1, n / 2, n - 1] {
                if smaller > 0 && smaller < n {
                    let candidate = current.clone().and_at_syscall(smaller);
                    if fails(&candidate) {
                        current = candidate;
                        shrunk = true;
                        break;
                    }
                }
            }
        }
        if let Some(n) = current.at_fault_in() {
            for smaller in [1, n / 2, n - 1] {
                if smaller > 0 && smaller < n {
                    let candidate = current.clone().and_at_fault_in(smaller);
                    if fails(&candidate) {
                        current = candidate;
                        shrunk = true;
                        break;
                    }
                }
            }
        }
        if let Some(n) = current.at_drain_step() {
            for smaller in [1, n / 2, n - 1] {
                if smaller > 0 && smaller < n {
                    let candidate = current.clone().and_at_drain_step(smaller);
                    if fails(&candidate) {
                        current = candidate;
                        shrunk = true;
                        break;
                    }
                }
            }
        }
        if let Some(n) = current.at_manifest_write() {
            for smaller in [1, n / 2, n - 1] {
                if smaller > 0 && smaller < n {
                    let candidate = current.clone().and_at_manifest_write(smaller);
                    if fails(&candidate) {
                        current = candidate;
                        shrunk = true;
                        break;
                    }
                }
            }
        }
        if let Some(n) = current.at_torn_write() {
            for smaller in [1, n / 2, n - 1] {
                if smaller > 0 && smaller < n {
                    let candidate = current.clone().and_at_torn_write(smaller);
                    if fails(&candidate) {
                        current = candidate;
                        shrunk = true;
                        break;
                    }
                }
            }
        }
        if let Some(n) = current.at_restore_step() {
            for smaller in [1, n / 2, n - 1] {
                if smaller > 0 && smaller < n {
                    let candidate = current.clone().and_at_restore_step(smaller);
                    if fails(&candidate) {
                        current = candidate;
                        shrunk = true;
                        break;
                    }
                }
            }
        }
        if !shrunk {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> FaultCatalog {
        FaultCatalog {
            boundaries: vec![PhaseName::Quiesce, PhaseName::ReinitReplay, PhaseName::Commit],
            transfer_objects: 10,
            precopy_copies: 4,
            syscalls: 20,
            fault_ins: 5,
            drain_steps: 3,
            checkpoint_blocks: 4,
            restore_steps: 15,
        }
    }

    #[test]
    fn dense_site_indexing_covers_the_space_exactly() {
        let c = catalog();
        assert_eq!(c.total_sites(), 64);
        assert_eq!(c.site(0), Some(FaultSite::Boundary(PhaseName::Quiesce)));
        assert_eq!(c.site(2), Some(FaultSite::Boundary(PhaseName::Commit)));
        assert_eq!(c.site(3), Some(FaultSite::TransferObject(1)));
        assert_eq!(c.site(12), Some(FaultSite::TransferObject(10)));
        assert_eq!(c.site(13), Some(FaultSite::Syscall(1)));
        assert_eq!(c.site(32), Some(FaultSite::Syscall(20)));
        assert_eq!(c.site(33), Some(FaultSite::FaultIn(1)));
        assert_eq!(c.site(37), Some(FaultSite::FaultIn(5)));
        assert_eq!(c.site(38), Some(FaultSite::DrainStep(1)));
        assert_eq!(c.site(40), Some(FaultSite::DrainStep(3)));
        assert_eq!(c.site(41), Some(FaultSite::ManifestWrite(1)));
        assert_eq!(c.site(44), Some(FaultSite::ManifestWrite(4)));
        assert_eq!(c.site(45), Some(FaultSite::TornWrite(1)));
        assert_eq!(c.site(48), Some(FaultSite::TornWrite(4)));
        assert_eq!(c.site(49), Some(FaultSite::RestoreStep(1)));
        assert_eq!(c.site(63), Some(FaultSite::RestoreStep(15)));
        assert_eq!(c.site(64), None);
    }

    #[test]
    fn sampling_is_deterministic_per_seed_and_in_range() {
        let c = catalog();
        let draw = |seed: u64| {
            let mut rng = ChaosRng::new(seed);
            (0..50).map(|_| c.sample(&mut rng).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42), "same seed, same campaign");
        assert_ne!(draw(42), draw(43), "different seeds diverge");
        let sites = draw(7);
        assert!(sites.iter().any(|s| matches!(s, FaultSite::Boundary(_))));
        assert!(sites.iter().any(|s| matches!(s, FaultSite::Syscall(_))));
        let empty = FaultCatalog::default();
        assert_eq!(empty.sample(&mut ChaosRng::new(1)), None);
    }

    #[test]
    fn site_plans_arm_the_matching_trigger() {
        assert!(FaultSite::Boundary(PhaseName::Commit).plan().fires_before(PhaseName::Commit));
        assert_eq!(FaultSite::TransferObject(7).plan().at_transfer_object(), Some(7));
        assert_eq!(FaultSite::Syscall(9).plan().at_syscall(), Some(9));
        assert_eq!(FaultSite::Syscall(9).kind(), "syscall");
        assert_eq!(FaultSite::Syscall(9).to_string(), "syscall:9");
        assert_eq!(FaultSite::FaultIn(4).plan().at_fault_in(), Some(4));
        assert_eq!(FaultSite::FaultIn(4).kind(), "fault-in");
        assert_eq!(FaultSite::FaultIn(4).to_string(), "fault-in:4");
        assert_eq!(FaultSite::DrainStep(2).plan().at_drain_step(), Some(2));
        assert_eq!(FaultSite::DrainStep(2).kind(), "drain-step");
        assert_eq!(FaultSite::DrainStep(2).to_string(), "drain-step:2");
        assert_eq!(FaultSite::ManifestWrite(3).plan().at_manifest_write(), Some(3));
        assert_eq!(FaultSite::ManifestWrite(3).kind(), "manifest-write");
        assert_eq!(FaultSite::ManifestWrite(3).to_string(), "manifest-write:3");
        assert_eq!(FaultSite::TornWrite(1).plan().at_torn_write(), Some(1));
        assert_eq!(FaultSite::TornWrite(1).kind(), "torn-write");
        assert_eq!(FaultSite::TornWrite(1).to_string(), "torn-write:1");
        assert_eq!(FaultSite::RestoreStep(8).plan().at_restore_step(), Some(8));
        assert_eq!(FaultSite::RestoreStep(8).kind(), "restore-step");
        assert_eq!(FaultSite::RestoreStep(8).to_string(), "restore-step:8");
    }

    #[test]
    fn shrinker_reduces_postcopy_triggers() {
        // Synthetic failure: reproduces iff a fault-in trigger >= 3 is armed.
        let fails = |p: &ChaosPlan| p.at_fault_in().is_some_and(|n| n >= 3);
        let noisy =
            ChaosPlan::at_boundaries([PhaseName::PostcopyCommit]).and_at_fault_in(40).and_at_drain_step(7);
        let minimal = shrink_schedule(&noisy, fails);
        assert_eq!(minimal, ChaosPlan::failing_at_fault_in(3), "1-minimal reproducer");

        // And a drain-step-only failure sheds the fault-in arm.
        let fails = |p: &ChaosPlan| p.at_drain_step().is_some();
        let noisy = ChaosPlan::failing_at_fault_in(2).and_at_drain_step(9);
        assert_eq!(shrink_schedule(&noisy, fails), ChaosPlan::failing_at_drain_step(1));
    }

    #[test]
    fn shrinker_reduces_checkpoint_and_restore_triggers() {
        // Synthetic failure: reproduces iff a torn-write trigger >= 2 is armed.
        let fails = |p: &ChaosPlan| p.at_torn_write().is_some_and(|n| n >= 2);
        let noisy = ChaosPlan::failing_at_manifest_write(9).and_at_torn_write(30).and_at_restore_step(6);
        assert_eq!(shrink_schedule(&noisy, fails), ChaosPlan::failing_at_torn_write(2));

        // A restore-step-only failure sheds both write triggers.
        let fails = |p: &ChaosPlan| p.at_restore_step().is_some();
        let noisy = ChaosPlan::failing_at_manifest_write(2).and_at_restore_step(11);
        assert_eq!(shrink_schedule(&noisy, fails), ChaosPlan::failing_at_restore_step(1));

        // A crash-old arm that does not matter is dropped.
        let fails = |p: &ChaosPlan| p.at_manifest_write().is_some();
        let noisy = ChaosPlan::crashing_old_before(PhaseName::Commit).and_at_manifest_write(5);
        assert_eq!(shrink_schedule(&noisy, fails), ChaosPlan::failing_at_manifest_write(1));
    }

    #[test]
    fn shrinker_drops_irrelevant_triggers_and_lowers_counts() {
        // Synthetic failure: reproduces iff a syscall trigger >= 5 is armed.
        let fails = |p: &ChaosPlan| p.at_syscall().is_some_and(|n| n >= 5);
        let noisy = ChaosPlan::at_boundaries([PhaseName::Quiesce, PhaseName::Commit])
            .and_at_transfer_object(123)
            .and_at_syscall(64);
        let minimal = shrink_schedule(&noisy, fails);
        assert_eq!(minimal, ChaosPlan::failing_at_syscall(5), "1-minimal reproducer");
    }

    #[test]
    fn shrinker_keeps_a_required_boundary_and_nonfailing_plans_unchanged() {
        let fails = |p: &ChaosPlan| p.fires_before(PhaseName::Commit) && p.at_transfer_object().is_some();
        let noisy = ChaosPlan::at_boundaries([PhaseName::Quiesce, PhaseName::Commit])
            .and_at_transfer_object(8)
            .and_at_syscall(3);
        let minimal = shrink_schedule(&noisy, fails);
        assert_eq!(minimal, ChaosPlan::at_boundaries([PhaseName::Commit]).and_at_transfer_object(1));

        let passing = ChaosPlan::failing_at_syscall(2);
        assert_eq!(shrink_schedule(&passing, |_| false), passing, "non-failing plan untouched");
    }

    #[test]
    fn shrinker_terminates_when_a_dropped_trigger_is_redundant() {
        // Regression: the failure only needs the boundary, so both the
        // object and the syscall trigger are redundant. A shrinker that
        // derives drop candidates from a stale snapshot re-adds one of them
        // every pass and never terminates.
        let fails = |p: &ChaosPlan| p.fires_before(PhaseName::Quiesce);
        let noisy = ChaosPlan::at_boundaries([PhaseName::Quiesce]).and_at_transfer_object(9);
        assert_eq!(shrink_schedule(&noisy, fails), ChaosPlan::at_boundaries([PhaseName::Quiesce]));

        let noisier =
            ChaosPlan::at_boundaries([PhaseName::Quiesce]).and_at_transfer_object(9).and_at_syscall(4);
        assert_eq!(shrink_schedule(&noisier, fails), ChaosPlan::at_boundaries([PhaseName::Quiesce]));
    }

    #[test]
    fn random_plans_are_nonempty_over_a_nonempty_catalog() {
        let c = catalog();
        let mut rng = ChaosRng::new(2024);
        let mut saw_multi = false;
        for _ in 0..100 {
            let plan = random_plan(&mut rng, &c);
            assert!(!plan.is_empty());
            saw_multi |= plan.arm_count() >= 2;
        }
        assert!(saw_multi, "multi-trigger schedules appear in a campaign");
        assert!(random_plan(&mut ChaosRng::new(1), &FaultCatalog::default()).is_empty());
    }
}
