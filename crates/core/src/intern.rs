//! Per-update symbol interning.
//!
//! One live update resolves the same symbol, allocation-site and type names
//! over and over — once per traced object, across every matched process
//! pair. A [`SymbolTable`] interns each distinct name exactly once per
//! update: lookups hand back a compact [`Sym`] (a `u32`) that keys the
//! transfer engine's site indexes, and the stored `Arc<str>` lets reports
//! and conflict messages reference the name without copying its bytes.
//!
//! The table is built once before the pair-parallel trace/transfer phase
//! fans out and is then shared read-only across the worker threads.

use std::collections::HashMap;
use std::sync::Arc;

/// A compact interned-name identifier, valid within one [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

/// An append-only name interner: `u32` ids plus shared `Arc<str>` storage.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    by_name: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id. Interning the same name twice
    /// returns the same id without copying the bytes again.
    pub fn intern(&mut self, name: impl Into<Arc<str>>) -> Sym {
        let name: Arc<str> = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return Sym(id);
        }
        let id = u32::try_from(self.names.len()).expect("fewer than 2^32 interned names");
        self.by_name.insert(Arc::clone(&name), id);
        self.names.push(name);
        Sym(id)
    }

    /// The id of an already-interned name, if any. Read-only, so worker
    /// threads can share the table without synchronization.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.by_name.get(name).map(|&id| Sym(id))
    }

    /// The name behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this table.
    pub fn resolve(&self, sym: Sym) -> &Arc<str> {
        &self.names[sym.0 as usize]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_ids_are_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern("conf");
        let b = t.intern("list");
        assert_eq!(t.intern("conf"), a);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(&**t.resolve(a), "conf");
        assert_eq!(t.lookup("list"), Some(b));
        assert_eq!(t.lookup("missing"), None);
    }

    #[test]
    fn interning_an_arc_shares_the_allocation() {
        let mut t = SymbolTable::new();
        let name: Arc<str> = Arc::from("handle_event:node");
        let sym = t.intern(Arc::clone(&name));
        assert!(Arc::ptr_eq(t.resolve(sym), &name), "no byte copy on intern");
        assert!(!t.is_empty());
    }
}
