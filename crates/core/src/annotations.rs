//! User annotations: state handlers and reinitialization handlers.
//!
//! These are the Rust counterparts of the paper's `MCR_ADD_OBJ_HANDLER` and
//! `MCR_ADD_REINIT_HANDLER` annotations (Listing 1). They are the escape
//! hatch for the cases MCR cannot automate: "hidden" pointers in opaque
//! buffers, semantic state transformations, encoded pointers, and startup
//! operations whose semantics changed between versions.
//!
//! The registry also tracks the *annotation effort* (lines of code) each
//! annotation represents, which is what Table 1 reports per program.

use std::collections::BTreeMap;
use std::fmt;

use mcr_procsim::Syscall;

use crate::log::LogEntry;

/// How mutable tracing should treat an annotated object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjTreatment {
    /// The object hides pointers at the given byte offsets (e.g. Listing 1's
    /// `char b[8]`); tracing treats those slots as precise pointers.
    PointerSlots(Vec<u64>),
    /// The object stores encoded pointers: the low `mask_bits` bits carry
    /// metadata and must be masked off before following (nginx's
    /// least-significant-bit tags, paper §8).
    EncodedPointers {
        /// Number of low bits used as metadata.
        mask_bits: u32,
    },
    /// Force conservative treatment even though type information exists.
    ForceConservative,
    /// Do not transfer the object at all (it is reinitialized by the new
    /// version or intentionally dropped).
    SkipTransfer,
}

/// A state annotation attached to a global symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateAnnotation {
    /// Symbol the annotation applies to.
    pub symbol: String,
    /// Treatment requested.
    pub treatment: ObjTreatment,
}

/// Decision returned by a reinitialization handler for a conflicting or
/// special-cased startup operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReinitDecision {
    /// Not handled; fall through to the next handler / default behaviour.
    NotHandled,
    /// Replay the recorded entry even though the arguments differ.
    ReplayRecorded,
    /// Execute the call live despite a recorded counterpart.
    ExecuteLive,
    /// Skip the call entirely (return a unit result to the program).
    Skip,
    /// Abort the update with a conflict carrying this message.
    Abort(String),
}

/// A reinitialization handler: invoked when replay matching finds a
/// mismatch, or when the startup log has entries the new version omitted.
/// `Sync` because the registry is shared read-only across the worker threads
/// of the pair-parallel trace/transfer phase.
pub type ReinitHandler = Box<dyn Fn(&Syscall, Option<&LogEntry>) -> ReinitDecision + Send + Sync>;

/// A semantic transform handler: given the old object's raw bytes, produces
/// the bytes of the new representation. Registered per type name or per
/// symbol for updates whose state changes cannot be derived structurally.
/// `Sync` because transfer workers invoke handlers concurrently (each on its
/// own process pair).
pub type TransformHandler = Box<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

/// Registry of every annotation of one MCR-enabled program version.
#[derive(Default)]
pub struct AnnotationRegistry {
    state: Vec<StateAnnotation>,
    reinit: Vec<(String, ReinitHandler)>,
    transforms: BTreeMap<String, TransformHandler>,
    annotation_loc: u64,
    state_transfer_loc: u64,
}

impl fmt::Debug for AnnotationRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnnotationRegistry")
            .field("state", &self.state)
            .field("reinit_handlers", &self.reinit.iter().map(|(n, _)| n).collect::<Vec<_>>())
            .field("transforms", &self.transforms.keys().collect::<Vec<_>>())
            .field("annotation_loc", &self.annotation_loc)
            .field("state_transfer_loc", &self.state_transfer_loc)
            .finish()
    }
}

impl AnnotationRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a state annotation (`MCR_ADD_OBJ_HANDLER`), accounting
    /// `loc` lines of annotation code.
    pub fn add_obj_handler(&mut self, symbol: impl Into<String>, treatment: ObjTreatment, loc: u64) {
        self.state.push(StateAnnotation { symbol: symbol.into(), treatment });
        self.annotation_loc += loc;
    }

    /// Registers a reinitialization handler (`MCR_ADD_REINIT_HANDLER`).
    pub fn add_reinit_handler(&mut self, name: impl Into<String>, handler: ReinitHandler, loc: u64) {
        self.reinit.push((name.into(), handler));
        self.annotation_loc += loc;
    }

    /// Registers a semantic state-transfer transform for a type or symbol
    /// name, accounting `loc` lines of state-transfer code (Table 1's "ST
    /// LOC" column).
    pub fn add_transform(&mut self, name: impl Into<String>, handler: TransformHandler, loc: u64) {
        self.transforms.insert(name.into(), handler);
        self.state_transfer_loc += loc;
    }

    /// Accounts additional annotation lines that are not tied to a handler
    /// (e.g. source tweaks needed to keep startup deterministic).
    pub fn add_annotation_loc(&mut self, loc: u64) {
        self.annotation_loc += loc;
    }

    /// Accounts additional state-transfer lines.
    pub fn add_state_transfer_loc(&mut self, loc: u64) {
        self.state_transfer_loc += loc;
    }

    /// The state annotation for `symbol`, if any.
    pub fn obj_treatment(&self, symbol: &str) -> Option<&ObjTreatment> {
        self.state.iter().rev().find(|a| a.symbol == symbol).map(|a| &a.treatment)
    }

    /// Iterates over all state annotations.
    pub fn state_annotations(&self) -> impl Iterator<Item = &StateAnnotation> {
        self.state.iter()
    }

    /// Runs the reinitialization handlers on a replay situation, returning
    /// the first decision that is not [`ReinitDecision::NotHandled`].
    pub fn resolve_reinit(&self, call: &Syscall, recorded: Option<&LogEntry>) -> ReinitDecision {
        for (_, handler) in &self.reinit {
            let decision = handler(call, recorded);
            if decision != ReinitDecision::NotHandled {
                return decision;
            }
        }
        ReinitDecision::NotHandled
    }

    /// The semantic transform registered for `name`, if any.
    pub fn transform(&self, name: &str) -> Option<&TransformHandler> {
        self.transforms.get(name)
    }

    /// Total annotation LOC accounted so far (Table 1 "Ann LOC").
    pub fn annotation_loc(&self) -> u64 {
        self.annotation_loc
    }

    /// Total state-transfer LOC accounted so far (Table 1 "ST LOC").
    pub fn state_transfer_loc(&self) -> u64 {
        self.state_transfer_loc
    }

    /// Number of registered handlers of each kind (state, reinit, transform).
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.state.len(), self.reinit.len(), self.transforms.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_procsim::Fd;

    #[test]
    fn obj_handlers_latest_wins() {
        let mut reg = AnnotationRegistry::new();
        reg.add_obj_handler("b", ObjTreatment::ForceConservative, 1);
        reg.add_obj_handler("b", ObjTreatment::PointerSlots(vec![0]), 2);
        assert_eq!(reg.obj_treatment("b"), Some(&ObjTreatment::PointerSlots(vec![0])));
        assert_eq!(reg.obj_treatment("other"), None);
        assert_eq!(reg.annotation_loc(), 3);
        assert_eq!(reg.counts().0, 2);
    }

    #[test]
    fn reinit_handlers_chain_until_decision() {
        let mut reg = AnnotationRegistry::new();
        reg.add_reinit_handler(
            "ignore-sleeps",
            Box::new(|call, _| match call {
                Syscall::Nanosleep { .. } => ReinitDecision::Skip,
                _ => ReinitDecision::NotHandled,
            }),
            4,
        );
        reg.add_reinit_handler(
            "port-change",
            Box::new(|call, _| match call {
                Syscall::Bind { port: 8080, .. } => ReinitDecision::ExecuteLive,
                _ => ReinitDecision::NotHandled,
            }),
            6,
        );
        assert_eq!(reg.resolve_reinit(&Syscall::Nanosleep { ns: 1 }, None), ReinitDecision::Skip);
        assert_eq!(
            reg.resolve_reinit(&Syscall::Bind { fd: Fd(3), port: 8080 }, None),
            ReinitDecision::ExecuteLive
        );
        assert_eq!(reg.resolve_reinit(&Syscall::Socket, None), ReinitDecision::NotHandled);
        assert_eq!(reg.annotation_loc(), 10);
    }

    #[test]
    fn transforms_by_name() {
        let mut reg = AnnotationRegistry::new();
        reg.add_transform(
            "conf_s",
            Box::new(|old| {
                let mut new = old.to_vec();
                new.extend_from_slice(&[0u8; 8]);
                new
            }),
            12,
        );
        let out = reg.transform("conf_s").unwrap()(&[1, 2, 3]);
        assert_eq!(out.len(), 11);
        assert!(reg.transform("missing").is_none());
        assert_eq!(reg.state_transfer_loc(), 12);
    }

    #[test]
    fn loc_accounting_accumulates() {
        let mut reg = AnnotationRegistry::new();
        reg.add_annotation_loc(8);
        reg.add_annotation_loc(10);
        reg.add_state_transfer_loc(100);
        assert_eq!(reg.annotation_loc(), 18);
        assert_eq!(reg.state_transfer_loc(), 100);
    }
}
