//! The startup log recorded by mutable reinitialization.
//!
//! During program startup in the old version, MCR records every system call
//! (with its arguments, result, issuing thread and call-stack ID) in an
//! in-memory startup log. The log is later consulted in the new version to
//! replay the operations that refer to immutable state objects, giving the
//! new startup code the illusion of a fresh start while actually inheriting
//! in-kernel state (paper §5).

use mcr_procsim::{Pid, Syscall, SyscallRet};

use crate::callstack::CallStackId;

/// One recorded startup-time operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Sequence number (recording order across all processes/threads).
    pub seq: u64,
    /// Call-stack identifier of the issuing thread at call time.
    pub callstack: CallStackId,
    /// Pid of the issuing process (the *virtual* pid the program observes).
    pub pid: Pid,
    /// Name of the issuing thread.
    pub thread: String,
    /// The recorded call, including deeply-comparable arguments.
    pub call: Syscall,
    /// The recorded result.
    pub ret: SyscallRet,
}

/// The startup log of one program version.
#[derive(Debug, Clone, Default)]
pub struct StartupLog {
    entries: Vec<LogEntry>,
}

impl StartupLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry, assigning the next sequence number.
    pub fn record(
        &mut self,
        callstack: CallStackId,
        pid: Pid,
        thread: impl Into<String>,
        call: Syscall,
        ret: SyscallRet,
    ) -> u64 {
        let seq = self.entries.len() as u64;
        self.entries.push(LogEntry { seq, callstack, pid, thread: thread.into(), call, ret });
        seq
    }

    /// All entries in recording order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries recorded with the given call-stack identifier.
    pub fn entries_for(&self, callstack: CallStackId) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter().filter(move |e| e.callstack == callstack)
    }

    /// Entries that refer to immutable state objects (the replay surface).
    pub fn replayable_entries(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter().filter(|e| is_replay_eligible(&e.call))
    }

    /// Approximate in-memory footprint of the log in bytes (contributes to
    /// the memory-usage evaluation, §8).
    pub fn memory_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| {
                let args = match &e.call {
                    Syscall::Open { path, .. } => path.len(),
                    Syscall::Write { data, .. } => data.len(),
                    Syscall::UnixSend { data, .. } => data.len(),
                    _ => 0,
                };
                let ret = match &e.ret {
                    SyscallRet::Data(d) => d.len(),
                    SyscallRet::DataWithFds(d, fds) => d.len() + fds.len() * 4,
                    _ => 0,
                };
                96 + e.thread.len() + args + ret
            })
            .sum::<usize>() as u64
    }
}

/// Whether a system call participates in replay.
///
/// These are the calls that create or observe *immutable state objects*
/// (descriptors, pids, pinned mappings) plus startup-time reads whose results
/// must be reproduced so the new startup code sees the same configuration the
/// old version saw.
pub fn is_replay_eligible(call: &Syscall) -> bool {
    call.touches_immutable_state() || matches!(call, Syscall::Read { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_procsim::Fd;

    fn sample_log() -> StartupLog {
        let mut log = StartupLog::new();
        let cs = CallStackId::from_frames(&["main", "server_init"]);
        log.record(cs, Pid(100), "main", Syscall::Socket, SyscallRet::Fd(Fd(3)));
        log.record(cs, Pid(100), "main", Syscall::Bind { fd: Fd(3), port: 80 }, SyscallRet::Unit);
        log.record(
            CallStackId::from_frames(&["main", "server_init", "read_config"]),
            Pid(100),
            "main",
            Syscall::Read { fd: Fd(4), len: 64 },
            SyscallRet::Data(b"workers=2".to_vec()),
        );
        log.record(cs, Pid(100), "main", Syscall::Nanosleep { ns: 10 }, SyscallRet::Unit);
        log
    }

    #[test]
    fn record_assigns_sequence_numbers() {
        let log = sample_log();
        assert_eq!(log.len(), 4);
        let seqs: Vec<u64> = log.entries().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn filtering_by_callstack() {
        let log = sample_log();
        let cs = CallStackId::from_frames(&["main", "server_init"]);
        assert_eq!(log.entries_for(cs).count(), 3);
    }

    #[test]
    fn replayable_excludes_pure_live_calls() {
        let log = sample_log();
        let names: Vec<&str> = log.replayable_entries().map(|e| e.call.name()).collect();
        assert_eq!(names, vec!["socket", "bind", "read"]);
    }

    #[test]
    fn memory_footprint_grows_with_entries() {
        let log = sample_log();
        let m = log.memory_bytes();
        assert!(m > 4 * 96);
        let empty = StartupLog::new();
        assert_eq!(empty.memory_bytes(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn read_is_replay_eligible_but_accept_is_not() {
        assert!(is_replay_eligible(&Syscall::Read { fd: Fd(1), len: 1 }));
        assert!(!is_replay_eligible(&Syscall::Accept { fd: Fd(1) }));
        assert!(!is_replay_eligible(&Syscall::Write { fd: Fd(1), data: vec![] }));
        assert!(is_replay_eligible(&Syscall::Socket));
    }
}
