//! Quiescence profiling and quiescent-point reporting.
//!
//! MCR requires every long-lived thread to have a *quiescent point*: a
//! blocking library call at the top of its long-running loop where the thread
//! can safely park with a short call stack. Instead of asking the user to
//! annotate these points, MCR profiles the program under a test workload and
//! *suggests* them (paper §4). The profiler here consumes the blocking-time
//! and loop-iteration histograms that the scheduler records on each simulated
//! thread and produces the per-program report whose aggregate counts appear
//! in the first columns of Table 1.

use std::collections::BTreeMap;

use mcr_procsim::Kernel;

use crate::program::InstanceState;

/// A suggested quiescent point for one thread class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuiescentPoint {
    /// Thread class the point belongs to (e.g. `"worker"`).
    pub thread_class: String,
    /// The blocking library call where the class spends most of its time.
    pub call: String,
    /// The long-running loop enclosing the call.
    pub loop_name: String,
    /// Whether the point is *persistent* — already visible right after
    /// startup — as opposed to *volatile* (only appears later, e.g. in
    /// dynamically spawned per-connection processes).
    pub persistent: bool,
}

/// Profiling summary for one thread class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadClassReport {
    /// Class name (thread names with trailing indices stripped).
    pub class: String,
    /// Number of thread instances observed.
    pub instances: usize,
    /// Whether the class is long-lived (still running at the end of the
    /// profiling workload).
    pub long_lived: bool,
    /// Suggested quiescent point (long-lived classes only).
    pub quiescent_point: Option<QuiescentPoint>,
    /// Total nanoseconds the class spent blocked, per call.
    pub blocking_profile: BTreeMap<String, u64>,
    /// Iterations observed per loop.
    pub loop_profile: BTreeMap<String, u64>,
}

/// The full quiescence-profiling report for one program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuiescenceReport {
    /// Per-class reports, ordered by class name.
    pub classes: Vec<ThreadClassReport>,
}

impl QuiescenceReport {
    /// Number of short-lived thread classes (Table 1, "SL").
    pub fn short_lived_classes(&self) -> usize {
        self.classes.iter().filter(|c| !c.long_lived).count()
    }

    /// Number of long-lived thread classes (Table 1, "LL").
    pub fn long_lived_classes(&self) -> usize {
        self.classes.iter().filter(|c| c.long_lived).count()
    }

    /// Number of quiescent points identified (Table 1, "QP").
    pub fn quiescent_points(&self) -> usize {
        self.classes.iter().filter(|c| c.quiescent_point.is_some()).count()
    }

    /// Number of persistent quiescent points (Table 1, "Per").
    pub fn persistent_points(&self) -> usize {
        self.classes.iter().filter_map(|c| c.quiescent_point.as_ref()).filter(|p| p.persistent).count()
    }

    /// Number of volatile quiescent points (Table 1, "Vol").
    pub fn volatile_points(&self) -> usize {
        self.quiescent_points() - self.persistent_points()
    }

    /// The quiescent point suggested for a given thread class, if any.
    pub fn point_for(&self, class: &str) -> Option<&QuiescentPoint> {
        self.classes.iter().find(|c| c.class == class).and_then(|c| c.quiescent_point.as_ref())
    }
}

/// Normalizes a thread name into its class (strips trailing `-<digits>`).
pub fn thread_class(name: &str) -> String {
    let trimmed = name.trim_end_matches(|c: char| c.is_ascii_digit());
    trimmed.trim_end_matches('-').trim_end_matches('_').to_string()
}

/// The quiescence profiler.
///
/// It aggregates the per-thread blocking and loop histograms collected by the
/// scheduler during a profiling run and derives thread classes, long-lived
/// loops and suggested quiescent points.
#[derive(Debug, Default, Clone, Copy)]
pub struct QuiescenceProfiler;

impl QuiescenceProfiler {
    /// Analyzes the threads of `state` after a profiling workload has run.
    pub fn analyze(kernel: &Kernel, state: &InstanceState) -> QuiescenceReport {
        #[derive(Default)]
        struct Acc {
            instances: usize,
            long_lived: bool,
            persistent: bool,
            blocking: BTreeMap<String, u64>,
            loops: BTreeMap<String, u64>,
        }
        let mut classes: BTreeMap<String, Acc> = BTreeMap::new();

        for entry in &state.threads {
            let class = thread_class(&entry.name);
            let acc = classes.entry(class).or_default();
            acc.instances += 1;
            if !entry.exited {
                acc.long_lived = true;
            }
            if entry.created_during_startup {
                acc.persistent = true;
            }
            if let Ok(proc) = kernel.process(entry.pid) {
                if let Ok(thread) = proc.thread(entry.tid) {
                    for (call, ns) in thread.blocking_profile() {
                        *acc.blocking.entry(call.clone()).or_insert(0) += ns;
                    }
                    for (l, n) in thread.loop_profile() {
                        *acc.loops.entry(l.clone()).or_insert(0) += n;
                    }
                }
            }
        }

        let classes = classes
            .into_iter()
            .map(|(class, acc)| {
                let quiescent_point = if acc.long_lived {
                    let call = acc.blocking.iter().max_by_key(|(_, ns)| **ns).map(|(c, _)| c.clone());
                    let loop_name = acc
                        .loops
                        .iter()
                        .max_by_key(|(_, n)| **n)
                        .map(|(l, _)| l.clone())
                        .unwrap_or_else(|| "main_loop".to_string());
                    call.map(|call| QuiescentPoint {
                        thread_class: class.clone(),
                        call,
                        loop_name,
                        persistent: acc.persistent,
                    })
                } else {
                    None
                };
                ThreadClassReport {
                    class,
                    instances: acc.instances,
                    long_lived: acc.long_lived,
                    quiescent_point,
                    blocking_profile: acc.blocking,
                    loop_profile: acc.loops,
                }
            })
            .collect();
        QuiescenceReport { classes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpose::Interposer;
    use crate::program::ThreadRosterEntry;
    use mcr_procsim::MemoryLayout;
    use mcr_typemeta::InstrumentationConfig;

    fn build_state_with_threads() -> (Kernel, InstanceState) {
        let mut kernel = Kernel::new();
        let pid = kernel.create_process("httpd").unwrap();
        let main_tid = kernel.process(pid).unwrap().main_tid();
        kernel.process_mut(pid).unwrap().setup_memory(MemoryLayout::default(), false).unwrap();
        let mut state =
            InstanceState::new("httpd", "2.2.23", InstrumentationConfig::full(), Interposer::recorder());
        state.processes.push(pid);
        state.threads.push(ThreadRosterEntry {
            pid,
            tid: main_tid,
            name: "master".into(),
            created_during_startup: true,
            exited: false,
        });
        // Two worker threads created during startup, one helper that exited.
        for i in 1..=2 {
            let tid = kernel.spawn_thread(pid, &format!("worker-{i}"), vec!["main".into()]).unwrap();
            state.threads.push(ThreadRosterEntry {
                pid,
                tid,
                name: format!("worker-{i}"),
                created_during_startup: true,
                exited: false,
            });
            let proc = kernel.process_mut(pid).unwrap();
            let t = proc.thread_mut(tid).unwrap();
            t.record_blocking("cond_wait", 500 * i as u64);
            t.record_blocking("accept", 10_000 * i as u64);
            t.record_loop_iteration("worker_loop");
        }
        let helper_tid = kernel.spawn_thread(pid, "daemonize-helper", vec!["main".into()]).unwrap();
        state.threads.push(ThreadRosterEntry {
            pid,
            tid: helper_tid,
            name: "daemonize-helper".into(),
            created_during_startup: true,
            exited: true,
        });
        // The master blocks in poll.
        {
            let proc = kernel.process_mut(pid).unwrap();
            let t = proc.thread_mut(main_tid).unwrap();
            t.record_blocking("poll", 50_000);
            t.record_loop_iteration("master_loop");
        }
        (kernel, state)
    }

    #[test]
    fn thread_class_normalization() {
        assert_eq!(thread_class("worker-17"), "worker");
        assert_eq!(thread_class("worker"), "worker");
        assert_eq!(thread_class("conn_handler_3"), "conn_handler");
        assert_eq!(thread_class("master"), "master");
    }

    #[test]
    fn profiler_identifies_classes_and_points() {
        let (kernel, state) = build_state_with_threads();
        let report = QuiescenceProfiler::analyze(&kernel, &state);
        assert_eq!(report.classes.len(), 3);
        assert_eq!(report.short_lived_classes(), 1);
        assert_eq!(report.long_lived_classes(), 2);
        assert_eq!(report.quiescent_points(), 2);
        assert_eq!(report.persistent_points(), 2);
        assert_eq!(report.volatile_points(), 0);

        let worker = report.point_for("worker").unwrap();
        assert_eq!(worker.call, "accept", "dominant blocking call wins");
        assert_eq!(worker.loop_name, "worker_loop");
        let master = report.point_for("master").unwrap();
        assert_eq!(master.call, "poll");
        assert!(report.point_for("daemonize-helper").is_none());
    }

    #[test]
    fn volatile_points_counted_for_post_startup_threads() {
        let (mut kernel, mut state) = build_state_with_threads();
        let pid = state.processes[0];
        let tid = kernel.spawn_thread(pid, "session-1", vec!["main".into(), "accept_loop".into()]).unwrap();
        state.threads.push(ThreadRosterEntry {
            pid,
            tid,
            name: "session-1".into(),
            created_during_startup: false,
            exited: false,
        });
        kernel.process_mut(pid).unwrap().thread_mut(tid).unwrap().record_blocking("read", 5_000);
        let report = QuiescenceProfiler::analyze(&kernel, &state);
        assert_eq!(report.quiescent_points(), 3);
        assert_eq!(report.volatile_points(), 1);
        assert!(!report.point_for("session").unwrap().persistent);
    }
}
