//! Library-call interposition: recording and mutable replay of startup
//! operations.
//!
//! The [`Interposer`] sits between a simulated program and the kernel, in the
//! position the paper's `libmcr.so` occupies between a C server and libc.
//! In the *old* version it records every successful startup-time call into
//! the startup log. In the *new* version it matches calls against that log by
//! call-stack ID and deep argument comparison, replaying the operations that
//! refer to immutable state objects and executing everything else live —
//! flagging a conflict whenever the conservative matching rules are violated
//! (paper §5).
//!
//! Process-id virtualization stands in for the Linux pid-namespace trick: the
//! new version observes the *old* pids (so pid values stored in transferred
//! data structures remain meaningful) while the kernel keeps assigning fresh
//! real pids.

use std::collections::BTreeMap;

use mcr_procsim::{FdPlacement, Kernel, Pid, SimError, Syscall, SyscallPort, SyscallRet, Tid};

use crate::annotations::{AnnotationRegistry, ReinitDecision};
use crate::callstack::CallStackId;
use crate::error::{Conflict, McrError, McrResult};
use crate::log::{is_replay_eligible, LogEntry, StartupLog};

/// Operating mode of the interposer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterposeMode {
    /// Record startup operations (old version).
    Record,
    /// Replay against an inherited startup log (new version).
    Replay,
}

/// Counters describing the interposer's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterposeStats {
    /// Calls recorded into the startup log.
    pub recorded: u64,
    /// Calls satisfied from the log without touching the kernel.
    pub replayed: u64,
    /// Calls executed live while in replay mode.
    pub executed_live: u64,
    /// Calls resolved by a user reinitialization handler.
    pub handler_resolved: u64,
}

/// The record/replay engine.
#[derive(Debug)]
pub struct Interposer {
    mode: InterposeMode,
    /// Log being recorded (Record mode).
    log: StartupLog,
    /// Log inherited from the old version (Replay mode).
    replay_entries: Vec<LogEntry>,
    consumed: Vec<bool>,
    pid_virt_to_actual: BTreeMap<u32, u32>,
    pid_actual_to_virt: BTreeMap<u32, u32>,
    stats: InterposeStats,
}

impl Interposer {
    /// Creates an interposer that records a fresh startup log.
    pub fn recorder() -> Self {
        Interposer {
            mode: InterposeMode::Record,
            log: StartupLog::new(),
            replay_entries: Vec::new(),
            consumed: Vec::new(),
            pid_virt_to_actual: BTreeMap::new(),
            pid_actual_to_virt: BTreeMap::new(),
            stats: InterposeStats::default(),
        }
    }

    /// Creates an interposer that replays against `old_log`.
    pub fn replayer(old_log: &StartupLog) -> Self {
        let replay_entries = old_log.entries().to_vec();
        let consumed = vec![false; replay_entries.len()];
        Interposer {
            mode: InterposeMode::Replay,
            log: StartupLog::new(),
            replay_entries,
            consumed,
            pid_virt_to_actual: BTreeMap::new(),
            pid_actual_to_virt: BTreeMap::new(),
            stats: InterposeStats::default(),
        }
    }

    /// The operating mode.
    pub fn mode(&self) -> InterposeMode {
        self.mode
    }

    /// The startup log recorded so far (Record mode).
    pub fn recorded_log(&self) -> &StartupLog {
        &self.log
    }

    /// Activity counters.
    pub fn stats(&self) -> InterposeStats {
        self.stats
    }

    /// Registers an explicit virtual→actual pid mapping (used by the
    /// controller to seed the mapping for the new version's first process).
    pub fn map_pid(&mut self, virtual_pid: Pid, actual_pid: Pid) {
        self.pid_virt_to_actual.insert(virtual_pid.0, actual_pid.0);
        self.pid_actual_to_virt.insert(actual_pid.0, virtual_pid.0);
    }

    /// The virtual pid the program observes for an actual kernel pid.
    pub fn virtual_pid(&self, actual: Pid) -> Pid {
        Pid(self.pid_actual_to_virt.get(&actual.0).copied().unwrap_or(actual.0))
    }

    /// The actual kernel pid behind a virtual pid.
    pub fn actual_pid(&self, virt: Pid) -> Pid {
        Pid(self.pid_virt_to_actual.get(&virt.0).copied().unwrap_or(virt.0))
    }

    fn find_entry(&self, virt_pid: Pid, callstack: CallStackId, call: &Syscall) -> Option<usize> {
        // Exact match first: same process, same call stack, same call with
        // deeply-equal arguments.
        self.replay_entries.iter().enumerate().position(|(i, e)| {
            !self.consumed[i] && e.pid == virt_pid && e.callstack == callstack && e.call == *call
        })
    }

    fn find_name_match(&self, virt_pid: Pid, callstack: CallStackId, call: &Syscall) -> Option<usize> {
        self.replay_entries.iter().enumerate().position(|(i, e)| {
            !self.consumed[i] && e.pid == virt_pid && e.callstack == callstack && e.call.name() == call.name()
        })
    }

    fn creates_fd(call: &Syscall) -> bool {
        matches!(
            call,
            Syscall::Socket | Syscall::Open { .. } | Syscall::UnixBind { .. } | Syscall::UnixConnect { .. }
        )
    }

    fn execute_live(
        &mut self,
        kernel: &mut Kernel,
        pid: Pid,
        tid: Tid,
        call: Syscall,
    ) -> Result<SyscallRet, SimError> {
        let is_fork = matches!(call, Syscall::Fork);
        let is_getpid = matches!(call, Syscall::Getpid);
        let ret = kernel.syscall(pid, tid, call)?;
        if is_fork {
            if let SyscallRet::Pid(child) = ret {
                // Identity mapping unless overridden by replay.
                self.pid_virt_to_actual.entry(child.0).or_insert(child.0);
                self.pid_actual_to_virt.entry(child.0).or_insert(child.0);
            }
        }
        if is_getpid {
            if let SyscallRet::Pid(p) = ret {
                return Ok(SyscallRet::Pid(self.virtual_pid(p)));
            }
        }
        Ok(ret)
    }

    /// Executes a replayed entry's side effects when the operation cannot be
    /// satisfied purely from the log (fork must really create a process,
    /// mmap must really map memory).
    fn replay_entry(
        &mut self,
        kernel: &mut Kernel,
        pid: Pid,
        tid: Tid,
        idx: usize,
        call: Syscall,
    ) -> McrResult<SyscallRet> {
        self.consumed[idx] = true;
        self.stats.replayed += 1;
        let logged_ret = self.replay_entries[idx].ret.clone();
        match call {
            Syscall::Fork => {
                let ret = self
                    .execute_live(kernel, pid, tid, Syscall::Fork)
                    .map_err(|e| startup_failure("fork", e))?;
                let actual_child = ret.as_pid().expect("fork returns a pid");
                let virtual_child = logged_ret.as_pid().unwrap_or(actual_child);
                self.pid_virt_to_actual.insert(virtual_child.0, actual_child.0);
                self.pid_actual_to_virt.insert(actual_child.0, virtual_child.0);
                Ok(SyscallRet::Pid(virtual_child))
            }
            Syscall::SpawnThread { name } => {
                let ret = self
                    .execute_live(kernel, pid, tid, Syscall::SpawnThread { name })
                    .map_err(|e| startup_failure("pthread_create", e))?;
                Ok(ret)
            }
            Syscall::Mmap { size, name, .. } => {
                // Pin the mapping at the address recorded in the old version
                // (MAP_FIXED-style global reallocation of memory objects).
                let fixed = logged_ret.as_addr();
                let ret = self
                    .execute_live(kernel, pid, tid, Syscall::Mmap { size, name, fixed })
                    .map_err(|e| startup_failure("mmap", e))?;
                Ok(ret)
            }
            _ => Ok(logged_ret),
        }
    }

    /// Handles one system call issued by the program.
    ///
    /// # Errors
    ///
    /// Returns the kernel's error for live-executed calls, and
    /// [`McrError::Conflicts`] when the conservative matching rules detect a
    /// replay conflict that no reinitialization handler resolves.
    #[allow(clippy::too_many_arguments)]
    pub fn handle(
        &mut self,
        kernel: &mut Kernel,
        pid: Pid,
        tid: Tid,
        thread_name: &str,
        callstack: CallStackId,
        call: Syscall,
        in_startup: bool,
        annotations: &AnnotationRegistry,
    ) -> McrResult<SyscallRet> {
        let virt_pid = self.virtual_pid(pid);
        match self.mode {
            InterposeMode::Record => {
                let ret = self.execute_live(kernel, pid, tid, call.clone()).map_err(McrError::Sim)?;
                if in_startup {
                    self.log.record(callstack, virt_pid, thread_name, call, ret.clone());
                    self.stats.recorded += 1;
                }
                Ok(ret)
            }
            InterposeMode::Replay => {
                if !in_startup {
                    self.stats.executed_live += 1;
                    return self.execute_live(kernel, pid, tid, call).map_err(McrError::Sim);
                }
                if !is_replay_eligible(&call) {
                    self.stats.executed_live += 1;
                    let ret = self.execute_live(kernel, pid, tid, call.clone()).map_err(McrError::Sim)?;
                    // Even in replay mode a startup log is produced, so that a
                    // later update of this (now current) version can itself
                    // replay against it.
                    self.log.record(callstack, virt_pid, thread_name, call, ret.clone());
                    return Ok(ret);
                }
                // 1. Perfect match: replay from the log.
                if let Some(idx) = self.find_entry(virt_pid, callstack, &call) {
                    let ret = self.replay_entry(kernel, pid, tid, idx, call.clone())?;
                    self.log.record(callstack, virt_pid, thread_name, call, ret.clone());
                    return Ok(ret);
                }
                // 2. Same call site, same syscall, different arguments:
                //    a conflict unless a handler resolves it.
                if let Some(idx) = self.find_name_match(virt_pid, callstack, &call) {
                    let entry = self.replay_entries[idx].clone();
                    match annotations.resolve_reinit(&call, Some(&entry)) {
                        ReinitDecision::ReplayRecorded => {
                            self.stats.handler_resolved += 1;
                            let ret = self.replay_entry(kernel, pid, tid, idx, call.clone())?;
                            self.log.record(callstack, virt_pid, thread_name, call, ret.clone());
                            return Ok(ret);
                        }
                        ReinitDecision::ExecuteLive => {
                            self.stats.handler_resolved += 1;
                            self.consumed[idx] = true;
                            let ret = self.execute_and_separate(kernel, pid, tid, call.clone())?;
                            self.log.record(callstack, virt_pid, thread_name, call, ret.clone());
                            return Ok(ret);
                        }
                        ReinitDecision::Skip => {
                            self.stats.handler_resolved += 1;
                            self.consumed[idx] = true;
                            return Ok(SyscallRet::Unit);
                        }
                        ReinitDecision::Abort(message) => {
                            return Err(Conflict::HandlerRequested { message }.into());
                        }
                        ReinitDecision::NotHandled => {
                            return Err(Conflict::ReplayArgumentMismatch {
                                callstack: callstack.0,
                                syscall: call.name().to_string(),
                                detail: format!("recorded {:?}, new version issued {:?}", entry.call, call),
                            }
                            .into());
                        }
                    }
                }
                // 3. A syscall the old version never issued from this call
                //    site: new startup behaviour, executed live (with global
                //    separability for fresh descriptors).
                match annotations.resolve_reinit(&call, None) {
                    ReinitDecision::Skip => {
                        self.stats.handler_resolved += 1;
                        Ok(SyscallRet::Unit)
                    }
                    ReinitDecision::Abort(message) => Err(Conflict::HandlerRequested { message }.into()),
                    _ => {
                        let ret = self.execute_and_separate(kernel, pid, tid, call.clone())?;
                        self.log.record(callstack, virt_pid, thread_name, call, ret.clone());
                        Ok(ret)
                    }
                }
            }
        }
    }

    /// Executes a call live during replayed startup, moving any fresh
    /// descriptor into the reserved range so it can never clash with (or be
    /// confused for) a descriptor inherited from the old version.
    fn execute_and_separate(
        &mut self,
        kernel: &mut Kernel,
        pid: Pid,
        tid: Tid,
        call: Syscall,
    ) -> McrResult<SyscallRet> {
        self.stats.executed_live += 1;
        let creates_fd = Self::creates_fd(&call);
        let name = call.name();
        let ret = self.execute_live(kernel, pid, tid, call).map_err(|e| startup_failure(name, e))?;
        if creates_fd {
            if let Some(fd) = ret.as_fd() {
                let reserved =
                    kernel.transfer_fd(pid, fd, pid, FdPlacement::Reserved).map_err(McrError::Sim)?;
                kernel.syscall(pid, tid, Syscall::Close { fd }).map_err(McrError::Sim)?;
                return Ok(SyscallRet::Fd(reserved));
            }
        }
        Ok(ret)
    }

    /// Finishes the replay phase: any recorded operation on immutable state
    /// that the new version never re-issued is reported as an omission
    /// conflict, unless a reinitialization handler accepts the omission.
    pub fn finish_replay(&mut self, annotations: &AnnotationRegistry) -> Vec<Conflict> {
        if self.mode != InterposeMode::Replay {
            return Vec::new();
        }
        let mut conflicts = Vec::new();
        for (i, entry) in self.replay_entries.iter().enumerate() {
            if self.consumed[i] || !is_replay_eligible(&entry.call) {
                continue;
            }
            match annotations.resolve_reinit(&entry.call, Some(entry)) {
                ReinitDecision::Skip | ReinitDecision::ExecuteLive | ReinitDecision::ReplayRecorded => {
                    self.stats.handler_resolved += 1;
                }
                ReinitDecision::Abort(message) => {
                    conflicts.push(Conflict::HandlerRequested { message });
                }
                ReinitDecision::NotHandled => {
                    conflicts.push(Conflict::OmittedReplayEntry {
                        callstack: entry.callstack.0,
                        syscall: entry.call.name().to_string(),
                    });
                }
            }
        }
        conflicts
    }

    /// Fraction of replay-eligible entries consumed so far (diagnostics).
    pub fn replay_progress(&self) -> f64 {
        let eligible: Vec<usize> = self
            .replay_entries
            .iter()
            .enumerate()
            .filter(|(_, e)| is_replay_eligible(&e.call))
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            return 1.0;
        }
        let consumed = eligible.iter().filter(|&&i| self.consumed[i]).count();
        consumed as f64 / eligible.len() as f64
    }
}

fn startup_failure(syscall: &str, error: SimError) -> McrError {
    McrError::Conflicts(vec![Conflict::StartupFailure {
        syscall: syscall.to_string(),
        error: error.to_string(),
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_procsim::{Fd, MemoryLayout};

    fn booted_kernel(name: &str) -> (Kernel, Pid, Tid) {
        let mut k = Kernel::new();
        let pid = k.create_process(name).unwrap();
        let tid = k.process(pid).unwrap().main_tid();
        k.process_mut(pid).unwrap().setup_memory(MemoryLayout::default(), false).unwrap();
        (k, pid, tid)
    }

    fn cs(frames: &[&str]) -> CallStackId {
        CallStackId::from_frames(frames)
    }

    /// Records a tiny v1 startup: socket, bind 80, listen, getpid.
    fn record_v1() -> (Kernel, Pid, Tid, StartupLog) {
        let (mut k, pid, tid) = booted_kernel("v1");
        let ann = AnnotationRegistry::new();
        let mut rec = Interposer::recorder();
        let stack = cs(&["main", "server_init"]);
        let fd = rec
            .handle(&mut k, pid, tid, "main", stack, Syscall::Socket, true, &ann)
            .unwrap()
            .as_fd()
            .unwrap();
        rec.handle(&mut k, pid, tid, "main", stack, Syscall::Bind { fd, port: 80 }, true, &ann).unwrap();
        rec.handle(&mut k, pid, tid, "main", stack, Syscall::Listen { fd }, true, &ann).unwrap();
        rec.handle(&mut k, pid, tid, "main", stack, Syscall::Getpid, true, &ann).unwrap();
        let log = rec.recorded_log().clone();
        (k, pid, tid, log)
    }

    #[test]
    fn record_mode_logs_startup_calls() {
        let (_, _, _, log) = record_v1();
        assert_eq!(log.len(), 4);
        assert_eq!(log.entries()[0].call.name(), "socket");
        assert_eq!(log.entries()[3].call.name(), "getpid");
    }

    #[test]
    fn replay_returns_logged_results_without_kernel_effects() {
        let (mut k, old_pid, _, log) = record_v1();
        // New version process in the same kernel (old listener still bound).
        let new_pid = k.create_process("v2").unwrap();
        let new_tid = k.process(new_pid).unwrap().main_tid();
        k.process_mut(new_pid).unwrap().setup_memory(MemoryLayout::with_slide(0x100000), false).unwrap();
        // Inherit fd 0 (the listener) at the same number.
        k.transfer_fd(old_pid, Fd(0), new_pid, FdPlacement::Exact(Fd(0))).unwrap();

        let ann = AnnotationRegistry::new();
        let mut rep = Interposer::replayer(&log);
        rep.map_pid(old_pid, new_pid);
        let stack = cs(&["main", "server_init"]);

        let fd = rep
            .handle(&mut k, new_pid, new_tid, "main", stack, Syscall::Socket, true, &ann)
            .unwrap()
            .as_fd()
            .unwrap();
        assert_eq!(fd, Fd(0), "replay returns the recorded descriptor number");
        // Bind to port 80 would fail live (port in use by the old version);
        // replay must succeed without touching the kernel.
        rep.handle(&mut k, new_pid, new_tid, "main", stack, Syscall::Bind { fd, port: 80 }, true, &ann)
            .unwrap();
        rep.handle(&mut k, new_pid, new_tid, "main", stack, Syscall::Listen { fd }, true, &ann).unwrap();
        // getpid returns the old version's pid (pid virtualization).
        let pid_ret = rep
            .handle(&mut k, new_pid, new_tid, "main", stack, Syscall::Getpid, true, &ann)
            .unwrap()
            .as_pid()
            .unwrap();
        assert_eq!(pid_ret, old_pid);
        assert!(rep.finish_replay(&ann).is_empty());
        assert_eq!(rep.stats().replayed, 4);
        assert!((rep.replay_progress() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn argument_mismatch_is_a_conflict_unless_handled() {
        let (mut k, old_pid, _, log) = record_v1();
        let new_pid = k.create_process("v2").unwrap();
        let new_tid = k.process(new_pid).unwrap().main_tid();
        k.process_mut(new_pid).unwrap().setup_memory(MemoryLayout::with_slide(0x100000), false).unwrap();
        let ann = AnnotationRegistry::new();
        let mut rep = Interposer::replayer(&log);
        rep.map_pid(old_pid, new_pid);
        let stack = cs(&["main", "server_init"]);
        let fd = rep
            .handle(&mut k, new_pid, new_tid, "main", stack, Syscall::Socket, true, &ann)
            .unwrap()
            .as_fd()
            .unwrap();
        // The new version binds to a different port: same call site, same
        // syscall, different arguments.
        let err = rep
            .handle(&mut k, new_pid, new_tid, "main", stack, Syscall::Bind { fd, port: 8080 }, true, &ann)
            .unwrap_err();
        match err {
            McrError::Conflicts(cs) => {
                assert!(matches!(cs[0], Conflict::ReplayArgumentMismatch { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }

        // With a reinitialization handler that accepts the change, the call
        // is resolved.
        let mut ann2 = AnnotationRegistry::new();
        ann2.add_reinit_handler(
            "accept-port-change",
            Box::new(|call, _| match call {
                Syscall::Bind { .. } => ReinitDecision::ReplayRecorded,
                _ => ReinitDecision::NotHandled,
            }),
            3,
        );
        let mut rep2 = Interposer::replayer(&log);
        rep2.map_pid(old_pid, new_pid);
        let fd = rep2
            .handle(&mut k, new_pid, new_tid, "main", stack, Syscall::Socket, true, &ann2)
            .unwrap()
            .as_fd()
            .unwrap();
        rep2.handle(&mut k, new_pid, new_tid, "main", stack, Syscall::Bind { fd, port: 8080 }, true, &ann2)
            .unwrap();
        assert_eq!(rep2.stats().handler_resolved, 1);
    }

    #[test]
    fn omitted_entries_flagged_at_finish() {
        let (mut k, old_pid, _, log) = record_v1();
        let new_pid = k.create_process("v2").unwrap();
        let new_tid = k.process(new_pid).unwrap().main_tid();
        k.process_mut(new_pid).unwrap().setup_memory(MemoryLayout::with_slide(0x100000), false).unwrap();
        let ann = AnnotationRegistry::new();
        let mut rep = Interposer::replayer(&log);
        rep.map_pid(old_pid, new_pid);
        let stack = cs(&["main", "server_init"]);
        // Replay only the socket call; omit bind/listen/getpid.
        rep.handle(&mut k, new_pid, new_tid, "main", stack, Syscall::Socket, true, &ann).unwrap();
        let conflicts = rep.finish_replay(&ann);
        assert_eq!(conflicts.len(), 3);
        assert!(conflicts.iter().all(|c| matches!(c, Conflict::OmittedReplayEntry { .. })));
        assert!(rep.replay_progress() < 1.0);
    }

    #[test]
    fn new_calls_execute_live_in_reserved_range() {
        let (mut k, old_pid, _, log) = record_v1();
        let new_pid = k.create_process("v2").unwrap();
        let new_tid = k.process(new_pid).unwrap().main_tid();
        k.process_mut(new_pid).unwrap().setup_memory(MemoryLayout::with_slide(0x100000), false).unwrap();
        k.add_file("/etc/new-feature.conf", b"on".to_vec());
        let ann = AnnotationRegistry::new();
        let mut rep = Interposer::replayer(&log);
        rep.map_pid(old_pid, new_pid);
        // The new version opens a config file the old one never opened.
        let stack = cs(&["main", "server_init", "load_new_feature"]);
        let fd = rep
            .handle(
                &mut k,
                new_pid,
                new_tid,
                "main",
                stack,
                Syscall::Open { path: "/etc/new-feature.conf".into(), create: false },
                true,
                &ann,
            )
            .unwrap()
            .as_fd()
            .unwrap();
        assert!(fd.is_reserved(), "fresh descriptors are allocated in the reserved range");
        assert_eq!(rep.stats().executed_live, 1);
    }

    #[test]
    fn fork_replay_virtualizes_child_pid() {
        // Record a v1 startup that forks a worker.
        let (mut k, pid, tid) = booted_kernel("v1");
        let ann = AnnotationRegistry::new();
        let mut rec = Interposer::recorder();
        let stack = cs(&["main", "spawn_workers"]);
        let child_v1 =
            rec.handle(&mut k, pid, tid, "main", stack, Syscall::Fork, true, &ann).unwrap().as_pid().unwrap();
        let log = rec.recorded_log().clone();

        // Replay in a new version.
        let new_pid = k.create_process("v2").unwrap();
        let new_tid = k.process(new_pid).unwrap().main_tid();
        k.process_mut(new_pid).unwrap().setup_memory(MemoryLayout::with_slide(0x200000), false).unwrap();
        let mut rep = Interposer::replayer(&log);
        rep.map_pid(pid, new_pid);
        let virt_child = rep
            .handle(&mut k, new_pid, new_tid, "main", stack, Syscall::Fork, true, &ann)
            .unwrap()
            .as_pid()
            .unwrap();
        assert_eq!(virt_child, child_v1, "program observes the old child pid");
        let actual_child = rep.actual_pid(virt_child);
        assert_ne!(actual_child, child_v1, "the kernel assigned a fresh pid");
        assert!(k.process(actual_child).is_ok());
        assert_eq!(rep.virtual_pid(actual_child), child_v1);
    }

    #[test]
    fn post_startup_calls_pass_through() {
        let (mut k, old_pid, _, log) = record_v1();
        let new_pid = k.create_process("v2").unwrap();
        let new_tid = k.process(new_pid).unwrap().main_tid();
        k.process_mut(new_pid).unwrap().setup_memory(MemoryLayout::with_slide(0x100000), false).unwrap();
        let ann = AnnotationRegistry::new();
        let mut rep = Interposer::replayer(&log);
        rep.map_pid(old_pid, new_pid);
        // After startup (in_startup = false), even replay-eligible calls are
        // executed live.
        let fd = rep
            .handle(&mut k, new_pid, new_tid, "main", cs(&["main"]), Syscall::Socket, false, &ann)
            .unwrap()
            .as_fd()
            .unwrap();
        assert!(!fd.is_reserved());
        assert_eq!(rep.stats().replayed, 0);
    }
}
