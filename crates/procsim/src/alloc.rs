//! Simulated memory allocators with in-band MCR metadata.
//!
//! Three allocator families are modelled, matching the programs evaluated in
//! the paper:
//!
//! * [`PtMalloc`] — a ptmalloc-style general-purpose heap allocator (glibc
//!   `malloc`). When *instrumented*, every chunk header carries an allocation
//!   site identifier and a data-type tag in in-band metadata, exactly the
//!   information MCR's precise tracing consumes. Instrumentation performs real
//!   extra work per allocation, so its cost is observable in the overhead
//!   benchmarks (Table 3).
//! * [`RegionAllocator`] — a region/pool allocator (nginx pools, Apache httpd
//!   nested pools). Objects carved out of a region are *not* individually
//!   visible to the heap allocator; without dedicated instrumentation they are
//!   opaque to precise tracing and must be scanned conservatively.
//! * [`SlabAllocator`] — a slab of fixed-size slots (nginx slabs).
//!
//! All allocators operate on a heap region of a simulated [`AddressSpace`];
//! every header they maintain is stored *inside* simulated memory so that
//! conservative scanning and state transfer observe the same bytes a real
//! process would contain.

use std::collections::BTreeMap;

use crate::error::{SimError, SimResult};
use crate::memory::{Addr, AddressSpace};

/// Identifier of a static allocation call site (assigned by the
/// instrumentation layer; `0` means "unknown / uninstrumented").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AllocSite(pub u64);

/// Opaque data-type tag identifier (resolved by the `mcr-typemeta` crate;
/// `0` means "untyped").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TypeTag(pub u64);

/// Header flag bits stored in-band in front of every chunk payload.
mod flags {
    pub const IN_USE: u64 = 1 << 0;
    pub const STARTUP: u64 = 1 << 1;
    pub const INSTRUMENTED: u64 = 1 << 2;
}

/// Alignment guaranteed for every payload.
pub const CHUNK_ALIGN: u64 = 16;
/// Header size without instrumentation (size + flags).
pub const HEADER_BASE: u64 = 16;
/// Header size with MCR instrumentation (adds site + type tag words).
pub const HEADER_INSTR: u64 = 32;

/// Description of a live or freed chunk as read back from in-band metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Address of the first payload byte.
    pub payload: Addr,
    /// Payload size in bytes.
    pub size: u64,
    /// Allocation site recorded by instrumentation (0 if uninstrumented).
    pub site: AllocSite,
    /// Data-type tag recorded by instrumentation (0 if uninstrumented).
    pub type_tag: TypeTag,
    /// Whether the chunk was allocated during program startup.
    pub startup: bool,
    /// Whether the chunk is currently allocated.
    pub in_use: bool,
}

/// Running statistics maintained by an allocator instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of successful allocations.
    pub allocs: u64,
    /// Number of frees (including deferred ones once flushed).
    pub frees: u64,
    /// Bytes currently allocated (payload only).
    pub live_bytes: u64,
    /// Peak of `live_bytes`.
    pub peak_bytes: u64,
    /// Bytes of in-band metadata currently resident.
    pub metadata_bytes: u64,
    /// Extra word writes performed purely for instrumentation.
    pub instr_writes: u64,
}

/// A ptmalloc-style heap allocator bound to one heap region.
#[derive(Debug, Clone)]
pub struct PtMalloc {
    heap_base: Addr,
    heap_size: u64,
    /// Next never-used offset (bump frontier).
    frontier: u64,
    /// Free chunks by payload offset -> total chunk size (header + payload).
    free_chunks: BTreeMap<u64, u64>,
    /// Live chunks by payload address.
    live: BTreeMap<u64, u64>,
    instrumented: bool,
    startup_phase: bool,
    defer_free: bool,
    deferred: Vec<Addr>,
    stats: AllocStats,
}

impl PtMalloc {
    /// Creates an allocator managing `[heap_base, heap_base + heap_size)`.
    ///
    /// The heap region must already be mapped in the address space used with
    /// the allocator's methods.
    pub fn new(heap_base: Addr, heap_size: u64, instrumented: bool) -> Self {
        PtMalloc {
            heap_base,
            heap_size,
            frontier: 0,
            free_chunks: BTreeMap::new(),
            live: BTreeMap::new(),
            instrumented,
            startup_phase: true,
            defer_free: false,
            deferred: Vec::new(),
            stats: AllocStats::default(),
        }
    }

    /// Base address of the managed heap.
    pub fn heap_base(&self) -> Addr {
        self.heap_base
    }

    /// Size in bytes of the managed heap.
    pub fn heap_size(&self) -> u64 {
        self.heap_size
    }

    /// Whether in-band MCR tags are maintained.
    pub fn is_instrumented(&self) -> bool {
        self.instrumented
    }

    /// Current allocation statistics.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Ends the startup phase: subsequent allocations are no longer flagged
    /// as startup-time objects and deferred frees are no longer collected.
    pub fn end_startup(&mut self) {
        self.startup_phase = false;
    }

    /// Whether the allocator is still in the startup phase.
    pub fn in_startup(&self) -> bool {
        self.startup_phase
    }

    /// Enables or disables deferral of `free` operations.
    ///
    /// Mutable reinitialization defers all frees until the end of startup so
    /// that no startup-time address is ever reused (*global separability*).
    pub fn set_defer_free(&mut self, defer: bool) {
        self.defer_free = defer;
    }

    /// Flushes deferred frees, actually releasing the chunks.
    pub fn flush_deferred(&mut self, space: &mut AddressSpace) -> SimResult<usize> {
        let pending = std::mem::take(&mut self.deferred);
        let n = pending.len();
        for addr in pending {
            self.release(space, addr)?;
        }
        Ok(n)
    }

    fn header_size(&self) -> u64 {
        if self.instrumented {
            HEADER_INSTR
        } else {
            HEADER_BASE
        }
    }

    fn round_up(v: u64, align: u64) -> u64 {
        v.div_ceil(align) * align
    }

    /// Allocates `size` bytes, recording `site`/`type_tag` when instrumented.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] when neither the free list nor the
    /// bump frontier can satisfy the request.
    pub fn malloc(
        &mut self,
        space: &mut AddressSpace,
        size: u64,
        site: AllocSite,
        type_tag: TypeTag,
    ) -> SimResult<Addr> {
        let payload_size = Self::round_up(size.max(1), CHUNK_ALIGN);
        let total = self.header_size() + payload_size;

        // First-fit search in the free list.
        let reuse = self.free_chunks.iter().find(|(_, &sz)| sz >= total).map(|(&off, &sz)| (off, sz));

        let chunk_off = if let Some((off, sz)) = reuse {
            self.free_chunks.remove(&off);
            // Return the tail to the free list when the leftover is large
            // enough to hold another minimal chunk.
            let leftover = sz - total;
            if leftover >= self.header_size() + CHUNK_ALIGN {
                self.free_chunks.insert(off + total, leftover);
            }
            off
        } else {
            let off = Self::round_up(self.frontier, CHUNK_ALIGN);
            if off + total > self.heap_size {
                return Err(SimError::OutOfMemory { requested: size });
            }
            self.frontier = off + total;
            off
        };

        let header = self.heap_base.offset(chunk_off);
        let payload = header.offset(self.header_size());
        let mut fl = flags::IN_USE;
        if self.startup_phase {
            fl |= flags::STARTUP;
        }
        if self.instrumented {
            fl |= flags::INSTRUMENTED;
        }
        space.write_u64(header, payload_size)?;
        space.write_u64(header.offset(8), fl)?;
        if self.instrumented {
            // The two extra metadata stores are the per-allocation cost of
            // MCR's static/dynamic allocator instrumentation.
            space.write_u64(header.offset(16), site.0)?;
            space.write_u64(header.offset(24), type_tag.0)?;
            self.stats.instr_writes += 2;
        }
        // Zero the payload (calloc-like semantics keep tracing deterministic).
        space.fill(payload, payload_size as usize, 0)?;

        self.live.insert(payload.0, total);
        self.stats.allocs += 1;
        self.stats.live_bytes += payload_size;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
        self.stats.metadata_bytes += self.header_size();
        Ok(payload)
    }

    /// Frees the chunk whose payload starts at `payload`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFree`] if `payload` is not a live chunk.
    pub fn free(&mut self, space: &mut AddressSpace, payload: Addr) -> SimResult<()> {
        if !self.live.contains_key(&payload.0) {
            return Err(SimError::InvalidFree(payload));
        }
        if self.defer_free && self.startup_phase {
            self.deferred.push(payload);
            return Ok(());
        }
        self.release(space, payload)
    }

    fn release(&mut self, space: &mut AddressSpace, payload: Addr) -> SimResult<()> {
        let total = self.live.remove(&payload.0).ok_or(SimError::InvalidFree(payload))?;
        let header = payload.0 - self.header_size();
        let fl = space.read_u64(Addr(header + 8))?;
        space.write_u64(Addr(header + 8), fl & !flags::IN_USE)?;
        let payload_size = space.read_u64(Addr(header))?;
        // Like real ptmalloc, freeing writes free-list metadata into the
        // first payload word (the bin's next pointer). Besides fidelity,
        // this stamps the freed object's page with the current write epoch,
        // so an incremental pre-copy retrace re-resolves the object and
        // drops it exactly like a fresh trace of the same memory would.
        space.write_u64(payload, 0)?;
        self.free_chunks.insert(header - self.heap_base.0, total);
        self.stats.frees += 1;
        self.stats.live_bytes = self.stats.live_bytes.saturating_sub(payload_size);
        self.stats.metadata_bytes = self.stats.metadata_bytes.saturating_sub(self.header_size());
        Ok(())
    }

    /// Allocates a chunk so that its payload lands exactly at `payload`.
    ///
    /// This is the *global reallocation* primitive of mutable
    /// reinitialization: immutable dynamic memory objects inherited from the
    /// old version must reappear at the same virtual address in the new
    /// version's fresh heap.
    ///
    /// # Errors
    ///
    /// Fails if the requested placement is outside the heap, overlaps a live
    /// chunk, or lies behind the bump frontier in already-recycled space that
    /// cannot be carved.
    pub fn malloc_at(
        &mut self,
        space: &mut AddressSpace,
        payload: Addr,
        size: u64,
        site: AllocSite,
        type_tag: TypeTag,
    ) -> SimResult<Addr> {
        let payload_size = Self::round_up(size.max(1), CHUNK_ALIGN);
        let header_off = payload
            .0
            .checked_sub(self.header_size())
            .and_then(|h| h.checked_sub(self.heap_base.0))
            .ok_or(SimError::InvalidArgument("placement below heap base".into()))?;
        let total = self.header_size() + payload_size;
        if header_off + total > self.heap_size {
            return Err(SimError::OutOfMemory { requested: size });
        }
        // The placement must not overlap any live chunk.
        for (&live_payload, &live_total) in &self.live {
            let live_start = live_payload - self.header_size();
            let live_end = live_start + live_total;
            let start = self.heap_base.0 + header_off;
            let end = start + total;
            if start < live_end && live_start < end {
                return Err(SimError::MappingOverlap { base: Addr(start), size: total });
            }
        }
        // Remove any free-list entries that the placement swallows.
        let overlapping: Vec<u64> = self
            .free_chunks
            .iter()
            .filter(|(&off, &sz)| off < header_off + total && header_off < off + sz)
            .map(|(&off, _)| off)
            .collect();
        for off in overlapping {
            self.free_chunks.remove(&off);
        }
        if header_off + total > self.frontier {
            self.frontier = header_off + total;
        }

        let header = self.heap_base.offset(header_off);
        let mut fl = flags::IN_USE;
        if self.startup_phase {
            fl |= flags::STARTUP;
        }
        if self.instrumented {
            fl |= flags::INSTRUMENTED;
        }
        space.write_u64(header, payload_size)?;
        space.write_u64(header.offset(8), fl)?;
        if self.instrumented {
            space.write_u64(header.offset(16), site.0)?;
            space.write_u64(header.offset(24), type_tag.0)?;
            self.stats.instr_writes += 2;
        }
        self.live.insert(payload.0, total);
        self.stats.allocs += 1;
        self.stats.live_bytes += payload_size;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
        self.stats.metadata_bytes += self.header_size();
        Ok(payload)
    }

    /// Looks up the live chunk containing `addr` (interior pointers allowed).
    pub fn chunk_containing(&self, space: &AddressSpace, addr: Addr) -> Option<ChunkInfo> {
        let (&payload, _) = self.live.range(..=addr.0).next_back()?;
        let info = self.chunk_info(space, Addr(payload)).ok()?;
        if addr.0 < payload + info.size {
            Some(info)
        } else {
            None
        }
    }

    /// Reads back the in-band metadata of the chunk whose payload is `payload`.
    pub fn chunk_info(&self, space: &AddressSpace, payload: Addr) -> SimResult<ChunkInfo> {
        let header = Addr(payload.0 - self.header_size());
        let size = space.read_u64(header)?;
        let fl = space.read_u64(header.offset(8))?;
        let (site, type_tag) = if fl & flags::INSTRUMENTED != 0 {
            (AllocSite(space.read_u64(header.offset(16))?), TypeTag(space.read_u64(header.offset(24))?))
        } else {
            (AllocSite(0), TypeTag(0))
        };
        Ok(ChunkInfo {
            payload,
            size,
            site,
            type_tag,
            startup: fl & flags::STARTUP != 0,
            in_use: fl & flags::IN_USE != 0,
        })
    }

    /// Iterates over all live chunks in address order.
    pub fn live_chunks<'a>(&'a self, space: &'a AddressSpace) -> impl Iterator<Item = ChunkInfo> + 'a {
        self.live.keys().filter_map(move |&p| self.chunk_info(space, Addr(p)).ok())
    }

    /// Number of live chunks.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// True if `payload` is the start of a live chunk.
    pub fn is_live(&self, payload: Addr) -> bool {
        self.live.contains_key(&payload.0)
    }
}

// ---------------------------------------------------------------------------
// Region (pool) allocator
// ---------------------------------------------------------------------------

/// Handle to a region/pool created by a [`RegionAllocator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PoolId(pub u64);

#[derive(Debug, Clone)]
struct Pool {
    storage: Addr,
    size: u64,
    used: u64,
    parent: Option<PoolId>,
    /// Objects carved from this pool (payload address, size, site, tag);
    /// populated only when the region allocator is instrumented.
    objects: Vec<(Addr, u64, AllocSite, TypeTag)>,
}

/// A region ("pool") allocator in the style of nginx pools / APR pools.
///
/// Pools obtain their backing storage from the process heap via [`PtMalloc`]
/// and then bump-allocate objects inside it. Without instrumentation the heap
/// allocator only sees one big opaque chunk per pool, which is exactly the
/// situation that forces MCR's conservative tracing. With instrumentation
/// (the `nginxreg` configuration of the paper) every carved object is
/// registered with its allocation site and type tag, at a measurable cost.
#[derive(Debug, Clone)]
pub struct RegionAllocator {
    pools: BTreeMap<u64, Pool>,
    next_pool: u64,
    instrumented: bool,
    stats: AllocStats,
}

impl RegionAllocator {
    /// Creates an empty region allocator.
    pub fn new(instrumented: bool) -> Self {
        RegionAllocator { pools: BTreeMap::new(), next_pool: 1, instrumented, stats: AllocStats::default() }
    }

    /// Whether per-object instrumentation is enabled.
    pub fn is_instrumented(&self) -> bool {
        self.instrumented
    }

    /// Current allocation statistics.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Creates a pool of `size` bytes, optionally as a child of `parent`
    /// (child pools model Apache httpd's nested APR pools).
    pub fn create_pool(
        &mut self,
        space: &mut AddressSpace,
        heap: &mut PtMalloc,
        size: u64,
        parent: Option<PoolId>,
    ) -> SimResult<PoolId> {
        let storage = heap.malloc(space, size, AllocSite(0), TypeTag(0))?;
        let id = PoolId(self.next_pool);
        self.next_pool += 1;
        self.pools.insert(id.0, Pool { storage, size, used: 0, parent, objects: Vec::new() });
        Ok(id)
    }

    /// Bump-allocates `size` bytes from `pool`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] when the pool is exhausted and
    /// [`SimError::InvalidArgument`] for an unknown pool.
    pub fn palloc(
        &mut self,
        space: &mut AddressSpace,
        pool: PoolId,
        size: u64,
        site: AllocSite,
        type_tag: TypeTag,
    ) -> SimResult<Addr> {
        let instrumented = self.instrumented;
        let p =
            self.pools.get_mut(&pool.0).ok_or(SimError::InvalidArgument(format!("unknown pool {pool:?}")))?;
        let aligned = size.max(1).div_ceil(8) * 8;
        let extra = if instrumented { 16 } else { 0 };
        if p.used + aligned + extra > p.size {
            return Err(SimError::OutOfMemory { requested: size });
        }
        let mut obj = p.storage.offset(p.used);
        if instrumented {
            // In-band per-object record maintained by the instrumented
            // allocator wrappers: [site, type_tag] immediately before the
            // object.
            space.write_u64(obj, site.0)?;
            space.write_u64(obj.offset(8), type_tag.0)?;
            obj = obj.offset(16);
            self.stats.instr_writes += 2;
            self.stats.metadata_bytes += 16;
        }
        p.used += aligned + extra;
        if instrumented {
            p.objects.push((obj, aligned, site, type_tag));
        }
        self.stats.allocs += 1;
        self.stats.live_bytes += aligned;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
        Ok(obj)
    }

    /// Destroys a pool and (recursively) its child pools, releasing the
    /// backing storage to the heap allocator.
    pub fn destroy_pool(
        &mut self,
        space: &mut AddressSpace,
        heap: &mut PtMalloc,
        pool: PoolId,
    ) -> SimResult<()> {
        let children: Vec<PoolId> =
            self.pools.iter().filter(|(_, p)| p.parent == Some(pool)).map(|(&id, _)| PoolId(id)).collect();
        for child in children {
            self.destroy_pool(space, heap, child)?;
        }
        let p =
            self.pools.remove(&pool.0).ok_or(SimError::InvalidArgument(format!("unknown pool {pool:?}")))?;
        let carved: u64 = p.objects.iter().map(|(_, sz, _, _)| *sz).sum();
        self.stats.live_bytes =
            self.stats.live_bytes.saturating_sub(if self.instrumented { carved } else { p.used });
        self.stats.frees += 1;
        heap.free(space, p.storage)?;
        Ok(())
    }

    /// Returns the pool whose storage contains `addr`, if any.
    pub fn pool_containing(&self, addr: Addr) -> Option<PoolId> {
        self.pools
            .iter()
            .find(|(_, p)| addr.0 >= p.storage.0 && addr.0 < p.storage.0 + p.size)
            .map(|(&id, _)| PoolId(id))
    }

    /// Looks up the instrumented object record containing `addr`.
    pub fn object_containing(&self, addr: Addr) -> Option<(Addr, u64, AllocSite, TypeTag)> {
        if !self.instrumented {
            return None;
        }
        for p in self.pools.values() {
            for &(obj, size, site, tag) in &p.objects {
                if addr.0 >= obj.0 && addr.0 < obj.0 + size {
                    return Some((obj, size, site, tag));
                }
            }
        }
        None
    }

    /// Iterates over instrumented objects across all pools.
    pub fn objects(&self) -> impl Iterator<Item = (Addr, u64, AllocSite, TypeTag)> + '_ {
        self.pools.values().flat_map(|p| p.objects.iter().copied())
    }

    /// Number of live pools.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// Base storage address and size of a pool.
    pub fn pool_extent(&self, pool: PoolId) -> Option<(Addr, u64)> {
        self.pools.get(&pool.0).map(|p| (p.storage, p.size))
    }
}

// ---------------------------------------------------------------------------
// Slab allocator
// ---------------------------------------------------------------------------

/// A slab allocator handing out fixed-size slots from one backing chunk.
#[derive(Debug, Clone)]
pub struct SlabAllocator {
    storage: Addr,
    slot_size: u64,
    slots: usize,
    used: Vec<bool>,
    stats: AllocStats,
}

impl SlabAllocator {
    /// Creates a slab of `slots` slots of `slot_size` bytes each, backed by a
    /// fresh heap chunk.
    pub fn new(
        space: &mut AddressSpace,
        heap: &mut PtMalloc,
        slot_size: u64,
        slots: usize,
    ) -> SimResult<Self> {
        let slot_size = slot_size.max(8).div_ceil(8) * 8;
        let storage = heap.malloc(space, slot_size * slots as u64, AllocSite(0), TypeTag(0))?;
        Ok(SlabAllocator {
            storage,
            slot_size,
            slots,
            used: vec![false; slots],
            stats: AllocStats::default(),
        })
    }

    /// Allocates one slot.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] when every slot is in use.
    pub fn alloc(&mut self) -> SimResult<Addr> {
        for (i, used) in self.used.iter_mut().enumerate() {
            if !*used {
                *used = true;
                self.stats.allocs += 1;
                self.stats.live_bytes += self.slot_size;
                self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
                return Ok(self.storage.offset(i as u64 * self.slot_size));
            }
        }
        Err(SimError::OutOfMemory { requested: self.slot_size })
    }

    /// Frees a slot previously returned by [`SlabAllocator::alloc`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFree`] for an address that is not a slot
    /// base or whose slot is already free.
    pub fn free(&mut self, addr: Addr) -> SimResult<()> {
        let off = addr.0.checked_sub(self.storage.0).ok_or(SimError::InvalidFree(addr))?;
        if off % self.slot_size != 0 {
            return Err(SimError::InvalidFree(addr));
        }
        let idx = (off / self.slot_size) as usize;
        if idx >= self.slots || !self.used[idx] {
            return Err(SimError::InvalidFree(addr));
        }
        self.used[idx] = false;
        self.stats.frees += 1;
        self.stats.live_bytes = self.stats.live_bytes.saturating_sub(self.slot_size);
        Ok(())
    }

    /// Base address of the slab storage.
    pub fn storage(&self) -> Addr {
        self.storage
    }

    /// Size of each slot in bytes.
    pub fn slot_size(&self) -> u64 {
        self.slot_size
    }

    /// Number of slots currently in use.
    pub fn used_count(&self) -> usize {
        self.used.iter().filter(|u| **u).count()
    }

    /// Current allocation statistics.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{RegionKind, PAGE_SIZE};

    const HEAP_BASE: u64 = 0x0900_0000;
    const HEAP_SIZE: u64 = 256 * PAGE_SIZE;

    fn setup(instrumented: bool) -> (AddressSpace, PtMalloc) {
        let mut space = AddressSpace::new();
        space.map_region(Addr(HEAP_BASE), HEAP_SIZE, RegionKind::Heap, "heap").unwrap();
        (space, PtMalloc::new(Addr(HEAP_BASE), HEAP_SIZE, instrumented))
    }

    #[test]
    fn malloc_returns_aligned_nonoverlapping_chunks() {
        let (mut space, mut heap) = setup(false);
        let a = heap.malloc(&mut space, 24, AllocSite(1), TypeTag(1)).unwrap();
        let b = heap.malloc(&mut space, 100, AllocSite(2), TypeTag(2)).unwrap();
        assert!(a.is_aligned(CHUNK_ALIGN));
        assert!(b.is_aligned(CHUNK_ALIGN));
        assert!(b.0 >= a.0 + 24);
        assert_eq!(heap.live_count(), 2);
    }

    #[test]
    fn instrumented_header_carries_tags() {
        let (mut space, mut heap) = setup(true);
        let a = heap.malloc(&mut space, 64, AllocSite(7), TypeTag(42)).unwrap();
        let info = heap.chunk_info(&space, a).unwrap();
        assert_eq!(info.site, AllocSite(7));
        assert_eq!(info.type_tag, TypeTag(42));
        assert!(info.startup);
        assert!(info.in_use);
        assert!(heap.stats().instr_writes >= 2);
    }

    #[test]
    fn uninstrumented_header_has_no_tags() {
        let (mut space, mut heap) = setup(false);
        let a = heap.malloc(&mut space, 64, AllocSite(7), TypeTag(42)).unwrap();
        let info = heap.chunk_info(&space, a).unwrap();
        assert_eq!(info.site, AllocSite(0));
        assert_eq!(info.type_tag, TypeTag(0));
    }

    #[test]
    fn free_and_reuse() {
        let (mut space, mut heap) = setup(false);
        heap.end_startup();
        let a = heap.malloc(&mut space, 64, AllocSite(1), TypeTag(0)).unwrap();
        heap.free(&mut space, a).unwrap();
        assert!(!heap.is_live(a));
        let b = heap.malloc(&mut space, 64, AllocSite(2), TypeTag(0)).unwrap();
        assert_eq!(a, b, "freed chunk should be reused first-fit");
        assert!(matches!(heap.free(&mut space, Addr(0x1)), Err(SimError::InvalidFree(_))));
    }

    #[test]
    fn deferred_free_prevents_startup_reuse() {
        let (mut space, mut heap) = setup(false);
        heap.set_defer_free(true);
        let a = heap.malloc(&mut space, 64, AllocSite(1), TypeTag(0)).unwrap();
        heap.free(&mut space, a).unwrap();
        // Still live: the free was deferred.
        assert!(heap.is_live(a));
        let b = heap.malloc(&mut space, 64, AllocSite(2), TypeTag(0)).unwrap();
        assert_ne!(a, b, "deferred free must prevent startup-time address reuse");
        heap.end_startup();
        let n = heap.flush_deferred(&mut space).unwrap();
        assert_eq!(n, 1);
        assert!(!heap.is_live(a));
    }

    #[test]
    fn startup_flag_follows_phase() {
        let (mut space, mut heap) = setup(true);
        let a = heap.malloc(&mut space, 8, AllocSite(1), TypeTag(1)).unwrap();
        heap.end_startup();
        let b = heap.malloc(&mut space, 8, AllocSite(1), TypeTag(1)).unwrap();
        assert!(heap.chunk_info(&space, a).unwrap().startup);
        assert!(!heap.chunk_info(&space, b).unwrap().startup);
    }

    #[test]
    fn malloc_at_places_chunk_exactly() {
        let (mut space, mut heap) = setup(true);
        let target = Addr(HEAP_BASE + 0x4000 + HEADER_INSTR);
        let got = heap.malloc_at(&mut space, target, 128, AllocSite(3), TypeTag(9)).unwrap();
        assert_eq!(got, target);
        let info = heap.chunk_info(&space, got).unwrap();
        assert_eq!(info.type_tag, TypeTag(9));
        // Subsequent bump allocations skip past the placed chunk.
        let next = heap.malloc(&mut space, 64, AllocSite(4), TypeTag(0)).unwrap();
        assert!(next.0 > target.0);
        // Overlapping placement is rejected.
        assert!(heap.malloc_at(&mut space, target.offset(16), 64, AllocSite(5), TypeTag(0)).is_err());
    }

    #[test]
    fn chunk_containing_handles_interior_pointers() {
        let (mut space, mut heap) = setup(true);
        let a = heap.malloc(&mut space, 256, AllocSite(1), TypeTag(5)).unwrap();
        let inner = heap.chunk_containing(&space, a.offset(100)).unwrap();
        assert_eq!(inner.payload, a);
        assert!(heap.chunk_containing(&space, a.offset(4096)).is_none());
    }

    #[test]
    fn out_of_memory_reported() {
        let mut space = AddressSpace::new();
        space.map_region(Addr(HEAP_BASE), PAGE_SIZE, RegionKind::Heap, "heap").unwrap();
        let mut heap = PtMalloc::new(Addr(HEAP_BASE), PAGE_SIZE, false);
        assert!(heap.malloc(&mut space, 2 * PAGE_SIZE, AllocSite(0), TypeTag(0)).is_err());
    }

    #[test]
    fn region_allocator_basic() {
        let (mut space, mut heap) = setup(false);
        let mut regions = RegionAllocator::new(false);
        let pool = regions.create_pool(&mut space, &mut heap, 4096, None).unwrap();
        let a = regions.palloc(&mut space, pool, 100, AllocSite(1), TypeTag(1)).unwrap();
        let b = regions.palloc(&mut space, pool, 100, AllocSite(1), TypeTag(1)).unwrap();
        assert_ne!(a, b);
        assert_eq!(regions.pool_containing(a), Some(pool));
        assert!(regions.object_containing(a).is_none(), "uninstrumented pools are opaque");
        regions.destroy_pool(&mut space, &mut heap, pool).unwrap();
        assert_eq!(regions.pool_count(), 0);
    }

    #[test]
    fn instrumented_region_allocator_tracks_objects() {
        let (mut space, mut heap) = setup(true);
        let mut regions = RegionAllocator::new(true);
        let pool = regions.create_pool(&mut space, &mut heap, 4096, None).unwrap();
        let a = regions.palloc(&mut space, pool, 48, AllocSite(11), TypeTag(4)).unwrap();
        let (obj, size, site, tag) = regions.object_containing(a.offset(8)).unwrap();
        assert_eq!(obj, a);
        assert_eq!(size, 48);
        assert_eq!(site, AllocSite(11));
        assert_eq!(tag, TypeTag(4));
        assert!(regions.stats().instr_writes >= 2);
    }

    #[test]
    fn nested_pools_destroyed_recursively() {
        let (mut space, mut heap) = setup(false);
        let mut regions = RegionAllocator::new(false);
        let parent = regions.create_pool(&mut space, &mut heap, 2048, None).unwrap();
        let _child = regions.create_pool(&mut space, &mut heap, 1024, Some(parent)).unwrap();
        assert_eq!(regions.pool_count(), 2);
        regions.destroy_pool(&mut space, &mut heap, parent).unwrap();
        assert_eq!(regions.pool_count(), 0);
    }

    #[test]
    fn pool_exhaustion() {
        let (mut space, mut heap) = setup(false);
        let mut regions = RegionAllocator::new(false);
        let pool = regions.create_pool(&mut space, &mut heap, 64, None).unwrap();
        assert!(regions.palloc(&mut space, pool, 128, AllocSite(0), TypeTag(0)).is_err());
    }

    #[test]
    fn slab_allocator_roundtrip() {
        let (mut space, mut heap) = setup(false);
        let mut slab = SlabAllocator::new(&mut space, &mut heap, 32, 4).unwrap();
        let a = slab.alloc().unwrap();
        let b = slab.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(slab.used_count(), 2);
        slab.free(a).unwrap();
        assert_eq!(slab.used_count(), 1);
        let c = slab.alloc().unwrap();
        assert_eq!(a, c, "freed slot is reused");
        assert!(slab.free(Addr(1)).is_err());
        assert!(slab.free(b.offset(1)).is_err());
    }

    #[test]
    fn slab_exhaustion() {
        let (mut space, mut heap) = setup(false);
        let mut slab = SlabAllocator::new(&mut space, &mut heap, 16, 2).unwrap();
        slab.alloc().unwrap();
        slab.alloc().unwrap();
        assert!(slab.alloc().is_err());
    }
}
