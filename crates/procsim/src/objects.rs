//! Kernel objects: sockets, connections, files, Unix-domain channels.
//!
//! A kernel object is shared state referenced by one or more file
//! descriptors, possibly from multiple processes — this is exactly why MCR
//! must treat descriptor numbers as *immutable state objects*: recreating the
//! descriptor in the new version would lose the in-kernel state held here.

use std::collections::VecDeque;

use crate::ids::{ConnId, ObjId};

/// A message queued on a Unix-domain channel; may carry descriptors
/// (SCM_RIGHTS-style), represented by the kernel objects they refer to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnixMessage {
    /// Opaque payload bytes.
    pub data: Vec<u8>,
    /// Kernel objects attached to the message (fd passing).
    pub objects: Vec<ObjId>,
}

/// The in-kernel state behind a file descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelObject {
    /// A listening TCP socket bound to a port.
    Listener {
        /// Bound port (0 while unbound).
        port: u16,
        /// Whether `listen()` has been called.
        listening: bool,
        /// Pending client connections waiting to be accepted.
        backlog: VecDeque<ConnId>,
    },
    /// An accepted TCP connection.
    Connection {
        /// Workload-level connection identifier.
        conn: ConnId,
        /// Bytes sent by the client, not yet read by the server.
        inbox: VecDeque<Vec<u8>>,
        /// Bytes sent by the server, not yet read by the client.
        outbox: VecDeque<Vec<u8>>,
        /// Whether the client closed its side.
        peer_closed: bool,
    },
    /// An open regular file.
    File {
        /// Path in the simulated file system.
        path: String,
        /// Current read/write offset.
        offset: u64,
    },
    /// A named Unix-domain datagram channel (used by `mcr-ctl` signalling and
    /// old/new-version coordination).
    UnixChannel {
        /// Abstract socket name.
        name: String,
        /// Queued messages.
        inbox: VecDeque<UnixMessage>,
    },
    /// An anonymous pipe.
    Pipe {
        /// Buffered bytes.
        buffer: VecDeque<u8>,
    },
}

impl KernelObject {
    /// Short label describing the object kind (used in diagnostics and in the
    /// startup log).
    pub fn kind_label(&self) -> &'static str {
        match self {
            KernelObject::Listener { .. } => "listener",
            KernelObject::Connection { .. } => "connection",
            KernelObject::File { .. } => "file",
            KernelObject::UnixChannel { .. } => "unix",
            KernelObject::Pipe { .. } => "pipe",
        }
    }
}

/// Reference-counted object table shared by every process's descriptors.
#[derive(Debug, Clone, Default)]
pub struct ObjectTable {
    objects: std::collections::BTreeMap<u64, (KernelObject, u32)>,
    /// Workload connection id → connection object, so the per-send client
    /// path stays O(log n) at fleet scale instead of scanning the table.
    conn_index: std::collections::BTreeMap<u64, ObjId>,
    next_id: u64,
}

impl ObjectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ObjectTable { objects: Default::default(), conn_index: Default::default(), next_id: 1 }
    }

    /// Inserts a new object with refcount 1.
    pub fn insert(&mut self, obj: KernelObject) -> ObjId {
        let id = ObjId(self.next_id);
        self.next_id += 1;
        if let KernelObject::Connection { conn, .. } = &obj {
            self.conn_index.insert(conn.0, id);
        }
        self.objects.insert(id.0, (obj, 1));
        id
    }

    /// Increments the reference count (descriptor duplication, fork, fd
    /// passing).
    pub fn incref(&mut self, id: ObjId) {
        if let Some((_, rc)) = self.objects.get_mut(&id.0) {
            *rc += 1;
        }
    }

    /// Decrements the reference count, dropping the object at zero.
    /// Returns true if the object was destroyed.
    pub fn decref(&mut self, id: ObjId) -> bool {
        if let Some((_, rc)) = self.objects.get_mut(&id.0) {
            *rc -= 1;
            if *rc == 0 {
                if let Some((KernelObject::Connection { conn, .. }, _)) = self.objects.remove(&id.0) {
                    self.conn_index.remove(&conn.0);
                }
                return true;
            }
        }
        false
    }

    /// Shared access to an object.
    pub fn get(&self, id: ObjId) -> Option<&KernelObject> {
        self.objects.get(&id.0).map(|(o, _)| o)
    }

    /// Exclusive access to an object.
    pub fn get_mut(&mut self, id: ObjId) -> Option<&mut KernelObject> {
        self.objects.get_mut(&id.0).map(|(o, _)| o)
    }

    /// Current reference count of an object (0 if it does not exist).
    pub fn refcount(&self, id: ObjId) -> u32 {
        self.objects.get(&id.0).map(|(_, rc)| *rc).unwrap_or(0)
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the table holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterates over `(id, object)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, &KernelObject)> {
        self.objects.iter().map(|(&id, (o, _))| (ObjId(id), o))
    }

    /// Finds the listener bound to `port`, if any.
    pub fn listener_for_port(&self, port: u16) -> Option<ObjId> {
        self.iter().find_map(|(id, o)| match o {
            KernelObject::Listener { port: p, listening: true, .. } if *p == port => Some(id),
            _ => None,
        })
    }

    /// Finds the Unix channel with the given name, if any.
    pub fn unix_channel(&self, name: &str) -> Option<ObjId> {
        self.iter().find_map(|(id, o)| match o {
            KernelObject::UnixChannel { name: n, .. } if n == name => Some(id),
            _ => None,
        })
    }

    /// Finds the connection object for a workload connection id, if any.
    pub fn connection_for(&self, conn: ConnId) -> Option<ObjId> {
        let id = self.conn_index.get(&conn.0).copied()?;
        self.objects.contains_key(&id.0).then_some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refcounting_lifecycle() {
        let mut t = ObjectTable::new();
        let id = t.insert(KernelObject::Pipe { buffer: VecDeque::new() });
        assert_eq!(t.refcount(id), 1);
        t.incref(id);
        assert_eq!(t.refcount(id), 2);
        assert!(!t.decref(id));
        assert!(t.decref(id));
        assert!(t.get(id).is_none());
        assert_eq!(t.refcount(id), 0);
    }

    #[test]
    fn lookup_helpers() {
        let mut t = ObjectTable::new();
        let l = t.insert(KernelObject::Listener { port: 80, listening: true, backlog: VecDeque::new() });
        let _unbound =
            t.insert(KernelObject::Listener { port: 8080, listening: false, backlog: VecDeque::new() });
        let u = t.insert(KernelObject::UnixChannel { name: "mcr-ctl".into(), inbox: VecDeque::new() });
        let c = t.insert(KernelObject::Connection {
            conn: ConnId(5),
            inbox: VecDeque::new(),
            outbox: VecDeque::new(),
            peer_closed: false,
        });
        assert_eq!(t.listener_for_port(80), Some(l));
        assert_eq!(t.listener_for_port(8080), None, "not listening yet");
        assert_eq!(t.unix_channel("mcr-ctl"), Some(u));
        assert_eq!(t.unix_channel("other"), None);
        assert_eq!(t.connection_for(ConnId(5)), Some(c));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn kind_labels() {
        let objs = [
            KernelObject::Listener { port: 1, listening: false, backlog: VecDeque::new() },
            KernelObject::Connection {
                conn: ConnId(1),
                inbox: VecDeque::new(),
                outbox: VecDeque::new(),
                peer_closed: false,
            },
            KernelObject::File { path: "/etc/conf".into(), offset: 0 },
            KernelObject::UnixChannel { name: "x".into(), inbox: VecDeque::new() },
            KernelObject::Pipe { buffer: VecDeque::new() },
        ];
        let labels: Vec<&str> = objs.iter().map(|o| o.kind_label()).collect();
        assert_eq!(labels, vec!["listener", "connection", "file", "unix", "pipe"]);
    }
}
